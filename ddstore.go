// Package ddstore is a from-scratch Go implementation of DDStore — the
// distributed in-memory data store for scalable training of graph neural
// networks on large atomistic datasets (Choi et al., SC-W 2023) — together
// with every substrate the paper's evaluation depends on: an MPI-like
// runtime with one-sided RMA, the PFF and CFF storage baselines, a
// simulated parallel filesystem and machine models of the Summit and
// Perlmutter supercomputers, synthetic equivalents of the paper's four
// atomistic datasets, a HydraGNN implementation (PNA layers + AdamW +
// ReduceLROnPlateau), and a distributed-data-parallel training loop.
//
// This package is the public facade: it re-exports the pieces a downstream
// user composes. The basic recipe is
//
//	world, _ := ddstore.NewWorld(8, 42, ddstore.WithMachine(ddstore.Perlmutter()))
//	dataset := ddstore.HomoLumo(ddstore.DatasetConfig{NumGraphs: 10000})
//	err := world.Run(func(c *ddstore.Comm) error {
//	    store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{Width: 4})
//	    if err != nil {
//	        return err
//	    }
//	    graphs, err := store.Load([]int64{3, 1, 4, 1_000, 5_000})
//	    ...
//	})
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-reproduction results.
package ddstore

import (
	"ddstore/internal/bench"
	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/graph"
	"ddstore/internal/hydra"
	"ddstore/internal/trace"
)

// Runtime (MPI-like world of ranks).
type (
	// World is a set of ranks executing together; see NewWorld.
	World = comm.World
	// Comm is one rank's communicator handle.
	Comm = comm.Comm
	// Win is a one-sided RMA window (MPI_Win).
	Win = comm.Win
	// WorldOption configures NewWorld.
	WorldOption = comm.Option
	// Machine is a supercomputer performance model.
	Machine = cluster.Machine
)

// NewWorld creates a world of size ranks; seed drives all deterministic
// randomness. Attach a machine model with WithMachine to enable
// virtual-time cost accounting.
func NewWorld(size int, seed uint64, opts ...WorldOption) (*World, error) {
	return comm.NewWorld(size, seed, opts...)
}

// WithMachine attaches a machine model to a world.
func WithMachine(m *Machine) WorldOption { return comm.WithMachine(m) }

// Summit returns the Summit supercomputer model (6 V100 GPUs per node).
func Summit() *Machine { return cluster.Summit() }

// Perlmutter returns the Perlmutter model (4 A100 GPUs per node).
func Perlmutter() *Machine { return cluster.Perlmutter() }

// Laptop returns a tiny machine model for local experimentation.
func Laptop() *Machine { return cluster.Laptop() }

// The store itself.
type (
	// Store is a DDStore instance handle; create it with Open.
	Store = core.Store
	// StoreOptions configures Open (most importantly the width parameter).
	StoreOptions = core.Options
	// SampleSource is anything the preloader can read a dataset from.
	SampleSource = core.SampleSource
	// StoreStats counts the loader's local/remote traffic.
	StoreStats = core.Stats
)

// Open collectively creates a DDStore over the communicator: chunks the
// source dataset across the ranks' memories, forms width-sized replica
// groups, builds the registry, and registers the RMA windows.
func Open(c *Comm, src SampleSource, opts StoreOptions) (*Store, error) {
	return core.Open(c, src, opts)
}

// Graph data model.
type (
	// Graph is one atomistic sample (atoms as nodes, bonds as edges).
	Graph = graph.Graph
	// Batch is the disjoint union of several graphs, the GNN's input.
	Batch = graph.Batch
)

// NewBatch assembles graphs into one mini-batch.
func NewBatch(graphs []*Graph) (*Batch, error) { return graph.NewBatch(graphs) }

// DecodeGraph deserializes one encoded graph.
func DecodeGraph(data []byte) (*Graph, error) { return graph.Decode(data) }

// Datasets.
type (
	// Dataset is a deterministic synthetic dataset generator.
	Dataset = datasets.Dataset
	// DatasetConfig controls dataset size and spectrum resolution.
	DatasetConfig = datasets.Config
)

// Ising returns the synthetic Ising-model dataset (125-atom lattices).
func Ising(cfg DatasetConfig) *Dataset { return datasets.Ising(cfg) }

// HomoLumo returns the AISD HOMO-LUMO-style molecular dataset.
func HomoLumo(cfg DatasetConfig) *Dataset { return datasets.HomoLumo(cfg) }

// AISDExDiscrete returns the discrete UV-vis spectrum dataset (2×50 peaks).
func AISDExDiscrete(cfg DatasetConfig) *Dataset { return datasets.AISDExDiscrete(cfg) }

// AISDExSmooth returns the Gaussian-smoothed UV-vis spectrum dataset.
func AISDExSmooth(cfg DatasetConfig) *Dataset { return datasets.AISDExSmooth(cfg) }

// Model and training.
type (
	// Model is a HydraGNN replica (PNA convolutions + FC head).
	Model = hydra.Model
	// ModelConfig describes a HydraGNN instance.
	ModelConfig = hydra.Config
	// TrainConfig configures the DDP training loop.
	TrainConfig = ddp.Config
	// TrainResult is one training run's outcome.
	TrainResult = ddp.Result
	// EpochStats summarizes one training epoch.
	EpochStats = ddp.EpochStats
	// Loader produces batches for a rank (PlaneLoader, SourceLoader).
	Loader = ddp.Loader
	// PlaneLoader serves batches from either DDStore data plane (the
	// in-process RMA Store or a TCP transport.Group).
	PlaneLoader = ddp.PlaneLoader
	// SourceLoader serves batches straight from a storage backend.
	SourceLoader = ddp.SourceLoader
	// Profiler accumulates per-region timings.
	Profiler = trace.Profiler
)

// NewModel builds a HydraGNN replica.
func NewModel(cfg ModelConfig) *Model { return hydra.New(cfg) }

// PaperModelConfig returns the paper's §4.2 architecture (6 PNA layers of
// 200, 3 FC layers of 200) for a dataset's dimensions.
func PaperModelConfig(nodeDim, edgeDim, outputDim int) ModelConfig {
	return hydra.PaperConfig(nodeDim, edgeDim, outputDim)
}

// Train runs the DDP training loop on this rank (call from every rank).
func Train(c *Comm, cfg TrainConfig) (*TrainResult, error) { return ddp.Run(c, cfg) }

// NewProfiler returns an empty region profiler.
func NewProfiler() *Profiler { return trace.New() }

// Experiments (paper reproduction).
type (
	// Experiment is one registered table/figure reproduction.
	Experiment = bench.Experiment
	// ExperimentOptions selects quick or full scale.
	ExperimentOptions = bench.Options
	// ExperimentReport is an experiment's rendered result.
	ExperimentReport = bench.Report
)

// Experiments lists every registered table/figure reproduction.
func Experiments() []Experiment { return bench.Experiments() }

// LookupExperiment finds an experiment by id (e.g. "fig4", "table2").
func LookupExperiment(id string) (Experiment, bool) { return bench.Lookup(id) }

// Additional model features.
type (
	// ModelHead configures one output head of a multi-task model.
	ModelHead = hydra.Head
	// ConvType selects the message-passing policy (PNA or GIN).
	ConvType = hydra.ConvType
)

// Message-passing policies for ModelConfig.Conv.
const (
	ConvPNA = hydra.ConvPNA
	ConvGIN = hydra.ConvGIN
)

// Store design-space options (see StoreOptions.Framework).
const (
	// FrameworkRMA is the paper's one-sided design (default).
	FrameworkRMA = core.FrameworkRMA
	// FrameworkTwoSided is the rejected request/response alternative,
	// kept for the abl-comm ablation.
	FrameworkTwoSided = core.FrameworkTwoSided
)

// PrefetchLoader wraps a Loader with background batch prefetching (the
// PyTorch-DataLoader-workers role) for real-time execution.
type PrefetchLoader = ddp.PrefetchLoader

// NewPrefetchLoader starts a prefetching wrapper with the given queue depth.
func NewPrefetchLoader(inner Loader, depth int) *PrefetchLoader {
	return ddp.NewPrefetchLoader(inner, depth)
}
