# DDStore-Go build targets.

GO ?= go

.PHONY: all build test race bench bench-allocs vet fmt fuzz cover examples experiments quick-experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchmem ./...

# Allocation budget gate for the zero-allocation wire/decode path: the
# header-validation decode (graph.DecodeSizes) must stay at or below
# DECODE_ALLOC_MAX allocs/op for every graph size. A regression here means
# a copy or per-tensor allocation crept back into the hot read path.
DECODE_ALLOC_MAX ?= 1

bench-allocs:
	@$(GO) test -run='^$$' -bench=BenchmarkDecodeSizes -benchtime=100x -benchmem ./internal/graph | tee decode-allocs.txt
	@awk -v max="$(DECODE_ALLOC_MAX)" ' \
		/^BenchmarkDecodeSizes/ { \
			for (i = 1; i <= NF; i++) if ($$(i) == "allocs/op") a = $$(i-1); \
			if (a + 0 > max + 0) { printf "FAIL: %s allocates %s allocs/op (budget %s)\n", $$1, a, max; bad = 1 } \
		} \
		END { if (bad) exit 1; print "decode alloc budget ok (<= " max " allocs/op)" }' decode-allocs.txt

vet:
	$(GO) vet ./...

# Fuzz the graph codec and the wire protocol (both ends). FUZZTIME is per
# target; bump it for longer campaigns, e.g. make fuzz FUZZTIME=10m.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeGraph -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run='^$$' -fuzz=FuzzDecodeGetBatch -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/obs/tracectx

# Coverage gates. internal/fetch is the one pipeline both data planes ride
# (engine unit tests + cross-plane conformance); internal/obs is the
# metrics/span/telemetry surface every layer now feeds; internal/loadgen is
# the live-serve latency harness whose e2e suite drives real TCP;
# internal/frontend is the multi-tenant admission/queueing/shedding layer
# in front of the serving data plane; internal/shardmap is the versioned
# ownership map every elastic route resolves through.
COVER_MIN ?= 85
OBS_COVER_MIN ?= 75
LOADGEN_COVER_MIN ?= 85
FRONTEND_COVER_MIN ?= 85
SHARDMAP_COVER_MIN ?= 85

cover:
	$(GO) test -coverprofile=fetch.cover -coverpkg=./internal/fetch/ ./internal/fetch/
	@total=$$($(GO) tool cover -func=fetch.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/fetch coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_MIN)% floor" >&2; exit 1; }
	$(GO) test -coverprofile=obs.cover -coverpkg=./internal/obs/ ./internal/obs/
	@total=$$($(GO) tool cover -func=obs.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/obs coverage: $$total% (floor $(OBS_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(OBS_COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(OBS_COVER_MIN)% floor" >&2; exit 1; }
	$(GO) test -coverprofile=loadgen.cover -coverpkg=./internal/loadgen/ ./internal/loadgen/
	@total=$$($(GO) tool cover -func=loadgen.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/loadgen coverage: $$total% (floor $(LOADGEN_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(LOADGEN_COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(LOADGEN_COVER_MIN)% floor" >&2; exit 1; }
	$(GO) test -coverprofile=frontend.cover -coverpkg=./internal/frontend/ ./internal/frontend/
	@total=$$($(GO) tool cover -func=frontend.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/frontend coverage: $$total% (floor $(FRONTEND_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(FRONTEND_COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(FRONTEND_COVER_MIN)% floor" >&2; exit 1; }
	$(GO) test -coverprofile=shardmap.cover -coverpkg=./internal/shardmap/ ./internal/shardmap/
	@total=$$($(GO) tool cover -func=shardmap.cover | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "internal/shardmap coverage: $$total% (floor $(SHARDMAP_COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(SHARDMAP_COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(SHARDMAP_COVER_MIN)% floor" >&2; exit 1; }

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ising
	$(GO) run ./examples/widthtune
	$(GO) run ./examples/multitask

# Full paper reproduction (minutes; writes aligned tables to stdout).
experiments:
	$(GO) run ./cmd/ddstore-bench -exp all

# Scaled-down suite for CI (seconds).
quick-experiments:
	$(GO) run ./cmd/ddstore-bench -exp all -quick

clean:
	$(GO) clean ./...
