# DDStore-Go build targets.

GO ?= go

.PHONY: all build test race bench vet fmt fuzz examples experiments quick-experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test ./... -race

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

# Fuzz the graph codec and the wire protocol (both ends). FUZZTIME is per
# target; bump it for longer campaigns, e.g. make fuzz FUZZTIME=10m.
FUZZTIME ?= 15s

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeGraph -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/transport
	$(GO) test -run='^$$' -fuzz=FuzzDecodeGetBatch -fuzztime=$(FUZZTIME) ./internal/transport

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ising
	$(GO) run ./examples/widthtune
	$(GO) run ./examples/multitask

# Full paper reproduction (minutes; writes aligned tables to stdout).
experiments:
	$(GO) run ./cmd/ddstore-bench -exp all

# Scaled-down suite for CI (seconds).
quick-experiments:
	$(GO) run ./cmd/ddstore-bench -exp all -quick

clean:
	$(GO) clean ./...
