package ddstore

import (
	"testing"

	"ddstore/internal/bench"
)

// One testing.B benchmark per paper table/figure. Each iteration executes
// the full (quick-profile) experiment; run with
//
//	go test -bench=. -benchmem
//
// for the whole suite, or e.g. -bench=BenchmarkFig4 for one artifact. The
// full-scale reproductions (paper-sized rank counts) are run by
// cmd/ddstore-bench; see EXPERIMENTS.md for their recorded output.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	// A fixed seed lets the harness's run memoization amortize across
	// iterations: the first iteration executes the experiment, later ones
	// measure report generation over cached runs. The full-scale numbers
	// live in EXPERIMENTS.md; this benchmark exists to exercise and time
	// the harness end to end.
	for i := 0; i < b.N; i++ {
		r, err := e.Run(bench.Options{Quick: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkTable1 regenerates the dataset-description table (Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig4 regenerates the normalized end-to-end speedup comparison.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the training-time breakdown.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the graph-loading latency CDFs.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable2 regenerates the latency percentile table (Table 2).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig7 regenerates the Score-P-style profile shares.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates the fixed-local-batch scaling study.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates the per-function duration scaling study.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the fixed-global-batch scaling study.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the width parameter sweep.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates the width latency CDF comparison.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkTable3 regenerates the width median-latency table (Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig13 regenerates the convergence experiment (real GNN training).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
