// Package stats provides the small statistical toolkit used by the
// experiment harness: percentiles, empirical CDFs, geometric means, and
// scaling-efficiency summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or an
// out-of-range p. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes the percentile of an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DurationPercentile is Percentile specialized for durations.
func DurationPercentile(ds []time.Duration, p float64) time.Duration {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return time.Duration(Percentile(xs, p))
}

// Mean returns the arithmetic mean of xs; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Geomean returns the geometric mean of xs. All values must be positive.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Geomean of empty slice")
	}
	var logsum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean requires positive values, got %v", x))
		}
		logsum += math.Log(x)
	}
	return math.Exp(logsum / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function over durations.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds a CDF from samples. The input is copied.
func NewCDF(samples []time.Duration) *CDF {
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= d.
func (c *CDF) At(d time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples.
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	xs := make([]float64, len(c.sorted))
	for i, d := range c.sorted {
		xs[i] = float64(d)
	}
	return time.Duration(percentileSorted(xs, q*100))
}

// Points returns up to n (x, y) points suitable for plotting the CDF curve,
// sampled uniformly in rank space. y is in [0,1].
func (c *CDF) Points(n int) []CDFPoint {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, CDFPoint{
			Latency:  c.sorted[idx],
			Fraction: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// CDFPoint is one point on an empirical CDF curve.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// ScalingPoint is one measurement in a scaling study.
type ScalingPoint struct {
	Workers    int     // e.g. GPU count
	Throughput float64 // samples/sec (or any rate)
}

// ParallelEfficiency returns, for each point, throughput relative to linear
// scaling extrapolated from the first point:
//
//	eff_i = (T_i / T_0) / (W_i / W_0)
//
// A perfectly linear system yields 1.0 everywhere.
func ParallelEfficiency(points []ScalingPoint) []float64 {
	if len(points) == 0 {
		return nil
	}
	base := points[0]
	effs := make([]float64, len(points))
	for i, p := range points {
		ideal := base.Throughput * float64(p.Workers) / float64(base.Workers)
		effs[i] = p.Throughput / ideal
	}
	return effs
}

// Speedup divides each value by the baseline, returning normalized ratios.
// It panics if baseline is zero.
func Speedup(values []float64, baseline float64) []float64 {
	if baseline == 0 {
		panic("stats: Speedup with zero baseline")
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / baseline
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
