package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentileBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("Percentile of singleton = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDurationPercentile(t *testing.T) {
	ds := []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if got := DurationPercentile(ds, 50); got != 2*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 8}); !almostEqual(got, math.Sqrt(8), 1e-12) {
		t.Fatalf("Geomean = %v", got)
	}
	if got := Geomean([]float64{4, 4, 4}); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Geomean constant = %v", got)
	}
}

func TestGeomeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero input")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]time.Duration{1, 2, 3, 4, 5})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(3); got != 0.6 {
		t.Fatalf("At(3) = %v", got)
	}
	if got := c.At(5); got != 1 {
		t.Fatalf("At(5) = %v", got)
	}
	if got := c.At(100); got != 1 {
		t.Fatalf("At(100) = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]time.Duration{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("Quantile(1) = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.N() != 0 {
		t.Fatal("empty CDF has samples")
	}
	if c.At(time.Second) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if pts := c.Points(10); pts != nil {
		t.Fatal("empty CDF produced points")
	}
}

func TestCDFPointsMonotonic(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(int64(r)&0x7fff + 1)
		}
		pts := NewCDF(ds).Points(16)
		for i := 1; i < len(pts); i++ {
			if pts[i].Latency < pts[i-1].Latency || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		if len(pts) > 0 {
			last := pts[len(pts)-1]
			if last.Fraction != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileMatchesPercentile(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]time.Duration, len(raw))
		xs := make([]float64, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(r) + 1
			xs[i] = float64(ds[i])
		}
		c := NewCDF(ds)
		for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
			if got, want := c.Quantile(q), time.Duration(Percentile(xs, q*100)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEfficiencyLinear(t *testing.T) {
	pts := []ScalingPoint{{48, 100}, {96, 200}, {192, 400}}
	for i, e := range ParallelEfficiency(pts) {
		if !almostEqual(e, 1, 1e-12) {
			t.Fatalf("efficiency[%d] = %v, want 1", i, e)
		}
	}
}

func TestParallelEfficiencySublinear(t *testing.T) {
	pts := []ScalingPoint{{1, 100}, {2, 150}}
	effs := ParallelEfficiency(pts)
	if !almostEqual(effs[1], 0.75, 1e-12) {
		t.Fatalf("efficiency = %v, want 0.75", effs[1])
	}
}

func TestParallelEfficiencyEmpty(t *testing.T) {
	if got := ParallelEfficiency(nil); got != nil {
		t.Fatalf("ParallelEfficiency(nil) = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	got := Speedup([]float64{100, 300, 615}, 100)
	want := []float64{1, 3, 6.15}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Speedup[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpeedupZeroBaselinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Speedup([]float64{1}, 0)
}

func TestPercentileAgainstSortedRank(t *testing.T) {
	// Property: P0 == min, P100 == max, and P50 lies between them.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			if !math.IsNaN(r) && !math.IsInf(r, 0) {
				xs = append(xs, r)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		p0 := Percentile(xs, 0)
		p100 := Percentile(xs, 100)
		p50 := Percentile(xs, 50)
		return p0 == sorted[0] && p100 == sorted[len(sorted)-1] && p50 >= p0 && p50 <= p100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
