package comm

import (
	"fmt"
	"time"
)

// ReduceOp is a reduction operator for Allreduce.
type ReduceOp int

// Supported reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func (op ReduceOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(op))
	}
}

// exchange runs one two-phase collective: every rank deposits v into its
// slot, all ranks synchronize (charging cost to the virtual clocks exactly
// once), read reads the slot array, and a second synchronization prevents
// slot reuse before every rank has read. cost is evaluated by the last
// arriving rank so straggler clocks are already final.
func (c *Comm) exchange(v any, cost func() time.Duration, read func(slots []any)) error {
	st := c.state
	st.slots[c.idx] = v
	err := st.barrier.await(func() {
		if c.world.machine == nil {
			return
		}
		var extra time.Duration
		if cost != nil {
			extra = cost()
		}
		var max time.Duration
		for _, cl := range c.groupClocks() {
			if t := cl.Now(); t > max {
				max = t
			}
		}
		st.syncTo = max + extra
	})
	if err != nil {
		return err
	}
	if c.world.machine != nil {
		c.Clock().AdvanceTo(st.syncTo)
	}
	if read != nil {
		read(st.slots)
	}
	return st.barrier.await(nil)
}

func (c *Comm) allgatherAny(v any, recv func(i int, v any)) error {
	return c.exchange(v, c.smallCollCost, func(slots []any) {
		for i, s := range slots {
			recv(i, s)
		}
	})
}

func (c *Comm) smallCollCost() time.Duration {
	return c.world.machine.CollectiveLatency(c.Size())
}

// Barrier blocks until every rank of the communicator arrives.
func (c *Comm) Barrier() error {
	return c.exchange(nil, c.smallCollCost, nil)
}

// Bcast distributes root's buffer to every rank. Every rank must pass a
// buffer of the same length; non-root buffers are overwritten.
func (c *Comm) Bcast(buf []byte, root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("comm: Bcast root %d out of range [0,%d)", root, c.Size())
	}
	var send any
	if c.idx == root {
		send = buf
	}
	return c.exchange(send, func() time.Duration {
		m := c.world.machine
		hops := m.CollectiveLatency(c.Size())
		return hops + m.NetTransfer(int64(len(buf)), c.Size() <= m.GPUsPerNode)
	}, func(slots []any) {
		if c.idx != root {
			src := slots[root].([]byte)
			if len(src) != len(buf) {
				panic(fmt.Sprintf("comm: Bcast length mismatch: root has %d bytes, rank %d expects %d",
					len(src), c.idx, len(buf)))
			}
			copy(buf, src)
		}
	})
}

// BcastInt64 broadcasts a single int64 from root and returns it.
func (c *Comm) BcastInt64(v int64, root int) (int64, error) {
	var out int64
	err := c.exchange(v, c.smallCollCost, func(slots []any) {
		out = slots[root].(int64)
	})
	return out, err
}

// Allreduce combines in element-wise across all ranks with op and returns
// the result (same on every rank). All ranks must pass equal-length slices.
func (c *Comm) Allreduce(in []float64, op ReduceOp) ([]float64, error) {
	var out []float64
	err := c.exchange(in, func() time.Duration {
		return c.world.machine.Allreduce(int64(len(in)*8), c.Size())
	}, func(slots []any) {
		out = make([]float64, len(in))
		first := true
		for _, s := range slots {
			vec := s.([]float64)
			if len(vec) != len(in) {
				panic(fmt.Sprintf("comm: Allreduce length mismatch: %d vs %d", len(vec), len(in)))
			}
			if first {
				copy(out, vec)
				first = false
				continue
			}
			for i, v := range vec {
				switch op {
				case OpSum:
					out[i] += v
				case OpMax:
					if v > out[i] {
						out[i] = v
					}
				case OpMin:
					if v < out[i] {
						out[i] = v
					}
				}
			}
		}
	})
	return out, err
}

// AllreduceFloat32 combines float32 vectors (the gradient path) in place:
// after the call, in holds the reduced values on every rank.
func (c *Comm) AllreduceFloat32(in []float32, op ReduceOp) error {
	// Each rank deposits its own slice; every rank then reduces all slices
	// into a private buffer and copies back, so no rank's input is read
	// after it has been overwritten. The copy-back happens before the
	// second barrier, which is exactly the hazard the two-phase design
	// guards against — so reduce into a temporary first.
	var tmp []float32
	err := c.exchange(in, func() time.Duration {
		return c.world.machine.Allreduce(int64(len(in)*4), c.Size())
	}, func(slots []any) {
		tmp = make([]float32, len(in))
		first := true
		for _, s := range slots {
			vec := s.([]float32)
			if len(vec) != len(in) {
				panic(fmt.Sprintf("comm: AllreduceFloat32 length mismatch: %d vs %d", len(vec), len(in)))
			}
			if first {
				copy(tmp, vec)
				first = false
				continue
			}
			for i, v := range vec {
				switch op {
				case OpSum:
					tmp[i] += v
				case OpMax:
					if v > tmp[i] {
						tmp[i] = v
					}
				case OpMin:
					if v < tmp[i] {
						tmp[i] = v
					}
				}
			}
		}
	})
	if err != nil {
		return err
	}
	copy(in, tmp)
	// A trailing barrier so no rank starts the next collective while another
	// is still copying tmp — copy happens after the exchange completed, and
	// tmp is private, so this is only needed to keep clock alignment tight.
	return nil
}

// AllreduceInt64 reduces a single int64 across ranks.
func (c *Comm) AllreduceInt64(v int64, op ReduceOp) (int64, error) {
	out, err := c.Allreduce([]float64{float64(v)}, op)
	if err != nil {
		return 0, err
	}
	return int64(out[0]), nil
}

// Allgather concatenates equal-length contributions from all ranks in rank
// order.
func (c *Comm) Allgather(mine []byte) ([][]byte, error) {
	var out [][]byte
	err := c.exchange(mine, func() time.Duration {
		m := c.world.machine
		vol := int64(len(mine)) * int64(c.Size()-1)
		return m.CollectiveLatency(c.Size()) + m.NetTransfer(vol, c.Size() <= m.GPUsPerNode)
	}, func(slots []any) {
		out = make([][]byte, len(slots))
		for i, s := range slots {
			src := s.([]byte)
			cp := make([]byte, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	return out, err
}

// Allgatherv concatenates variable-length byte contributions from all ranks
// in rank order (MPI_Allgatherv).
func (c *Comm) Allgatherv(mine []byte) ([][]byte, error) {
	return c.Allgather(mine) // the in-process transport needs no count exchange
}

// AllgatherInt64 gathers one int64 from every rank.
func (c *Comm) AllgatherInt64(v int64) ([]int64, error) {
	out := make([]int64, c.Size())
	err := c.allgatherAny(v, func(i int, s any) { out[i] = s.(int64) })
	return out, err
}

// Gather collects contributions on root; other ranks receive nil.
func (c *Comm) Gather(mine []byte, root int) ([][]byte, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("comm: Gather root %d out of range [0,%d)", root, c.Size())
	}
	var out [][]byte
	err := c.exchange(mine, c.smallCollCost, func(slots []any) {
		if c.idx != root {
			return
		}
		out = make([][]byte, len(slots))
		for i, s := range slots {
			src := s.([]byte)
			cp := make([]byte, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	return out, err
}

// GatherNoCost collects contributions on root like Gather, but charges no
// modeled cost to the virtual clocks — the telemetry path, which must not
// perturb the simulated timings it is observing. Call it right after a
// costed collective (the epoch barrier), where the clocks are already
// aligned and the zero-cost synchronization is exact.
func (c *Comm) GatherNoCost(mine []byte, root int) ([][]byte, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("comm: GatherNoCost root %d out of range [0,%d)", root, c.Size())
	}
	var out [][]byte
	err := c.exchange(mine, nil, func(slots []any) {
		if c.idx != root {
			return
		}
		out = make([][]byte, len(slots))
		for i, s := range slots {
			src := s.([]byte)
			cp := make([]byte, len(src))
			copy(cp, src)
			out[i] = cp
		}
	})
	return out, err
}

// Scatter distributes parts[i] from root to rank i. Only root's parts are
// consulted; it must have exactly Size() entries.
func (c *Comm) Scatter(parts [][]byte, root int) ([]byte, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("comm: Scatter root %d out of range [0,%d)", root, c.Size())
	}
	var send any
	if c.idx == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("comm: Scatter root has %d parts for %d ranks", len(parts), c.Size())
		}
		send = parts
	}
	var out []byte
	err := c.exchange(send, c.smallCollCost, func(slots []any) {
		all := slots[root].([][]byte)
		src := all[c.idx]
		out = make([]byte, len(src))
		copy(out, src)
	})
	return out, err
}
