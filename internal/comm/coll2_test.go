package comm

import (
	"fmt"
	"testing"
	"time"

	"ddstore/internal/cluster"
)

func TestReduce(t *testing.T) {
	run(t, 5, nil, func(c *Comm) error {
		out, err := c.Reduce([]float64{float64(c.Rank()), 2}, OpSum, 3)
		if err != nil {
			return err
		}
		if c.Rank() != 3 {
			if out != nil {
				return fmt.Errorf("non-root got a result")
			}
			return nil
		}
		if out[0] != 0+1+2+3+4 || out[1] != 10 {
			return fmt.Errorf("Reduce = %v", out)
		}
		return nil
	})
}

func TestReduceMaxAndBadRoot(t *testing.T) {
	run(t, 3, nil, func(c *Comm) error {
		if _, err := c.Reduce([]float64{1}, OpSum, 9); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		out, err := c.Reduce([]float64{float64(c.Rank() * c.Rank())}, OpMax, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 0 && out[0] != 4 {
			return fmt.Errorf("max = %v", out[0])
		}
		return nil
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	run(t, n, nil, func(c *Comm) error {
		parts := make([][]byte, n)
		for to := range parts {
			// Payload encodes (from, to) and has variable length.
			parts[to] = make([]byte, to+1)
			parts[to][0] = byte(c.Rank()*16 + to)
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for from, piece := range got {
			if len(piece) != c.Rank()+1 {
				return fmt.Errorf("piece from %d has %d bytes, want %d", from, len(piece), c.Rank()+1)
			}
			if piece[0] != byte(from*16+c.Rank()) {
				return fmt.Errorf("piece from %d = %d", from, piece[0])
			}
		}
		return nil
	})
}

func TestAlltoallValidatesParts(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		// Both ranks must fail identically *before* entering the collective,
		// otherwise one rank would block in the barrier forever.
		if _, err := c.Alltoall(make([][]byte, 5)); err == nil {
			return fmt.Errorf("wrong part count accepted")
		}
		return nil
	})
}

func TestExScan(t *testing.T) {
	run(t, 5, nil, func(c *Comm) error {
		got, err := c.ExScan(int64(c.Rank() + 1)) // values 1,2,3,4,5
		if err != nil {
			return err
		}
		want := int64(0)
		for r := 0; r < c.Rank(); r++ {
			want += int64(r + 1)
		}
		if got != want {
			return fmt.Errorf("rank %d ExScan = %d, want %d", c.Rank(), got, want)
		}
		return nil
	})
}

func TestGetNBOverlapsTransfers(t *testing.T) {
	m := cluster.Perlmutter()
	w, err := NewWorld(8, 1, WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 1<<20))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		// Blocking path: k sequential gets pay the sum of transfer times.
		if err := win.LockShared(7); err != nil {
			return err
		}
		const k = 8
		blockStart := c.Clock().Now()
		for i := 0; i < k; i++ {
			dst := make([]byte, 1<<18)
			if err := win.Get(dst, 7, 0); err != nil {
				return err
			}
		}
		blocking := c.Clock().Now() - blockStart
		// Non-blocking path: k outstanding gets overlap on the wire.
		nbStart := c.Clock().Now()
		reqs := make([]*Request, 0, k)
		for i := 0; i < k; i++ {
			dst := make([]byte, 1<<18)
			req, err := win.GetNB(dst, 7, 0)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		WaitAll(reqs)
		nb := c.Clock().Now() - nbStart
		if err := win.Unlock(7); err != nil {
			return err
		}
		if nb >= blocking {
			return fmt.Errorf("non-blocking gets (%v) not faster than blocking (%v)", nb, blocking)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetNBDeliversData(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		region := make([]byte, 16)
		for i := range region {
			region[i] = byte(c.Rank()*100 + i)
		}
		win, err := c.CreateWindow(region)
		if err != nil {
			return err
		}
		target := 1 - c.Rank()
		if err := win.LockShared(target); err != nil {
			return err
		}
		dst := make([]byte, 4)
		req, err := win.GetNB(dst, target, 4)
		if err != nil {
			return err
		}
		req.Wait()
		req.Wait() // idempotent
		if err := win.Unlock(target); err != nil {
			return err
		}
		if dst[0] != byte(target*100+4) {
			return fmt.Errorf("GetNB data wrong: %v", dst)
		}
		return nil
	})
}

func TestGetNBRequiresEpoch(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if _, err := win.GetNB(make([]byte, 4), 0, 0); err == nil {
			return fmt.Errorf("GetNB outside epoch accepted")
		}
		return nil
	})
}

func TestAccumulateSumsAtomically(t *testing.T) {
	// All ranks accumulate into rank 0's region concurrently under shared
	// locks; the final values must be the exact sums (no lost updates).
	const n = 8
	const perRank = 50
	run(t, n, nil, func(c *Comm) error {
		region := make([]byte, 4*8) // 4 float64s
		win, err := c.CreateWindow(region)
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		for i := 0; i < perRank; i++ {
			if err := win.Accumulate([]float64{1, 2, 0, -1}, 0, 0); err != nil {
				return err
			}
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			total := float64(n * perRank)
			for i, want := range []float64{total, 2 * total, 0, -total} {
				got := float64frombytes(region[i*8:])
				if got != want {
					return fmt.Errorf("element %d = %v, want %v", i, got, want)
				}
			}
		}
		return nil
	})
}

func TestAccumulateBounds(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 16))
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		defer win.Unlock(0)
		if err := win.Accumulate([]float64{1, 2, 3}, 0, 0); err == nil {
			return fmt.Errorf("overflowing accumulate accepted")
		}
		return nil
	})
}

func TestFloat64Bytes(t *testing.T) {
	b := make([]byte, 8)
	for _, v := range []float64{0, 1.5, -3.25, 1e300, -1e-300} {
		putFloat64(b, v)
		if got := float64frombytes(b); got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func BenchmarkBarrier8(b *testing.B) {
	w, err := NewWorld(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	err = w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRMAGet4KB(b *testing.B) {
	w, err := NewWorld(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	err = w.Run(func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 1<<20))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return c.Barrier()
		}
		if err := win.LockShared(1); err != nil {
			return err
		}
		dst := make([]byte, 4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := win.Get(dst, 1, (i*4096)%(1<<20-4096)); err != nil {
				return err
			}
		}
		b.StopTimer()
		if err := win.Unlock(1); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllreduce1MB8Ranks(b *testing.B) {
	w, err := NewWorld(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]float32, 1<<18) // 1 MB
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	err = w.Run(func(c *Comm) error {
		local := make([]float32, len(payload))
		for i := 0; i < b.N; i++ {
			if err := c.AllreduceFloat32(local, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = time.Now
}

func TestShareFromRoot(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		var big []int64
		if c.Rank() == 2 {
			big = []int64{10, 20, 30}
		}
		got, err := c.ShareFromRoot(big, 2)
		if err != nil {
			return err
		}
		shared := got.([]int64)
		if len(shared) != 3 || shared[1] != 20 {
			return fmt.Errorf("rank %d got %v", c.Rank(), shared)
		}
		return nil
	})
}

func TestShareFromRootSameBacking(t *testing.T) {
	// The point of ShareFromRoot is zero-copy: every rank must see the
	// root's exact slice (same backing array).
	run(t, 3, nil, func(c *Comm) error {
		var data []byte
		if c.Rank() == 0 {
			data = []byte{1, 2, 3}
		}
		got, err := c.ShareFromRoot(data, 0)
		if err != nil {
			return err
		}
		shared := got.([]byte)
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			data[0] = 99 // visible to everyone: shared, not copied
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if shared[0] != 99 {
			return fmt.Errorf("rank %d got a copy, want shared backing", c.Rank())
		}
		return nil
	})
}

func TestShareFromRootBadRoot(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		if _, err := c.ShareFromRoot(1, 7); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		return nil
	})
}
