package comm

import (
	"sync"
	"time"
)

// message is one in-flight point-to-point message.
type message struct {
	from     int // world rank of sender
	tag      int
	data     []byte
	sentAt   time.Duration // sender's virtual clock at send time
	sameNode bool
}

// mailbox is one rank's inbox: an unbounded matched queue protected by a
// condition variable, so Recv can wait for a (source, tag) match that has
// not arrived yet.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	broken  bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// take removes and returns the first message matching (from, tag). A
// negative from or tag acts as a wildcard (MPI_ANY_SOURCE / MPI_ANY_TAG).
func (b *mailbox) take(from, tag int) (message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.broken {
			return message{}, ErrWorldBroken
		}
		for i, m := range b.pending {
			if (from < 0 || m.from == from) && (tag < 0 || m.tag == tag) {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				return m, nil
			}
		}
		b.cond.Wait()
	}
}

func (b *mailbox) breakBox() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// AnySource matches any sender in Recv.
const AnySource = -1

// AnyTag matches any tag in Recv.
const AnyTag = -1

// Send delivers data to the given communicator rank with a tag. The data is
// copied, so the caller may reuse the buffer immediately (MPI_Send buffered
// semantics). The sender is charged a small injection overhead; the transfer
// time is charged to the receiver on matching.
func (c *Comm) Send(to int, tag int, data []byte) error {
	world := c.group[to]
	cp := make([]byte, len(data))
	copy(cp, data)
	var sentAt time.Duration
	sameNode := true
	if m := c.world.machine; m != nil {
		c.Clock().Advance(m.IntraNodeLatency) // injection overhead
		sentAt = c.Clock().Now()
		sameNode = m.SameNode(c.rank, world)
	}
	c.world.boxes[world].put(message{
		from:     c.rank,
		tag:      tag,
		data:     cp,
		sentAt:   sentAt,
		sameNode: sameNode,
	})
	return nil
}

// Recv blocks until a message from the given communicator rank (or
// AnySource) with the given tag (or AnyTag) arrives, and returns its payload
// and the sender's communicator rank. The receiver's clock advances to the
// modeled arrival time of the message.
func (c *Comm) Recv(from int, tag int) ([]byte, int, error) {
	worldFrom := AnySource
	if from >= 0 {
		worldFrom = c.group[from]
	}
	msg, err := c.world.boxes[c.rank].take(worldFrom, tag)
	if err != nil {
		return nil, 0, err
	}
	if m := c.world.machine; m != nil {
		arrive := msg.sentAt + m.NetTransfer(int64(len(msg.data)), msg.sameNode)
		c.Clock().AdvanceTo(arrive)
	}
	// Translate the sender's world rank back to a communicator rank.
	senderIdx := -1
	for i, r := range c.group {
		if r == msg.from {
			senderIdx = i
			break
		}
	}
	return msg.data, senderIdx, nil
}

// SendRecv performs a simultaneous exchange with a partner rank — handy for
// ring algorithms and for tests.
func (c *Comm) SendRecv(partner int, tag int, data []byte) ([]byte, error) {
	if err := c.Send(partner, tag, data); err != nil {
		return nil, err
	}
	got, _, err := c.Recv(partner, tag)
	return got, err
}
