package comm

import (
	"fmt"
	"sync"
	"time"
)

// lockKind records how a Win handle currently holds a target's lock.
type lockKind int

const (
	lockNone lockKind = iota
	lockShared
	lockExclusive
)

// winShared is the group-wide state of one RMA window: every member rank's
// exposed memory region and one readers-writer lock per target. The regions
// are the ranks' actual buffers (shared address space), so a Get is a true
// zero-intermediary copy, like MPI RMA over shared memory or RDMA.
type winShared struct {
	regions [][]byte
	locks   []sync.RWMutex
	// accMu serializes Accumulate operations (MPI guarantees element-wise
	// atomicity for accumulates under shared locks).
	accMu sync.Mutex
}

// Win is one rank's handle on an RMA window (MPI_Win). Access to remote
// regions requires an access epoch: LockShared or LockExclusive on the
// target, then Get/Put, then Unlock — the same passive-target discipline
// DDStore uses (MPI_Win_lock(MPI_LOCK_SHARED) ... MPI_Get ...
// MPI_Win_unlock).
type Win struct {
	comm   *Comm
	shared *winShared
	held   []lockKind // per-target epoch state for this handle
}

// CreateWindow collectively registers region as this rank's exposed memory
// and returns the window handle (MPI_Win_create). Every rank of the
// communicator must call it; regions may have different lengths.
func (c *Comm) CreateWindow(region []byte) (*Win, error) {
	st := c.state
	st.slots[c.idx] = region
	err := st.barrier.await(func() {
		ws := &winShared{
			regions: make([][]byte, len(st.slots)),
			locks:   make([]sync.RWMutex, len(st.slots)),
		}
		for i, s := range st.slots {
			if s == nil {
				ws.regions[i] = nil
				continue
			}
			ws.regions[i] = s.([]byte)
		}
		st.wins[st.winSeq] = ws
		st.winSeq++
		if c.world.machine != nil {
			var max time.Duration
			for _, cl := range c.groupClocks() {
				if t := cl.Now(); t > max {
					max = t
				}
			}
			st.syncTo = max + c.world.machine.CollectiveLatency(c.Size())
		}
	})
	if err != nil {
		return nil, err
	}
	if c.world.machine != nil {
		c.Clock().AdvanceTo(st.syncTo)
	}
	ws := st.wins[st.winSeq-1]
	if err := st.barrier.await(nil); err != nil {
		return nil, err
	}
	return &Win{comm: c, shared: ws, held: make([]lockKind, c.Size())}, nil
}

// Size returns the length of target's exposed region.
func (w *Win) Size(target int) int {
	return len(w.shared.regions[target])
}

// LockShared opens a shared access epoch on target
// (MPI_Win_lock(MPI_LOCK_SHARED)). Multiple ranks may hold shared locks on
// the same target concurrently; it excludes exclusive holders.
func (w *Win) LockShared(target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	if w.held[target] != lockNone {
		return fmt.Errorf("comm: window lock on target %d already held", target)
	}
	w.shared.locks[target].RLock()
	w.held[target] = lockShared
	if m := w.comm.Machine(); m != nil {
		cost := time.Duration(float64(m.RMALock(w.comm.SameNode(target))) * m.JitterFactor(w.comm.RNG()))
		w.comm.Clock().Advance(cost)
	}
	return nil
}

// LockExclusive opens an exclusive access epoch on target
// (MPI_Win_lock(MPI_LOCK_EXCLUSIVE)); required for Put.
func (w *Win) LockExclusive(target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	if w.held[target] != lockNone {
		return fmt.Errorf("comm: window lock on target %d already held", target)
	}
	w.shared.locks[target].Lock()
	w.held[target] = lockExclusive
	if m := w.comm.Machine(); m != nil {
		cost := time.Duration(float64(m.RMALock(w.comm.SameNode(target))) * m.JitterFactor(w.comm.RNG()))
		w.comm.Clock().Advance(cost)
	}
	return nil
}

// Unlock closes the access epoch on target (MPI_Win_unlock). Like MPI, the
// unlock completes all outstanding operations of the epoch; our Gets are
// synchronous so only the epoch bookkeeping remains.
func (w *Win) Unlock(target int) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	switch w.held[target] {
	case lockShared:
		w.shared.locks[target].RUnlock()
	case lockExclusive:
		w.shared.locks[target].Unlock()
	default:
		return fmt.Errorf("comm: window lock on target %d not held", target)
	}
	w.held[target] = lockNone
	return nil
}

// Get copies len(dst) bytes from target's region starting at offset into dst
// (MPI_Get). The caller must hold a lock on target. The modeled transfer
// cost is charged to the caller only — the essence of one-sided
// communication: the target's CPU is not involved.
func (w *Win) Get(dst []byte, target int, offset int) error {
	if err := w.checkAccess(target, offset, len(dst), lockShared); err != nil {
		return err
	}
	copy(dst, w.shared.regions[target][offset:offset+len(dst)])
	if m := w.comm.Machine(); m != nil {
		cost := time.Duration(float64(m.RMATransfer(int64(len(dst)), w.comm.SameNode(target))) * m.JitterFactor(w.comm.RNG()))
		w.comm.Clock().Advance(cost)
	}
	return nil
}

// Put copies src into target's region at offset (MPI_Put). The caller must
// hold an exclusive lock on target.
func (w *Win) Put(src []byte, target int, offset int) error {
	if err := w.checkAccess(target, offset, len(src), lockExclusive); err != nil {
		return err
	}
	copy(w.shared.regions[target][offset:offset+len(src)], src)
	if m := w.comm.Machine(); m != nil {
		cost := time.Duration(float64(m.RMATransfer(int64(len(src)), w.comm.SameNode(target))) * m.JitterFactor(w.comm.RNG()))
		w.comm.Clock().Advance(cost)
	}
	return nil
}

// Fence synchronizes all ranks of the window's communicator
// (MPI_Win_fence): a barrier separating RMA epochs.
func (w *Win) Fence() error {
	return w.comm.Barrier()
}

// Flush is a no-op completion point (MPI_Win_flush): our Get/Put are
// synchronous, so all operations are already complete. It exists so calling
// code reads like the MPI original.
func (w *Win) Flush(target int) error {
	return w.checkTarget(target)
}

func (w *Win) checkTarget(target int) error {
	if target < 0 || target >= len(w.shared.regions) {
		return fmt.Errorf("comm: window target %d out of range [0,%d)", target, len(w.shared.regions))
	}
	return nil
}

// checkAccess validates the epoch and bounds for an RMA operation. need is
// the minimum lock strength: lockShared allows either kind, lockExclusive
// requires exclusive.
func (w *Win) checkAccess(target, offset, length int, need lockKind) error {
	if err := w.checkTarget(target); err != nil {
		return err
	}
	held := w.held[target]
	if held == lockNone {
		return fmt.Errorf("comm: RMA access to target %d outside an access epoch (call LockShared/LockExclusive first)", target)
	}
	if need == lockExclusive && held != lockExclusive {
		return fmt.Errorf("comm: Put to target %d requires an exclusive lock", target)
	}
	if offset < 0 || length < 0 || offset+length > len(w.shared.regions[target]) {
		return fmt.Errorf("comm: RMA access [%d,%d) out of bounds of target %d's %d-byte region",
			offset, offset+length, target, len(w.shared.regions[target]))
	}
	return nil
}
