// Package comm implements an MPI-like message-passing runtime for DDStore.
//
// A World of N ranks runs as N goroutines inside one process. The package
// provides the MPI features DDStore depends on: communicators with
// collectives (Barrier, Bcast, Allreduce, Allgather/Allgatherv, Gather,
// Scatter), communicator splitting (MPI_Comm_split, used to form the width-w
// replica groups), two-sided Send/Recv, and one-sided RMA windows with
// passive-target synchronization (MPI_Win_create / MPI_Win_lock(SHARED) /
// MPI_Get / MPI_Win_unlock / MPI_Win_fence).
//
// When the World is created with a cluster.Machine, every operation also
// charges its modeled cost to per-rank virtual clocks (see internal/vtime),
// and synchronizing operations align the clocks of the participants. This is
// how the at-scale experiments reproduce the paper's timing behaviour while
// executing the real DDStore code. Without a machine, the runtime is purely
// functional (and is still useful: the unit tests and the TCP transport use
// it that way).
package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/vtime"
)

// ErrWorldBroken is returned by ranks that were released from a blocked
// operation because another rank panicked or failed.
var ErrWorldBroken = errors.New("comm: world broken by another rank's failure")

// World is a set of ranks executing together.
type World struct {
	size    int
	machine *cluster.Machine
	clocks  []*vtime.Clock
	rngs    []*vtime.RNG

	mu     sync.Mutex
	groups map[string]*groupState // collective state per communicator
	boxes  []*mailbox             // per-rank P2P inbox
	broken bool
	nextID int // window id allocator
}

// Option configures a World.
type Option func(*World)

// WithMachine attaches a machine model: operations charge modeled costs to
// the per-rank virtual clocks.
func WithMachine(m *cluster.Machine) Option {
	return func(w *World) { w.machine = m }
}

// NewWorld creates a world of size ranks. seed drives all per-rank RNGs.
func NewWorld(size int, seed uint64, opts ...Option) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("comm: world size %d must be positive", size)
	}
	w := &World{
		size:   size,
		groups: make(map[string]*groupState),
		boxes:  make([]*mailbox, size),
		clocks: make([]*vtime.Clock, size),
		rngs:   make([]*vtime.RNG, size),
	}
	root := vtime.NewRNG(seed)
	for i := 0; i < size; i++ {
		w.boxes[i] = newMailbox()
		w.clocks[i] = &vtime.Clock{}
		w.rngs[i] = root.Split(uint64(i))
	}
	for _, o := range opts {
		o(w)
	}
	return w, nil
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Machine returns the attached machine model, or nil.
func (w *World) Machine() *cluster.Machine { return w.machine }

// Clocks returns the per-rank virtual clocks (world rank order).
func (w *World) Clocks() []*vtime.Clock { return w.clocks }

// MaxTime returns the latest virtual time across all ranks — the modeled
// end-to-end wall time of whatever the world has executed so far.
func (w *World) MaxTime() time.Duration { return vtime.MaxClock(w.clocks) }

// Run executes fn concurrently on every rank and waits for completion. It
// returns the first error (by rank order) if any rank failed. A panic in one
// rank is converted to an error and breaks the world so that the other ranks
// do not deadlock in collectives.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v", rank, p)
					w.breakWorld()
				}
			}()
			errs[rank] = fn(w.commFor(rank))
			if errs[rank] != nil && !errors.Is(errs[rank], ErrWorldBroken) {
				w.breakWorld()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, ErrWorldBroken) {
			return err
		}
	}
	// Only broken-world errors (shouldn't happen without a root cause, but
	// report rather than swallow).
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// breakWorld releases every blocked rank with ErrWorldBroken.
func (w *World) breakWorld() {
	w.mu.Lock()
	w.broken = true
	groups := make([]*groupState, 0, len(w.groups))
	for _, g := range w.groups {
		groups = append(groups, g)
	}
	w.mu.Unlock()
	for _, g := range groups {
		g.barrier.breakBarrier()
	}
	for _, b := range w.boxes {
		b.breakBox()
	}
}

// commFor builds the world communicator handle for one rank.
func (w *World) commFor(rank int) *Comm {
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	return &Comm{
		world: w,
		group: group,
		rank:  rank,
		idx:   rank,
		state: w.groupStateFor(group),
	}
}

// groupStateFor returns (creating if needed) the shared collective state for
// the communicator whose members are the given world ranks.
func (w *World) groupStateFor(group []int) *groupState {
	key := groupKey(group)
	w.mu.Lock()
	defer w.mu.Unlock()
	g, ok := w.groups[key]
	if !ok {
		g = newGroupState(len(group))
		w.groups[key] = g
	}
	return g
}

func groupKey(group []int) string {
	// Group membership uniquely identifies a communicator's shared state.
	// Repeated splits with identical membership safely share the state:
	// barriers are reusable and collectives are two-phase.
	b := make([]byte, 0, len(group)*3)
	for _, r := range group {
		b = append(b, byte(r), byte(r>>8), byte(r>>16))
	}
	return string(b)
}

// Comm is one rank's handle on a communicator (a subset of world ranks).
type Comm struct {
	world *World
	group []int // member world ranks, sorted by communicator rank
	rank  int   // this rank's world rank
	idx   int   // this rank's rank within the communicator
	state *groupState
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.idx }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.rank }

// WorldRankOf translates a communicator rank into a world rank.
func (c *Comm) WorldRankOf(rank int) int { return c.group[rank] }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

// Machine returns the attached machine model, or nil.
func (c *Comm) Machine() *cluster.Machine { return c.world.machine }

// Clock returns this rank's virtual clock.
func (c *Comm) Clock() *vtime.Clock { return c.world.clocks[c.rank] }

// RNG returns this rank's deterministic random generator.
func (c *Comm) RNG() *vtime.RNG { return c.world.rngs[c.rank] }

// SameNode reports whether this rank and the given communicator rank are
// placed on the same node of the modeled machine. Without a machine model
// all ranks count as one node.
func (c *Comm) SameNode(rank int) bool {
	if c.world.machine == nil {
		return true
	}
	return c.world.machine.SameNode(c.rank, c.group[rank])
}

// groupClocks returns the virtual clocks of this communicator's members.
func (c *Comm) groupClocks() []*vtime.Clock {
	clocks := make([]*vtime.Clock, len(c.group))
	for i, r := range c.group {
		clocks[i] = c.world.clocks[r]
	}
	return clocks
}

// Split partitions the communicator like MPI_Comm_split: ranks passing the
// same color form a new communicator, ordered by (key, old rank). Every rank
// of c must call Split. A negative color returns nil (MPI_UNDEFINED): the
// caller is in no new communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type ck struct{ Color, Key, Idx int }
	all := make([]ck, c.Size())
	if err := c.allgatherAny(ck{color, key, c.idx}, func(i int, v any) { all[i] = v.(ck) }); err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	var members []ck
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Idx < members[j].Idx
	})
	group := make([]int, len(members))
	newIdx := -1
	for i, m := range members {
		group[i] = c.group[m.Idx]
		if m.Idx == c.idx {
			newIdx = i
		}
	}
	return &Comm{
		world: c.world,
		group: group,
		rank:  c.rank,
		idx:   newIdx,
		state: c.world.groupStateFor(group),
	}, nil
}

// groupState holds the shared machinery for one communicator: a reusable
// sense-reversing barrier and a slot array for collective exchanges.
type groupState struct {
	barrier *barrier
	mu      sync.Mutex
	slots   []any
	syncTo  time.Duration // target time computed by the last arriver
	winSeq  int           // per-group window registration sequence
	wins    map[int]*winShared
}

func newGroupState(n int) *groupState {
	return &groupState{
		barrier: newBarrier(n),
		slots:   make([]any, n),
		wins:    make(map[int]*winShared),
	}
}

// barrier is a reusable generation-counting barrier that can be broken to
// release all waiters with an error.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants arrive. onLast, if non-nil, runs
// under the barrier lock in the last arriving rank, before the release; it
// is the hook used to compute collective timing exactly once.
func (b *barrier) await(onLast func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return ErrWorldBroken
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		if onLast != nil {
			onLast()
		}
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		return ErrWorldBroken
	}
	return nil
}

func (b *barrier) breakBarrier() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
