package comm

import (
	"fmt"
	"math"
	"time"
)

// Reduce combines in element-wise across ranks with op; only root receives
// the result (others get nil) — MPI_Reduce.
func (c *Comm) Reduce(in []float64, op ReduceOp, root int) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("comm: Reduce root %d out of range [0,%d)", root, c.Size())
	}
	var out []float64
	err := c.exchange(in, func() time.Duration {
		return c.world.machine.Allreduce(int64(len(in)*8), c.Size()) / 2 // one direction of the ring
	}, func(slots []any) {
		if c.idx != root {
			return
		}
		out = make([]float64, len(in))
		first := true
		for _, s := range slots {
			vec := s.([]float64)
			if len(vec) != len(in) {
				panic(fmt.Sprintf("comm: Reduce length mismatch: %d vs %d", len(vec), len(in)))
			}
			if first {
				copy(out, vec)
				first = false
				continue
			}
			for i, v := range vec {
				switch op {
				case OpSum:
					out[i] += v
				case OpMax:
					if v > out[i] {
						out[i] = v
					}
				case OpMin:
					if v < out[i] {
						out[i] = v
					}
				}
			}
		}
	})
	return out, err
}

// Alltoall sends parts[i] to rank i and returns the pieces received from
// every rank, in rank order (MPI_Alltoall with variable sizes). parts must
// have exactly Size() entries.
func (c *Comm) Alltoall(parts [][]byte) ([][]byte, error) {
	if len(parts) != c.Size() {
		return nil, fmt.Errorf("comm: Alltoall needs %d parts, got %d", c.Size(), len(parts))
	}
	var out [][]byte
	err := c.exchange(parts, func() time.Duration {
		m := c.world.machine
		var vol int64
		for _, p := range parts {
			vol += int64(len(p))
		}
		// Each rank both sends and receives ~vol bytes; pairwise exchange
		// rounds add log2(n) latency steps.
		return m.CollectiveLatency(c.Size()) + m.NetTransfer(2*vol, c.Size() <= m.GPUsPerNode)
	}, func(slots []any) {
		out = make([][]byte, len(slots))
		for sender, s := range slots {
			theirs := s.([][]byte)
			if len(theirs) != len(slots) {
				panic(fmt.Sprintf("comm: Alltoall rank %d contributed %d parts for %d ranks",
					sender, len(theirs), len(slots)))
			}
			piece := theirs[c.idx]
			cp := make([]byte, len(piece))
			copy(cp, piece)
			out[sender] = cp
		}
	})
	return out, err
}

// ExScan returns the exclusive prefix sum of v across ranks: rank r gets
// sum of ranks [0, r)'s values (rank 0 gets 0) — MPI_Exscan with MPI_SUM.
// Used for computing global offsets of variable-length contributions.
func (c *Comm) ExScan(v int64) (int64, error) {
	all, err := c.AllgatherInt64(v)
	if err != nil {
		return 0, err
	}
	var sum int64
	for r := 0; r < c.idx; r++ {
		sum += all[r]
	}
	return sum, nil
}

// Request is a handle on a non-blocking RMA operation. The in-process
// transport completes data movement eagerly; Wait charges the modeled
// completion time, which lets callers overlap several Gets and pay max
// rather than sum of latencies — the batching pattern MPI_Rget enables.
type Request struct {
	win      *Win
	complete time.Duration // modeled completion time
	done     bool
}

// Wait blocks until the operation completes, advancing the caller's clock
// to the modeled completion time.
func (r *Request) Wait() {
	if r.done {
		return
	}
	r.done = true
	if r.win.comm.Machine() != nil {
		r.win.comm.Clock().AdvanceTo(r.complete)
	}
}

// GetNB starts a non-blocking Get (MPI_Rget). The data lands in dst
// immediately (in-process transport); the modeled completion time is paid
// at Wait. Multiple outstanding GetNBs to one or more targets overlap their
// transfers: issuing k gets and waiting costs max, not sum, of their
// modeled times (plus per-op issue overhead).
func (w *Win) GetNB(dst []byte, target int, offset int) (*Request, error) {
	if err := w.checkAccess(target, offset, len(dst), lockShared); err != nil {
		return nil, err
	}
	copy(dst, w.shared.regions[target][offset:offset+len(dst)])
	req := &Request{win: w}
	if m := w.comm.Machine(); m != nil {
		// Issue overhead is serial on the caller; the wire time overlaps.
		issue := m.RMAOverhead / 4
		w.comm.Clock().Advance(issue)
		wire := time.Duration(float64(m.RMATransfer(int64(len(dst)), w.comm.SameNode(target))) *
			m.JitterFactor(w.comm.RNG()))
		req.complete = w.comm.Clock().Now() + wire
	}
	return req, nil
}

// WaitAll completes a set of requests.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// Accumulate atomically adds the float64s in src element-wise into target's
// region at byte offset (MPI_Accumulate with MPI_SUM). It requires only a
// shared lock, like MPI: accumulates are atomic per element. The target
// region bytes are interpreted as little-endian float64s.
func (w *Win) Accumulate(src []float64, target int, offset int) error {
	n := len(src) * 8
	if err := w.checkAccess(target, offset, n, lockShared); err != nil {
		return err
	}
	// Serialize concurrent accumulates to the same target with the
	// window's accumulate lock (MPI guarantees element-wise atomicity; a
	// short critical section is the simplest correct model).
	w.shared.accMu.Lock()
	region := w.shared.regions[target][offset : offset+n]
	for i, v := range src {
		cur := float64frombytes(region[i*8:])
		putFloat64(region[i*8:], cur+v)
	}
	w.shared.accMu.Unlock()
	if m := w.comm.Machine(); m != nil {
		cost := time.Duration(float64(m.RMATransfer(int64(n), w.comm.SameNode(target))) *
			m.JitterFactor(w.comm.RNG()))
		w.comm.Clock().Advance(cost)
	}
	return nil
}

func float64frombytes(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

func putFloat64(b []byte, f float64) {
	u := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// ShareFromRoot hands every rank of the communicator a reference to root's
// value without copying — the in-process analogue of putting shared,
// immutable metadata in an MPI-3 shared-memory window
// (MPI_Win_allocate_shared) instead of replicating it per process. The
// value must be treated as immutable by all ranks.
func (c *Comm) ShareFromRoot(v any, root int) (any, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("comm: ShareFromRoot root %d out of range [0,%d)", root, c.Size())
	}
	var send any
	if c.idx == root {
		send = v
	}
	var out any
	err := c.exchange(send, c.smallCollCost, func(slots []any) {
		out = slots[root]
	})
	return out, err
}
