package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ddstore/internal/cluster"
)

func TestWindowGetBasic(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		region := bytes.Repeat([]byte{byte(c.Rank())}, 64)
		win, err := c.CreateWindow(region)
		if err != nil {
			return err
		}
		for target := 0; target < c.Size(); target++ {
			if win.Size(target) != 64 {
				return fmt.Errorf("target %d size = %d", target, win.Size(target))
			}
			if err := win.LockShared(target); err != nil {
				return err
			}
			dst := make([]byte, 16)
			if err := win.Get(dst, target, 8); err != nil {
				return err
			}
			if err := win.Unlock(target); err != nil {
				return err
			}
			for _, b := range dst {
				if b != byte(target) {
					return fmt.Errorf("got %d from target %d", b, target)
				}
			}
		}
		return win.Fence()
	})
}

func TestWindowVariableRegionSizes(t *testing.T) {
	run(t, 3, nil, func(c *Comm) error {
		region := make([]byte, (c.Rank()+1)*10)
		for i := range region {
			region[i] = byte(c.Rank()*50 + i)
		}
		win, err := c.CreateWindow(region)
		if err != nil {
			return err
		}
		for target := 0; target < 3; target++ {
			want := (target + 1) * 10
			if win.Size(target) != want {
				return fmt.Errorf("target %d size %d, want %d", target, win.Size(target), want)
			}
		}
		if err := win.LockShared(2); err != nil {
			return err
		}
		dst := make([]byte, 30)
		if err := win.Get(dst, 2, 0); err != nil {
			return err
		}
		if dst[29] != byte(2*50+29) {
			return fmt.Errorf("last byte = %d", dst[29])
		}
		return win.Unlock(2)
	})
}

func TestWindowGetRequiresEpoch(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if err := win.Get(make([]byte, 4), 0, 0); err == nil {
			return errors.New("Get outside an access epoch succeeded")
		}
		return win.Fence()
	})
}

func TestWindowPutRequiresExclusive(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		target := 1 - c.Rank()
		if err := win.LockShared(target); err != nil {
			return err
		}
		if err := win.Put([]byte{1}, target, 0); err == nil {
			return errors.New("Put under a shared lock succeeded")
		}
		return win.Unlock(target)
	})
}

func TestWindowPutThenGet(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.LockExclusive(1); err != nil {
				return err
			}
			if err := win.Put([]byte{42, 43}, 1, 2); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := win.LockShared(1); err != nil {
				return err
			}
			dst := make([]byte, 2)
			if err := win.Get(dst, 1, 2); err != nil {
				return err
			}
			if err := win.Unlock(1); err != nil {
				return err
			}
			if dst[0] != 42 || dst[1] != 43 {
				return fmt.Errorf("put not visible: %v", dst)
			}
		}
		return nil
	})
}

func TestWindowBoundsChecking(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		defer win.Unlock(0)
		if err := win.Get(make([]byte, 4), 0, 6); err == nil {
			return errors.New("out-of-bounds Get succeeded")
		}
		if err := win.Get(make([]byte, 4), 0, -1); err == nil {
			return errors.New("negative-offset Get succeeded")
		}
		if err := win.Get(make([]byte, 4), 9, 0); err == nil {
			return errors.New("bad-target Get succeeded")
		}
		return nil
	})
}

func TestWindowDoubleLockRejected(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		if err := win.LockShared(0); err == nil {
			return errors.New("double lock succeeded")
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		if err := win.Unlock(0); err == nil {
			return errors.New("double unlock succeeded")
		}
		return nil
	})
}

func TestWindowConcurrentSharedReaders(t *testing.T) {
	// All ranks read the same target under shared locks simultaneously —
	// the access pattern DDStore's batch loader generates.
	const n = 8
	run(t, n, nil, func(c *Comm) error {
		region := bytes.Repeat([]byte{7}, 1024)
		win, err := c.CreateWindow(region)
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		for i := 0; i < 100; i++ {
			dst := make([]byte, 32)
			if err := win.Get(dst, 0, (i*7)%990); err != nil {
				return err
			}
			if dst[0] != 7 {
				return fmt.Errorf("corrupt read %d", dst[0])
			}
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		return win.Fence()
	})
}

func TestWindowExclusiveBlocksReaders(t *testing.T) {
	// A writer holding the exclusive lock must block readers until done; the
	// readers must then observe the fully-written state (no torn reads).
	run(t, 4, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 128))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.LockExclusive(0); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil { // let readers queue up
				return err
			}
			full := bytes.Repeat([]byte{5}, 128)
			if err := win.Put(full, 0, 0); err != nil {
				return err
			}
			return win.Unlock(0)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		dst := make([]byte, 128)
		if err := win.Get(dst, 0, 0); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		for _, b := range dst {
			if b != 5 {
				return fmt.Errorf("torn read: %d", b)
			}
		}
		return nil
	})
}

func TestWindowFlush(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 8))
		if err != nil {
			return err
		}
		if err := win.Flush(0); err != nil {
			return err
		}
		if err := win.Flush(5); err == nil {
			return errors.New("Flush of bad target succeeded")
		}
		return nil
	})
}

func TestMultipleWindows(t *testing.T) {
	run(t, 3, nil, func(c *Comm) error {
		w1, err := c.CreateWindow([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		w2, err := c.CreateWindow([]byte{byte(c.Rank() + 100)})
		if err != nil {
			return err
		}
		dst := make([]byte, 1)
		if err := w1.LockShared(1); err != nil {
			return err
		}
		if err := w1.Get(dst, 1, 0); err != nil {
			return err
		}
		if err := w1.Unlock(1); err != nil {
			return err
		}
		if dst[0] != 1 {
			return fmt.Errorf("w1 read %d", dst[0])
		}
		if err := w2.LockShared(2); err != nil {
			return err
		}
		if err := w2.Get(dst, 2, 0); err != nil {
			return err
		}
		if err := w2.Unlock(2); err != nil {
			return err
		}
		if dst[0] != 102 {
			return fmt.Errorf("w2 read %d", dst[0])
		}
		return nil
	})
}

func TestWindowOnSubcommunicator(t *testing.T) {
	// Windows created on a width-w replica group must be scoped to the
	// group: target indices are group ranks.
	run(t, 8, nil, func(c *Comm) error {
		sub, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		win, err := sub.CreateWindow([]byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		// Group rank 3 of each group is world rank color*4+3.
		if err := win.LockShared(3); err != nil {
			return err
		}
		dst := make([]byte, 1)
		if err := win.Get(dst, 3, 0); err != nil {
			return err
		}
		if err := win.Unlock(3); err != nil {
			return err
		}
		if want := byte((c.Rank()/4)*4 + 3); dst[0] != want {
			return fmt.Errorf("cross-group leak: got %d want %d", dst[0], want)
		}
		return nil
	})
}

func TestRMAChargesCallerOnly(t *testing.T) {
	m := cluster.Perlmutter()
	w, err := NewWorld(8, 1, WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	var targetAfter time.Duration
	var mu sync.Mutex
	err = w.Run(func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 4096))
		if err != nil {
			return err
		}
		base := c.Clock().Now()
		if err := c.Barrier(); err != nil {
			return err
		}
		base = c.Clock().Now()
		if c.Rank() == 0 {
			// Rank 0 fetches from rank 7 (different node on Perlmutter).
			if err := win.LockShared(7); err != nil {
				return err
			}
			dst := make([]byte, 4096)
			if err := win.Get(dst, 7, 0); err != nil {
				return err
			}
			if err := win.Unlock(7); err != nil {
				return err
			}
			charged := c.Clock().Now() - base
			want := m.RMALock(false) + m.RMATransfer(4096, false)
			if charged < want {
				return fmt.Errorf("caller charged %v, want >= %v", charged, want)
			}
		}
		if c.Rank() == 7 {
			mu.Lock()
			targetAfter = c.Clock().Now() - base
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if targetAfter != 0 {
		t.Fatalf("one-sided Get charged the target %v", targetAfter)
	}
}

func TestRMAIntraNodeCheaperThanInter(t *testing.T) {
	m := cluster.Perlmutter() // 4 GPUs/node: ranks 0-3 node 0, 4-7 node 1
	w, err := NewWorld(8, 1, WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		win, err := c.CreateWindow(make([]byte, 1024))
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		fetch := func(target int) (time.Duration, error) {
			before := c.Clock().Now()
			if err := win.LockShared(target); err != nil {
				return 0, err
			}
			dst := make([]byte, 1024)
			if err := win.Get(dst, target, 0); err != nil {
				return 0, err
			}
			if err := win.Unlock(target); err != nil {
				return 0, err
			}
			return c.Clock().Now() - before, nil
		}
		intra, err := fetch(1)
		if err != nil {
			return err
		}
		inter, err := fetch(7)
		if err != nil {
			return err
		}
		if intra >= inter {
			return fmt.Errorf("intra-node fetch (%v) not cheaper than inter-node (%v)", intra, inter)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
