package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"ddstore/internal/cluster"
)

// run executes fn over a fresh world of n ranks and fails the test on error.
func run(t *testing.T, n int, opts []Option, fn func(c *Comm) error) {
	t.Helper()
	w, err := NewWorld(n, 42, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

var worldSizes = []int{1, 2, 3, 4, 7, 16}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewWorld(n, 1); err == nil {
			t.Errorf("NewWorld(%d) succeeded", n)
		}
	}
}

func TestRankAndSize(t *testing.T) {
	for _, n := range worldSizes {
		var seen atomic.Int64
		run(t, n, nil, func(c *Comm) error {
			if c.Size() != n {
				return fmt.Errorf("Size = %d, want %d", c.Size(), n)
			}
			if c.Rank() < 0 || c.Rank() >= n {
				return fmt.Errorf("Rank %d out of range", c.Rank())
			}
			if c.WorldRank() != c.Rank() {
				return fmt.Errorf("world comm rank mismatch")
			}
			seen.Add(1 << uint(c.Rank()))
			return nil
		})
		if seen.Load() != (1<<uint(n))-1 {
			t.Fatalf("n=%d: not every rank ran: bitmask %b", n, seen.Load())
		}
	}
}

func TestBarrier(t *testing.T) {
	// Ensure no rank exits the barrier before every rank has entered it.
	for _, n := range worldSizes {
		var entered atomic.Int32
		run(t, n, nil, func(c *Comm) error {
			entered.Add(1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := entered.Load(); got != int32(n) {
				return fmt.Errorf("rank %d passed barrier with only %d/%d entered", c.Rank(), got, n)
			}
			return nil
		})
	}
}

func TestBarrierReusable(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root += max(1, n-1) {
			root := root
			run(t, n, nil, func(c *Comm) error {
				buf := make([]byte, 16)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = byte(i + 100)
					}
				}
				if err := c.Bcast(buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i+100) {
						return fmt.Errorf("rank %d byte %d = %d", c.Rank(), i, buf[i])
					}
				}
				return nil
			})
		}
	}
}

func TestBcastBadRoot(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		err := c.Bcast(nil, 5)
		if err == nil {
			return errors.New("Bcast with bad root succeeded")
		}
		return nil // both ranks must agree not to enter the collective
	})
}

func TestBcastInt64(t *testing.T) {
	run(t, 5, nil, func(c *Comm) error {
		v := int64(0)
		if c.Rank() == 2 {
			v = 777
		}
		got, err := c.BcastInt64(v, 2)
		if err != nil {
			return err
		}
		if got != 777 {
			return fmt.Errorf("rank %d got %d", c.Rank(), got)
		}
		return nil
	})
}

func TestAllreduceSum(t *testing.T) {
	for _, n := range worldSizes {
		run(t, n, nil, func(c *Comm) error {
			in := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
			out, err := c.Allreduce(in, OpSum)
			if err != nil {
				return err
			}
			var wantSum, wantSq float64
			for r := 0; r < n; r++ {
				wantSum += float64(r)
				wantSq += float64(r * r)
			}
			if out[0] != wantSum || out[1] != float64(n) || out[2] != wantSq {
				return fmt.Errorf("rank %d: Allreduce = %v", c.Rank(), out)
			}
			return nil
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	run(t, 6, nil, func(c *Comm) error {
		in := []float64{float64(c.Rank())}
		mx, err := c.Allreduce(in, OpMax)
		if err != nil {
			return err
		}
		mn, err := c.Allreduce(in, OpMin)
		if err != nil {
			return err
		}
		if mx[0] != 5 || mn[0] != 0 {
			return fmt.Errorf("max=%v min=%v", mx[0], mn[0])
		}
		return nil
	})
}

func TestAllreduceFloat32InPlace(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		grad := []float32{float32(c.Rank() + 1), 2}
		if err := c.AllreduceFloat32(grad, OpSum); err != nil {
			return err
		}
		if grad[0] != 1+2+3+4 || grad[1] != 8 {
			return fmt.Errorf("rank %d: grad = %v", c.Rank(), grad)
		}
		return nil
	})
}

func TestAllreduceInt64(t *testing.T) {
	run(t, 3, nil, func(c *Comm) error {
		got, err := c.AllreduceInt64(int64(c.Rank()+1), OpSum)
		if err != nil {
			return err
		}
		if got != 6 {
			return fmt.Errorf("got %d", got)
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	for _, n := range worldSizes {
		run(t, n, nil, func(c *Comm) error {
			mine := []byte{byte(c.Rank()), byte(c.Rank() + 1)}
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			if len(all) != n {
				return fmt.Errorf("got %d pieces", len(all))
			}
			for r, piece := range all {
				if !bytes.Equal(piece, []byte{byte(r), byte(r + 1)}) {
					return fmt.Errorf("piece %d = %v", r, piece)
				}
			}
			return nil
		})
	}
}

func TestAllgathervVariableLengths(t *testing.T) {
	run(t, 5, nil, func(c *Comm) error {
		mine := bytes.Repeat([]byte{byte(c.Rank())}, c.Rank()) // rank r sends r bytes
		all, err := c.Allgatherv(mine)
		if err != nil {
			return err
		}
		for r, piece := range all {
			if len(piece) != r {
				return fmt.Errorf("piece %d has %d bytes", r, len(piece))
			}
			for _, b := range piece {
				if b != byte(r) {
					return fmt.Errorf("piece %d contains %d", r, b)
				}
			}
		}
		return nil
	})
}

func TestAllgatherResultIsolated(t *testing.T) {
	// Mutating the gathered result must not corrupt other ranks' data.
	run(t, 3, nil, func(c *Comm) error {
		mine := []byte{byte(c.Rank())}
		all, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		all[0][0] = 99
		if err := c.Barrier(); err != nil {
			return err
		}
		all2, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		if all2[0][0] != 0 {
			return fmt.Errorf("gather result aliased sender buffer: %d", all2[0][0])
		}
		return nil
	})
}

func TestAllgatherInt64(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		vals, err := c.AllgatherInt64(int64(c.Rank() * 10))
		if err != nil {
			return err
		}
		for r, v := range vals {
			if v != int64(r*10) {
				return fmt.Errorf("vals[%d] = %d", r, v)
			}
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		out, err := c.Gather([]byte{byte(c.Rank())}, 2)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if out != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for r, piece := range out {
			if len(piece) != 1 || piece[0] != byte(r) {
				return fmt.Errorf("piece %d = %v", r, piece)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			parts = [][]byte{{10}, {11}, {12}, {13}}
		}
		got, err := c.Scatter(parts, 1)
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != byte(10+c.Rank()) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestSplitReplicaGroups(t *testing.T) {
	// The DDStore width pattern: N=8, w=4 => 2 groups of 4.
	const n, w = 8, 4
	run(t, n, nil, func(c *Comm) error {
		color := c.Rank() / w
		sub, err := c.Split(color, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != w {
			return fmt.Errorf("group size = %d", sub.Size())
		}
		if want := c.Rank() % w; sub.Rank() != want {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		if sub.WorldRankOf(0) != color*w {
			return fmt.Errorf("group leader world rank = %d", sub.WorldRankOf(0))
		}
		// Group-local collectives work and stay group-local.
		sum, err := sub.Allreduce([]float64{float64(c.Rank())}, OpSum)
		if err != nil {
			return err
		}
		var want float64
		for r := color * w; r < (color+1)*w; r++ {
			want += float64(r)
		}
		if sum[0] != want {
			return fmt.Errorf("group sum = %v, want %v", sum[0], want)
		}
		return nil
	})
}

func TestSplitKeyOrdersRanks(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		// Reverse the order with the key.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		if want := 3 - c.Rank(); sub.Rank() != want {
			return fmt.Errorf("sub rank = %d, want %d", sub.Rank(), want)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	run(t, 4, nil, func(c *Comm) error {
		color := 0
		if c.Rank() >= 2 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() >= 2 {
			if sub != nil {
				return fmt.Errorf("undefined color produced a communicator")
			}
			return nil
		}
		if sub.Size() != 2 {
			return fmt.Errorf("group size = %d", sub.Size())
		}
		return nil
	})
}

func TestNestedSplit(t *testing.T) {
	run(t, 8, nil, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank())
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("nested group size = %d", quarter.Size())
		}
		sum, err := quarter.Allreduce([]float64{1}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 2 {
			return fmt.Errorf("nested group sum = %v", sum[0])
		}
		return nil
	})
}

func TestSendRecv(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("hello")); err != nil {
				return err
			}
			data, from, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if string(data) != "world" || from != 1 {
				return fmt.Errorf("got %q from %d", data, from)
			}
			return nil
		}
		data, from, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" || from != 0 {
			return fmt.Errorf("got %q from %d", data, from)
		}
		return c.Send(0, 8, []byte("world"))
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	run(t, 3, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 2; i++ {
				data, _, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				if len(data) != 1 {
					return fmt.Errorf("bad payload %v", data)
				}
			}
			return nil
		}
		return c.Send(0, c.Rank()*100, []byte{byte(c.Rank())})
	})
}

func TestRecvTagMatching(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tag 2 first, then tag 1; receiver asks for tag 1 first.
			if err := c.Send(1, 2, []byte{2}); err != nil {
				return err
			}
			return c.Send(1, 1, []byte{1})
		}
		d1, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		d2, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if d1[0] != 1 || d2[0] != 2 {
			return fmt.Errorf("tag matching broken: %v %v", d1, d2)
		}
		return nil
	})
}

func TestSendBufferReuse(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the in-flight message
			return nil
		}
		data, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if data[0] == 99 {
			return errors.New("message aliased the sender's buffer")
		}
		return nil
	})
}

func TestSendRecvExchange(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		partner := 1 - c.Rank()
		got, err := c.SendRecv(partner, 3, []byte{byte(c.Rank())})
		if err != nil {
			return err
		}
		if got[0] != byte(partner) {
			return fmt.Errorf("exchange got %v", got)
		}
		return nil
	})
}

func TestRunPropagatesError(t *testing.T) {
	w, err := NewWorld(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		return c.Barrier() // would deadlock if the world were not broken
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
}

func TestRunRecoversPanicsWithoutDeadlock(t *testing.T) {
	w, err := NewWorld(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) error {
			if c.Rank() == 2 {
				panic("kaboom")
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			_, _, err := c.Recv(2, 0)
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil after a rank panic")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked after a rank panic")
	}
}

func TestVirtualClockBarrierSync(t *testing.T) {
	w, err := NewWorld(3, 1, WithMachine(cluster.Perlmutter()))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		// Rank 2 is the straggler.
		c.Clock().Advance(time.Duration(c.Rank()) * 10 * time.Millisecond)
		if err := c.Barrier(); err != nil {
			return err
		}
		if got := c.Clock().Now(); got < 20*time.Millisecond {
			return fmt.Errorf("rank %d clock %v did not wait for straggler", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() < 20*time.Millisecond {
		t.Fatalf("world MaxTime = %v", w.MaxTime())
	}
}

func TestVirtualClockAllreduceCost(t *testing.T) {
	m := cluster.Summit()
	w, err := NewWorld(4, 1, WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]float64, 1<<16)
	err = w.Run(func(c *Comm) error {
		before := c.Clock().Now()
		if _, err := c.Allreduce(payload, OpSum); err != nil {
			return err
		}
		cost := c.Clock().Now() - before
		want := m.Allreduce(int64(len(payload)*8), 4)
		if cost < want {
			return fmt.Errorf("allreduce charged %v, want >= %v", cost, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockP2PTransferTime(t *testing.T) {
	m := cluster.Summit() // 6 GPUs per node: ranks 0 and 1 share a node
	w, err := NewWorld(8, 1, WithMachine(m))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		const size = 1 << 20
		switch c.Rank() {
		case 0:
			return c.Send(7, 0, make([]byte, size)) // inter-node (rank 7 is node 1)
		case 7:
			before := c.Clock().Now()
			_, _, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			elapsed := c.Clock().Now() - before
			if want := m.NetTransfer(size, false); elapsed < want {
				return fmt.Errorf("recv advanced %v, want >= %v", elapsed, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicClocks(t *testing.T) {
	runOnce := func() time.Duration {
		w, err := NewWorld(6, 9, WithMachine(cluster.Perlmutter()))
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error {
			for i := 0; i < 5; i++ {
				c.Clock().Advance(c.Machine().FSRead(4096, 6, true, c.RNG()))
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSingleRankWorldCollectives(t *testing.T) {
	// All collectives must degrade gracefully to no-ops at n=1.
	run(t, 1, nil, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		out, err := c.Allreduce([]float64{7}, OpSum)
		if err != nil || out[0] != 7 {
			return fmt.Errorf("allreduce: %v %v", out, err)
		}
		all, err := c.Allgather([]byte{1, 2})
		if err != nil || len(all) != 1 || all[0][1] != 2 {
			return fmt.Errorf("allgather: %v %v", all, err)
		}
		buf := []byte{9}
		if err := c.Bcast(buf, 0); err != nil || buf[0] != 9 {
			return fmt.Errorf("bcast: %v %v", buf, err)
		}
		red, err := c.Reduce([]float64{3}, OpMax, 0)
		if err != nil || red[0] != 3 {
			return fmt.Errorf("reduce: %v %v", red, err)
		}
		a2a, err := c.Alltoall([][]byte{{5}})
		if err != nil || a2a[0][0] != 5 {
			return fmt.Errorf("alltoall: %v %v", a2a, err)
		}
		scan, err := c.ExScan(4)
		if err != nil || scan != 0 {
			return fmt.Errorf("exscan: %v %v", scan, err)
		}
		sub, err := c.Split(0, 0)
		if err != nil || sub.Size() != 1 {
			return fmt.Errorf("split: %v", err)
		}
		win, err := c.CreateWindow([]byte{42})
		if err != nil {
			return err
		}
		if err := win.LockShared(0); err != nil {
			return err
		}
		dst := make([]byte, 1)
		if err := win.Get(dst, 0, 0); err != nil || dst[0] != 42 {
			return fmt.Errorf("self-get: %v %v", dst, err)
		}
		return win.Unlock(0)
	})
}

func TestSendToSelf(t *testing.T) {
	run(t, 2, nil, func(c *Comm) error {
		if err := c.Send(c.Rank(), 5, []byte{77}); err != nil {
			return err
		}
		data, from, err := c.Recv(c.Rank(), 5)
		if err != nil {
			return err
		}
		if data[0] != 77 || from != c.Rank() {
			return fmt.Errorf("self message mangled: %v from %d", data, from)
		}
		return nil
	})
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: across a mixed workload, no rank's clock ever goes
	// backwards between observations.
	w, err := NewWorld(4, 5, WithMachine(cluster.Laptop()))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		prev := c.Clock().Now()
		check := func() error {
			now := c.Clock().Now()
			if now < prev {
				return fmt.Errorf("clock went backwards: %v -> %v", prev, now)
			}
			prev = now
			return nil
		}
		win, err := c.CreateWindow(make([]byte, 256))
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := check(); err != nil {
				return err
			}
			target := (c.Rank() + 1 + i) % c.Size()
			if err := win.LockShared(target); err != nil {
				return err
			}
			dst := make([]byte, 16)
			if err := win.Get(dst, target, i%200); err != nil {
				return err
			}
			if err := win.Unlock(target); err != nil {
				return err
			}
			if err := check(); err != nil {
				return err
			}
			if _, err := c.Allreduce([]float64{float64(i)}, OpSum); err != nil {
				return err
			}
			if err := check(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
