package transport

import (
	"sync"
)

// PoolStats counts a ClientPool's connection economy: Dials is how many
// fresh clients the pool had to create, Reuses how many checkouts were
// satisfied by an idle pooled client instead.
type PoolStats struct {
	Dials  int64 `json:"dials"`
	Reuses int64 `json:"reuses"`
}

// ClientPool reuses Clients per server address across checkouts, so a
// multi-phase workload (e.g. the load generator's QPS sweeps) keeps its
// TCP connections warm between phases instead of re-dialing every server
// for every phase. All clients share the pool's ClientOptions — one
// retry policy and one counter sink observe every pooled connection.
//
// Safe for concurrent use. A checked-out Client is owned exclusively by
// the caller until Put; the pool never hands one client to two callers.
type ClientPool struct {
	opts ClientOptions

	mu     sync.Mutex
	idle   map[string][]*Client
	stats  PoolStats
	closed bool
}

// NewClientPool returns an empty pool whose clients dial with opts.
func NewClientPool(opts ClientOptions) *ClientPool {
	return &ClientPool{opts: opts, idle: map[string][]*Client{}}
}

// Get checks out a client for addr, reusing an idle pooled connection
// when one exists and dialing a fresh one otherwise.
func (p *ClientPool) Get(addr string) (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if list := p.idle[addr]; len(list) > 0 {
		c := list[len(list)-1]
		p.idle[addr] = list[:len(list)-1]
		p.stats.Reuses++
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	c, err := DialOptions(addr, p.opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Dials++
	p.mu.Unlock()
	return c, nil
}

// Put returns a checked-out client for reuse. A client handed to a
// closed pool is closed instead of parked.
func (p *ClientPool) Put(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle[c.Addr()] = append(p.idle[c.Addr()], c)
	p.mu.Unlock()
}

// Stats returns the pool's dial/reuse counts so far.
func (p *ClientPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close closes every idle client and marks the pool closed; later Gets
// fail with ErrClosed and later Puts close the returned client. Clients
// still checked out are the caller's to close.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = map[string][]*Client{}
	p.mu.Unlock()

	var first error
	for _, list := range idle {
		for _, c := range list {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
