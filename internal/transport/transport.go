// Package transport implements a TCP data plane for DDStore, so that a
// store's chunks can be served between real processes over a real network
// instead of the in-process runtime. Each process runs a Server exposing
// its chunk (sample id range plus per-sample encoded bytes); peers Dial it
// and Get samples by id. A Group stitches several peers into one replica
// group with the same owner arithmetic as the in-process store, and can
// span multiple replica groups for failover.
//
// Unlike the paper's reliable-MPI fabric, a TCP fabric fails: peers crash,
// connections reset, reads stall, bytes corrupt. The data plane is
// therefore hardened end to end — per-operation deadlines, capped
// exponential backoff with jitter, transparent reconnect, CRC32 payload
// checksums, and replica failover (see retry.go, client.go, group.go).
// internal/faultnet injects exactly these faults deterministically to
// prove the behaviour.
//
// The in-process runtime remains the default (the paper's MPI RMA has no
// server-side CPU involvement, which goroutine shared memory models
// faithfully); the TCP plane exists to demonstrate and test the store
// across process boundaries, e.g. one server per node.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/obs/flightrec"
	"ddstore/internal/obs/tracectx"
)

// Protocol constants. Every request is a fixed 17-byte header
// (op u8, a i64, b i64); every response is a 9-byte head
// (status u8, len u32, crc32 u32) followed by the payload. The CRC is
// IEEE CRC32 over the payload, so a flipped bit anywhere in the frame is
// detected by either the length bound or the checksum.
const (
	opMeta     = 1 // request chunk metadata; response payload: lo i64, hi i64
	opGet      = 2 // request sample a; response payload: encoded graph
	opMulti    = 3 // request samples [a, b); response payload: concatenated graphs
	opGetBatch = 4 // request a ids (listed in the body); response: length-prefixed graphs
	opHello    = 5 // declare tenant identity + feature bits (b); response: server feature word
	opShardMap = 6 // request the current shard map; response payload: encoded shardmap.Map

	// Traced variants, negotiated via the hello feature word (trace.go):
	// the body starts with a 24-byte trace context (tracectx.Size), and a
	// success response to a sampled context ends with a timing trailer.
	opGetTraced      = 7 // opGet + trace context body
	opGetBatchTraced = 8 // opGetBatch, body = trace context then the ids

	statusOK         = 0
	statusError      = 1
	statusOverloaded = 2 // request shed by admission control: back off, don't fail over
	statusStaleGen   = 3 // requested id not owned under the current shard map generation; payload IS the server's current encoded map: refresh and retry, don't fail over

	reqHeaderSize  = 17
	respHeaderSize = 9
)

// maxPayload bounds a response so a corrupt peer cannot make us allocate
// unbounded memory; eagerPayload bounds how much of that a client will
// allocate before any payload bytes have actually arrived.
const (
	maxPayload   = 1 << 30
	eagerPayload = 1 << 20
)

// maxTenantName bounds the opHello body so a hostile handshake cannot make
// the server allocate unbounded memory.
const maxTenantName = 128

// Class is the priority class admission control schedules a request on.
// The server derives it from the wire op: single-sample lookups and
// metadata probes are interactive, range and batch fetches are training
// bulk traffic.
type Class uint8

// The two priority classes.
const (
	ClassLookup Class = iota // interactive: Meta, Get
	ClassBulk                // training: Multi, GetBatch
)

// String returns the label value used in metrics ("lookup", "bulk").
func (c Class) String() string {
	if c == ClassBulk {
		return "bulk"
	}
	return "lookup"
}

// classOf maps a wire op to its priority class.
func classOf(op byte) Class {
	if op == opMulti || op == opGetBatch || op == opGetBatchTraced {
		return ClassBulk
	}
	return ClassLookup
}

// opName returns the label value an op is metered and flight-recorded
// under.
func opName(op byte) string {
	switch op {
	case opMeta:
		return "meta"
	case opGet:
		return "get"
	case opMulti:
		return "multi"
	case opGetBatch:
		return "getbatch"
	case opHello:
		return "hello"
	case opShardMap:
		return "shardmap"
	case opGetTraced:
		return "get-traced"
	case opGetBatchTraced:
		return "getbatch-traced"
	default:
		return fmt.Sprintf("op-%d", op)
	}
}

// ConnGate is the per-connection handle a serving front end returns from
// AdmitConn. The server calls Hello when the client declares a tenant,
// Admit before serving each request (blocking while the request waits in
// an admission queue, or failing with an ErrOverloaded-wrapped error to
// shed it), and Close when the connection ends. Admit's release callback
// must be invoked exactly once, after the response is written, with the
// payload size — the hook byte quotas are charged through.
type ConnGate interface {
	Hello(tenant string) error
	Admit(class Class) (release func(payloadBytes int64), err error)
	Close()
}

// Admission is the connection-level admission hook a serving front end
// (internal/frontend) implements. AdmitConn runs once per accepted
// connection; an error rejects the connection — the server answers its
// first request with statusOverloaded and closes it, so well-behaved
// clients back off instead of hammering a full or draining server.
type Admission interface {
	AdmitConn(remoteAddr string) (ConnGate, error)
}

// ShardMapSource is the server-side hook into a versioned ownership map
// (internal/shardmap, adapted by serveboot so this package stays
// import-light). When configured, the server answers requests for samples
// it does not own under the current generation with a stale-generation
// status whose payload is the current encoded map — the client refreshes
// its map from that payload and retries the right owner in one round
// trip, instead of treating a moved chunk as a dead peer. The map
// bootstrap op serves the same encoded bytes on demand.
type ShardMapSource interface {
	// Generation returns the current shard map generation.
	Generation() uint64
	// Owns reports whether this server holds sample id under the current
	// generation (as primary or replica, including chunks migrated in but
	// not yet cut over).
	Owns(id int64) bool
	// Encoded returns the current generation's wire encoding
	// (shardmap.Map.Encode; cached per generation by shardmap.Store).
	Encoded() ([]byte, error)
}

// staleGenError is the server-internal signal that a request touched a
// sample this server no longer owns: writeFrame turns it into a
// stale-generation response carrying the current map.
type staleGenError struct{ mapBytes []byte }

func (e *staleGenError) Error() string { return "stale shard map generation" }

// ChunkSource is what a Server exposes: a contiguous range of samples with
// access to their encoded bytes. core.Store implements it for its local
// chunk (LocalRange + LocalSampleBytes).
type ChunkSource interface {
	LocalRange() (lo, hi int64)
	LocalSampleBytes(id int64) ([]byte, error)
}

// MemChunk is a self-contained ChunkSource: samples [Lo, Hi) held encoded
// in memory. Useful for standalone servers and tests.
type MemChunk struct {
	Lo, Hi  int64
	Encoded [][]byte // Encoded[i] is sample Lo+i
}

// NewMemChunk encodes graphs into a chunk starting at lo.
func NewMemChunk(lo int64, graphs []*graph.Graph) *MemChunk {
	enc := make([][]byte, len(graphs))
	for i, g := range graphs {
		enc[i] = g.Encode()
	}
	return &MemChunk{Lo: lo, Hi: lo + int64(len(graphs)), Encoded: enc}
}

// LocalRange implements ChunkSource.
func (m *MemChunk) LocalRange() (int64, int64) { return m.Lo, m.Hi }

// LocalSampleBytes implements ChunkSource.
func (m *MemChunk) LocalSampleBytes(id int64) ([]byte, error) {
	if id < m.Lo || id >= m.Hi {
		return nil, fmt.Errorf("transport: sample %d not in chunk [%d,%d)", id, m.Lo, m.Hi)
	}
	return m.Encoded[id-m.Lo], nil
}

// ServerOptions configure a Server's defensive limits.
type ServerOptions struct {
	// WriteTimeout bounds each response write, so a stalled client cannot
	// pin a handler goroutine forever. 0 means no limit.
	WriteTimeout time.Duration
	// IdleTimeout closes a connection that sends no request for this long.
	// 0 means no limit.
	IdleTimeout time.Duration
	// MaxConns caps concurrent connection goroutines. When the cap is
	// reached, further accepted connections are closed immediately and
	// counted (AcceptRejects, ddstore_serve_accept_rejected_total) — the
	// hard backstop under the politer per-tenant limits an Admission layer
	// enforces. 0 preserves the historical unbounded behaviour.
	MaxConns int
	// Admission, when non-nil, gates every connection and request through
	// a serving front end (internal/frontend): tenant identity, rate
	// limits, priority queues, and load shedding.
	Admission Admission
	// ShardMap, when non-nil, makes the server elastic: ownership of every
	// requested sample is checked against the live shard map generation,
	// un-owned samples answer with the stale-generation status carrying
	// the current map, and the map bootstrap op is served.
	ShardMap ShardMapSource
	// Metrics, when non-nil, records per-request service latency into the
	// canonical fetch-latency histogram plus per-op request, error, and
	// payload-byte counters — what ddstore-serve exposes on /metrics.
	Metrics *obs.Registry
	// FlightRecorder, when non-nil, receives a structured record for every
	// errored, shed, or stale-answered request, and — when SlowThreshold is
	// set — every successful request slower than the threshold.
	FlightRecorder *flightrec.Recorder
	// SlowThreshold is the service time above which a successful request is
	// flight-recorded as slow. 0 disables slow recording.
	SlowThreshold time.Duration
}

// serverMetrics holds the server's pre-resolved instrument handles so the
// request loop never touches the registry's lookup path.
type serverMetrics struct {
	reqs        [9]*obs.Counter // indexed by op; 0 unused
	errors      *obs.Counter
	bytes       *obs.Counter
	stales      *obs.Counter
	lat         *obs.Histogram
	acceptRejct *obs.Counter
	connRejects *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	reg.Help("ddstore_serve_requests_total", "Requests handled by the chunk server, by op.")
	reg.Help("ddstore_serve_errors_total", "Requests answered with an error status.")
	reg.Help("ddstore_serve_bytes_total", "Response payload bytes served.")
	reg.Help("ddstore_serve_stale_gen_total", "Requests answered with a stale-generation status (sample not owned under the current shard map).")
	m := &serverMetrics{
		errors:      reg.Counter("ddstore_serve_errors_total"),
		bytes:       reg.Counter("ddstore_serve_bytes_total"),
		stales:      reg.Counter("ddstore_serve_stale_gen_total"),
		lat:         obs.FetchLatencyHistogram(reg),
		acceptRejct: reg.Counter(obs.MetricAcceptRejected),
		connRejects: reg.Counter(obs.MetricConnRejected),
	}
	reg.Help(obs.MetricAcceptRejected, "Accepted connections closed because the MaxConns goroutine cap was reached.")
	reg.Help(obs.MetricConnRejected, "Connections refused by admission control with an overloaded status.")
	for _, op := range []byte{opMeta, opGet, opMulti, opGetBatch, opHello, opShardMap, opGetTraced, opGetBatchTraced} {
		m.reqs[op] = reg.Counter("ddstore_serve_requests_total", "op", opName(op))
	}
	return m
}

// observe records one handled request.
func (m *serverMetrics) observe(op byte, payload int, err error, dur time.Duration) {
	if m == nil {
		return
	}
	if int(op) < len(m.reqs) && m.reqs[op] != nil {
		m.reqs[op].Inc()
	}
	var sg *staleGenError
	switch {
	case errors.As(err, &sg):
		// A stale-generation answer is migration working as designed, not
		// a server fault — metered separately from the error counter.
		m.stales.Inc()
	case err != nil:
		m.errors.Inc()
	}
	m.bytes.Add(int64(payload))
	m.lat.ObserveDuration(dur)
}

// connState tracks one live connection: busy is set while its handler is
// executing a request (vs. blocked waiting for the next header), so Drain
// can wake idle handlers without cutting an in-flight request short.
type connState struct {
	busy atomic.Bool
}

// Server serves one chunk over TCP.
type Server struct {
	ln            net.Listener
	src           ChunkSource
	opts          ServerOptions
	metrics       *serverMetrics // nil without ServerOptions.Metrics
	sem           chan struct{}  // nil without ServerOptions.MaxConns
	acceptRejects atomic.Int64
	draining      atomic.Bool
	wg            sync.WaitGroup
	mu            sync.Mutex
	conns         map[net.Conn]*connState
	done          chan struct{}
	drainOnce     sync.Once
	closeOnce     sync.Once
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral port)
// with default options.
func Serve(addr string, src ChunkSource) (*Server, error) {
	return ServeWith(addr, src, ServerOptions{})
}

// ServeWith starts a server on addr with explicit options.
func ServeWith(addr string, src ChunkSource, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return ServeListener(ln, src, opts), nil
}

// ServeListener serves on an existing listener. This is the hook for
// wrapping the accept path — faultnet wraps a real listener to inject
// resets, stalls, and corruption into every accepted connection.
func ServeListener(ln net.Listener, src ChunkSource, opts ServerOptions) *Server {
	s := &Server{ln: ln, src: src, opts: opts, conns: map[net.Conn]*connState{}, done: make(chan struct{})}
	if opts.Metrics != nil {
		s.metrics = newServerMetrics(opts.Metrics)
	}
	if opts.MaxConns > 0 {
		s.sem = make(chan struct{}, opts.MaxConns)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AcceptRejects reports how many accepted connections were closed because
// the MaxConns goroutine cap was full.
func (s *Server) AcceptRejects() int64 { return s.acceptRejects.Load() }

// Drain moves the server into graceful shutdown: the listener closes (no
// new connections), handlers blocked waiting for their next request are
// woken and closed, and handlers mid-request are left to finish — Drain
// blocks until every handler has exited or the timeout expires, and
// reports whether the drain completed cleanly. Connections that complete
// their in-flight request while draining are closed instead of looping
// for another request. Call Close afterwards to hard-close whatever is
// left; Drain with timeout 0 just performs the stop-accepting/nudge step.
func (s *Server) Drain(timeout time.Duration) bool {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.ln.Close()
		s.mu.Lock()
		for c, st := range s.conns {
			if !st.busy.Load() {
				// Wake the handler out of its blocking header read; it
				// observes the draining flag and closes the connection.
				c.SetReadDeadline(time.Now())
			}
		}
		s.mu.Unlock()
	})
	if timeout <= 0 {
		return false
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close stops the server and its connections. It is idempotent, so a
// server killed mid-run (chaos tests, signal handlers) can be closed again
// by deferred cleanup.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// At the goroutine cap: close without spawning anything.
				conn.Close()
				s.acceptRejects.Add(1)
				if s.metrics != nil {
					s.metrics.acceptRejct.Inc()
				}
				continue
			}
		}
		st := &connState{}
		s.mu.Lock()
		s.conns[conn] = st
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				if s.sem != nil {
					<-s.sem
				}
			}()
			if s.opts.Admission != nil {
				gate, err := s.opts.Admission.AdmitConn(conn.RemoteAddr().String())
				if err != nil {
					s.rejectConn(conn, err)
					return
				}
				defer gate.Close()
				s.handle(conn, st, gate)
				return
			}
			s.handle(conn, st, nil)
		}()
	}
}

// rejectReadTimeout bounds how long a rejected connection may dawdle over
// its first request before the server gives up on delivering a status.
const rejectReadTimeout = 2 * time.Second

// rejectConn answers a connection refused by admission control: it reads
// requests (consuming a body when the op carries one, so each response
// frame is unambiguous) and replies to every one with the overloaded/
// draining status, so a client that backs off and retries on the same
// connection keeps seeing the status instead of a broken pipe. It
// returns — and the caller closes the connection — once the client goes
// quiet for rejectReadTimeout or hangs up.
func (s *Server) rejectConn(conn net.Conn, cause error) {
	if s.metrics != nil {
		s.metrics.connRejects.Inc()
	}
	var header [reqHeaderSize]byte
	for {
		conn.SetReadDeadline(time.Now().Add(rejectReadTimeout))
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		op := header[0]
		a := int64(binary.LittleEndian.Uint64(header[1:]))
		// Drain the body without buffering it: the bytes are discarded
		// anyway, and an error path must not allocate proportional to an
		// attacker-supplied length.
		switch {
		case op == opGetBatch && a >= 1 && a <= maxBatchIDs:
			if _, err := io.CopyN(io.Discard, conn, 8*a); err != nil {
				return
			}
		case op == opGetBatchTraced && a >= 1 && a <= maxBatchIDs:
			if _, err := io.CopyN(io.Discard, conn, tracectx.Size+8*a); err != nil {
				return
			}
		case op == opGetTraced:
			if _, err := io.CopyN(io.Discard, conn, tracectx.Size); err != nil {
				return
			}
		case op == opHello && a >= 1 && a <= maxTenantName:
			if _, err := io.CopyN(io.Discard, conn, a); err != nil {
				return
			}
		}
		if s.rec() != nil && op != opHello {
			s.rec().Add(flightrec.Record{Kind: flightrec.KindShed, Op: opName(op), Err: cause.Error()})
		}
		if s.writeFrame(conn, nil, cause) != nil {
			return
		}
	}
}

// checkHeader validates a request header against the served chunk before
// any payload work happens — a malformed or hostile header must not make
// the server allocate or touch the source.
func (s *Server) checkHeader(op byte, a, b int64) error {
	lo, hi := s.src.LocalRange()
	switch op {
	case opMeta:
		return nil
	case opGet, opGetTraced:
		if a < 0 {
			return fmt.Errorf("negative sample id %d", a)
		}
		if a < lo || a >= hi {
			return fmt.Errorf("sample %d outside chunk [%d,%d)", a, lo, hi)
		}
		return nil
	case opMulti:
		if a < 0 || b < 0 {
			return fmt.Errorf("negative range [%d,%d)", a, b)
		}
		if b < a {
			return fmt.Errorf("inverted range [%d,%d)", a, b)
		}
		if a < lo || b > hi {
			return fmt.Errorf("range [%d,%d) outside chunk [%d,%d)", a, b, lo, hi)
		}
		return nil
	case opGetBatch, opGetBatchTraced:
		// a is the id count; the ids themselves follow the header and are
		// range-checked after they are read. b is reserved.
		if a < 1 || a > maxBatchIDs {
			return fmt.Errorf("batch count %d outside [1,%d]", a, maxBatchIDs)
		}
		return nil
	case opHello:
		// a is the tenant-name byte count; the name follows the header.
		if a < 1 || a > maxTenantName {
			return fmt.Errorf("tenant name length %d outside [1,%d]", a, maxTenantName)
		}
		return nil
	case opShardMap:
		if s.opts.ShardMap == nil {
			return errors.New("server does not serve a shard map")
		}
		return nil
	default:
		return fmt.Errorf("unknown op %d", op)
	}
}

func (s *Server) handle(conn net.Conn, st *connState, gate ConnGate) {
	var header [reqHeaderSize]byte
	tenant := "" // declared by the connection's most recent hello
	for {
		if s.draining.Load() {
			return
		}
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		st.busy.Store(true)
		op := header[0]
		a := int64(binary.LittleEndian.Uint64(header[1:]))
		b := int64(binary.LittleEndian.Uint64(header[9:]))
		start := time.Now()
		err := s.checkHeader(op, a, b)
		if err != nil && (op == opGetBatch || op == opGetBatchTraced || op == opHello) {
			// An invalid body count means the length of the request body is
			// unknown, so the stream cannot be resynchronized: report the
			// error, then drop the connection.
			s.writeFrame(conn, nil, err)
			s.metrics.observe(op, 0, err, time.Since(start))
			return
		}
		// Ops with a body consume it before admission, so a shed response
		// leaves the stream aligned on the next request header. The traced
		// single-get's body is fixed-size, so it is drained even when the
		// header was invalid and the request will answer with an error.
		var body []byte
		switch {
		case op == opGetTraced:
			body = make([]byte, tracectx.Size)
		case err == nil && op == opGetBatchTraced:
			body = make([]byte, tracectx.Size+8*a)
		case err == nil && op == opGetBatch:
			body = make([]byte, 8*a)
		case err == nil && op == opHello:
			body = make([]byte, a)
		}
		if len(body) > 0 {
			if _, rerr := io.ReadFull(conn, body); rerr != nil {
				return
			}
		}
		// A corrupt or truncated trace context never fails the request: it
		// decodes invalid and merely disables tracing for it (tracectx's
		// documented contract, pinned by its fuzz test).
		var tc tracectx.Context
		if err == nil && (op == opGetTraced || op == opGetBatchTraced) {
			tc, _ = tracectx.Decode(body)
		}
		// The request is fully read: an idle-timeout deadline (or a Drain
		// nudge that raced the header) must not cut the in-flight request
		// short, e.g. while it waits in an admission queue.
		if s.opts.IdleTimeout > 0 || s.draining.Load() {
			conn.SetReadDeadline(time.Time{})
		}
		// Admission: hello switches tenant identity; data ops pass through
		// the front end's rate limits and priority queues, blocking here
		// while queued and failing with an overloaded status when shed. The
		// queue wait is measured here and reported in the timing trailer.
		var release func(int64)
		var queueWait time.Duration
		if err == nil && gate != nil && op != opHello {
			admitStart := time.Now()
			release, err = gate.Admit(classOf(op))
			queueWait = time.Since(admitStart)
		}
		if err == nil && op == opHello {
			if gate != nil {
				err = gate.Hello(string(body))
			}
			if err == nil {
				tenant = string(body)
			}
		}
		// Each op produces a list of payload parts that are written with one
		// vectored write — the source's cached sample slices are referenced
		// in place, never concatenated into a scratch payload.
		var parts [][]byte
		samples := 0
		srcStart := time.Now()
		if err == nil {
			switch op {
			case opMeta:
				lo, hi := s.src.LocalRange()
				meta := make([]byte, 16)
				binary.LittleEndian.PutUint64(meta[0:], uint64(lo))
				binary.LittleEndian.PutUint64(meta[8:], uint64(hi))
				parts = [][]byte{meta}
			case opGet, opGetTraced:
				samples = 1
				if err = s.ownsAll(a, a+1); err == nil {
					var one []byte
					if one, err = s.src.LocalSampleBytes(a); err == nil {
						parts = [][]byte{one}
					}
				}
			case opMulti:
				if err = s.ownsAll(a, b); err != nil {
					break
				}
				samples = int(b - a)
				parts = make([][]byte, 0, b-a)
				for id := a; id < b; id++ {
					var one []byte
					if one, err = s.src.LocalSampleBytes(id); err != nil {
						parts = nil
						break
					}
					parts = append(parts, one)
				}
			case opGetBatch, opGetBatchTraced:
				// The count is validated, so the body length is trusted and
				// the connection stays usable even if an id is out of range.
				idBytes := body
				if op == opGetBatchTraced {
					idBytes = body[tracectx.Size:]
				}
				ids := decodeBatchIDs(idBytes, int(a))
				samples = len(ids)
				if err = s.ownsBatch(ids); err == nil {
					parts, err = s.batchParts(ids)
				}
			case opHello:
				// Acknowledge with the server's feature word, so both sides
				// know which protocol extensions are safe to use on this
				// connection. Old clients release the payload unread.
				feat := make([]byte, 8)
				binary.LittleEndian.PutUint64(feat, featureTracing)
				parts = [][]byte{feat}
			case opShardMap:
				var mb []byte
				if mb, err = s.opts.ShardMap.Encoded(); err == nil {
					parts = [][]byte{mb}
				}
			}
		}
		sourceTime := time.Since(srcStart)
		var total int
		for _, p := range parts {
			total += len(p)
		}
		// Traced success responses carry the server's timing breakdown as a
		// trailer inside the same frame; its bytes ride the existing
		// length/CRC envelope.
		if err == nil && tc.Valid() && tc.Sampled {
			gen := uint64(0)
			if s.opts.ShardMap != nil {
				gen = s.opts.ShardMap.Generation()
			}
			trailer := appendTimingTrailer(nil, ServerTiming{
				QueueWait:  queueWait,
				Service:    time.Since(start),
				Source:     sourceTime,
				Bytes:      int64(total),
				Generation: gen,
				Tenant:     tenant,
			})
			parts = append(parts, trailer)
			total += len(trailer)
		}
		werr := s.writeFrame(conn, parts, err)
		if release != nil {
			release(int64(total))
		}
		dur := time.Since(start)
		s.metrics.observe(op, total, err, dur)
		s.recordRequest(op, tenant, tc, samples, total, queueWait, sourceTime, dur, err)
		st.busy.Store(false)
		if werr != nil {
			return
		}
	}
}

// rec returns the configured flight recorder (nil when absent).
func (s *Server) rec() *flightrec.Recorder { return s.opts.FlightRecorder }

// recordRequest feeds the flight recorder: errored, shed, and
// stale-answered requests always, successful ones only when they exceeded
// the slow threshold. Hello handshakes are administrative and never
// recorded.
func (s *Server) recordRequest(op byte, tenant string, tc tracectx.Context, samples, total int, queueWait, source, dur time.Duration, err error) {
	rec := s.rec()
	if rec == nil || op == opHello {
		return
	}
	var kind flightrec.Kind
	var sg *staleGenError
	switch {
	case errors.As(err, &sg):
		kind = flightrec.KindStale
	case errors.Is(err, ErrOverloaded):
		kind = flightrec.KindShed
	case err != nil:
		kind = flightrec.KindError
	case s.opts.SlowThreshold > 0 && dur >= s.opts.SlowThreshold:
		kind = flightrec.KindSlow
	default:
		return
	}
	r := flightrec.Record{
		Kind:        kind,
		Op:          opName(op),
		Tenant:      tenant,
		TraceID:     tracectx.IDString(tc.TraceID),
		DurMs:       flightrec.Ms(dur),
		QueueWaitMs: flightrec.Ms(queueWait),
		SourceMs:    flightrec.Ms(source),
		Bytes:       int64(total),
		Samples:     samples,
	}
	if s.opts.ShardMap != nil {
		r.Generation = s.opts.ShardMap.Generation()
	}
	if err != nil {
		r.Err = err.Error()
	}
	rec.Add(r)
}

// ownsAll checks every id in [lo, hi) against the shard map (a no-op
// without one): the first id this server does not own under the current
// generation turns the whole request into a stale-generation answer
// carrying the current map. Migration keeps data addressable throughout —
// the old owner answers stale only after it has applied the generation
// that moved the chunk, by which point the new owner serves it.
func (s *Server) ownsAll(lo, hi int64) error {
	sm := s.opts.ShardMap
	if sm == nil {
		return nil
	}
	for id := lo; id < hi; id++ {
		if !sm.Owns(id) {
			return s.staleErr()
		}
	}
	return nil
}

// ownsBatch is ownsAll over an id list.
func (s *Server) ownsBatch(ids []int64) error {
	sm := s.opts.ShardMap
	if sm == nil {
		return nil
	}
	for _, id := range ids {
		if !sm.Owns(id) {
			return s.staleErr()
		}
	}
	return nil
}

func (s *Server) staleErr() error {
	mb, err := s.opts.ShardMap.Encoded()
	if err != nil {
		return err
	}
	return &staleGenError{mapBytes: mb}
}

// batchParts gathers the requested samples into the length-prefixed batch
// response framing as a part list: one shared slab holds every 4-byte
// length prefix, and each sample's cached bytes are referenced directly,
// so the reply costs zero per-chunk copies. Any out-of-range id fails the
// whole batch — the client grouped the ids by owner, so a stray id is a
// protocol error, not a partial-result situation.
func (s *Server) batchParts(ids []int64) ([][]byte, error) {
	lo, hi := s.src.LocalRange()
	parts := make([][]byte, 0, 2*len(ids))
	prefixes := make([]byte, 4*len(ids))
	for i, id := range ids {
		if id < lo || id >= hi {
			return nil, fmt.Errorf("sample %d outside chunk [%d,%d)", id, lo, hi)
		}
		one, err := s.src.LocalSampleBytes(id)
		if err != nil {
			return nil, err
		}
		pre := prefixes[4*i : 4*i+4 : 4*i+4]
		binary.LittleEndian.PutUint32(pre, uint32(len(one)))
		parts = append(parts, pre, one)
	}
	return parts, nil
}

// writeFrame sends one response frame — status byte, total length, CRC —
// followed by the payload parts in a single vectored write (writev on TCP
// connections; net.Buffers falls back to sequential writes elsewhere).
// The CRC is computed incrementally over the parts, so the wire format is
// byte-identical to the old single-payload framing and existing clients
// need no changes. On err the parts are ignored and the error text is the
// payload.
func (s *Server) writeFrame(conn net.Conn, parts [][]byte, err error) error {
	var head [respHeaderSize]byte
	var sg *staleGenError
	switch {
	case errors.As(err, &sg):
		// The refresh is the payload: the client installs this map and
		// retries the right owner without an extra round trip.
		head[0] = statusStaleGen
		parts = [][]byte{sg.mapBytes}
	case errors.Is(err, ErrOverloaded):
		head[0] = statusOverloaded
		parts = [][]byte{[]byte(err.Error())}
	case err != nil:
		head[0] = statusError
		parts = [][]byte{[]byte(err.Error())}
	default:
		head[0] = statusOK
	}
	total := 0
	crc := uint32(0)
	for _, p := range parts {
		total += len(p)
		crc = crc32.Update(crc, crc32.IEEETable, p)
	}
	binary.LittleEndian.PutUint32(head[1:], uint32(total))
	binary.LittleEndian.PutUint32(head[5:], crc)
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	bufs := make(net.Buffers, 0, 1+len(parts))
	bufs = append(bufs, head[:])
	for _, p := range parts {
		if len(p) > 0 {
			bufs = append(bufs, p)
		}
	}
	_, werr := bufs.WriteTo(conn)
	return werr
}
