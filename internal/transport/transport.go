// Package transport implements a TCP data plane for DDStore, so that a
// store's chunks can be served between real processes over a real network
// instead of the in-process runtime. Each process runs a Server exposing
// its chunk (sample id range plus per-sample encoded bytes); peers Dial it
// and Get samples by id. A Group stitches several peers into one replica
// group with the same owner arithmetic as the in-process store.
//
// The in-process runtime remains the default (the paper's MPI RMA has no
// server-side CPU involvement, which goroutine shared memory models
// faithfully); the TCP plane exists to demonstrate and test the store
// across process boundaries, e.g. one server per node.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ddstore/internal/graph"
)

// Protocol constants. Every message is a fixed 17-byte header
// (op u8, a i64, b i64) followed by a length-prefixed payload in responses.
const (
	opMeta  = 1 // request chunk metadata; response payload: lo i64, hi i64
	opGet   = 2 // request sample a; response payload: encoded graph
	opMulti = 3 // request samples [a, b); response payload: concatenated graphs

	statusOK    = 0
	statusError = 1
)

// maxPayload bounds a response so a corrupt peer cannot make us allocate
// unbounded memory.
const maxPayload = 1 << 30

// ChunkSource is what a Server exposes: a contiguous range of samples with
// access to their encoded bytes. core.Store implements it for its local
// chunk (LocalRange + LocalSampleBytes).
type ChunkSource interface {
	LocalRange() (lo, hi int64)
	LocalSampleBytes(id int64) ([]byte, error)
}

// MemChunk is a self-contained ChunkSource: samples [Lo, Hi) held encoded
// in memory. Useful for standalone servers and tests.
type MemChunk struct {
	Lo, Hi  int64
	Encoded [][]byte // Encoded[i] is sample Lo+i
}

// NewMemChunk encodes graphs into a chunk starting at lo.
func NewMemChunk(lo int64, graphs []*graph.Graph) *MemChunk {
	enc := make([][]byte, len(graphs))
	for i, g := range graphs {
		enc[i] = g.Encode()
	}
	return &MemChunk{Lo: lo, Hi: lo + int64(len(graphs)), Encoded: enc}
}

// LocalRange implements ChunkSource.
func (m *MemChunk) LocalRange() (int64, int64) { return m.Lo, m.Hi }

// LocalSampleBytes implements ChunkSource.
func (m *MemChunk) LocalSampleBytes(id int64) ([]byte, error) {
	if id < m.Lo || id >= m.Hi {
		return nil, fmt.Errorf("transport: sample %d not in chunk [%d,%d)", id, m.Lo, m.Hi)
	}
	return m.Encoded[id-m.Lo], nil
}

// Server serves one chunk over TCP.
type Server struct {
	ln    net.Listener
	src   ChunkSource
	wg    sync.WaitGroup
	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral port).
func Serve(addr string, src ChunkSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	s := &Server{ln: ln, src: src, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	var header [17]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		op := header[0]
		a := int64(binary.LittleEndian.Uint64(header[1:]))
		b := int64(binary.LittleEndian.Uint64(header[9:]))
		var payload []byte
		var err error
		switch op {
		case opMeta:
			lo, hi := s.src.LocalRange()
			payload = make([]byte, 16)
			binary.LittleEndian.PutUint64(payload[0:], uint64(lo))
			binary.LittleEndian.PutUint64(payload[8:], uint64(hi))
		case opGet:
			payload, err = s.src.LocalSampleBytes(a)
		case opMulti:
			lo, hi := s.src.LocalRange()
			if a < lo || b > hi || a > b {
				err = fmt.Errorf("range [%d,%d) outside chunk [%d,%d)", a, b, lo, hi)
				break
			}
			for id := a; id < b; id++ {
				var one []byte
				if one, err = s.src.LocalSampleBytes(id); err != nil {
					break
				}
				payload = append(payload, one...)
			}
		default:
			err = fmt.Errorf("unknown op %d", op)
		}
		if werr := writeResponse(conn, payload, err); werr != nil {
			return
		}
	}
}

func writeResponse(conn net.Conn, payload []byte, err error) error {
	var head [5]byte
	if err != nil {
		payload = []byte(err.Error())
		head[0] = statusError
	} else {
		head[0] = statusOK
	}
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	if _, werr := conn.Write(head[:]); werr != nil {
		return werr
	}
	_, werr := conn.Write(payload)
	return werr
}

// Client is a connection to one chunk server. Safe for concurrent use (the
// request/response exchange is serialized per connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &Client{conn: conn}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op byte, a, b int64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var header [17]byte
	header[0] = op
	binary.LittleEndian.PutUint64(header[1:], uint64(a))
	binary.LittleEndian.PutUint64(header[9:], uint64(b))
	if _, err := c.conn.Write(header[:]); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	var head [5]byte
	if _, err := io.ReadFull(c.conn, head[:]); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	n := binary.LittleEndian.Uint32(head[1:])
	if n > maxPayload {
		return nil, fmt.Errorf("transport: oversized response (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.conn, payload); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if head[0] != statusOK {
		return nil, fmt.Errorf("transport: remote error: %s", payload)
	}
	return payload, nil
}

// Meta fetches the server's chunk range.
func (c *Client) Meta() (lo, hi int64, err error) {
	payload, err := c.roundTrip(opMeta, 0, 0)
	if err != nil {
		return 0, 0, err
	}
	if len(payload) != 16 {
		return 0, 0, errors.New("transport: malformed meta response")
	}
	return int64(binary.LittleEndian.Uint64(payload[0:])),
		int64(binary.LittleEndian.Uint64(payload[8:])), nil
}

// Get fetches and decodes one sample.
func (c *Client) Get(id int64) (*graph.Graph, error) {
	payload, err := c.roundTrip(opGet, id, 0)
	if err != nil {
		return nil, err
	}
	return graph.Decode(payload)
}

// GetRange fetches and decodes samples [lo, hi).
func (c *Client) GetRange(lo, hi int64) ([]*graph.Graph, error) {
	payload, err := c.roundTrip(opMulti, lo, hi)
	if err != nil {
		return nil, err
	}
	out := make([]*graph.Graph, 0, hi-lo)
	rest := payload
	for len(rest) > 0 {
		var g *graph.Graph
		if g, rest, err = graph.DecodePrefix(rest); err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if int64(len(out)) != hi-lo {
		return nil, fmt.Errorf("transport: got %d samples for range [%d,%d)", len(out), lo, hi)
	}
	return out, nil
}

// Group is a set of chunk servers that together hold one dataset replica —
// the cross-process analogue of a DDStore replica group. It discovers each
// peer's range at construction and routes Gets by id.
type Group struct {
	clients []*Client
	los     []int64
	his     []int64
}

// NewGroup dials every peer address and verifies the chunks tile a
// contiguous range.
func NewGroup(addrs []string) (*Group, error) {
	g := &Group{}
	for _, addr := range addrs {
		cl, err := Dial(addr)
		if err != nil {
			g.Close()
			return nil, err
		}
		lo, hi, err := cl.Meta()
		if err != nil {
			g.Close()
			cl.Close()
			return nil, err
		}
		g.clients = append(g.clients, cl)
		g.los = append(g.los, lo)
		g.his = append(g.his, hi)
	}
	for i := 1; i < len(g.los); i++ {
		if g.los[i] != g.his[i-1] {
			g.Close()
			return nil, fmt.Errorf("transport: chunk gap: peer %d starts at %d, previous ends at %d",
				i, g.los[i], g.his[i-1])
		}
	}
	return g, nil
}

// Close releases all connections.
func (g *Group) Close() {
	for _, c := range g.clients {
		c.Close()
	}
}

// Len returns the total number of samples across the group.
func (g *Group) Len() int64 {
	if len(g.his) == 0 {
		return 0
	}
	return g.his[len(g.his)-1] - g.los[0]
}

// ownerOf returns the peer index holding sample id.
func (g *Group) ownerOf(id int64) (int, error) {
	for i := range g.clients {
		if id >= g.los[i] && id < g.his[i] {
			return i, nil
		}
	}
	return 0, fmt.Errorf("transport: no peer holds sample %d", id)
}

// Get fetches one sample from its owning peer.
func (g *Group) Get(id int64) (*graph.Graph, error) {
	owner, err := g.ownerOf(id)
	if err != nil {
		return nil, err
	}
	return g.clients[owner].Get(id)
}

// Load fetches a batch of samples (any order), like core.Store.Load but
// over TCP.
func (g *Group) Load(ids []int64) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, len(ids))
	for i, id := range ids {
		gph, err := g.Get(id)
		if err != nil {
			return nil, err
		}
		out[i] = gph
	}
	return out, nil
}

// GroupLoader adapts a Group to the batch-loading contract of the DDP
// trainer (ddp.Loader): batches are fetched sample-by-sample from the
// owning peers over TCP. Latency reporting is nil — wall-clock timing of a
// real network needs no model.
type GroupLoader struct {
	Group *Group
}

// Len returns the total number of samples across the group.
func (l *GroupLoader) Len() int { return int(l.Group.Len()) }

// LoadBatch fetches the given sample ids from their owners.
func (l *GroupLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	graphs, err := l.Group.Load(ids)
	return graphs, nil, err
}
