// Package transport implements a TCP data plane for DDStore, so that a
// store's chunks can be served between real processes over a real network
// instead of the in-process runtime. Each process runs a Server exposing
// its chunk (sample id range plus per-sample encoded bytes); peers Dial it
// and Get samples by id. A Group stitches several peers into one replica
// group with the same owner arithmetic as the in-process store, and can
// span multiple replica groups for failover.
//
// Unlike the paper's reliable-MPI fabric, a TCP fabric fails: peers crash,
// connections reset, reads stall, bytes corrupt. The data plane is
// therefore hardened end to end — per-operation deadlines, capped
// exponential backoff with jitter, transparent reconnect, CRC32 payload
// checksums, and replica failover (see retry.go, client.go, group.go).
// internal/faultnet injects exactly these faults deterministically to
// prove the behaviour.
//
// The in-process runtime remains the default (the paper's MPI RMA has no
// server-side CPU involvement, which goroutine shared memory models
// faithfully); the TCP plane exists to demonstrate and test the store
// across process boundaries, e.g. one server per node.
package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"ddstore/internal/graph"
	"ddstore/internal/obs"
)

// Protocol constants. Every request is a fixed 17-byte header
// (op u8, a i64, b i64); every response is a 9-byte head
// (status u8, len u32, crc32 u32) followed by the payload. The CRC is
// IEEE CRC32 over the payload, so a flipped bit anywhere in the frame is
// detected by either the length bound or the checksum.
const (
	opMeta     = 1 // request chunk metadata; response payload: lo i64, hi i64
	opGet      = 2 // request sample a; response payload: encoded graph
	opMulti    = 3 // request samples [a, b); response payload: concatenated graphs
	opGetBatch = 4 // request a ids (listed in the body); response: length-prefixed graphs

	statusOK    = 0
	statusError = 1

	reqHeaderSize  = 17
	respHeaderSize = 9
)

// maxPayload bounds a response so a corrupt peer cannot make us allocate
// unbounded memory; eagerPayload bounds how much of that a client will
// allocate before any payload bytes have actually arrived.
const (
	maxPayload   = 1 << 30
	eagerPayload = 1 << 20
)

// ChunkSource is what a Server exposes: a contiguous range of samples with
// access to their encoded bytes. core.Store implements it for its local
// chunk (LocalRange + LocalSampleBytes).
type ChunkSource interface {
	LocalRange() (lo, hi int64)
	LocalSampleBytes(id int64) ([]byte, error)
}

// MemChunk is a self-contained ChunkSource: samples [Lo, Hi) held encoded
// in memory. Useful for standalone servers and tests.
type MemChunk struct {
	Lo, Hi  int64
	Encoded [][]byte // Encoded[i] is sample Lo+i
}

// NewMemChunk encodes graphs into a chunk starting at lo.
func NewMemChunk(lo int64, graphs []*graph.Graph) *MemChunk {
	enc := make([][]byte, len(graphs))
	for i, g := range graphs {
		enc[i] = g.Encode()
	}
	return &MemChunk{Lo: lo, Hi: lo + int64(len(graphs)), Encoded: enc}
}

// LocalRange implements ChunkSource.
func (m *MemChunk) LocalRange() (int64, int64) { return m.Lo, m.Hi }

// LocalSampleBytes implements ChunkSource.
func (m *MemChunk) LocalSampleBytes(id int64) ([]byte, error) {
	if id < m.Lo || id >= m.Hi {
		return nil, fmt.Errorf("transport: sample %d not in chunk [%d,%d)", id, m.Lo, m.Hi)
	}
	return m.Encoded[id-m.Lo], nil
}

// ServerOptions configure a Server's defensive limits.
type ServerOptions struct {
	// WriteTimeout bounds each response write, so a stalled client cannot
	// pin a handler goroutine forever. 0 means no limit.
	WriteTimeout time.Duration
	// IdleTimeout closes a connection that sends no request for this long.
	// 0 means no limit.
	IdleTimeout time.Duration
	// Metrics, when non-nil, records per-request service latency into the
	// canonical fetch-latency histogram plus per-op request, error, and
	// payload-byte counters — what ddstore-serve exposes on /metrics.
	Metrics *obs.Registry
}

// serverMetrics holds the server's pre-resolved instrument handles so the
// request loop never touches the registry's lookup path.
type serverMetrics struct {
	reqs   [5]*obs.Counter // indexed by op; 0 unused
	errors *obs.Counter
	bytes  *obs.Counter
	lat    *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	reg.Help("ddstore_serve_requests_total", "Requests handled by the chunk server, by op.")
	reg.Help("ddstore_serve_errors_total", "Requests answered with an error status.")
	reg.Help("ddstore_serve_bytes_total", "Response payload bytes served.")
	m := &serverMetrics{
		errors: reg.Counter("ddstore_serve_errors_total"),
		bytes:  reg.Counter("ddstore_serve_bytes_total"),
		lat:    obs.FetchLatencyHistogram(reg),
	}
	for op, name := range map[byte]string{opMeta: "meta", opGet: "get", opMulti: "multi", opGetBatch: "getbatch"} {
		m.reqs[op] = reg.Counter("ddstore_serve_requests_total", "op", name)
	}
	return m
}

// observe records one handled request.
func (m *serverMetrics) observe(op byte, payload int, err error, dur time.Duration) {
	if m == nil {
		return
	}
	if int(op) < len(m.reqs) && m.reqs[op] != nil {
		m.reqs[op].Inc()
	}
	if err != nil {
		m.errors.Inc()
	}
	m.bytes.Add(int64(payload))
	m.lat.ObserveDuration(dur)
}

// Server serves one chunk over TCP.
type Server struct {
	ln        net.Listener
	src       ChunkSource
	opts      ServerOptions
	metrics   *serverMetrics // nil without ServerOptions.Metrics
	wg        sync.WaitGroup
	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral port)
// with default options.
func Serve(addr string, src ChunkSource) (*Server, error) {
	return ServeWith(addr, src, ServerOptions{})
}

// ServeWith starts a server on addr with explicit options.
func ServeWith(addr string, src ChunkSource, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return ServeListener(ln, src, opts), nil
}

// ServeListener serves on an existing listener. This is the hook for
// wrapping the accept path — faultnet wraps a real listener to inject
// resets, stalls, and corruption into every accepted connection.
func ServeListener(ln net.Listener, src ChunkSource, opts ServerOptions) *Server {
	s := &Server{ln: ln, src: src, opts: opts, conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	if opts.Metrics != nil {
		s.metrics = newServerMetrics(opts.Metrics)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections. It is idempotent, so a
// server killed mid-run (chaos tests, signal handlers) can be closed again
// by deferred cleanup.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.done)
		err = s.ln.Close()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// checkHeader validates a request header against the served chunk before
// any payload work happens — a malformed or hostile header must not make
// the server allocate or touch the source.
func (s *Server) checkHeader(op byte, a, b int64) error {
	lo, hi := s.src.LocalRange()
	switch op {
	case opMeta:
		return nil
	case opGet:
		if a < 0 {
			return fmt.Errorf("negative sample id %d", a)
		}
		if a < lo || a >= hi {
			return fmt.Errorf("sample %d outside chunk [%d,%d)", a, lo, hi)
		}
		return nil
	case opMulti:
		if a < 0 || b < 0 {
			return fmt.Errorf("negative range [%d,%d)", a, b)
		}
		if b < a {
			return fmt.Errorf("inverted range [%d,%d)", a, b)
		}
		if a < lo || b > hi {
			return fmt.Errorf("range [%d,%d) outside chunk [%d,%d)", a, b, lo, hi)
		}
		return nil
	case opGetBatch:
		// a is the id count; the ids themselves follow the header and are
		// range-checked after they are read. b is reserved.
		if a < 1 || a > maxBatchIDs {
			return fmt.Errorf("batch count %d outside [1,%d]", a, maxBatchIDs)
		}
		return nil
	default:
		return fmt.Errorf("unknown op %d", op)
	}
}

func (s *Server) handle(conn net.Conn) {
	var header [reqHeaderSize]byte
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		op := header[0]
		a := int64(binary.LittleEndian.Uint64(header[1:]))
		b := int64(binary.LittleEndian.Uint64(header[9:]))
		start := time.Now()
		var payload []byte
		err := s.checkHeader(op, a, b)
		if err != nil && op == opGetBatch {
			// An invalid batch count means the length of the request body
			// (8 bytes per id) is unknown, so the stream cannot be
			// resynchronized: report the error, then drop the connection.
			s.writeResponse(conn, nil, err)
			s.metrics.observe(op, 0, err, time.Since(start))
			return
		}
		if err == nil {
			switch op {
			case opMeta:
				lo, hi := s.src.LocalRange()
				payload = make([]byte, 16)
				binary.LittleEndian.PutUint64(payload[0:], uint64(lo))
				binary.LittleEndian.PutUint64(payload[8:], uint64(hi))
			case opGet:
				payload, err = s.src.LocalSampleBytes(a)
			case opMulti:
				for id := a; id < b; id++ {
					var one []byte
					if one, err = s.src.LocalSampleBytes(id); err != nil {
						break
					}
					payload = append(payload, one...)
				}
			case opGetBatch:
				// The count is validated, so the body length is trusted and
				// the connection stays usable even if an id is out of range.
				body := make([]byte, 8*a)
				if _, rerr := io.ReadFull(conn, body); rerr != nil {
					return
				}
				payload, err = s.batchPayload(decodeBatchIDs(body, int(a)))
			}
		}
		werr := s.writeResponse(conn, payload, err)
		s.metrics.observe(op, len(payload), err, time.Since(start))
		if werr != nil {
			return
		}
	}
}

// batchPayload gathers the requested samples into the length-prefixed
// batch response framing. Any out-of-range id fails the whole batch — the
// client grouped the ids by owner, so a stray id is a protocol error, not
// a partial-result situation.
func (s *Server) batchPayload(ids []int64) ([]byte, error) {
	lo, hi := s.src.LocalRange()
	parts := make([][]byte, len(ids))
	for i, id := range ids {
		if id < lo || id >= hi {
			return nil, fmt.Errorf("sample %d outside chunk [%d,%d)", id, lo, hi)
		}
		one, err := s.src.LocalSampleBytes(id)
		if err != nil {
			return nil, err
		}
		parts[i] = one
	}
	return encodeBatchPayload(parts), nil
}

func (s *Server) writeResponse(conn net.Conn, payload []byte, err error) error {
	var head [respHeaderSize]byte
	if err != nil {
		payload = []byte(err.Error())
		head[0] = statusError
	} else {
		head[0] = statusOK
	}
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[5:], crc32.ChecksumIEEE(payload))
	if s.opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	}
	if _, werr := conn.Write(head[:]); werr != nil {
		return werr
	}
	_, werr := conn.Write(payload)
	return werr
}
