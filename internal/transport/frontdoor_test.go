package transport_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/transport"
)

// fakeAdmission implements transport.Admission for front-door tests
// without dragging in the real frontend package.
type fakeAdmission struct {
	refuse error // when set, AdmitConn fails with this

	mu    sync.Mutex
	gates []*fakeGate
}

func (a *fakeAdmission) AdmitConn(remote string) (transport.ConnGate, error) {
	if a.refuse != nil {
		return nil, a.refuse
	}
	g := &fakeGate{}
	a.mu.Lock()
	a.gates = append(a.gates, g)
	a.mu.Unlock()
	return g, nil
}

type fakeGate struct {
	mu     sync.Mutex
	tenant string
	admits int
	refuse error
}

func (g *fakeGate) Hello(tenant string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tenant = tenant
	return nil
}

func (g *fakeGate) Admit(class transport.Class) (func(int64), error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refuse != nil {
		return nil, g.refuse
	}
	g.admits++
	return func(int64) {}, nil
}

func (g *fakeGate) Close() {}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAcceptCapRejectsExcessConns pins the accept-loop semaphore: with
// MaxConns=1 and one connection held open, further accepts are closed
// without spawning a handler and counted; closing the first connection
// frees the slot.
func TestAcceptCapRejectsExcessConns(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	srv, err := transport.ServeWith("127.0.0.1:0", chunkFor(t, ds, 0, 10),
		transport.ServerOptions{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A completed round trip proves the server-side handler owns the slot.
	if _, err := c1.Get(3); err != nil {
		t.Fatal(err)
	}

	// The second raw conn must be closed by the server without a response.
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("over-cap connection received bytes, want immediate close")
	}
	waitUntil(t, "accept reject counter", func() bool { return srv.AcceptRejects() >= 1 })

	// Freeing the slot lets a new client in. The handler releases the
	// semaphore asynchronously after the close, so retry briefly.
	c1.Close()
	waitUntil(t, "freed conn slot", func() bool {
		c2, err := transport.Dial(srv.Addr())
		if err != nil {
			return false
		}
		defer c2.Close()
		_, err = c2.Get(3)
		return err == nil
	})
}

// TestAdmissionConnRefusalSpeaksOverloaded checks the reject path: when
// AdmitConn refuses with ErrOverloaded, the client's requests on that
// connection are each answered with the overloaded wire status — a
// distinguishable, retryable error, not a broken pipe.
func TestAdmissionConnRefusalSpeaksOverloaded(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	adm := &fakeAdmission{refuse: fmt.Errorf("all conn slots spoken for: %w", transport.ErrOverloaded)}
	srv, err := transport.ServeWith("127.0.0.1:0", chunkFor(t, ds, 0, 10),
		transport.ServerOptions{Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Policy: fastPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(3); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("Get on refused conn = %v, want ErrOverloaded", err)
	}
}

// TestHelloDeclaresTenantToGate checks that a client configured with a
// tenant identity performs the hello handshake before its first data op
// and that per-request admission sees the data ops (hello itself is not
// charged).
func TestHelloDeclaresTenantToGate(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	adm := &fakeAdmission{}
	srv, err := transport.ServeWith("127.0.0.1:0", chunkFor(t, ds, 0, 10),
		transport.ServerOptions{Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{
		Policy: fastPolicy(2), Tenant: "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(3); err != nil {
		t.Fatal(err)
	}

	adm.mu.Lock()
	ngates := len(adm.gates)
	adm.mu.Unlock()
	if ngates != 1 {
		t.Fatalf("server created %d gates, want 1", ngates)
	}
	g := adm.gates[0]
	g.mu.Lock()
	tenant, admits := g.tenant, g.admits
	g.mu.Unlock()
	if tenant != "acme" {
		t.Errorf("gate saw tenant %q, want acme", tenant)
	}
	if admits != 1 {
		t.Errorf("gate admitted %d requests, want 1 (hello is not charged)", admits)
	}
}

// TestGateOverloadRetriesOnSameConn checks backoff-don't-failover at the
// wire level: per-request shedding keeps the connection alive, the
// client counts overloads, and once the gate opens the same connection
// serves the request without a re-dial.
func TestGateOverloadRetriesOnSameConn(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	adm := &fakeAdmission{}
	srv, err := transport.ServeWith("127.0.0.1:0", chunkFor(t, ds, 0, 10),
		transport.ServerOptions{Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Policy: fastPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(3); err != nil {
		t.Fatal(err) // establish the conn and its gate
	}
	adm.mu.Lock()
	g := adm.gates[0]
	adm.mu.Unlock()

	g.mu.Lock()
	g.refuse = fmt.Errorf("queue full: %w", transport.ErrOverloaded)
	g.mu.Unlock()
	if _, err := c.Get(4); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("Get while shedding = %v, want ErrOverloaded", err)
	}

	g.mu.Lock()
	g.refuse = nil
	g.mu.Unlock()
	if _, err := c.Get(4); err != nil {
		t.Fatalf("Get after shedding cleared: %v", err)
	}
	adm.mu.Lock()
	ngates := len(adm.gates)
	adm.mu.Unlock()
	if ngates != 1 {
		t.Fatalf("client re-dialed across an overload (%d gates), want same conn", ngates)
	}
}
