package transport_test

import (
	"errors"
	"sync"
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

// TestClientPoolReuse checks the checkout economy: Put-then-Get reuses the
// same client, concurrent checkouts each get their own, and GetRaw works
// through a pooled client.
func TestClientPoolReuse(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := transport.NewClientPool(transport.ClientOptions{})
	defer pool.Close()

	c1, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("pool handed one client to two checkouts")
	}
	raw, err := c1.GetRaw(3)
	if err != nil || len(raw) == 0 {
		t.Fatalf("GetRaw = %d bytes, %v", len(raw), err)
	}
	pool.Put(c1)
	pool.Put(c2)

	c3, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c2 && c3 != c1 {
		t.Fatal("pool dialed fresh with two idle clients")
	}
	pool.Put(c3)
	if st := pool.Stats(); st.Dials != 2 || st.Reuses != 1 {
		t.Errorf("stats %+v, want 2 dials / 1 reuse", st)
	}
}

// TestClientPoolClose checks closed-pool semantics: Get fails with
// ErrClosed, Put closes the returned client instead of parking it, and
// Close is idempotent.
func TestClientPoolClose(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := transport.NewClientPool(transport.ClientOptions{})
	out, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	idle, err := pool.Get(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(idle)

	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	if _, err := pool.Get(srv.Addr()); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	// The idle client was closed by the pool; the checked-out one still
	// works until we return it.
	if _, err := idle.Get(1); err == nil {
		t.Error("idle client survived pool Close")
	}
	if _, err := out.Get(1); err != nil {
		t.Errorf("checked-out client broken by pool Close: %v", err)
	}
	pool.Put(out)
	if _, err := out.Get(1); err == nil {
		t.Error("client returned to a closed pool was not closed")
	}
}

// TestClientPoolServerRestart bounces the server under a pool with a
// parked idle client. The next checkout must hand back that client, and
// the client must notice its dead conn and re-dial the restarted server
// transparently — counted as a reconnect, not surfaced as an error.
func TestClientPoolServerRestart(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	prof := trace.New()
	pool := transport.NewClientPool(transport.ClientOptions{
		Policy: fastPolicy(4), Counters: prof,
	})
	defer pool.Close()

	c, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(3); err != nil {
		t.Fatal(err)
	}
	pool.Put(c)

	// Bounce the server on the same address; the parked conn is now dead.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := transport.Serve(addr, chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	c2, err := pool.Get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("pool dialed fresh instead of reusing the parked client")
	}
	s, err := c2.Get(3)
	if err != nil {
		t.Fatalf("Get through restarted server: %v", err)
	}
	if s == nil || s.ID != 3 {
		t.Fatalf("got %+v, want sample 3", s)
	}
	pool.Put(c2)

	if n := prof.Counter(transport.CounterReconnects); n < 1 {
		t.Errorf("reconnects = %d, want >= 1: %v", n, prof.Counters())
	}
	if st := pool.Stats(); st.Reuses < 1 {
		t.Errorf("stats %+v, want at least one reuse across the restart", st)
	}
}

// TestClientPoolConcurrent hammers Get/Put from many goroutines; run
// under -race this proves the pool's locking.
func TestClientPoolConcurrent(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := transport.NewClientPool(transport.ClientOptions{})
	defer pool.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c, err := pool.Get(srv.Addr())
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.GetRaw(int64(i % 10)); err != nil {
					t.Error(err)
				}
				pool.Put(c)
			}
		}()
	}
	wg.Wait()
	if st := pool.Stats(); st.Dials+st.Reuses != 8*20 {
		t.Errorf("stats %+v do not sum to 160 checkouts", st)
	}
}
