package transport_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

// fastPolicy keeps retry schedules short enough for tests.
func fastPolicy(attempts int) transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		DialTimeout: 500 * time.Millisecond,
		ReadTimeout: 500 * time.Millisecond,
		Seed:        42,
	}
}

// serveFaulty starts a server whose accept path runs through an injector.
func serveFaulty(t *testing.T, in *faultnet.Injector, src transport.ChunkSource) *transport.Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeListener(in.Listener(ln), src, transport.ServerOptions{})
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestClientConcurrentUseRace is the -race regression for the shared-conn
// client: 8 goroutines hammer one Client; framing must stay intact and no
// data race may be reported.
func TestClientConcurrentUseRace(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 40))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				id := int64((w*13 + i*5) % 40)
				g, err := cl.Get(id)
				if err != nil {
					errs[w] = err
					return
				}
				if g.ID != id {
					errs[w] = errors.New("wrong sample id: framing corrupted")
					return
				}
				if i%20 == 0 {
					if _, _, err := cl.Meta(); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestClientReconnectsAfterBrokenConn severs every established connection
// mid-session; the next Get must transparently re-dial and succeed.
func TestClientReconnectsAfterBrokenConn(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	in := faultnet.New(faultnet.Scenario{Seed: 3}) // no probabilistic faults
	srv := serveFaulty(t, in, chunkFor(t, ds, 0, 10))

	prof := trace.New()
	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{
		Policy:   fastPolicy(4),
		Counters: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Get(1); err != nil {
		t.Fatalf("healthy get: %v", err)
	}
	if n := in.BreakAll(); n == 0 {
		t.Fatal("no live connections to break")
	}
	if _, err := cl.Get(2); err != nil {
		t.Fatalf("get after broken conn: %v", err)
	}
	if prof.Counter(transport.CounterReconnects) == 0 {
		t.Fatalf("no reconnects recorded: %v", prof.Counters())
	}
	if prof.Counter(transport.CounterRetries) == 0 {
		t.Fatalf("no retries recorded: %v", prof.Counters())
	}
}

// TestClientRejectsCorruptPayloads runs against a server whose writes flip
// bytes half the time: CRC verification must reject the bad frames and the
// retry loop must still converge on the good ones.
func TestClientRejectsCorruptPayloads(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	in := faultnet.New(faultnet.Scenario{Seed: 5, CorruptProb: 0.5})
	srv := serveFaulty(t, in, chunkFor(t, ds, 0, 10))

	prof := trace.New()
	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{
		Policy:   fastPolicy(10),
		Counters: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for id := int64(0); id < 10; id++ {
		g, err := cl.Get(id)
		if err != nil {
			t.Fatalf("get %d under corruption: %v", id, err)
		}
		want, _ := ds.Sample(id)
		if g.ID != id || g.Y[0] != want.Y[0] {
			t.Fatalf("sample %d decoded from corrupt bytes", id)
		}
	}
	if in.Stats().Corruptions == 0 {
		t.Fatal("injector never corrupted a write")
	}
	if prof.Counter(transport.CounterChecksumErrors) == 0 {
		t.Fatalf("CRC never rejected a frame: %v", prof.Counters())
	}
}

// TestClientTimesOutOnStall points a client with a short read deadline at
// a server that always stalls longer: the deadline, not the stall, decides.
func TestClientTimesOutOnStall(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 4})
	in := faultnet.New(faultnet.Scenario{Seed: 9, StallProb: 1, StallFor: 400 * time.Millisecond})
	srv := serveFaulty(t, in, chunkFor(t, ds, 0, 4))

	prof := trace.New()
	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{
		Policy: transport.RetryPolicy{
			MaxAttempts: 2, BaseDelay: time.Millisecond,
			ReadTimeout: 50 * time.Millisecond, DialTimeout: time.Second, Seed: 1,
		},
		Counters: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Get(0)
	if err == nil {
		t.Fatal("stalled get succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the stall: %v", elapsed)
	}
	if prof.Counter(transport.CounterTimeouts) == 0 {
		t.Fatalf("no timeouts recorded: %v", prof.Counters())
	}
	if prof.Counter(transport.CounterGiveUps) == 0 {
		t.Fatalf("no give-ups recorded: %v", prof.Counters())
	}
}

// TestGroupFailsOverToOtherReplica kills a whole replica's server; every
// sample must still load from the surviving replica, with failover
// counters recording the reroutes.
func TestGroupFailsOverToOtherReplica(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	// Replica 0: one server with everything. Replica 1: two servers with
	// different chunk boundaries (boundaries may differ between replicas).
	srv0, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	srv1a, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	defer srv1a.Close()
	srv1b, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 12, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv1b.Close()

	prof := trace.New()
	grp, err := transport.NewGroupReplicas(
		[][]string{{srv0.Addr()}, {srv1a.Addr(), srv1b.Addr()}},
		transport.GroupOptions{
			Client:           transport.ClientOptions{Policy: fastPolicy(2), Counters: prof},
			FailoverCooldown: 200 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	if grp.Replicas() != 2 || grp.Len() != 20 {
		t.Fatalf("replicas = %d, len = %d", grp.Replicas(), grp.Len())
	}

	// Healthy pass.
	for id := int64(0); id < 20; id++ {
		if _, err := grp.Get(id); err != nil {
			t.Fatalf("healthy get %d: %v", id, err)
		}
	}

	// Kill replica 0 entirely; every sample must still be served.
	srv0.Close()
	for pass := 0; pass < 2; pass++ {
		for id := int64(0); id < 20; id++ {
			g, err := grp.Get(id)
			if err != nil {
				t.Fatalf("get %d with dead replica: %v", id, err)
			}
			want, _ := ds.Sample(id)
			if g.ID != id || g.Y[0] != want.Y[0] {
				t.Fatalf("sample %d corrupted during failover", id)
			}
		}
	}
	if prof.Counter(transport.CounterFailovers) == 0 {
		t.Fatalf("no failovers recorded: %v", prof.Counters())
	}
}

// TestGroupRejectsMismatchedReplicas verifies replica spans must agree.
func TestGroupRejectsMismatchedReplicas(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	srv0, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv0.Close()
	srv1, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	if _, err := transport.NewGroupReplicas(
		[][]string{{srv0.Addr()}, {srv1.Addr()}}, transport.GroupOptions{}); err == nil {
		t.Fatal("mismatched replica spans accepted")
	}
}
