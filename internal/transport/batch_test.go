package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/trace"
)

// fastPolicy keeps retry schedules short so failure paths don't stall tests.
func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, DialTimeout: time.Second,
		ReadTimeout: time.Second, WriteTimeout: time.Second, Seed: 1}
}

// TestGetBatchRoundTrip pins the multi-get framing end to end: the client
// sends ids in any order (including duplicates), the server returns the
// matching samples aligned with the request.
func TestGetBatchRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(10, 30))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ids := []int64{27, 10, 29, 15, 15, 10}
	gs, err := cl.GetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != len(ids) {
		t.Fatalf("got %d graphs for %d ids", len(gs), len(ids))
	}
	for i, id := range ids {
		if gs[i].ID != id {
			t.Fatalf("slot %d: got sample %d, want %d", i, gs[i].ID, id)
		}
	}
	if got, err := cl.GetBatchRaw(nil); got != nil || err != nil {
		t.Fatalf("empty batch = %v, %v; want nil, nil", got, err)
	}
	if _, err := cl.GetBatchRaw(make([]int64, maxBatchIDs+1)); err == nil {
		t.Fatal("oversized batch accepted by client")
	}
}

// TestGetBatchRejectsOutOfRange: a batch naming a sample outside the chunk
// fails as a remote error, and the connection stays usable.
func TestGetBatchRejectsOutOfRange(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.GetBatch([]int64{12, 25})
	var rerr *RemoteError
	if !errors.As(err, &rerr) || !strings.Contains(err.Error(), "outside chunk") {
		t.Fatalf("out-of-range batch: %v, want remote out-of-chunk error", err)
	}
	// Same connection, next request still works: the body was consumed.
	gs, err := cl.GetBatch([]int64{12, 13})
	if err != nil || len(gs) != 2 {
		t.Fatalf("batch after rejection: %v, %v", gs, err)
	}
}

// TestBatchInvalidCountClosesConn: a batch header with a hostile count has
// an unknowable body length, so the server must answer with an error and
// then drop the connection rather than misparse the stream.
func TestBatchInvalidCountClosesConn(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, count := range []int64{0, -5, maxBatchIDs + 1, 1 << 40} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		status, payload := rawRequest(t, conn, opGetBatch, count, 0)
		if status != statusError || !strings.Contains(string(payload), "batch count") {
			t.Fatalf("count %d: status %d, %q", count, status, payload)
		}
		// The connection must now be closed: the next read sees EOF.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("count %d: conn read after invalid count = %v, want EOF", count, err)
		}
		conn.Close()
	}
}

// TestGroupBatchesRoundTrips is the batching acceptance proof: loading B
// remote samples that live on one owner costs exactly ceil(B/maxBatch)
// round trips, and a repeat epoch over the same ids is served entirely
// from cache — zero additional round trips, >= 90% hit rate.
func TestGroupBatchesRoundTrips(t *testing.T) {
	const (
		numSamples = 50
		maxBatch   = 8
	)
	srv, err := Serve("127.0.0.1:0", wireChunk(0, numSamples))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	prof := trace.New()
	g, err := NewGroupReplicas([][]string{{srv.Addr()}}, GroupOptions{
		Client:     ClientOptions{Policy: fastPolicy(), Counters: prof},
		MaxBatch:   maxBatch,
		CacheBytes: 1 << 20, // plenty for the whole chunk
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	ids := make([]int64, numSamples)
	for i := range ids {
		ids[i] = int64(i)
	}

	// Epoch 1: all misses; one owner; ceil(50/8) = 7 round trips.
	base := prof.Counter(CounterRoundTrips) // excludes the dial-time Meta
	gs, err := g.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if gs[i].ID != id {
			t.Fatalf("epoch 1 slot %d: sample %d, want %d", i, gs[i].ID, id)
		}
	}
	wantTrips := int64((numSamples + maxBatch - 1) / maxBatch)
	if got := prof.Counter(CounterRoundTrips) - base; got != wantTrips {
		t.Fatalf("epoch 1: %d round trips for %d samples (maxBatch %d), want %d",
			got, numSamples, maxBatch, wantTrips)
	}

	// Epoch 2: same ids, all cached — zero network activity.
	base = prof.Counter(CounterRoundTrips)
	hitBase := g.CacheStats().Hits
	if _, err := g.Load(ids); err != nil {
		t.Fatal(err)
	}
	if got := prof.Counter(CounterRoundTrips) - base; got != 0 {
		t.Fatalf("epoch 2: %d round trips for fully cached ids, want 0", got)
	}
	st := g.CacheStats()
	if hits := st.Hits - hitBase; hits != numSamples {
		t.Fatalf("epoch 2: %d hits, want %d", hits, numSamples)
	}
	if rate := st.HitRate(); rate < 0.5 {
		// Over both epochs: 50 misses then 50 hits = 50% overall; the
		// epoch-2 rate asserted above is 100%, comfortably >= 90%.
		t.Fatalf("overall hit rate %v implausibly low", rate)
	}
}

// TestGroupBatchSpansOwners: a batch crossing chunk boundaries goes to
// each owner separately, in one round trip per owner.
func TestGroupBatchSpansOwners(t *testing.T) {
	srvA, err := Serve("127.0.0.1:0", wireChunk(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := Serve("127.0.0.1:0", wireChunk(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	prof := trace.New()
	g, err := NewGroupReplicas([][]string{{srvA.Addr(), srvB.Addr()}}, GroupOptions{
		Client:   ClientOptions{Policy: fastPolicy(), Counters: prof},
		MaxBatch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	base := prof.Counter(CounterRoundTrips)
	ids := []int64{3, 17, 6, 11, 0, 19}
	gs, err := g.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if gs[i].ID != id {
			t.Fatalf("slot %d: sample %d, want %d", i, gs[i].ID, id)
		}
	}
	if got := prof.Counter(CounterRoundTrips) - base; got != 2 {
		t.Fatalf("%d round trips for a 2-owner batch, want 2", got)
	}
}

// TestGroupBatchFailsOver: when the preferred owner dies, a batch's ids are
// refetched from the owner in the other replica, still batched.
func TestGroupBatchFailsOver(t *testing.T) {
	srvA, err := Serve("127.0.0.1:0", wireChunk(0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := Serve("127.0.0.1:0", wireChunk(0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	prof := trace.New()
	g, err := NewGroupReplicas([][]string{{srvA.Addr()}, {srvB.Addr()}}, GroupOptions{
		Client:           ClientOptions{Policy: fastPolicy(), Counters: prof},
		FailoverCooldown: 200 * time.Millisecond,
		MaxBatch:         64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	srvA.Close() // kill one replica; every id preferring it must fail over
	ids := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	gs, err := g.Load(ids)
	if err != nil {
		t.Fatalf("load with one dead replica: %v", err)
	}
	for i, id := range ids {
		if gs[i].ID != id {
			t.Fatalf("slot %d: sample %d, want %d", i, gs[i].ID, id)
		}
	}
	if prof.Counter(CounterFailovers) == 0 {
		t.Fatal("no failovers recorded despite a dead replica")
	}

	srvB.Close()
	if _, err := g.Load([]int64{9}); err == nil {
		t.Fatal("load succeeded with every replica dead")
	} else if !strings.Contains(err.Error(), "failed on all") {
		t.Fatalf("all-dead error = %v", err)
	}
}

// TestGroupLoadCoalesces: concurrent Loads racing on the same cold id
// produce one upstream fetch; the rest coalesce on the flight table.
func TestGroupLoadCoalesces(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	g, err := NewGroupReplicas([][]string{{srv.Addr()}}, GroupOptions{
		Client:     ClientOptions{Policy: fastPolicy()},
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	const workers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			gs, err := g.Load([]int64{2})
			if err != nil || gs[0].ID != 2 {
				t.Errorf("load: %v, %v", gs, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := g.CacheStats()
	if st.Misses+st.Coalesced+st.Hits != workers {
		t.Fatalf("stats = %+v: lookups don't add up to %d", st, workers)
	}
	if st.Misses > 2 {
		// One leader fetches; racers either coalesce or (having started
		// after delivery) hit. More than a couple of misses means the
		// flight table is not coalescing.
		t.Fatalf("stats = %+v: %d upstream fetches for one hot id", st, st.Misses)
	}
}

// TestGroupDuplicateIDsInOneBatch: the same cold id twice in one Load must
// not deadlock (leader waiting on itself) and must fill both slots.
func TestGroupDuplicateIDsInOneBatch(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g, err := NewGroupReplicas([][]string{{srv.Addr()}}, GroupOptions{
		Client:     ClientOptions{Policy: fastPolicy()},
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	done := make(chan error, 1)
	go func() {
		want := []int64{1, 1, 3, 1}
		gs, err := g.Load(want)
		if err == nil {
			for i := range want {
				if gs[i].ID != want[i] {
					err = fmt.Errorf("slot %d: sample %d, want %d", i, gs[i].ID, want[i])
					break
				}
			}
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Load with duplicate ids deadlocked")
	}
}

// TestGroupErrorFailsFlights: when a Load errors, coalesced waiters in
// other goroutines receive the failure instead of blocking forever.
func TestGroupErrorFailsFlights(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 8))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroupReplicas([][]string{{srv.Addr()}}, GroupOptions{
		Client:     ClientOptions{Policy: fastPolicy()},
		CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	srv.Close() // all fetches will now fail
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			_, err := g.Load([]int64{5})
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("load against a dead server succeeded")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("coalesced waiter hung after leader failure")
		}
	}
}

// TestBatchPayloadHelpers pins the length-prefixed framing against decode
// corruption cases the fuzzer also explores.
func TestBatchPayloadHelpers(t *testing.T) {
	parts := [][]byte{{1, 2, 3}, {}, {9}, make([]byte, 300)}
	back, err := decodeBatchPayload(encodeBatchPayload(parts))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(parts) {
		t.Fatalf("round trip: %d parts, want %d", len(back), len(parts))
	}
	for i := range parts {
		if string(back[i]) != string(parts[i]) {
			t.Fatalf("part %d corrupted", i)
		}
	}

	if _, err := decodeBatchPayload([]byte{1, 2}); err == nil {
		t.Fatal("truncated entry header accepted")
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<31)
	if _, err := decodeBatchPayload(huge[:]); err == nil {
		t.Fatal("entry length beyond payload accepted")
	}

	ids := []int64{-1, 0, 1 << 50}
	got := decodeBatchIDs(encodeBatchIDs(ids), len(ids))
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("id %d: %d != %d", i, got[i], ids[i])
		}
	}
}

// Compile-time check: a *trace.Profiler satisfies both counter sinks, so
// one profiler carries network and cache counters for the same run.
var (
	_ Counters       = (*trace.Profiler)(nil)
	_ cache.Counters = (*trace.Profiler)(nil)
)
