package transport

import (
	"math/rand"
	"time"
)

// RetryPolicy controls how a Client survives a faulty fabric: per-operation
// deadlines, and capped exponential backoff with jitter between attempts.
// The zero value means "use the defaults below"; set MaxAttempts to 1 for
// no retries and a timeout to a negative value to disable that deadline.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, including
	// the first. Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Default 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 250ms.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor. Default 2.
	Multiplier float64
	// Jitter is the +/- fraction of each delay drawn uniformly at random,
	// de-synchronizing clients that fail together. Default 0.2.
	Jitter float64
	// DialTimeout bounds each (re)connect. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout is the per-operation response deadline. Default 5s.
	ReadTimeout time.Duration
	// WriteTimeout is the per-operation request deadline. Default 5s.
	WriteTimeout time.Duration
	// Seed seeds the jitter RNG so retry schedules are reproducible.
	// Default 1.
	Seed int64
}

// DefaultRetryPolicy returns the defaults documented on RetryPolicy.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{}.withDefaults() }

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.DialTimeout == 0 {
		p.DialTimeout = 2 * time.Second
	}
	if p.ReadTimeout == 0 {
		p.ReadTimeout = 5 * time.Second
	}
	if p.WriteTimeout == 0 {
		p.WriteTimeout = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// delay returns the backoff before retry attempt (attempt >= 1), with
// jitter drawn from rng.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// ServerOptions derives a Server's defensive limits from the policy, so
// one knob (e.g. core.Options.Net) configures both sides of the plane.
func (p RetryPolicy) ServerOptions() ServerOptions {
	p = p.withDefaults()
	wt := p.WriteTimeout
	if wt < 0 {
		wt = 0
	}
	return ServerOptions{WriteTimeout: wt}
}

// Counters receives resilience event counts from the data plane.
// *trace.Profiler implements it, so retries/failovers/timeouts land in the
// same per-rank profile as the paper's region timings.
type Counters interface {
	Inc(name string, delta int64)
}

// Counter names recorded by the TCP data plane.
const (
	CounterRoundTrips     = "net-roundtrips"      // logical request/response operations issued
	CounterRetries        = "net-retries"         // operation attempts beyond the first
	CounterReconnects     = "net-reconnects"      // successful re-dials after a broken conn
	CounterTimeouts       = "net-timeouts"        // deadline-expired operations
	CounterChecksumErrors = "net-checksum-errors" // CRC32-rejected responses
	CounterFailovers      = "net-failovers"       // samples served by a non-preferred replica
	CounterGiveUps        = "net-giveups"         // operations that exhausted every attempt
	CounterOverloads      = "net-overloads"       // responses shed by server admission control
	CounterStaleRefreshes = "net-stale-refreshes" // shard map refreshes triggered by stale-generation responses
)

// nopCounters discards counts; used when no sink is configured.
type nopCounters struct{}

func (nopCounters) Inc(string, int64) {}
