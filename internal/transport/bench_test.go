package transport

import (
	"fmt"
	"testing"

	"ddstore/internal/graph"
	"ddstore/internal/vtime"
)

// benchGraph builds a dense sample matching the wire-decode sweep's shape
// (16-dim node features, 3 edges per node, 4-dim edge features).
func benchGraph(rng *vtime.RNG, id int64, nodes int) *graph.Graph {
	const nodeDim, edgeDim = 16, 4
	edges := 3 * nodes
	g := &graph.Graph{
		ID:          id,
		NumNodes:    nodes,
		NodeFeatDim: nodeDim,
		NodeFeat:    make([]float32, nodes*nodeDim),
		EdgeSrc:     make([]int32, edges),
		EdgeDst:     make([]int32, edges),
		EdgeFeatDim: edgeDim,
		EdgeFeat:    make([]float32, edges*edgeDim),
		Y:           []float32{float32(id)},
	}
	for i := range g.NodeFeat {
		g.NodeFeat[i] = float32(rng.NormFloat64())
	}
	for i := range g.EdgeSrc {
		g.EdgeSrc[i] = int32(rng.Intn(nodes))
		g.EdgeDst[i] = int32(rng.Intn(nodes))
	}
	for i := range g.EdgeFeat {
		g.EdgeFeat[i] = float32(rng.NormFloat64())
	}
	return g
}

// BenchmarkOpGetBatch measures the full OpGetBatch round trip over loopback
// TCP: request framing, the server's reply assembly and writes, the
// client's payload read, CRC verification, and batch-part splitting. This
// is the per-batch wire cost the serving layer pays per owner per batch;
// allocations per op are the number the zero-allocation wire path drives
// down.
func BenchmarkOpGetBatch(b *testing.B) {
	rng := vtime.NewRNG(7)
	const n = 256
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		graphs[i] = benchGraph(rng, int64(i), 32)
	}
	srv, err := Serve("127.0.0.1:0", NewMemChunk(0, graphs))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	for _, batch := range []int{16, 64} {
		ids := make([]int64, batch)
		for i := range ids {
			ids[i] = int64((i * 7) % n)
		}
		var bytesPerOp int64
		parts, err := cl.GetBatchRaw(ids)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range parts {
			bytesPerOp += int64(len(p))
		}
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.SetBytes(bytesPerOp)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cl.GetBatchRaw(ids); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
