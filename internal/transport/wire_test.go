package transport

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ddstore/internal/graph"
)

// wireChunk builds a tiny in-memory chunk of hand-made graphs covering
// ids [lo, hi), without importing dataset packages (which would cycle).
func wireChunk(lo, hi int64) *MemChunk {
	gs := make([]*graph.Graph, 0, hi-lo)
	for id := lo; id < hi; id++ {
		gs = append(gs, &graph.Graph{
			ID: id, NumNodes: 2, NodeFeatDim: 1, NodeFeat: []float32{1, 2},
			EdgeSrc: []int32{0}, EdgeDst: []int32{1}, EdgeFeatDim: 1,
			EdgeFeat: []float32{3}, Y: []float32{float32(id)},
		})
	}
	return NewMemChunk(lo, gs)
}

// rawRequest writes a hand-crafted header and reads back one response.
func rawRequest(t *testing.T, conn net.Conn, op byte, a, b int64) (status byte, payload []byte) {
	t.Helper()
	var header [reqHeaderSize]byte
	header[0] = op
	binary.LittleEndian.PutUint64(header[1:], uint64(a))
	binary.LittleEndian.PutUint64(header[9:], uint64(b))
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatalf("write header: %v", err)
	}
	var head [respHeaderSize]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		t.Fatalf("read response head: %v", err)
	}
	n := binary.LittleEndian.Uint32(head[1:])
	payload = make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		t.Fatalf("read response payload: %v", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(head[5:]); got != want {
		t.Fatalf("response CRC %#x, header says %#x", got, want)
	}
	return head[0], payload
}

// TestRejectsMalformedHeaders drives the server with hostile raw headers:
// each must be rejected before any payload work, with the connection and
// server surviving.
func TestRejectsMalformedHeaders(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	cases := []struct {
		name    string
		op      byte
		a, b    int64
		wantErr string
	}{
		{"unknown op", 42, 0, 0, "unknown op"},
		{"negative get id", opGet, -3, 0, "negative sample id"},
		{"get below chunk", opGet, 5, 0, "outside chunk"},
		{"get above chunk", opGet, 20, 0, "outside chunk"},
		{"negative multi lo", opMulti, -1, 5, "negative range"},
		{"negative multi hi", opMulti, 12, -9, "negative range [12,-9)"},
		{"inverted range", opMulti, 15, 12, "inverted range"},
		{"range below chunk", opMulti, 8, 12, "outside chunk"},
		{"range above chunk", opMulti, 15, 25, "outside chunk"},
		{"huge range", opMulti, 10, 1 << 40, "outside chunk"},
	}
	for _, tc := range cases {
		status, payload := rawRequest(t, conn, tc.op, tc.a, tc.b)
		if status != statusError {
			t.Fatalf("%s: status = %d, want error", tc.name, status)
		}
		if !strings.Contains(string(payload), tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, payload, tc.wantErr)
		}
	}

	// The same connection still serves valid requests afterwards.
	status, payload := rawRequest(t, conn, opMeta, 0, 0)
	if status != statusOK || len(payload) != 16 {
		t.Fatalf("meta after rejections: status %d, %d bytes", status, len(payload))
	}
	status, _ = rawRequest(t, conn, opGet, 12, 0)
	if status != statusOK {
		t.Fatalf("valid get after rejections: status %d", status)
	}
}

// TestResponsesCarryCRC pins the wire format: every response head carries
// the payload's IEEE CRC32 (verified inside rawRequest), for both OK and
// error responses.
func TestResponsesCarryCRC(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if status, _ := rawRequest(t, conn, opGet, 2, 0); status != statusOK {
		t.Fatalf("get: status %d", status)
	}
	if status, _ := rawRequest(t, conn, opGet, 99, 0); status != statusError {
		t.Fatalf("bad get: status %d", status)
	}
}

// TestRetryPolicyBackoff pins the backoff schedule: capped exponential
// growth, deterministic under a fixed seed.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond,
		Multiplier: 2, Jitter: -1, Seed: 7}.withDefaults()
	// Jitter < 0 is kept as-is by withDefaults and disables jitter in delay.
	rng := rand.New(rand.NewSource(7))
	for i, want := range []time.Duration{10, 20, 40, 40, 40} {
		if got := p.delay(i+1, rng); got != want*time.Millisecond {
			t.Fatalf("delay(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	d := DefaultRetryPolicy()
	if d.MaxAttempts != 4 || d.BaseDelay != 5*time.Millisecond || d.ReadTimeout != 5*time.Second {
		t.Fatalf("defaults = %+v", d)
	}
	if so := d.ServerOptions(); so.WriteTimeout != d.WriteTimeout {
		t.Fatalf("ServerOptions = %+v", so)
	}
}
