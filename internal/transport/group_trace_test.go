package transport_test

import (
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/obs"
	"ddstore/internal/obs/tracectx"
	"ddstore/internal/transport"
)

// TestGroupTracedLoadNestsServerSpans is the acceptance scenario: one
// traced batch against a live two-owner cluster yields a merged trace —
// per-owner fetch spans carrying the batch's trace id, with the servers'
// timing trailers synthesized as "server" category spans nested inside
// them, tagged with tenant, shard, and generation.
func TestGroupTracedLoadNestsServerSpans(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})
	s1, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 20, 40))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	ring := obs.NewSpanRing(256, 0)
	grp, err := transport.NewGroupReplicas([][]string{{s1.Addr(), s2.Addr()}}, transport.GroupOptions{
		Client: transport.ClientOptions{Tracing: true, Tenant: "trainer"},
		Spans:  ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()

	tc := tracectx.New(true)
	ids := []int64{3, 17, 23, 38} // two on each owner
	lazies, _, err := grp.LoadLazyTraced(ids, tc)
	if err != nil {
		t.Fatal(err)
	}
	for i, lz := range lazies {
		if g := lz.Graph(); g.ID != ids[i] {
			t.Fatalf("sample %d came back as %d", ids[i], g.ID)
		}
	}

	fetchByID := map[uint64]obs.Span{} // per-owner fetch spans by span id
	var servers []obs.Span
	for _, s := range ring.Spans() {
		switch {
		case s.Name == "fetch-owner":
			fetchByID[s.SpanID] = s
		case s.Cat == "server":
			servers = append(servers, s)
		}
	}
	if len(fetchByID) != 2 {
		t.Fatalf("got %d traced fetch-owner spans, want 2 (one per owner)", len(fetchByID))
	}
	var requests, segments int
	for _, s := range servers {
		if s.TraceID == 0 {
			t.Fatalf("server span %q carries no trace id", s.Name)
		}
		if s.Name != "server-request" {
			segments++
			continue
		}
		requests++
		// Nested under the owner fetch that issued the wire request, which
		// is itself a child of the batch's root context.
		parent, ok := fetchByID[s.ParentID]
		if !ok {
			t.Fatalf("server-request parent %016x is not a fetch-owner span", s.ParentID)
		}
		if parent.TraceID != tc.TraceID || parent.ParentID != tc.SpanID {
			t.Fatalf("fetch-owner span ids = trace %016x parent %016x, want trace %016x parent %016x",
				parent.TraceID, parent.ParentID, tc.TraceID, tc.SpanID)
		}
		if s.Tenant != "trainer" {
			t.Errorf("server-request tenant %q, want trainer", s.Tenant)
		}
		if s.Gen == 0 {
			t.Error("server-request span has no shard map generation")
		}
		if s.Dur <= 0 || s.Bytes <= 0 {
			t.Errorf("server-request span window = %+v", s)
		}
		if s.Start < parent.Start || s.Start+s.Dur > parent.Start+parent.Dur {
			t.Errorf("server window [%v,+%v] escapes client window [%v,+%v]",
				s.Start, s.Dur, parent.Start, parent.Dur)
		}
	}
	if requests != 2 {
		t.Fatalf("got %d server-request spans, want 2 (one per owner)", requests)
	}
	if segments == 0 {
		t.Fatal("no server-queue-wait/server-chunk-source segments recorded")
	}
}

// TestPlaneLoaderTracedBatch pins the DDP seam: a PlaneLoader with Trace
// set mints one sampled root context per lazy batch and records the
// client-side root span the fetch and server spans parent to.
func TestPlaneLoaderTracedBatch(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ring := obs.NewSpanRing(64, 0)
	grp, err := transport.NewGroupReplicas([][]string{{srv.Addr()}}, transport.GroupOptions{
		Client: transport.ClientOptions{Tracing: true},
		Spans:  ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()

	loader := &ddp.PlaneLoader{Plane: grp, Trace: true, Spans: ring}
	lazies, _, err := loader.LoadBatchLazy([]int64{2, 5, 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, lz := range lazies {
		lz.Release()
	}

	var root *obs.Span
	serversSeen := 0
	for _, s := range ring.Spans() {
		s := s
		if s.Name == "load-batch" {
			root = &s
		}
		if s.Cat == "server" {
			serversSeen++
		}
	}
	if root == nil || root.TraceID == 0 || root.SpanID == 0 {
		t.Fatalf("no traced load-batch root span: %+v", root)
	}
	if serversSeen == 0 {
		t.Fatal("traced batch produced no server spans")
	}
	for _, s := range ring.Spans() {
		if s.Cat == "server" && s.TraceID != root.TraceID {
			t.Fatalf("server span trace %016x != root trace %016x", s.TraceID, root.TraceID)
		}
	}
}
