package transport_test

import (
	"strings"
	"sync"
	"testing"

	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/graph"
	"ddstore/internal/hydra"
	"ddstore/internal/transport"
)

func chunkFor(t *testing.T, ds *datasets.Dataset, lo, hi int64) *transport.MemChunk {
	t.Helper()
	gs := make([]*graph.Graph, 0, hi-lo)
	for id := lo; id < hi; id++ {
		g, err := ds.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return transport.NewMemChunk(lo, gs)
}

func TestServerClientGet(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	lo, hi, err := cl.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 20 {
		t.Fatalf("meta = [%d,%d)", lo, hi)
	}
	for _, id := range []int64{0, 7, 19} {
		g, err := cl.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ds.Sample(id)
		if g.ID != id || g.NumNodes != want.NumNodes || g.Y[0] != want.Y[0] {
			t.Fatalf("sample %d corrupted over the wire", id)
		}
	}
}

func TestGetOutOfRange(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get(99); err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("out-of-range Get: err = %v", err)
	}
	// The connection must survive a remote error.
	if _, err := cl.Get(2); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestGetRange(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 12})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 12))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gs, err := cl.GetRange(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 6 {
		t.Fatalf("got %d samples", len(gs))
	}
	for i, g := range gs {
		if g.ID != int64(3+i) {
			t.Fatalf("sample %d has id %d", i, g.ID)
		}
	}
	if _, err := cl.GetRange(5, 20); err == nil {
		t.Fatal("bad range accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 50})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 50))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := transport.Dial(srv.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				id := int64((w*7 + i*3) % 50)
				g, err := cl.Get(id)
				if err != nil {
					errs[w] = err
					return
				}
				if g.ID != id {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

func TestGroupAcrossServers(t *testing.T) {
	// Three servers each holding a third of the dataset — a cross-process
	// replica group.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 30})
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, int64(i*10), int64((i+1)*10)))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	grp, err := transport.NewGroup(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	if grp.Len() != 30 {
		t.Fatalf("group len = %d", grp.Len())
	}
	ids := []int64{29, 0, 15, 7, 22}
	gs, err := grp.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		want, _ := ds.Sample(ids[i])
		if g.ID != ids[i] || g.Y[0] != want.Y[0] {
			t.Fatalf("sample %d corrupted", ids[i])
		}
	}
	if _, err := grp.Get(99); err == nil {
		t.Fatal("unowned id accepted")
	}
}

func TestGroupRejectsGaps(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 30})
	s1, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 15, 30)) // gap [10,15)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := transport.NewGroup([]string{s1.Addr(), s2.Addr()}); err == nil {
		t.Fatal("gapped group accepted")
	}
}

func TestServeDDStoreChunk(t *testing.T) {
	// A core.Store's local chunk is directly servable: the in-process
	// store and the TCP plane return identical bytes.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 24})
	w, err := comm.NewWorld(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, 4)
	stores := make([]*core.Store, 4)
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return err
		}
		srv, err := st.ServeTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		mu.Lock()
		addrs[c.Rank()] = srv.Addr()
		stores[c.Rank()] = st
		mu.Unlock()
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	grp, err := transport.NewGroup(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	for id := int64(0); id < 24; id++ {
		g, err := grp.Get(id)
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		want, _ := ds.Sample(id)
		if g.NumNodes != want.NumNodes || g.Y[0] != want.Y[0] {
			t.Fatalf("sample %d differs over TCP", id)
		}
	}
}

func TestMemChunkBounds(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	ch := chunkFor(t, ds, 2, 5)
	if _, err := ch.LocalSampleBytes(1); err == nil {
		t.Fatal("below-range id accepted")
	}
	if _, err := ch.LocalSampleBytes(5); err == nil {
		t.Fatal("above-range id accepted")
	}
	if lo, hi := ch.LocalRange(); lo != 2 || hi != 5 {
		t.Fatalf("range [%d,%d)", lo, hi)
	}
}

func TestGroupLoaderTrainsAModel(t *testing.T) {
	// End-to-end: chunks served over real TCP feed a real DDP training run.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 60})
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, int64(i*20), int64((i+1)*20)))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	grp, err := transport.NewGroup(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	loader := &ddp.PlaneLoader{Plane: grp}
	if loader.Len() != 60 {
		t.Fatalf("Len = %d", loader.Len())
	}

	w, err := comm.NewWorld(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		model := hydra.New(hydra.Config{
			NodeFeatDim: ds.NodeFeatDim(), HiddenDim: 8, ConvLayers: 1,
			FCLayers: 1, OutputDim: 1, Seed: 2,
		})
		res, err := ddp.Run(c, ddp.Config{
			Loader:     loader,
			LocalBatch: 8,
			Epochs:     2,
			Seed:       4,
			Model:      model,
		})
		if err != nil {
			return err
		}
		if len(res.Epochs) != 2 || res.Epochs[1].TrainLoss <= 0 {
			t.Errorf("training over TCP produced %+v", res.Epochs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
