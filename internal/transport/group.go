package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ddstore/internal/bufarena"
	"ddstore/internal/cache"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
	"ddstore/internal/health"
	"ddstore/internal/obs"
	"ddstore/internal/obs/tracectx"
	"ddstore/internal/shardmap"
)

// GroupOptions configure a Group's clients and failover behaviour.
type GroupOptions struct {
	// Client configures every peer connection (policy, counters, dialer).
	Client ClientOptions
	// FailoverCooldown quarantines a peer after it exhausts its retries:
	// for this long the group prefers other replicas for that peer's range
	// instead of paying the full retry schedule against a dead host on
	// every Get. Quarantined peers are still tried as a last resort.
	// Default 1s; negative disables quarantine.
	FailoverCooldown time.Duration
	// MaxBatch caps how many samples one multi-get request carries.
	// Default 64; the protocol limit is 4096.
	MaxBatch int
	// CacheBytes, if positive, adds a byte-budgeted cache over fetched
	// sample bytes: repeat loads of a cached id cost no round trip, and
	// concurrent misses for one id are coalesced into a single fetch.
	CacheBytes int64
	// CachePolicy selects the cache eviction policy (default LRU).
	CachePolicy cache.Policy
	// CacheShards overrides the cache's shard count (default 8). The byte
	// budget is split evenly across shards, so a lightly-threaded client
	// can set 1 to make the budget exact at the cost of lock sharing.
	CacheShards int
	// FetchParallelism bounds how many owner-grouped chunks one Load
	// fetches concurrently: a batch touching k owners pays
	// ~⌈k/FetchParallelism⌉ round-trip times instead of k. 0 means
	// min(#owners, GOMAXPROCS); 1 restores the serial per-owner loop.
	// Each chunk keeps its own retry/failover sequence; clients are safe
	// for concurrent use, so two chunks failing over to the same peer
	// simply serialize on its connection.
	FetchParallelism int
	// Metrics, when non-nil, receives the engine's fetch-latency histogram.
	Metrics *obs.Registry
	// Spans, when non-nil, receives per-owner fetch spans for the Chrome
	// trace.
	Spans *obs.SpanRing
}

// Group is a set of chunk servers holding the dataset — the cross-process
// analogue of DDStore's replica groups. Ownership routes through a
// versioned shard map (internal/shardmap): the static constructors freeze
// the dialed topology into generation 1, while NewElasticGroup bootstraps
// the map from a seed peer and follows it through live resharding —
// stale-generation responses install the newer map carried in the reply
// and re-route, so a migrated chunk costs one extra round trip, never a
// failover or a hard error.
type Group struct {
	counters Counters
	maxBatch int
	cache    *cache.Cache // nil when CacheBytes <= 0
	// engine is the shared batch-load pipeline (internal/fetch); the group
	// plugs in as its TCP plane via groupPlane. Owner tokens pack
	// (generation, member index) — shardmap.PackOwner — so tokens sort
	// like (generation, member) pairs and an in-flight fetch stays pinned
	// to the generation it was planned under.
	engine *fetch.Engine
	// maps is the versioned ownership view; health quarantines peers by
	// stable member ID across generations.
	maps       *shardmap.Store
	health     *health.Tracker[string]
	clientOpts ClientOptions
	spans      *obs.SpanRing // nil without GroupOptions.Spans
	elastic    bool
	replicas   int // static replica count; 0 for elastic groups

	mu      sync.Mutex
	clients map[string]*Client // by peer address; dialed lazily in elastic mode
}

// NewGroup dials every peer address of a single replica and verifies the
// chunks tile a contiguous range.
func NewGroup(addrs []string) (*Group, error) {
	return NewGroupReplicas([][]string{addrs}, GroupOptions{})
}

// newGroup builds the pieces every constructor shares.
func newGroup(opts GroupOptions) *Group {
	g := &Group{
		counters:   opts.Client.Counters,
		maxBatch:   opts.MaxBatch,
		clientOpts: opts.Client,
		health:     health.NewTracker[string](opts.FailoverCooldown),
		spans:      opts.Spans,
		clients:    map[string]*Client{},
	}
	if g.counters == nil {
		g.counters = nopCounters{}
	}
	if g.maxBatch <= 0 {
		g.maxBatch = 64
	}
	if g.maxBatch > maxBatchIDs {
		g.maxBatch = maxBatchIDs
	}
	if opts.CacheBytes > 0 {
		g.cache = cache.New(cache.Options{
			MaxBytes: opts.CacheBytes,
			Policy:   opts.CachePolicy,
			Shards:   opts.CacheShards,
			Counters: g.counters,
		})
	}
	return g
}

func (g *Group) initEngine(opts GroupOptions) {
	g.engine = fetch.New(fetch.Config{
		Plane:       groupPlane{g: g},
		Cache:       g.cache,
		Parallelism: opts.FetchParallelism,
		ErrPrefix:   "transport",
		Metrics:     opts.Metrics,
		Spans:       opts.Spans,
	})
}

// staticPeer is one dialed peer while a static topology is being frozen
// into its generation-1 map.
type staticPeer struct {
	addr   string
	lo, hi int64
}

// NewGroupReplicas dials one address list per replica group. Every replica
// must tile the same contiguous sample range (chunk boundaries may differ
// between replicas). The topology is frozen into a generation-1 shard map:
// chunk boundaries across all replicas refine the keyspace into shards,
// each owned by one member per replica, ordered by replica — so replica
// preference (sample id modulo replica count) and failover order are
// exactly what the static arithmetic produced.
func NewGroupReplicas(replicas [][]string, opts GroupOptions) (*Group, error) {
	if len(replicas) == 0 {
		return nil, errors.New("transport: no replicas given")
	}
	g := newGroup(opts)
	var sets [][]staticPeer
	for ri, addrs := range replicas {
		var set []staticPeer
		for _, addr := range addrs {
			cl, err := g.clientFor(addr)
			if err != nil {
				g.Close()
				return nil, err
			}
			lo, hi, err := cl.Meta()
			if err != nil {
				g.Close()
				return nil, err
			}
			set = append(set, staticPeer{addr: addr, lo: lo, hi: hi})
		}
		for i := 1; i < len(set); i++ {
			if set[i].lo != set[i-1].hi {
				g.Close()
				return nil, fmt.Errorf("transport: chunk gap in replica %d: peer %d starts at %d, previous ends at %d",
					ri, i, set[i].lo, set[i-1].hi)
			}
		}
		sets = append(sets, set)
	}
	for ri, set := range sets[1:] {
		if len(set) == 0 || len(sets[0]) == 0 {
			continue
		}
		lo, hi := set[0].lo, set[len(set)-1].hi
		lo0, hi0 := sets[0][0].lo, sets[0][len(sets[0])-1].hi
		if lo != lo0 || hi != hi0 {
			g.Close()
			return nil, fmt.Errorf("transport: replica %d spans [%d,%d), replica 0 spans [%d,%d)",
				ri+1, lo, hi, lo0, hi0)
		}
	}
	m, err := staticMap(sets)
	if err != nil {
		g.Close()
		return nil, err
	}
	g.maps, err = shardmap.NewStore(m, 0)
	if err != nil {
		g.Close()
		return nil, err
	}
	g.replicas = len(replicas)
	g.initEngine(opts)
	return g, nil
}

// staticMap freezes a dialed static topology into generation 1: the union
// of every replica's chunk boundaries refines the keyspace into shards on
// which each replica's owner is constant, and each shard's owner list is
// ordered by replica index.
func staticMap(sets [][]staticPeer) (*shardmap.Map, error) {
	m := &shardmap.Map{Gen: 1}
	offset := make([]int, len(sets))
	for ri, set := range sets {
		offset[ri] = len(m.Members)
		for mi, p := range set {
			m.Members = append(m.Members, shardmap.Member{
				ID:   fmt.Sprintf("r%d/%d@%s", ri, mi, p.addr),
				Addr: p.addr,
			})
		}
	}
	boundSet := map[int64]bool{}
	for _, set := range sets {
		for _, p := range set {
			boundSet[p.lo] = true
			boundSet[p.hi] = true
		}
	}
	bounds := make([]int64, 0, len(boundSet))
	for b := range boundSet {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		owners := make([]int, 0, len(sets))
		for ri, set := range sets {
			mi := -1
			for j, p := range set {
				if lo >= p.lo && lo < p.hi {
					mi = j
					break
				}
			}
			if mi < 0 {
				return nil, fmt.Errorf("transport: no peer holds sample %d", lo)
			}
			owners = append(owners, offset[ri]+mi)
		}
		m.Shards = append(m.Shards, shardmap.Shard{Lo: lo, Hi: hi, Owners: owners})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewElasticGroup joins an elastic cluster: the shard map is bootstrapped
// from the first seed address that serves one, and every load routes
// through the live generation from then on. New owners published by later
// generations are dialed on demand; stale-generation responses refresh
// the map in place.
func NewElasticGroup(seeds []string, opts GroupOptions) (*Group, error) {
	if len(seeds) == 0 {
		return nil, errors.New("transport: no seed addresses given")
	}
	g := newGroup(opts)
	var lastErr error
	for _, addr := range seeds {
		cl, err := g.clientFor(addr)
		if err != nil {
			lastErr = err
			continue
		}
		mb, err := cl.ShardMap()
		if err != nil {
			lastErr = err
			continue
		}
		m, err := shardmap.Decode(mb)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := shardmap.NewStore(m, 0)
		if err != nil {
			lastErr = err
			continue
		}
		g.maps = st
		g.elastic = true
		g.initEngine(opts)
		return g, nil
	}
	g.Close()
	return nil, fmt.Errorf("transport: shard map bootstrap failed on all %d seeds: %w", len(seeds), lastErr)
}

// clientFor returns the connection to addr, dialing it on first use.
func (g *Group) clientFor(addr string) (*Client, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if cl, ok := g.clients[addr]; ok {
		return cl, nil
	}
	cl, err := DialOptions(addr, g.clientOpts)
	if err != nil {
		return nil, err
	}
	g.clients[addr] = cl
	return cl, nil
}

// Close releases all connections of all replicas.
func (g *Group) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, cl := range g.clients {
		cl.Close()
	}
	g.clients = map[string]*Client{}
}

// Replicas returns the number of full dataset copies the group can reach:
// the static replica count, or for elastic groups the minimum replica
// width across the current generation's shards.
func (g *Group) Replicas() int {
	if !g.elastic {
		return g.replicas
	}
	m := g.maps.Current()
	width := 0
	for i := range m.Shards {
		if w := m.Shards[i].Width(); width == 0 || w < width {
			width = w
		}
	}
	return width
}

// Len returns the total number of samples in the dataset.
func (g *Group) Len() int {
	if g.maps == nil {
		return 0
	}
	lo, hi := g.maps.Current().Range()
	return int(hi - lo)
}

// Range returns the [lo, hi) sample keyspace of the current generation.
func (g *Group) Range() (int64, int64) {
	if g.maps == nil {
		return 0, 0
	}
	return g.maps.Current().Range()
}

// Generation returns the shard map generation the group currently routes
// against.
func (g *Group) Generation() uint64 { return g.maps.Generation() }

// Refresh re-fetches the shard map from the given peer and installs it if
// newer. The fetch path refreshes itself from stale-generation responses;
// Refresh exists for control planes that want to converge eagerly.
func (g *Group) Refresh(addr string) error {
	cl, err := g.clientFor(addr)
	if err != nil {
		return err
	}
	mb, err := cl.ShardMap()
	if err != nil {
		return err
	}
	m, err := shardmap.Decode(mb)
	if err != nil {
		return err
	}
	_, err = g.maps.ApplyIfNewer(m)
	return err
}

// refreshFromSurvivors polls the current generation's members — skipping
// the ones that just failed at the transport level — for a newer shard
// map and installs the first one found. A crashed owner cannot answer
// with a stale-generation status (it cannot answer at all), so when every
// replica of a chunk is unreachable the survivors are the only source of
// the generation that routed around the crash. Returns whether a newer
// map was installed.
func (g *Group) refreshFromSurvivors(down map[int]bool) bool {
	m := g.maps.Current()
	for mi := range m.Members {
		if down[mi] || m.Members[mi].Addr == "" {
			continue
		}
		cl, err := g.clientFor(m.Members[mi].Addr)
		if err != nil {
			continue
		}
		mb, err := cl.ShardMap()
		if err != nil {
			continue
		}
		nm, err := shardmap.Decode(mb)
		if err != nil {
			continue
		}
		if ok, aerr := g.maps.ApplyIfNewer(nm); aerr == nil && ok {
			g.counters.Inc(CounterStaleRefreshes, 1)
			return true
		}
	}
	return false
}

// Get fetches one sample: a one-element Load, with the same caching,
// failover, and quarantine behaviour.
func (g *Group) Get(id int64) (*graph.Graph, error) {
	out, err := g.Load([]int64{id})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Load fetches a batch of samples (any order), like core.Store.Load but
// over TCP. Cache hits are served from memory; misses are grouped by their
// preferred replica and owning peer, fetched maxBatch ids per round trip,
// and failed over to the owners in other replicas when a peer is
// unreachable or serves corrupt bytes. Concurrent Loads claiming the same
// missing id coalesce into one fetch via the cache's flight table. The
// whole pipeline runs in the shared engine (internal/fetch); this file
// contributes only the TCP wire: replica preference, suspect/cooldown
// failover, stale-generation refresh, and OpGetBatch chunking.
func (g *Group) Load(ids []int64) ([]*graph.Graph, error) {
	out, _, err := g.LoadTimed(ids)
	return out, err
}

// LoadTimed is Load plus per-sample wall-clock fetch latencies, the same
// contract core.Store.LoadTimed has on the RMA plane.
func (g *Group) LoadTimed(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	if g.maps == nil {
		return nil, nil, errors.New("transport: group has no replicas")
	}
	return g.engine.Load(ids)
}

// LoadLazy is LoadTimed without tensor materialization: samples come back
// as header-validated graph.Lazy views over their pooled wire buffers. The
// caller owns the views — materialize via Graph() or Release() each one —
// and the same contract holds on the RMA plane (core.Store.LoadLazy).
func (g *Group) LoadLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error) {
	if g.maps == nil {
		return nil, nil, errors.New("transport: group has no replicas")
	}
	return g.engine.LoadLazy(ids)
}

// LoadLazyTraced is LoadLazy under a distributed trace: tc is the caller's
// span, each per-owner fan-out propagates a child context over the wire
// (when the peers negotiated tracing — GroupOptions.Client.Tracing), and
// the servers' timing trailers come back as "server" category spans in the
// group's span ring, nested inside the request window. With an invalid
// context this is exactly LoadLazy.
func (g *Group) LoadLazyTraced(ids []int64, tc tracectx.Context) ([]*graph.Lazy, []time.Duration, error) {
	if g.maps == nil {
		return nil, nil, errors.New("transport: group has no replicas")
	}
	return g.engine.LoadLazyTraced(ids, tc)
}

// groupPlane adapts the Group to the shared fetch engine. The owner token
// packs (generation, preferred member index); nothing is ever local to a
// TCP client, so every id goes through the cache and the wire.
type groupPlane struct {
	g *Group
}

func (p groupPlane) OwnerOf(id int64) (int, error) {
	m := p.g.maps.Current()
	mi, err := m.PreferredOwner(id)
	if err != nil {
		return 0, fmt.Errorf("transport: no peer holds sample %d", id)
	}
	return shardmap.PackOwner(m.Gen, mi)
}

func (p groupPlane) Local(int) bool { return false }

// FetchOwner fetches one (generation, member) group's ids in
// maxBatch-sized chunks; each chunk keeps its own retry/failover/refresh
// sequence. The token's generation pins the chunk to the map its batch
// was planned under; a generation that has aged out of the history falls
// back to the current one (and the stale-generation protocol corrects any
// resulting misroute).
func (p groupPlane) FetchOwner(owner int, ids []int64, deliver fetch.Deliver) error {
	return p.fetchOwner(owner, ids, tracectx.Context{}, deliver)
}

// FetchOwnerTraced implements fetch.TracedPlane: the engine-minted child
// context rides every wire chunk of this owner's transfer.
func (p groupPlane) FetchOwnerTraced(owner int, ids []int64, tc tracectx.Context, deliver fetch.Deliver) error {
	return p.fetchOwner(owner, ids, tc, deliver)
}

func (p groupPlane) fetchOwner(owner int, ids []int64, tc tracectx.Context, deliver fetch.Deliver) error {
	g := p.g
	gen, _, err := shardmap.UnpackOwner(owner)
	if err != nil {
		return err
	}
	m := g.maps.At(gen)
	if m == nil {
		m = g.maps.Current()
	}
	chunk := append([]int64(nil), ids...)
	sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
	for len(chunk) > 0 {
		n := len(chunk)
		if n > g.maxBatch {
			n = g.maxBatch
		}
		if err := g.fetchChunk(m, chunk[:n], deliver, 0, tc); err != nil {
			return err
		}
		chunk = chunk[n:]
	}
	return nil
}

// maxStaleRetries bounds how many times one chunk re-resolves against a
// freshly installed generation before giving up — each retry only happens
// after a server proved the routing stale, so two hops cover any
// transition that completes while the chunk is in flight.
const maxStaleRetries = 2

// fetchChunk fetches one owner-grouped chunk of at most maxBatch ids
// against the given generation, starting at each id's preferred owner and
// failing the still-missing ids over to the other owners of their shard.
// Quarantined peers are deferred to a last-resort pass, exactly like the
// single-sample path used to do. A stale-generation response installs the
// newer map carried in the reply and re-resolves the leftovers against
// it.
func (g *Group) fetchChunk(m *shardmap.Map, ids []int64, deliver fetch.Deliver, depth int, tc tracectx.Context) error {
	missing := make(map[int64]bool, len(ids))
	width := 0
	for _, id := range ids {
		sh, err := m.ShardOf(id)
		if err != nil {
			return fmt.Errorf("transport: no peer holds sample %d", id)
		}
		if sh.Width() > width {
			width = sh.Width()
		}
		missing[id] = true
	}
	staleSeen := false
	down := map[int]bool{} // members that failed at the transport level
	var lastErr error
	for _, lastResort := range []bool{false, true} {
		for k := 0; k < width && len(missing) > 0; k++ {
			// Regroup the leftovers by their k-th choice owner — shard
			// boundaries (and widths) may differ across the chunk.
			byOwner := map[int][]int64{}
			for id := range missing {
				sh, _ := m.ShardOf(id)
				if k >= sh.Width() {
					continue
				}
				mi := sh.Choice(id, k)
				byOwner[mi] = append(byOwner[mi], id)
			}
			members := make([]int, 0, len(byOwner))
			for mi := range byOwner {
				members = append(members, mi)
			}
			sort.Ints(members)
			for _, mi := range members {
				memID := m.Members[mi].ID
				if g.health.InCooldown(memID) != lastResort {
					continue
				}
				want := byOwner[mi]
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				cl, err := g.clientFor(m.Members[mi].Addr)
				if err != nil {
					lastErr = err
					down[mi] = true
					g.health.MarkSuspect(memID)
					continue
				}
				before := time.Now()
				var buf *bufarena.Buf
				var raws [][]byte
				var timing *ServerTiming
				if tc.Valid() {
					buf, raws, timing, err = cl.GetBatchBufsTraced(want, tc)
				} else {
					buf, raws, err = cl.GetBatchBufs(want)
				}
				per := time.Since(before) / time.Duration(len(want))
				if timing != nil {
					g.recordServerSpans(tc, timing, m, mi, want)
				}
				if err != nil {
					lastErr = err
					if errors.Is(err, ErrOverloaded) {
						// The peer is shedding load, not dying: leave its
						// health alone (the client already backed off) and
						// let another replica try the leftovers.
						continue
					}
					var serr *StaleGenerationError
					if errors.As(err, &serr) {
						// The chunk moved: install the newer map the server
						// sent along and re-resolve after the failover
						// passes. The peer is healthy — no quarantine.
						staleSeen = true
						if nm, derr := shardmap.Decode(serr.MapBytes); derr == nil {
							if ok, aerr := g.maps.ApplyIfNewer(nm); aerr == nil && ok {
								g.counters.Inc(CounterStaleRefreshes, 1)
							}
						}
						continue
					}
					var rerr *RemoteError
					if !errors.As(err, &rerr) {
						// Transport-level failure: the peer may be down.
						down[mi] = true
						g.health.MarkSuspect(memID)
					}
					continue
				}
				// Every delivered sample's Lazy takes its own reference on
				// the shared response buffer; ours is dropped after the
				// loop, so the buffer lives exactly as long as its slowest
				// consumer (cache entry, coalesced waiter, or first-touch
				// decode).
				healthy := true
				for j, id := range want {
					buf.Retain()
					lz, derr := graph.DecodeLazy(raws[j], buf)
					if derr != nil {
						// The frame passed CRC, so the peer is serving
						// corrupt source bytes: leave the id missing for
						// another replica and avoid this peer for a while.
						buf.Release()
						lastErr = fmt.Errorf("transport: sample %d from member %s: %w", id, memID, derr)
						healthy = false
						continue
					}
					delete(missing, id)
					if k > 0 || lastResort {
						g.counters.Inc(CounterFailovers, 1)
					}
					deliver(id, raws[j], lz, per)
				}
				buf.Release()
				if healthy {
					g.health.Clear(memID)
				} else {
					g.health.MarkSuspect(memID)
				}
			}
		}
	}
	if len(missing) > 0 {
		// A server that proved the routing stale already handed us the newer
		// map. When every replica died at the transport level instead — a
		// crashed owner can't answer stale — ask the surviving members for
		// the generation that routed around it. Either way the leftovers
		// re-resolve against the freshest installed map, bounded by depth.
		if depth < maxStaleRetries {
			refreshed := staleSeen
			if !refreshed && g.elastic && len(down) > 0 {
				refreshed = g.refreshFromSurvivors(down)
			}
			if refreshed {
				left := make([]int64, 0, len(missing))
				for id := range missing {
					left = append(left, id)
				}
				sort.Slice(left, func(a, b int) bool { return left[a] < left[b] })
				if tc.Valid() && g.spans != nil {
					// Mark the extra hop on the trace: the chunk re-resolved
					// against a newer generation mid-request.
					g.spans.Record(obs.Span{
						Name: "stale-retry", Cat: "fetch", Owner: -1,
						Samples: len(left), Start: obs.EpochNow(),
						TraceID: tc.TraceID, ParentID: tc.SpanID,
						Gen: g.maps.Generation(),
					})
				}
				return g.fetchChunk(g.maps.Current(), left, deliver, depth+1, tc)
			}
		}
		return fmt.Errorf("transport: %d of %d samples failed on all %d replicas: %w",
			len(missing), len(ids), width, lastErr)
	}
	return nil
}

// recordServerSpans merges one timing trailer into the span ring as
// "server" category spans nested inside the client's request window. The
// trailer carries durations, not timestamps — server and client clocks
// need not agree — so the server window is anchored to the client's view
// of the request end: it ended Service ago, from which the queue-wait and
// chunk-source segments lay out in order.
func (g *Group) recordServerSpans(tc tracectx.Context, t *ServerTiming, m *shardmap.Map, mi int, want []int64) {
	if g.spans == nil {
		return
	}
	reqEnd := obs.EpochNow()
	serverStart := reqEnd - t.Service
	gen := t.Generation
	if gen == 0 {
		// A standalone chunk server carries no shard map; attribute the
		// request to the generation the client routed it under.
		gen = m.Gen
	}
	var shardLo int64
	if len(want) > 0 {
		if sh, err := m.ShardOf(want[0]); err == nil {
			shardLo = sh.Lo
		}
	}
	sub := tc.Child()
	base := obs.Span{
		Cat: "server", Owner: mi, Samples: len(want), Tenant: t.Tenant,
		Gen: gen, ShardLo: shardLo,
		TraceID: sub.TraceID, SpanID: sub.SpanID, ParentID: tc.SpanID,
	}
	req := base
	req.Name, req.Start, req.Dur, req.Bytes = "server-request", serverStart, t.Service, t.Bytes
	spans := make([]obs.Span, 1, 3)
	spans[0] = req
	if t.QueueWait > 0 {
		qw := base
		qw.SpanID, qw.ParentID = tc.Child().SpanID, sub.SpanID
		qw.Name, qw.Start, qw.Dur = "server-queue-wait", serverStart, t.QueueWait
		spans = append(spans, qw)
	}
	if t.Source > 0 {
		src := base
		src.SpanID, src.ParentID = tc.Child().SpanID, sub.SpanID
		src.Name, src.Start, src.Dur = "server-chunk-source", serverStart+t.QueueWait, t.Source
		spans = append(spans, src)
	}
	g.spans.RecordAll(spans...)
}

// CacheStats returns the group's cache counters; the zero Stats when the
// group was built without a cache.
func (g *Group) CacheStats() cache.Stats {
	if g.cache == nil {
		return cache.Stats{}
	}
	return g.cache.Stats()
}

// LatencyStats summarizes per-sample fetch latency over the engine's
// sliding window (p50/p95/p99 of the most recent fetches).
func (g *Group) LatencyStats() fetch.LatencySummary {
	return g.engine.LatencyStats()
}
