package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ddstore/internal/graph"
)

// GroupOptions configure a Group's clients and failover behaviour.
type GroupOptions struct {
	// Client configures every peer connection (policy, counters, dialer).
	Client ClientOptions
	// FailoverCooldown quarantines a peer after it exhausts its retries:
	// for this long the group prefers other replicas for that peer's range
	// instead of paying the full retry schedule against a dead host on
	// every Get. Quarantined peers are still tried as a last resort.
	// Default 1s; negative disables quarantine.
	FailoverCooldown time.Duration
}

// member is one peer of one replica group.
type member struct {
	cl     *Client
	lo, hi int64
}

// replicaSet is one complete copy of the dataset, striped over members.
type replicaSet struct {
	members []*member
	lo, hi  int64
}

// ownerOf returns the member index holding sample id, or -1.
func (r *replicaSet) ownerOf(id int64) int {
	for i, m := range r.members {
		if id >= m.lo && id < m.hi {
			return i
		}
	}
	return -1
}

// Group is a set of chunk servers holding the dataset — the cross-process
// analogue of DDStore's replica groups. With one replica it routes Gets by
// owner arithmetic exactly like the in-process store; with several
// replicas (width w < N gives r = N/w full copies, paper §3.1) it spreads
// load over the replicas and fails a sample over to the corresponding
// owner in another replica when its preferred owner is unreachable.
type Group struct {
	replicas []*replicaSet
	counters Counters
	cooldown time.Duration

	mu      sync.Mutex
	suspect map[[2]int]time.Time // {replica, member} -> quarantine expiry
}

// NewGroup dials every peer address of a single replica and verifies the
// chunks tile a contiguous range.
func NewGroup(addrs []string) (*Group, error) {
	return NewGroupReplicas([][]string{addrs}, GroupOptions{})
}

// NewGroupReplicas dials one address list per replica group. Every replica
// must tile the same contiguous sample range (chunk boundaries may differ
// between replicas).
func NewGroupReplicas(replicas [][]string, opts GroupOptions) (*Group, error) {
	if len(replicas) == 0 {
		return nil, errors.New("transport: no replicas given")
	}
	g := &Group{
		counters: opts.Client.Counters,
		cooldown: opts.FailoverCooldown,
		suspect:  map[[2]int]time.Time{},
	}
	if g.counters == nil {
		g.counters = nopCounters{}
	}
	if g.cooldown == 0 {
		g.cooldown = time.Second
	}
	for ri, addrs := range replicas {
		rs := &replicaSet{}
		for _, addr := range addrs {
			cl, err := DialOptions(addr, opts.Client)
			if err != nil {
				g.Close()
				return nil, err
			}
			lo, hi, err := cl.Meta()
			if err != nil {
				g.Close()
				cl.Close()
				return nil, err
			}
			rs.members = append(rs.members, &member{cl: cl, lo: lo, hi: hi})
		}
		for i := 1; i < len(rs.members); i++ {
			if rs.members[i].lo != rs.members[i-1].hi {
				g.Close()
				return nil, fmt.Errorf("transport: chunk gap in replica %d: peer %d starts at %d, previous ends at %d",
					ri, i, rs.members[i].lo, rs.members[i-1].hi)
			}
		}
		if len(rs.members) > 0 {
			rs.lo = rs.members[0].lo
			rs.hi = rs.members[len(rs.members)-1].hi
		}
		g.replicas = append(g.replicas, rs)
	}
	for ri, rs := range g.replicas[1:] {
		if rs.lo != g.replicas[0].lo || rs.hi != g.replicas[0].hi {
			g.Close()
			return nil, fmt.Errorf("transport: replica %d spans [%d,%d), replica 0 spans [%d,%d)",
				ri+1, rs.lo, rs.hi, g.replicas[0].lo, g.replicas[0].hi)
		}
	}
	return g, nil
}

// Close releases all connections of all replicas.
func (g *Group) Close() {
	for _, rs := range g.replicas {
		for _, m := range rs.members {
			m.cl.Close()
		}
	}
}

// Replicas returns the number of full dataset copies the group can reach.
func (g *Group) Replicas() int { return len(g.replicas) }

// Len returns the total number of samples in the dataset.
func (g *Group) Len() int64 {
	if len(g.replicas) == 0 {
		return 0
	}
	return g.replicas[0].hi - g.replicas[0].lo
}

// inCooldown reports whether the peer is quarantined.
func (g *Group) inCooldown(ri, mi int) bool {
	if g.cooldown < 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	until, ok := g.suspect[[2]int{ri, mi}]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(g.suspect, [2]int{ri, mi})
		return false
	}
	return true
}

func (g *Group) markSuspect(ri, mi int) {
	if g.cooldown < 0 {
		return
	}
	g.mu.Lock()
	g.suspect[[2]int{ri, mi}] = time.Now().Add(g.cooldown)
	g.mu.Unlock()
}

func (g *Group) clearSuspect(ri, mi int) {
	g.mu.Lock()
	delete(g.suspect, [2]int{ri, mi})
	g.mu.Unlock()
}

// Get fetches one sample. The preferred replica rotates with the sample id
// to spread load; on failure the sample is retried against the owning peer
// of each other replica before an error surfaces. Quarantined peers are
// deferred to a last-resort pass so a dead host does not cost the full
// retry schedule on every sample.
func (g *Group) Get(id int64) (*graph.Graph, error) {
	n := len(g.replicas)
	if n == 0 || id < g.replicas[0].lo || id >= g.replicas[0].hi {
		return nil, fmt.Errorf("transport: no peer holds sample %d", id)
	}
	start := int(id) % n
	if start < 0 {
		start = 0
	}
	var lastErr error
	attempts := 0
	for _, lastResort := range []bool{false, true} {
		for k := 0; k < n; k++ {
			ri := (start + k) % n
			mi := g.replicas[ri].ownerOf(id)
			if mi < 0 {
				continue
			}
			if g.inCooldown(ri, mi) != lastResort {
				continue
			}
			gph, err := g.replicas[ri].members[mi].cl.Get(id)
			if err == nil {
				if attempts > 0 {
					g.counters.Inc(CounterFailovers, 1)
				}
				g.clearSuspect(ri, mi)
				return gph, nil
			}
			attempts++
			lastErr = err
			var rerr *RemoteError
			if !errors.As(err, &rerr) {
				// Transport-level failure: the peer may be down.
				g.markSuspect(ri, mi)
			}
		}
	}
	return nil, fmt.Errorf("transport: sample %d failed on all %d replicas: %w", id, n, lastErr)
}

// Load fetches a batch of samples (any order), like core.Store.Load but
// over TCP with failover.
func (g *Group) Load(ids []int64) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, len(ids))
	for i, id := range ids {
		gph, err := g.Get(id)
		if err != nil {
			return nil, err
		}
		out[i] = gph
	}
	return out, nil
}

// GroupLoader adapts a Group to the batch-loading contract of the DDP
// trainer (ddp.Loader): batches are fetched sample-by-sample from the
// owning peers over TCP. Latency reporting is nil — wall-clock timing of a
// real network needs no model.
type GroupLoader struct {
	Group *Group
}

// Len returns the total number of samples across the group.
func (l *GroupLoader) Len() int { return int(l.Group.Len()) }

// LoadBatch fetches the given sample ids from their owners.
func (l *GroupLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	graphs, err := l.Group.Load(ids)
	return graphs, nil, err
}
