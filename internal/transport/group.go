package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
)

// GroupOptions configure a Group's clients and failover behaviour.
type GroupOptions struct {
	// Client configures every peer connection (policy, counters, dialer).
	Client ClientOptions
	// FailoverCooldown quarantines a peer after it exhausts its retries:
	// for this long the group prefers other replicas for that peer's range
	// instead of paying the full retry schedule against a dead host on
	// every Get. Quarantined peers are still tried as a last resort.
	// Default 1s; negative disables quarantine.
	FailoverCooldown time.Duration
	// MaxBatch caps how many samples one multi-get request carries.
	// Default 64; the protocol limit is 4096.
	MaxBatch int
	// CacheBytes, if positive, adds a byte-budgeted cache over fetched
	// sample bytes: repeat loads of a cached id cost no round trip, and
	// concurrent misses for one id are coalesced into a single fetch.
	CacheBytes int64
	// CachePolicy selects the cache eviction policy (default LRU).
	CachePolicy cache.Policy
	// CacheShards overrides the cache's shard count (default 8). The byte
	// budget is split evenly across shards, so a lightly-threaded client
	// can set 1 to make the budget exact at the cost of lock sharing.
	CacheShards int
	// FetchParallelism bounds how many owner-grouped chunks one Load
	// fetches concurrently: a batch touching k owners pays
	// ~⌈k/FetchParallelism⌉ round-trip times instead of k. 0 means
	// min(#owners, GOMAXPROCS); 1 restores the serial per-owner loop.
	// Each chunk keeps its own retry/failover sequence; clients are safe
	// for concurrent use, so two chunks failing over to the same peer
	// simply serialize on its connection.
	FetchParallelism int
	// Metrics, when non-nil, receives the engine's fetch-latency histogram.
	Metrics *obs.Registry
	// Spans, when non-nil, receives per-owner fetch spans for the Chrome
	// trace.
	Spans *obs.SpanRing
}

// member is one peer of one replica group.
type member struct {
	cl     *Client
	lo, hi int64
}

// replicaSet is one complete copy of the dataset, striped over members.
type replicaSet struct {
	members []*member
	lo, hi  int64
}

// ownerOf returns the member index holding sample id, or -1.
func (r *replicaSet) ownerOf(id int64) int {
	for i, m := range r.members {
		if id >= m.lo && id < m.hi {
			return i
		}
	}
	return -1
}

// Group is a set of chunk servers holding the dataset — the cross-process
// analogue of DDStore's replica groups. With one replica it routes Gets by
// owner arithmetic exactly like the in-process store; with several
// replicas (width w < N gives r = N/w full copies, paper §3.1) it spreads
// load over the replicas and fails a sample over to the corresponding
// owner in another replica when its preferred owner is unreachable.
type Group struct {
	replicas []*replicaSet
	counters Counters
	cooldown time.Duration
	maxBatch int
	cache    *cache.Cache // nil when CacheBytes <= 0
	// engine is the shared batch-load pipeline (internal/fetch); the group
	// plugs in as its TCP plane via groupPlane. stride packs the engine's
	// owner token as replica*stride+member, so tokens sort exactly like
	// (replica, member) pairs.
	engine *fetch.Engine
	stride int

	mu      sync.Mutex
	suspect map[[2]int]time.Time // {replica, member} -> quarantine expiry
}

// NewGroup dials every peer address of a single replica and verifies the
// chunks tile a contiguous range.
func NewGroup(addrs []string) (*Group, error) {
	return NewGroupReplicas([][]string{addrs}, GroupOptions{})
}

// NewGroupReplicas dials one address list per replica group. Every replica
// must tile the same contiguous sample range (chunk boundaries may differ
// between replicas).
func NewGroupReplicas(replicas [][]string, opts GroupOptions) (*Group, error) {
	if len(replicas) == 0 {
		return nil, errors.New("transport: no replicas given")
	}
	g := &Group{
		counters: opts.Client.Counters,
		cooldown: opts.FailoverCooldown,
		suspect:  map[[2]int]time.Time{},
	}
	if g.counters == nil {
		g.counters = nopCounters{}
	}
	if g.cooldown == 0 {
		g.cooldown = time.Second
	}
	g.maxBatch = opts.MaxBatch
	if g.maxBatch <= 0 {
		g.maxBatch = 64
	}
	if g.maxBatch > maxBatchIDs {
		g.maxBatch = maxBatchIDs
	}
	if opts.CacheBytes > 0 {
		g.cache = cache.New(cache.Options{
			MaxBytes: opts.CacheBytes,
			Policy:   opts.CachePolicy,
			Shards:   opts.CacheShards,
			Counters: g.counters,
		})
	}
	for ri, addrs := range replicas {
		rs := &replicaSet{}
		for _, addr := range addrs {
			cl, err := DialOptions(addr, opts.Client)
			if err != nil {
				g.Close()
				return nil, err
			}
			lo, hi, err := cl.Meta()
			if err != nil {
				g.Close()
				cl.Close()
				return nil, err
			}
			rs.members = append(rs.members, &member{cl: cl, lo: lo, hi: hi})
		}
		for i := 1; i < len(rs.members); i++ {
			if rs.members[i].lo != rs.members[i-1].hi {
				g.Close()
				return nil, fmt.Errorf("transport: chunk gap in replica %d: peer %d starts at %d, previous ends at %d",
					ri, i, rs.members[i].lo, rs.members[i-1].hi)
			}
		}
		if len(rs.members) > 0 {
			rs.lo = rs.members[0].lo
			rs.hi = rs.members[len(rs.members)-1].hi
		}
		g.replicas = append(g.replicas, rs)
	}
	for ri, rs := range g.replicas[1:] {
		if rs.lo != g.replicas[0].lo || rs.hi != g.replicas[0].hi {
			g.Close()
			return nil, fmt.Errorf("transport: replica %d spans [%d,%d), replica 0 spans [%d,%d)",
				ri+1, rs.lo, rs.hi, g.replicas[0].lo, g.replicas[0].hi)
		}
	}
	for _, rs := range g.replicas {
		if len(rs.members) > g.stride {
			g.stride = len(rs.members)
		}
	}
	if g.stride == 0 {
		g.stride = 1
	}
	g.engine = fetch.New(fetch.Config{
		Plane:       groupPlane{g: g},
		Cache:       g.cache,
		Parallelism: opts.FetchParallelism,
		ErrPrefix:   "transport",
		Metrics:     opts.Metrics,
		Spans:       opts.Spans,
	})
	return g, nil
}

// Close releases all connections of all replicas.
func (g *Group) Close() {
	for _, rs := range g.replicas {
		for _, m := range rs.members {
			m.cl.Close()
		}
	}
}

// Replicas returns the number of full dataset copies the group can reach.
func (g *Group) Replicas() int { return len(g.replicas) }

// Len returns the total number of samples in the dataset.
func (g *Group) Len() int {
	if len(g.replicas) == 0 {
		return 0
	}
	return int(g.replicas[0].hi - g.replicas[0].lo)
}

// inCooldown reports whether the peer is quarantined.
func (g *Group) inCooldown(ri, mi int) bool {
	if g.cooldown < 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	until, ok := g.suspect[[2]int{ri, mi}]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(g.suspect, [2]int{ri, mi})
		return false
	}
	return true
}

func (g *Group) markSuspect(ri, mi int) {
	if g.cooldown < 0 {
		return
	}
	g.mu.Lock()
	g.suspect[[2]int{ri, mi}] = time.Now().Add(g.cooldown)
	g.mu.Unlock()
}

func (g *Group) clearSuspect(ri, mi int) {
	g.mu.Lock()
	delete(g.suspect, [2]int{ri, mi})
	g.mu.Unlock()
}

// Get fetches one sample: a one-element Load, with the same caching,
// failover, and quarantine behaviour.
func (g *Group) Get(id int64) (*graph.Graph, error) {
	out, err := g.Load([]int64{id})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Load fetches a batch of samples (any order), like core.Store.Load but
// over TCP. Cache hits are served from memory; misses are grouped by their
// preferred replica and owning peer, fetched maxBatch ids per round trip,
// and failed over to the owners in other replicas when a peer is
// unreachable or serves corrupt bytes. Concurrent Loads claiming the same
// missing id coalesce into one fetch via the cache's flight table. The
// whole pipeline runs in the shared engine (internal/fetch); this file
// contributes only the TCP wire: replica preference, suspect/cooldown
// failover, and OpGetBatch chunking.
func (g *Group) Load(ids []int64) ([]*graph.Graph, error) {
	out, _, err := g.LoadTimed(ids)
	return out, err
}

// LoadTimed is Load plus per-sample wall-clock fetch latencies, the same
// contract core.Store.LoadTimed has on the RMA plane.
func (g *Group) LoadTimed(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	if len(g.replicas) == 0 {
		return nil, nil, errors.New("transport: group has no replicas")
	}
	return g.engine.Load(ids)
}

// LoadLazy is LoadTimed without tensor materialization: samples come back
// as header-validated graph.Lazy views over their pooled wire buffers. The
// caller owns the views — materialize via Graph() or Release() each one —
// and the same contract holds on the RMA plane (core.Store.LoadLazy).
func (g *Group) LoadLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error) {
	if len(g.replicas) == 0 {
		return nil, nil, errors.New("transport: group has no replicas")
	}
	return g.engine.LoadLazy(ids)
}

// groupPlane adapts the Group to the shared fetch engine. The owner token
// encodes (preferred replica, owning member) as ri*stride+mi; nothing is
// ever local to a TCP client, so every id goes through the cache and the
// wire.
type groupPlane struct {
	g *Group
}

func (p groupPlane) OwnerOf(id int64) (int, error) {
	g := p.g
	if id < g.replicas[0].lo || id >= g.replicas[0].hi {
		return 0, fmt.Errorf("transport: no peer holds sample %d", id)
	}
	// Spread load over the replicas by preferring replica id%n, exactly
	// like the single-sample path used to do.
	ri := int(id) % len(g.replicas)
	if ri < 0 {
		ri = 0
	}
	mi := g.replicas[ri].ownerOf(id)
	if mi < 0 {
		return 0, fmt.Errorf("transport: no peer holds sample %d", id)
	}
	return ri*g.stride + mi, nil
}

func (p groupPlane) Local(int) bool { return false }

// FetchOwner fetches one (replica, member) group's ids in maxBatch-sized
// chunks; each chunk keeps its own retry/failover sequence.
func (p groupPlane) FetchOwner(owner int, ids []int64, deliver fetch.Deliver) error {
	g := p.g
	ri := owner / g.stride
	chunk := append([]int64(nil), ids...)
	sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
	for len(chunk) > 0 {
		m := len(chunk)
		if m > g.maxBatch {
			m = g.maxBatch
		}
		if err := g.fetchChunk(ri, chunk[:m], deliver); err != nil {
			return err
		}
		chunk = chunk[m:]
	}
	return nil
}

// fetchChunk fetches one owner-grouped chunk of at most maxBatch ids,
// starting at the preferred replica and failing the still-missing ids over
// to the owners in the other replicas. Quarantined peers are deferred to a
// last-resort pass, exactly like the single-sample path used to do.
func (g *Group) fetchChunk(start int, ids []int64, deliver fetch.Deliver) error {
	n := len(g.replicas)
	missing := make(map[int64]bool, len(ids))
	for _, id := range ids {
		missing[id] = true
	}
	var lastErr error
	for _, lastResort := range []bool{false, true} {
		for k := 0; k < n && len(missing) > 0; k++ {
			ri := (start + k) % n
			// Regroup the leftovers by owner in THIS replica — chunk
			// boundaries may differ between replicas.
			byOwner := map[int][]int64{}
			for id := range missing {
				if mi := g.replicas[ri].ownerOf(id); mi >= 0 {
					byOwner[mi] = append(byOwner[mi], id)
				}
			}
			members := make([]int, 0, len(byOwner))
			for mi := range byOwner {
				members = append(members, mi)
			}
			sort.Ints(members)
			for _, mi := range members {
				if g.inCooldown(ri, mi) != lastResort {
					continue
				}
				want := byOwner[mi]
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				before := time.Now()
				buf, raws, err := g.replicas[ri].members[mi].cl.GetBatchBufs(want)
				per := time.Since(before) / time.Duration(len(want))
				if err != nil {
					lastErr = err
					if errors.Is(err, ErrOverloaded) {
						// The peer is shedding load, not dying: leave its
						// health alone (the client already backed off) and
						// let another replica try the leftovers.
						continue
					}
					var rerr *RemoteError
					if !errors.As(err, &rerr) {
						// Transport-level failure: the peer may be down.
						g.markSuspect(ri, mi)
					}
					continue
				}
				// Every delivered sample's Lazy takes its own reference on
				// the shared response buffer; ours is dropped after the
				// loop, so the buffer lives exactly as long as its slowest
				// consumer (cache entry, coalesced waiter, or first-touch
				// decode).
				healthy := true
				for j, id := range want {
					buf.Retain()
					lz, derr := graph.DecodeLazy(raws[j], buf)
					if derr != nil {
						// The frame passed CRC, so the peer is serving
						// corrupt source bytes: leave the id missing for
						// another replica and avoid this peer for a while.
						buf.Release()
						lastErr = fmt.Errorf("transport: sample %d from replica %d: %w", id, ri, derr)
						healthy = false
						continue
					}
					delete(missing, id)
					if k > 0 || lastResort {
						g.counters.Inc(CounterFailovers, 1)
					}
					deliver(id, raws[j], lz, per)
				}
				buf.Release()
				if healthy {
					g.clearSuspect(ri, mi)
				} else {
					g.markSuspect(ri, mi)
				}
			}
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("transport: %d of %d samples failed on all %d replicas: %w",
			len(missing), len(ids), n, lastErr)
	}
	return nil
}

// CacheStats returns the group's cache counters; the zero Stats when the
// group was built without a cache.
func (g *Group) CacheStats() cache.Stats {
	if g.cache == nil {
		return cache.Stats{}
	}
	return g.cache.Stats()
}

// LatencyStats summarizes per-sample fetch latency over the engine's
// sliding window (p50/p95/p99 of the most recent fetches).
func (g *Group) LatencyStats() fetch.LatencySummary {
	return g.engine.LatencyStats()
}
