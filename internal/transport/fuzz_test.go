package transport

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// reqBytes crafts one wire request header for the seed corpus.
func reqBytes(op byte, a, b int64) []byte {
	var h [reqHeaderSize]byte
	h[0] = op
	binary.LittleEndian.PutUint64(h[1:], uint64(a))
	binary.LittleEndian.PutUint64(h[9:], uint64(b))
	return h[:]
}

// FuzzRoundTrip throws arbitrary byte streams at both ends of the wire
// protocol: as a request stream into a live server handler, and as a
// response stream into a client. Neither side may panic, hang past its
// deadline, or accept a frame whose checksum does not match.
func FuzzRoundTrip(f *testing.F) {
	f.Add(reqBytes(opMeta, 0, 0))
	f.Add(reqBytes(opGet, 3, 0))
	f.Add(reqBytes(opMulti, 1, 6))
	f.Add(append(reqBytes(opMeta, 0, 0), reqBytes(opGet, 7, 0)...))
	f.Add(reqBytes(99, -1, 1<<40))
	f.Add(append(reqBytes(opGetBatch, 2, 0), encodeBatchIDs([]int64{3, 5})...))
	f.Add(reqBytes(opGetBatch, maxBatchIDs+1, 0))
	// A valid OK response frame seeds the client-side path too.
	f.Add([]byte{statusOK, 16, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) { fuzzRoundTripBody(t, data) })
}

func fuzzRoundTripBody(t testing.TB, data []byte) {
	fuzzServerSide(t, data)
	fuzzClientSide(t, data)
}

func fuzzServerSide(t testing.TB, data []byte) {
	chunk := wireChunk(0, 8)
	{
		// Server side: data is a hostile request stream.
		srv := &Server{src: chunk, opts: ServerOptions{WriteTimeout: time.Second},
			conns: map[net.Conn]*connState{}, done: make(chan struct{})}
		serverEnd, clientEnd := net.Pipe()
		handleDone := make(chan struct{})
		go func() {
			defer close(handleDone)
			srv.handle(serverEnd, &connState{}, nil)
		}()
		go io.Copy(io.Discard, clientEnd) // drain responses
		clientEnd.SetWriteDeadline(time.Now().Add(time.Second))
		clientEnd.Write(data)
		clientEnd.Close()
		serverEnd.Close()
		select {
		case <-handleDone:
		case <-time.After(5 * time.Second):
			t.Fatal("server handler hung on fuzz input")
		}
	}
}

func fuzzClientSide(t testing.TB, data []byte) {
	{
		// Client side: data is a hostile response stream.
		cEnd, fakeSrv := net.Pipe()
		dialed := false
		go io.Copy(io.Discard, fakeSrv) // absorb the request
		go func() {
			fakeSrv.SetWriteDeadline(time.Now().Add(time.Second))
			fakeSrv.Write(data)
			fakeSrv.Close()
		}()
		cl, err := DialOptions("fuzz", ClientOptions{
			Policy: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond,
				ReadTimeout: 200 * time.Millisecond, WriteTimeout: 200 * time.Millisecond,
				Seed: 1},
			Dialer: func(string) (net.Conn, error) {
				if dialed {
					return nil, io.ErrClosedPipe
				}
				dialed = true
				return cEnd, nil
			},
		})
		if err != nil {
			return
		}
		cl.Get(2) // must not panic; errors are expected
		cl.Close()
	}
}
