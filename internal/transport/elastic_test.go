package transport

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ddstore/internal/graph"
	"ddstore/internal/shardmap"
	"ddstore/internal/trace"
)

// mapSource adapts a shardmap.Store to the server's ShardMapSource hook
// for one member, the same way serveboot does in production.
type mapSource struct {
	st *shardmap.Store
	id string
}

func (s *mapSource) Generation() uint64 { return s.st.Generation() }

func (s *mapSource) Owns(id int64) bool {
	m := s.st.Current()
	mi := m.MemberIndex(s.id)
	return mi >= 0 && m.OwnedBy(id, mi)
}

func (s *mapSource) Encoded() ([]byte, error) { return s.st.Encoded() }

// elasticPair boots two servers that each hold the full dataset [0,100)
// but own only their half under generation 1 of the shard map. Each
// server has its own map store (as real processes would); the returned
// apply function advances both to a given next generation.
func elasticPair(t *testing.T) (a, b *Server, stores [2]*shardmap.Store, apply func(*shardmap.Map)) {
	t.Helper()
	chunk := wireChunk(0, 100)
	servers := make([]*Server, 2)
	addrs := make([]string, 2)
	// Dial order problem: member addresses must be in the map before the
	// servers exist. Boot listeners first to learn the ports.
	for i := range servers {
		srv, err := Serve("127.0.0.1:0", chunk)
		if err != nil {
			t.Fatal(err)
		}
		srv.Close() // only needed the port probe; real servers boot below
		addrs[i] = srv.Addr()
	}
	members := []shardmap.Member{{ID: "a", Addr: addrs[0]}, {ID: "b", Addr: addrs[1]}}
	m := &shardmap.Map{Gen: 1, Members: members, Shards: []shardmap.Shard{
		{Lo: 0, Hi: 50, Owners: []int{0}},
		{Lo: 50, Hi: 100, Owners: []int{1}},
	}}
	for i, id := range []string{"a", "b"} {
		st, err := shardmap.NewStore(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		srv, err := ServeWith(addrs[i], chunk, ServerOptions{ShardMap: &mapSource{st: st, id: id}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[i] = srv
	}
	apply = func(next *shardmap.Map) {
		for _, st := range stores {
			if err := st.Apply(next); err != nil {
				t.Fatal(err)
			}
		}
	}
	return servers[0], servers[1], stores, apply
}

func TestClientShardMapBootstrap(t *testing.T) {
	a, _, stores, _ := elasticPair(t)
	cl, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mb, err := cl.ShardMap()
	if err != nil {
		t.Fatal(err)
	}
	m, err := shardmap.Decode(mb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != stores[0].Generation() {
		t.Fatalf("bootstrap gen = %d, want %d", m.Gen, stores[0].Generation())
	}
	if len(m.Members) != 2 || m.Members[0].ID != "a" {
		t.Fatalf("bootstrap members = %+v", m.Members)
	}
}

func TestShardMapOpWithoutSourceIsRemoteError(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.ShardMap()
	var rerr *RemoteError
	if !errors.As(err, &rerr) || !strings.Contains(err.Error(), "shard map") {
		t.Fatalf("err = %v, want remote no-shard-map error", err)
	}
}

func TestStaleGenerationCarriesCurrentMap(t *testing.T) {
	a, _, stores, apply := elasticPair(t)
	cl, err := DialOptions(a.Addr(), ClientOptions{Policy: fastPolicy()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Owned sample: served normally.
	if _, err := cl.Get(10); err != nil {
		t.Fatal(err)
	}

	// Move a's shard away: gen 2 gives everything to b.
	next := stores[0].Current().Clone()
	next.Gen = 2
	next.Shards[0].Owners = []int{1}
	apply(next)

	_, err = cl.Get(10)
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("err = %v, want ErrStaleGeneration", err)
	}
	var serr *StaleGenerationError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *StaleGenerationError", err)
	}
	m, derr := shardmap.Decode(serr.MapBytes)
	if derr != nil {
		t.Fatalf("stale payload does not decode: %v", derr)
	}
	if m.Gen != 2 {
		t.Fatalf("stale payload gen = %d, want 2", m.Gen)
	}
	// Batched ops answer stale the same way, and the connection stays
	// usable for owned samples afterwards.
	if _, err := cl.GetBatchRaw([]int64{10, 11}); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("batch err = %v, want ErrStaleGeneration", err)
	}
	if _, err := cl.GetRange(10, 12); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("range err = %v, want ErrStaleGeneration", err)
	}
}

func TestElasticGroupBootstrapAndLoad(t *testing.T) {
	a, _, _, _ := elasticPair(t)
	g, err := NewElasticGroup([]string{a.Addr()}, GroupOptions{Client: ClientOptions{Policy: fastPolicy()}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", g.Generation())
	}
	if g.Len() != 100 {
		t.Fatalf("Len = %d, want 100", g.Len())
	}
	if g.Replicas() != 1 {
		t.Fatalf("Replicas = %d, want 1", g.Replicas())
	}
	// Ids spanning both owners: the second owner is dialed on demand from
	// the bootstrapped map.
	ids := []int64{5, 55, 10, 95}
	gs, err := g.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if gs[i].ID != id {
			t.Fatalf("slot %d: got %d, want %d", i, gs[i].ID, id)
		}
	}
}

func TestElasticGroupRefreshesOnStaleGeneration(t *testing.T) {
	a, _, stores, apply := elasticPair(t)
	prof := trace.New()
	g, err := NewElasticGroup([]string{a.Addr()}, GroupOptions{
		Client: ClientOptions{Policy: fastPolicy(), Counters: prof},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// The cluster reshards while the client still routes gen 1: shard
	// [0,50) moves from a to b.
	next := stores[0].Current().Clone()
	next.Gen = 2
	next.Shards[0].Owners = []int{1}
	apply(next)

	// The group's first touch of the moved range hits a, gets the stale
	// status with gen 2 attached, refreshes, and retries b — one logical
	// load, zero client-visible errors, zero failovers (the peer was
	// healthy, just no longer the owner).
	gr, err := g.Get(10)
	if err != nil {
		t.Fatalf("load across a generation bump failed: %v", err)
	}
	if gr.ID != 10 {
		t.Fatalf("got sample %d, want 10", gr.ID)
	}
	if g.Generation() != 2 {
		t.Fatalf("group generation = %d, want 2 after refresh", g.Generation())
	}
	if got := prof.Counter(CounterStaleRefreshes); got < 1 {
		t.Fatalf("stale refreshes = %d, want >= 1", got)
	}
	if got := prof.Counter(CounterFailovers); got != 0 {
		t.Fatalf("failovers = %d, want 0 (stale is not a failover)", got)
	}
	// Later loads route straight to the new owner: no further refreshes.
	before := prof.Counter(CounterStaleRefreshes)
	if _, err := g.Load([]int64{20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	if got := prof.Counter(CounterStaleRefreshes); got != before {
		t.Fatalf("stale refreshes grew %d -> %d on a fresh map", before, got)
	}
}

func TestElasticGroupManualRefresh(t *testing.T) {
	a, _, stores, apply := elasticPair(t)
	g, err := NewElasticGroup([]string{a.Addr()}, GroupOptions{Client: ClientOptions{Policy: fastPolicy()}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	next := stores[0].Current().Clone()
	next.Gen = 2
	apply(next)
	if err := g.Refresh(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if g.Generation() != 2 {
		t.Fatalf("Generation = %d, want 2", g.Generation())
	}
	// Refresh with an older map is a no-op, never a rollback.
	if err := g.Refresh(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if g.Generation() != 2 {
		t.Fatalf("Generation rolled to %d", g.Generation())
	}
}

func TestElasticGroupBootstrapFailure(t *testing.T) {
	_, err := NewElasticGroup(nil, GroupOptions{})
	if err == nil {
		t.Fatal("no seeds accepted")
	}
	// A live server without a shard map cannot seed an elastic group.
	srv, serr := Serve("127.0.0.1:0", wireChunk(0, 10))
	if serr != nil {
		t.Fatal(serr)
	}
	defer srv.Close()
	_, err = NewElasticGroup([]string{srv.Addr()}, GroupOptions{Client: ClientOptions{Policy: fastPolicy()}})
	if err == nil || !strings.Contains(err.Error(), "bootstrap failed") {
		t.Fatalf("err = %v, want bootstrap failure", err)
	}
}

// TestStaticGroupTokensDeriveFromGeneration pins the satellite fix: owner
// tokens are packed from the shard map generation rather than the old
// replica*stride+member arithmetic, and unpack back to the generation the
// load was planned under.
func TestStaticGroupTokensDeriveFromGeneration(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g, err := NewGroup([]string{srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	tok, err := groupPlane{g: g}.OwnerOf(7)
	if err != nil {
		t.Fatal(err)
	}
	gen, member, err := shardmap.UnpackOwner(tok)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || member != 0 {
		t.Fatalf("token (gen,member) = (%d,%d), want (1,0)", gen, member)
	}
	if _, err := (groupPlane{g: g}).OwnerOf(99); err == nil {
		t.Fatal("out-of-range id resolved")
	}
}

// TestStaticGroupPinsGenerationAcrossMidFlightApply drives FetchOwner
// with a token whose generation has been superseded: the fetch must
// resolve against the pinned generation from the store's history, not the
// new current map.
func TestStaticGroupPinsGenerationAcrossMidFlightApply(t *testing.T) {
	a, _, _, _ := elasticPair(t)
	g, err := NewElasticGroup([]string{a.Addr()}, GroupOptions{Client: ClientOptions{Policy: fastPolicy()}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	// Plan a token under gen 1, then advance the client's own map before
	// the fetch happens — the moved shard stays readable because servers
	// only answer stale once THEY cut over, and the pinned map still
	// routes to a live owner.
	tok, err := groupPlane{g: g}.OwnerOf(10)
	if err != nil {
		t.Fatal(err)
	}
	next := g.maps.Current().Clone()
	next.Gen = 2
	if err := g.maps.Apply(next); err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	err = groupPlane{g: g}.FetchOwner(tok, []int64{10, 11}, func(id int64, raw []byte, lz *graph.Lazy, lat time.Duration) {
		got[id] = true
		lz.Release()
	})
	if err != nil {
		t.Fatalf("pinned-generation fetch failed: %v", err)
	}
	if !got[10] || !got[11] {
		t.Fatalf("delivered = %v, want ids 10 and 11", got)
	}
}
