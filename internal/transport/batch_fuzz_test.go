package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeGetBatch fuzzes both directions of the multi-get framing:
// decodeBatchPayload over arbitrary bytes (must never panic, over-read, or
// return parts that escape the payload), and the encode/decode pair over a
// parts list derived from the input (must round-trip exactly). The request
// side (id packing) is covered by the same derived input.
func FuzzDecodeGetBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                  // one empty part
	f.Add([]byte{3, 0, 0, 0, 9, 9, 9})         // one 3-byte part
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3}) // length overruns payload
	f.Add([]byte{1, 2})                        // truncated entry header
	f.Add(encodeBatchPayload([][]byte{{1}, {}, {2, 3}}))
	f.Add(encodeBatchIDs([]int64{-1, 0, 1 << 40}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Hostile payload: decode must stay in bounds and keep every part
		// inside the original buffer.
		if parts, err := decodeBatchPayload(data); err == nil {
			total := 0
			for _, p := range parts {
				total += 4 + len(p)
			}
			if total != len(data) {
				t.Fatalf("decoded parts cover %d bytes of a %d-byte payload", total, len(data))
			}
		}

		// Round trip: carve data into parts, encode, decode, compare.
		var parts [][]byte
		rest := data
		for len(rest) > 0 && len(parts) < maxBatchIDs {
			n := int(rest[0]) % (len(rest) + 1)
			parts = append(parts, rest[:n])
			rest = rest[n:]
			if n == 0 {
				rest = rest[1:] // consume the length byte so carving advances
			}
		}
		back, err := decodeBatchPayload(encodeBatchPayload(parts))
		if err != nil {
			t.Fatalf("decode(encode(parts)): %v", err)
		}
		if len(back) != len(parts) {
			t.Fatalf("round trip: %d parts, want %d", len(back), len(parts))
		}
		for i := range parts {
			if !bytes.Equal(back[i], parts[i]) {
				t.Fatalf("part %d corrupted in round trip", i)
			}
		}

		// Request side: interpret data as ids and round-trip the packing.
		count := len(data) / 8
		if count > 0 {
			ids := make([]int64, count)
			for i := range ids {
				ids[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
			}
			got := decodeBatchIDs(encodeBatchIDs(ids), count)
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("id %d corrupted: %d != %d", i, got[i], ids[i])
				}
			}
		}
	})
}
