package transport

import (
	"math/rand"
	"sync"
	"testing"

	"ddstore/internal/bufarena"
	"ddstore/internal/graph"
)

// TestGetBatchBufsAliasing pins the zero-copy contract: the returned parts
// alias the pooled response buffer, stay valid while the reference is
// held, and read poison after the final release — proving no hidden copy
// sits between the socket and the caller.
func TestGetBatchBufsAliasing(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", wireChunk(0, 20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ids := []int64{3, 17, 3, 9}
	buf, parts, err := cl.GetBatchBufs(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != len(ids) {
		t.Fatalf("got %d parts for %d ids", len(parts), len(ids))
	}
	// While the reference is held, every part decodes to its sample.
	for i, id := range ids {
		g, err := graph.Decode(parts[i])
		if err != nil {
			t.Fatalf("decode part %d: %v", i, err)
		}
		if g.ID != id {
			t.Fatalf("part %d: sample %d, want %d", i, g.ID, id)
		}
	}
	if buf.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", buf.Refs())
	}
	buf.Release()
	// The parts alias the released buffer: they must now read the poison
	// canary, proving they were views, not copies.
	for i, p := range parts {
		for j, b := range p {
			if b != bufarena.Poison {
				t.Fatalf("part %d byte %d = %#x after release, want poison — part was a copy or buffer still live", i, j, b)
			}
		}
	}
}

// TestConcurrentLoadBufferHammer drives concurrent Load/LoadLazy traffic
// with a deliberately tiny cache, so pooled buffers are constantly
// claimed, shared by coalesced flights, evicted, released, and recycled.
// Under -race this is the aliasing proof for the whole pipeline: any path
// that reads a buffer after its last reference released races with the
// poison write.
func TestConcurrentLoadBufferHammer(t *testing.T) {
	const (
		lo, hi  = 0, 120
		workers = 8
		rounds  = 60
	)
	srv, err := Serve("127.0.0.1:0", wireChunk(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	g, err := NewGroupReplicas([][]string{{srv.Addr()}}, GroupOptions{
		Client:     ClientOptions{Policy: fastPolicy()},
		MaxBatch:   16,
		CacheBytes: 2 << 10, // tiny: constant eviction and re-fetch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				ids := make([]int64, 1+rng.Intn(24))
				for i := range ids {
					ids[i] = lo + rng.Int63n(hi-lo)
				}
				if r%2 == 0 {
					gs, err := g.Load(ids)
					if err != nil {
						errs <- err
						return
					}
					for i, gr := range gs {
						if gr.ID != ids[i] {
							t.Errorf("slot %d: sample %d, want %d", i, gr.ID, ids[i])
							return
						}
					}
					continue
				}
				lzs, _, err := g.LoadLazy(ids)
				if err != nil {
					errs <- err
					return
				}
				for i, lz := range lzs {
					if lz.ID() != ids[i] {
						t.Errorf("lazy slot %d: sample %d, want %d", i, lz.ID(), ids[i])
						return
					}
					// Alternate between materializing (releases the ref)
					// and dropping the view unread.
					if i%2 == 0 {
						if gr := lz.Graph(); gr.ID != ids[i] {
							t.Errorf("materialized %d, want %d", gr.ID, ids[i])
							return
						}
					} else {
						lz.Release()
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
