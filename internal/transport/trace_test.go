package transport_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/obs/flightrec"
	"ddstore/internal/obs/tracectx"
	"ddstore/internal/transport"
)

func TestTracedBatchCarriesServerTiming(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Tracing: true, Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tc := tracectx.New(true)
	ids := []int64{3, 9, 27}
	buf, parts, timing, err := cl.GetBatchBufsTraced(ids, tc)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if len(parts) != len(ids) {
		t.Fatalf("got %d parts for %d ids", len(parts), len(ids))
	}
	if timing == nil {
		t.Fatal("traced batch returned no server timing")
	}
	if timing.Service <= 0 {
		t.Errorf("server service time %v, want > 0", timing.Service)
	}
	if timing.Source <= 0 || timing.Source > timing.Service {
		t.Errorf("chunk-source time %v outside (0, service=%v]", timing.Source, timing.Service)
	}
	var want int64
	for _, p := range parts {
		want += int64(len(p)) + 4 // each part plus its length prefix
	}
	if timing.Bytes != want {
		t.Errorf("trailer bytes %d, want %d (trailer must not count itself)", timing.Bytes, want)
	}
	if timing.Tenant != "alpha" {
		t.Errorf("trailer tenant %q, want alpha", timing.Tenant)
	}

	// The trailer was stripped: the parts decode to the right samples.
	for i, id := range ids {
		wantG, _ := ds.Sample(id)
		if string(parts[i]) != string(wantG.Encode()) {
			t.Fatalf("sample %d bytes corrupted by trailer stripping", id)
		}
	}

	// Single-sample traced path.
	raw, timing2, err := cl.GetRawTraced(5, tc.Child())
	if err != nil {
		t.Fatal(err)
	}
	if timing2 == nil || timing2.Bytes != int64(len(raw)) {
		t.Fatalf("GetRawTraced timing = %+v for %d bytes", timing2, len(raw))
	}
}

func TestUnsampledOrInvalidContextRunsUntraced(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Tracing: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for name, tc := range map[string]tracectx.Context{
		"unsampled": tracectx.New(false),
		"invalid":   {},
	} {
		raw, timing, err := cl.GetRawTraced(2, tc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if timing != nil {
			t.Errorf("%s context produced server timing %+v", name, timing)
		}
		if len(raw) == 0 {
			t.Errorf("%s: empty payload", name)
		}
	}
}

// TestTracingOffClientAgainstNewServer pins the old-client→new-server
// direction: a client that never asks for tracing (today's default) talks
// to a feature-announcing server and everything behaves as before.
func TestTracingOffClientAgainstNewServer(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Tenant set, tracing not: the hello ack now carries a feature word the
	// old client code released unread — same call sequence here.
	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Tenant: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gs, err := cl.GetBatch([]int64{1, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 3 || gs[2].ID != 6 {
		t.Fatalf("batch = %v", gs)
	}
}

// oldWireServer speaks the pre-tracing protocol from first principles:
// 17-byte request header, 9-byte response head, hello acked with an EMPTY
// payload, and unknown ops answered with an error status. It pins the
// new-client→old-server direction without depending on the current server
// implementation.
func oldWireServer(t *testing.T, encoded [][]byte) (addr string, shutdown func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reply := func(conn net.Conn, status byte, payload []byte) error {
		head := make([]byte, 9)
		head[0] = status
		binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(head[5:], crc32.ChecksumIEEE(payload))
		if _, err := conn.Write(head); err != nil {
			return err
		}
		_, err := conn.Write(payload)
		return err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				header := make([]byte, 17)
				for {
					if _, err := io.ReadFull(conn, header); err != nil {
						return
					}
					op := header[0]
					a := int64(binary.LittleEndian.Uint64(header[1:]))
					switch op {
					case 5: // hello: drain the name, ack empty (the old way)
						if _, err := io.CopyN(io.Discard, conn, a); err != nil {
							return
						}
						if reply(conn, 0, nil) != nil {
							return
						}
					case 2: // get
						if a < 0 || a >= int64(len(encoded)) {
							if reply(conn, 1, []byte("out of range")) != nil {
								return
							}
							continue
						}
						if reply(conn, 0, encoded[a]) != nil {
							return
						}
					case 4: // getbatch
						idb := make([]byte, 8*a)
						if _, err := io.ReadFull(conn, idb); err != nil {
							return
						}
						var payload []byte
						for i := int64(0); i < a; i++ {
							id := int64(binary.LittleEndian.Uint64(idb[8*i:]))
							one := encoded[id]
							var pre [4]byte
							binary.LittleEndian.PutUint32(pre[:], uint32(len(one)))
							payload = append(payload, pre[:]...)
							payload = append(payload, one...)
						}
						if reply(conn, 0, payload) != nil {
							return
						}
					default: // an old server has never heard of traced ops
						if reply(conn, 1, []byte("unknown op")) != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestTracedClientAgainstOldServerFallsBack(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	encoded := make([][]byte, 8)
	for id := int64(0); id < 8; id++ {
		g, _ := ds.Sample(id)
		encoded[id] = g.Encode()
	}
	addr, shutdown := oldWireServer(t, encoded)
	defer shutdown()

	cl, err := transport.DialOptions(addr, transport.ClientOptions{Tracing: true, Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The empty hello ack reads as "no features": the sampled context must
	// not push the client onto traced ops the server would reject.
	tc := tracectx.New(true)
	buf, parts, timing, err := cl.GetBatchBufsTraced([]int64{1, 6}, tc)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	if timing != nil {
		t.Fatalf("old server produced server timing %+v", timing)
	}
	if len(parts) != 2 || string(parts[1]) != string(encoded[6]) {
		t.Fatal("fallback batch returned wrong bytes")
	}
	raw, timing, err := cl.GetRawTraced(3, tc)
	if err != nil || timing != nil || string(raw) != string(encoded[3]) {
		t.Fatalf("fallback get: err=%v timing=%v", err, timing)
	}
}

// TestCorruptContextOverRawWire drives a hostile traced request straight
// onto the socket: a garbage trace context must not fail the request or
// desync the stream — the server serves it untraced.
func TestCorruptContextOverRawWire(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	srv, err := transport.Serve("127.0.0.1:0", chunkFor(t, ds, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(op byte, a int64, body []byte) (status byte, payload []byte) {
		t.Helper()
		req := make([]byte, 17+len(body))
		req[0] = op
		binary.LittleEndian.PutUint64(req[1:], uint64(a))
		copy(req[17:], body)
		if _, err := conn.Write(req); err != nil {
			t.Fatal(err)
		}
		head := make([]byte, 9)
		if _, err := io.ReadFull(conn, head); err != nil {
			t.Fatal(err)
		}
		payload = make([]byte, binary.LittleEndian.Uint32(head[1:]))
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.Fatal(err)
		}
		return head[0], payload
	}

	// op 7 = traced get, with 24 bytes of garbage where the context goes.
	garbage := make([]byte, 24)
	for i := range garbage {
		garbage[i] = 0xA5
	}
	status, payload := send(7, 3, garbage)
	want, _ := ds.Sample(3)
	if status != 0 || string(payload) != string(want.Encode()) {
		t.Fatalf("garbage context: status %d, %d payload bytes", status, len(payload))
	}
	// The stream is still aligned: a normal request follows cleanly.
	status, payload = send(2, 5, nil)
	want, _ = ds.Sample(5)
	if status != 0 || string(payload) != string(want.Encode()) {
		t.Fatalf("follow-up request after garbage context: status %d", status)
	}
}

func TestServerFlightRecorderCapturesSlowAndError(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	rec := flightrec.New(16)
	srv, err := transport.ServeWith("127.0.0.1:0", chunkFor(t, ds, 0, 8), transport.ServerOptions{
		FlightRecorder: rec,
		SlowThreshold:  time.Nanosecond, // everything is slow: deterministic capture
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := transport.DialOptions(srv.Addr(), transport.ClientOptions{Tracing: true, Tenant: "bravo"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tc := tracectx.New(true)
	if _, _, err := cl.GetRawTraced(2, tc); err != nil {
		t.Fatal(err)
	}
	var rerr *transport.RemoteError
	if _, err := cl.Get(99); !errors.As(err, &rerr) {
		t.Fatalf("out-of-range get: %v", err)
	}

	var slow, errored *flightrec.Record
	for _, r := range rec.Records() {
		r := r
		switch r.Kind {
		case flightrec.KindSlow:
			slow = &r
		case flightrec.KindError:
			errored = &r
		}
	}
	if slow == nil {
		t.Fatal("no slow record captured")
	}
	if slow.Op != "get-traced" || slow.Tenant != "bravo" || slow.TraceID != tracectx.IDString(tc.TraceID) {
		t.Fatalf("slow record = %+v", *slow)
	}
	if slow.DurMs <= 0 || slow.Bytes <= 0 || slow.Samples != 1 {
		t.Fatalf("slow record breakdown = %+v", *slow)
	}
	if errored == nil || errored.Err == "" {
		t.Fatalf("error record = %+v", errored)
	}
}
