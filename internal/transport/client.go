package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"ddstore/internal/bufarena"
	"ddstore/internal/graph"
	"ddstore/internal/obs/tracectx"
)

// ErrChecksum marks a response whose payload failed CRC32 verification.
// It is transport-level and therefore retried.
var ErrChecksum = errors.New("transport: response checksum mismatch")

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("transport: client closed")

// RemoteError is an application-level error reported by the server (e.g.
// a sample outside its chunk). It arrived over a healthy connection, so it
// is not retried: every retry would get the same answer.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// ErrOverloaded marks a request shed by the server's admission control
// (rate limit, full queue, connection cap, or drain). The connection is
// healthy and the server is alive but saturated, so the client treats it
// as backoff-don't-failover: retry on the same connection after the
// policy's backoff, never re-dial, and never quarantine the peer.
// Match with errors.Is(err, ErrOverloaded).
var ErrOverloaded = errors.New("transport: server overloaded")

// OverloadedError carries the server's shed reason ("rate limit", "queue
// full", "draining", ...) alongside the ErrOverloaded identity.
type OverloadedError struct{ Msg string }

func (e *OverloadedError) Error() string { return "transport: overloaded: " + e.Msg }

// Is reports the ErrOverloaded identity for errors.Is.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// ErrStaleGeneration marks a request the server refused because the
// client's shard map generation no longer owns the sample there: the
// chunk moved. The connection is healthy and the peer is alive, so this
// is refresh-don't-failover: install the map carried in the response and
// retry the new owner. Match with errors.Is(err, ErrStaleGeneration).
var ErrStaleGeneration = errors.New("transport: stale shard map generation")

// StaleGenerationError carries the server's current encoded shard map
// (decode with shardmap.Decode) alongside the ErrStaleGeneration
// identity, so the refresh costs zero extra round trips.
type StaleGenerationError struct{ MapBytes []byte }

func (e *StaleGenerationError) Error() string {
	return "transport: stale shard map generation"
}

// Is reports the ErrStaleGeneration identity for errors.Is.
func (e *StaleGenerationError) Is(target error) bool { return target == ErrStaleGeneration }

// DialFunc opens a connection to addr. Custom dialers let tests route
// through in-memory pipes or faultnet-wrapped connections.
type DialFunc func(addr string) (net.Conn, error)

// ClientOptions configure a Client's resilience behaviour.
type ClientOptions struct {
	// Policy is the retry/deadline policy; zero value = defaults.
	Policy RetryPolicy
	// Counters, if set, receives retry/timeout/checksum event counts.
	Counters Counters
	// Dialer overrides the TCP dialer (nil = net.DialTimeout).
	Dialer DialFunc
	// Tenant, when non-empty, is declared to the server in a hello
	// handshake on every (re)connect, so a multi-tenant front end can
	// charge this client's traffic to the right quota. Servers without a
	// front end acknowledge and ignore it.
	Tenant string
	// Tracing opts this client into distributed tracing: the hello
	// handshake advertises the tracing feature, and when the server
	// advertises it back, requests carrying a valid sampled trace context
	// (the *Traced methods) use the traced wire ops and return the server's
	// timing trailer. Against an older server the feature never activates
	// and the same calls silently run untraced. Tracing with no Tenant
	// declares DefaultTracedTenant, since negotiation rides on hello.
	Tracing bool
}

// Client is a connection to one chunk server. Safe for concurrent use:
// the request/response exchange is serialized per connection, and a broken
// connection is transparently re-dialed on the next attempt.
type Client struct {
	addr     string
	policy   RetryPolicy
	counters Counters
	dialer   DialFunc
	tenant   string
	tracing  bool

	mu       sync.Mutex
	conn     net.Conn
	helloed  bool   // tenant declared on the current connection
	features uint64 // server feature word from the current connection's hello
	rng      *rand.Rand
	closed   bool
}

// Dial connects to a server with default options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions connects to a server with explicit resilience options. The
// initial connection is established eagerly so configuration errors
// surface immediately; later reconnects are transparent.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	if len(opts.Tenant) > maxTenantName {
		return nil, fmt.Errorf("transport: tenant name %q exceeds %d bytes", opts.Tenant, maxTenantName)
	}
	c := &Client{
		addr:     addr,
		policy:   opts.Policy.withDefaults(),
		counters: opts.Counters,
		dialer:   opts.Dialer,
		tenant:   opts.Tenant,
		tracing:  opts.Tracing,
	}
	if c.tracing && c.tenant == "" {
		// Feature negotiation rides on the hello handshake, which requires
		// a tenant name; fall back to the front end's catch-all tenant.
		c.tenant = DefaultTracedTenant
	}
	if c.counters == nil {
		c.counters = nopCounters{}
	}
	if c.dialer == nil {
		timeout := c.policy.DialTimeout
		c.dialer = func(addr string) (net.Conn, error) {
			if timeout > 0 {
				return net.DialTimeout("tcp", addr, timeout)
			}
			return net.Dial("tcp", addr)
		}
	}
	c.rng = rand.New(rand.NewSource(c.policy.Seed))
	conn, err := c.dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	c.conn = conn
	return c, nil
}

// Addr returns the server address this client targets.
func (c *Client) Addr() string { return c.addr }

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip performs one request with the client's retry policy: each
// transport-level failure (broken conn, deadline, checksum reject) drops
// the connection, backs off, re-dials, and retries. Remote application
// errors are returned immediately. All ops are idempotent reads, so a
// retry is always safe. extra is the request body following the header
// (batch ids); nil for body-less ops.
//
// Each call counts as one logical round trip (retries are tallied
// separately under CounterRetries) — the counter the batching tests use to
// prove B samples cost ⌈B/maxBatch⌉ round trips instead of B.
//
// The returned payload buffer carries one reference owned by the caller.
// Callers that consume the bytes immediately (decode, parse) Release it;
// callers that hand plain []byte to the outside world keep it alive by
// simply never releasing (the buffer degrades to ordinary GC-owned memory).
func (c *Client) roundTrip(op byte, a, b int64, extra []byte) (*bufarena.Buf, error) {
	buf, _, err := c.do(op, a, b, extra, tracectx.Context{})
	return buf, err
}

// do is roundTrip plus tracing: when tc is a valid sampled context, the
// client negotiated the tracing feature on this connection, and the op has
// a traced variant, the request goes out as the traced op carrying the
// context, and the server's timing trailer is stripped from the payload
// and returned. Otherwise the request runs untraced and timing is nil —
// including mid-call, if a reconnect lands on a server that does not
// advertise tracing.
func (c *Client) do(op byte, a, b int64, extra []byte, tc tracectx.Context) (*bufarena.Buf, *ServerTiming, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters.Inc(CounterRoundTrips, 1)
	var lastErr error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if c.closed {
			return nil, nil, ErrClosed
		}
		if attempt > 0 {
			c.counters.Inc(CounterRetries, 1)
			time.Sleep(c.policy.delay(attempt, c.rng))
			if c.closed {
				return nil, nil, ErrClosed
			}
		}
		if c.conn == nil {
			conn, err := c.dialer(c.addr)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
			c.helloed = false
			c.features = 0
			if attempt > 0 {
				c.counters.Inc(CounterReconnects, 1)
			}
		}
		// Declare the tenant once per connection before the first real
		// request, so admission control charges the right quota. The b
		// field advertises this client's feature bits; the ack payload is
		// the server's feature word (empty from an older server).
		if c.tenant != "" && !c.helloed && op != opHello {
			var feats uint64
			if c.tracing {
				feats = featureTracing
			}
			ack, err := c.exchange(opHello, int64(len(c.tenant)), int64(feats), []byte(c.tenant))
			if err != nil {
				if herr := c.classify(err, &lastErr); herr != nil {
					return nil, nil, herr
				}
				continue
			}
			if ack.Len() >= 8 {
				c.features = binary.LittleEndian.Uint64(ack.Bytes())
			}
			ack.Release()
			c.helloed = true
		}
		// The traced-op decision is per attempt: negotiation is per
		// connection, and a retry may have reconnected to an older server.
		sendOp, sendExtra, traced := op, extra, false
		if top := tracedOp(op); top != 0 && tc.Valid() && tc.Sampled &&
			c.tracing && c.features&featureTracing != 0 {
			sendOp, sendExtra, traced = top, tracedBody(tc, extra), true
		}
		payload, err := c.exchange(sendOp, a, b, sendExtra)
		if err == nil {
			if !traced {
				return payload, nil, nil
			}
			dataLen, timing, terr := parseTimingTrailer(payload.Bytes())
			if terr != nil {
				payload.Release()
				return nil, nil, terr
			}
			payload.Truncate(dataLen)
			return payload, &timing, nil
		}
		if ferr := c.classify(err, &lastErr); ferr != nil {
			return nil, nil, ferr
		}
	}
	c.counters.Inc(CounterGiveUps, 1)
	return nil, nil, fmt.Errorf("transport: op %d to %s failed after %d attempts: %w",
		op, c.addr, c.policy.MaxAttempts, lastErr)
}

// classify sorts one failed exchange into the retry taxonomy. A non-nil
// return is terminal (application-level error: every retry would get the
// same answer). Otherwise *lastErr is updated and nil is returned, meaning
// back off and retry: overloaded responses keep the healthy connection
// (the server shed the request, not the stream), transport-level failures
// drop it so the next attempt re-dials. The caller must hold c.mu.
func (c *Client) classify(err error, lastErr *error) error {
	if errors.Is(err, ErrOverloaded) {
		// Backoff-don't-failover: the peer is alive but saturated.
		c.counters.Inc(CounterOverloads, 1)
		*lastErr = err
		return nil
	}
	if errors.Is(err, ErrStaleGeneration) {
		// Terminal at this level: retrying the same peer would answer
		// stale again. The Group refreshes its map from the carried bytes
		// and re-routes to the new owner.
		return err
	}
	var rerr *RemoteError
	if errors.As(err, &rerr) {
		return err
	}
	*lastErr = err
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.counters.Inc(CounterTimeouts, 1)
	}
	if errors.Is(err, ErrChecksum) {
		c.counters.Inc(CounterChecksumErrors, 1)
	}
	// The stream may hold a half-read frame; only a fresh connection is
	// safe to reuse.
	c.conn.Close()
	c.conn = nil
	return nil
}

// exchange performs one framed request/response on the live connection,
// with per-operation deadlines and CRC verification. Header and body go
// out in a single write so a retried request never leaves a half frame
// behind counters or fault injectors that account per write. The payload
// lands in a pooled buffer, read once off the socket; on success the
// caller owns its single reference, on any error the reference is already
// released.
func (c *Client) exchange(op byte, a, b int64, extra []byte) (*bufarena.Buf, error) {
	req := make([]byte, reqHeaderSize+len(extra))
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], uint64(a))
	binary.LittleEndian.PutUint64(req[9:], uint64(b))
	copy(req[reqHeaderSize:], extra)
	if c.policy.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.policy.WriteTimeout))
	}
	if _, err := c.conn.Write(req); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if c.policy.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.policy.ReadTimeout))
	}
	var head [respHeaderSize]byte
	if _, err := io.ReadFull(c.conn, head[:]); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(head[1:]))
	if n > maxPayload {
		return nil, fmt.Errorf("transport: oversized response (%d bytes)", n)
	}
	wantCRC := binary.LittleEndian.Uint32(head[5:])
	// Grow the buffer as bytes arrive rather than trusting the advertised
	// length: a corrupt or hostile head must not make us allocate gigabytes
	// for data that never comes.
	size := n
	if size > eagerPayload {
		size = eagerPayload
	}
	buf := bufarena.Get(size)
	read := 0
	for {
		if _, err := io.ReadFull(c.conn, buf.Bytes()[read:]); err != nil {
			buf.Release()
			return nil, fmt.Errorf("transport: %w", err)
		}
		read = buf.Len()
		if read == n {
			break
		}
		grown := read * 2
		if grown > n {
			grown = n
		}
		nb := bufarena.Get(grown)
		copy(nb.Bytes(), buf.Bytes())
		buf.Release()
		buf = nb
	}
	payload := buf.Bytes()
	if crc32.ChecksumIEEE(payload) != wantCRC {
		buf.Release()
		return nil, ErrChecksum
	}
	switch head[0] {
	case statusOK:
		return buf, nil
	case statusError:
		msg := string(payload)
		buf.Release()
		return nil, &RemoteError{Msg: msg}
	case statusOverloaded:
		msg := string(payload)
		buf.Release()
		return nil, &OverloadedError{Msg: msg}
	case statusStaleGen:
		// The payload is the server's current encoded shard map; copy it
		// out of the pooled buffer before releasing.
		mb := append([]byte(nil), payload...)
		buf.Release()
		return nil, &StaleGenerationError{MapBytes: mb}
	default:
		buf.Release()
		return nil, fmt.Errorf("transport: unknown response status %d", head[0])
	}
}

// ShardMap fetches the server's current encoded shard map (decode with
// shardmap.Decode). Elastic groups bootstrap their ownership view from a
// seed peer this way; servers without a shard map answer with a remote
// error.
func (c *Client) ShardMap() ([]byte, error) {
	buf, err := c.roundTrip(opShardMap, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	mb := append([]byte(nil), buf.Bytes()...)
	buf.Release()
	return mb, nil
}

// Meta fetches the server's chunk range.
func (c *Client) Meta() (lo, hi int64, err error) {
	buf, err := c.roundTrip(opMeta, 0, 0, nil)
	if err != nil {
		return 0, 0, err
	}
	defer buf.Release()
	payload := buf.Bytes()
	if len(payload) != 16 {
		return 0, 0, errors.New("transport: malformed meta response")
	}
	return int64(binary.LittleEndian.Uint64(payload[0:])),
		int64(binary.LittleEndian.Uint64(payload[8:])), nil
}

// Get fetches and decodes one sample.
func (c *Client) Get(id int64) (*graph.Graph, error) {
	buf, err := c.roundTrip(opGet, id, 0, nil)
	if err != nil {
		return nil, err
	}
	g, err := graph.Decode(buf.Bytes())
	buf.Release()
	return g, err
}

// GetRaw fetches the encoded bytes of one sample without decoding. Load
// generators and relays use it to measure or move wire bytes without
// paying (or perturbing the measurement with) graph materialization. The
// returned bytes are plain GC-owned memory (the pooled buffer's reference
// is intentionally never released, so it is never recycled under the
// caller).
func (c *Client) GetRaw(id int64) ([]byte, error) {
	buf, err := c.roundTrip(opGet, id, 0, nil)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GetBatchBufs fetches the encoded bytes of an arbitrary id list in one
// round trip, returning the pooled response buffer and the per-id parts
// aliasing it. Every id must be in this server's chunk; parts is aligned
// with ids. The caller owns the buffer's single reference and must keep
// it (or a Retain of it) alive for as long as it reads any part, then
// Release.
func (c *Client) GetBatchBufs(ids []int64) (*bufarena.Buf, [][]byte, error) {
	if len(ids) == 0 {
		return nil, nil, nil
	}
	if len(ids) > maxBatchIDs {
		return nil, nil, fmt.Errorf("transport: batch of %d ids exceeds the %d-id limit", len(ids), maxBatchIDs)
	}
	buf, err := c.roundTrip(opGetBatch, int64(len(ids)), 0, encodeBatchIDs(ids))
	if err != nil {
		return nil, nil, err
	}
	parts, err := decodeBatchPayload(buf.Bytes())
	if err != nil {
		buf.Release()
		return nil, nil, err
	}
	if len(parts) != len(ids) {
		buf.Release()
		return nil, nil, fmt.Errorf("transport: got %d payloads for %d requested ids", len(parts), len(ids))
	}
	return buf, parts, nil
}

// GetRawTraced is GetRaw carrying a trace context: when tracing is
// negotiated on the connection and tc is valid and sampled, the returned
// timing holds the server's breakdown for this request; otherwise the
// request runs untraced and timing is nil. The bytes follow GetRaw's
// ownership rules.
func (c *Client) GetRawTraced(id int64, tc tracectx.Context) ([]byte, *ServerTiming, error) {
	buf, timing, err := c.do(opGet, id, 0, nil, tc)
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), timing, nil
}

// GetBatchBufsTraced is GetBatchBufs carrying a trace context: when
// tracing is negotiated and tc is valid and sampled, timing holds the
// server's breakdown (queue wait, service, chunk-source time, tenant,
// generation) for the whole batch; otherwise the request runs untraced
// and timing is nil. Buffer ownership follows GetBatchBufs.
func (c *Client) GetBatchBufsTraced(ids []int64, tc tracectx.Context) (*bufarena.Buf, [][]byte, *ServerTiming, error) {
	if len(ids) == 0 {
		return nil, nil, nil, nil
	}
	if len(ids) > maxBatchIDs {
		return nil, nil, nil, fmt.Errorf("transport: batch of %d ids exceeds the %d-id limit", len(ids), maxBatchIDs)
	}
	buf, timing, err := c.do(opGetBatch, int64(len(ids)), 0, encodeBatchIDs(ids), tc)
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := decodeBatchPayload(buf.Bytes())
	if err != nil {
		buf.Release()
		return nil, nil, nil, err
	}
	if len(parts) != len(ids) {
		buf.Release()
		return nil, nil, nil, fmt.Errorf("transport: got %d payloads for %d requested ids", len(parts), len(ids))
	}
	return buf, parts, timing, nil
}

// GetBatchRaw fetches the encoded bytes of an arbitrary id list in one
// round trip. Every id must be in this server's chunk; the result is
// aligned with ids. The raw form exists so callers that cache or relay
// encoded bytes avoid a decode/re-encode cycle; the parts are plain
// GC-owned memory (see GetRaw). Pooled callers use GetBatchBufs.
func (c *Client) GetBatchRaw(ids []int64) ([][]byte, error) {
	_, parts, err := c.GetBatchBufs(ids)
	return parts, err
}

// GetBatch fetches and decodes an arbitrary id list in one round trip.
func (c *Client) GetBatch(ids []int64) ([]*graph.Graph, error) {
	buf, parts, err := c.GetBatchBufs(ids)
	if err != nil {
		return nil, err
	}
	defer buf.Release()
	out := make([]*graph.Graph, len(parts))
	for i, p := range parts {
		if out[i], err = graph.Decode(p); err != nil {
			return nil, fmt.Errorf("transport: sample %d: %w", ids[i], err)
		}
	}
	return out, nil
}

// GetRange fetches and decodes samples [lo, hi).
func (c *Client) GetRange(lo, hi int64) ([]*graph.Graph, error) {
	buf, err := c.roundTrip(opMulti, lo, hi, nil)
	if err != nil {
		return nil, err
	}
	defer buf.Release()
	out := make([]*graph.Graph, 0, hi-lo)
	rest := buf.Bytes()
	for len(rest) > 0 {
		var g *graph.Graph
		if g, rest, err = graph.DecodePrefix(rest); err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	if int64(len(out)) != hi-lo {
		return nil, fmt.Errorf("transport: got %d samples for range [%d,%d)", len(out), lo, hi)
	}
	return out, nil
}
