package transport

import (
	"encoding/binary"
	"fmt"
	"time"

	"ddstore/internal/obs/tracectx"
)

// Feature bits exchanged in the hello handshake. The client sends its
// supported features in the hello header's b field; the server answers
// with its own feature word as an 8-byte little-endian hello payload. A
// feature is active only when both sides advertise it, so either side
// running older code silently degrades: an old client ignores the ack
// payload it never looks at, and an old server's empty ack reads as
// "no features", keeping the client on the untraced ops.
const (
	featureTracing = uint64(1) << 0
)

// DefaultTracedTenant is the tenant a tracing client declares when it has
// none of its own: negotiation rides on the hello handshake, and the wire
// protocol requires hello to carry a non-empty tenant name. It matches the
// serving front end's catch-all tenant, and servers without a front end
// acknowledge and ignore it.
const DefaultTracedTenant = "default"

// Timing trailer layout. Traced requests with a valid, sampled context get
// a trailer appended to their success payload — after the op's normal
// response bytes, inside the length/CRC frame — carrying the server-side
// timing breakdown. It is parsed from the END of the payload so the data
// framing in front of it stays untouched:
//
//	... op payload ...
//	queue-wait ns   u64   time spent in the admission queue
//	service ns      u64   total handler time (header parse to trailer build)
//	source ns       u64   time reading the chunk source
//	generation      u64   shard map generation that served the request
//	payload bytes   u64   op payload length (trailer excluded) — cross-check
//	reserved        u64   zero
//	tenant          tenantLen bytes
//	tenantLen       u8
//	version         u8    trailerVersion (the very last payload byte)
//
// All integers little-endian. The trailer carries durations, not
// timestamps: client and server clocks are not comparable, so the client
// reconstructs the server window inside its own measured request span.
const (
	trailerVersion   = 1
	trailerFixedSize = 48
	trailerMinSize   = trailerFixedSize + 2
)

// ServerTiming is the decoded timing trailer of one traced request.
type ServerTiming struct {
	// QueueWait is the time the request spent queued in admission control.
	QueueWait time.Duration
	// Service is the server's total handler time for the request.
	Service time.Duration
	// Source is the time spent reading sample bytes from the chunk source.
	Source time.Duration
	// Bytes is the op payload size the server served (trailer excluded).
	Bytes int64
	// Generation is the shard map generation the request was served under
	// (0 on a non-elastic server).
	Generation uint64
	// Tenant is the tenant queue the request was charged to ("" when the
	// server runs no front end).
	Tenant string
}

// appendTimingTrailer renders a trailer for a traced response.
func appendTimingTrailer(dst []byte, t ServerTiming) []byte {
	var fixed [trailerFixedSize]byte
	binary.LittleEndian.PutUint64(fixed[0:], uint64(t.QueueWait))
	binary.LittleEndian.PutUint64(fixed[8:], uint64(t.Service))
	binary.LittleEndian.PutUint64(fixed[16:], uint64(t.Source))
	binary.LittleEndian.PutUint64(fixed[24:], t.Generation)
	binary.LittleEndian.PutUint64(fixed[32:], uint64(t.Bytes))
	dst = append(dst, fixed[:]...)
	tenant := t.Tenant
	if len(tenant) > maxTenantName {
		tenant = tenant[:maxTenantName]
	}
	dst = append(dst, tenant...)
	dst = append(dst, byte(len(tenant)), trailerVersion)
	return dst
}

// parseTimingTrailer splits a traced response payload into its data length
// and the decoded trailer. The server only appends trailers it built
// itself and the CRC already vouched for the bytes, so a malformed trailer
// is a protocol bug, not line noise — it fails the request.
func parseTimingTrailer(p []byte) (dataLen int, t ServerTiming, err error) {
	if len(p) < trailerMinSize {
		return 0, t, fmt.Errorf("transport: traced response too short for timing trailer (%d bytes)", len(p))
	}
	if v := p[len(p)-1]; v != trailerVersion {
		return 0, t, fmt.Errorf("transport: unknown timing trailer version %d", v)
	}
	tenantLen := int(p[len(p)-2])
	size := trailerMinSize + tenantLen
	if len(p) < size {
		return 0, t, fmt.Errorf("transport: timing trailer truncated (%d bytes, tenant %d)", len(p), tenantLen)
	}
	fixed := p[len(p)-size:]
	t.QueueWait = time.Duration(binary.LittleEndian.Uint64(fixed[0:]))
	t.Service = time.Duration(binary.LittleEndian.Uint64(fixed[8:]))
	t.Source = time.Duration(binary.LittleEndian.Uint64(fixed[16:]))
	t.Generation = binary.LittleEndian.Uint64(fixed[24:])
	t.Bytes = int64(binary.LittleEndian.Uint64(fixed[32:]))
	t.Tenant = string(fixed[trailerFixedSize : trailerFixedSize+tenantLen])
	dataLen = len(p) - size
	if t.Bytes != int64(dataLen) {
		return 0, t, fmt.Errorf("transport: timing trailer byte count %d does not match %d payload bytes", t.Bytes, dataLen)
	}
	return dataLen, t, nil
}

// tracedOp maps an op to its traced variant (0 when the op has none).
func tracedOp(op byte) byte {
	switch op {
	case opGet:
		return opGetTraced
	case opGetBatch:
		return opGetBatchTraced
	default:
		return 0
	}
}

// tracedBody prepends the encoded trace context to an op body.
func tracedBody(tc tracectx.Context, extra []byte) []byte {
	body := make([]byte, 0, tracectx.Size+len(extra))
	body = tc.AppendTo(body)
	return append(body, extra...)
}
