package transport

import (
	"encoding/binary"
	"fmt"

	"ddstore/internal/wire"
)

// Multi-get framing. A batch request is the fixed 17-byte header
// (op=opGetBatch, a=count, b=reserved) followed by count little-endian
// u64 sample ids. The response payload is count length-prefixed entries:
// u32 byte length, then that many encoded-graph bytes, in request order.
// The whole response still rides the standard 9-byte head, so the existing
// CRC32 checksum, deadline, and retry machinery covers batches unchanged.

// maxBatchIDs bounds how many ids one batch request may carry, so a
// hostile count cannot make the server read or allocate without limit
// (4096 ids = a 32 KiB request body).
const maxBatchIDs = 4096

// encodeBatchIDs packs ids into the batch request body.
func encodeBatchIDs(ids []int64) []byte {
	return wire.AppendIDs(make([]byte, 0, wire.IDsSize(len(ids))), ids)
}

// decodeBatchIDs unpacks a batch request body. The body length has
// already been fixed by the validated count, so this cannot fail.
func decodeBatchIDs(body []byte, count int) []int64 {
	ids := make([]int64, count)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return ids
}

// encodeBatchPayload frames each part as u32 length + bytes.
func encodeBatchPayload(parts [][]byte) []byte {
	total := 0
	for _, p := range parts {
		total += 4 + len(p)
	}
	payload := make([]byte, 0, total)
	var lenBuf [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
		payload = append(payload, lenBuf[:]...)
		payload = append(payload, p...)
	}
	return payload
}

// decodeBatchPayload splits a batch response back into its parts. Every
// length is bounds-checked against the remaining bytes and the entry count
// against maxBatchIDs, so a corrupt or hostile payload cannot cause an
// out-of-range read or unbounded allocation. Parts alias the payload
// (three-index slicing keeps appends from bleeding between parts).
func decodeBatchPayload(payload []byte) ([][]byte, error) {
	var parts [][]byte
	rest := payload
	for len(rest) > 0 {
		if len(parts) >= maxBatchIDs {
			return nil, fmt.Errorf("transport: batch response exceeds %d entries", maxBatchIDs)
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("transport: truncated batch entry header (%d bytes left)", len(rest))
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("transport: batch entry claims %d bytes, %d remain", n, len(rest))
		}
		parts = append(parts, rest[:n:n])
		rest = rest[n:]
	}
	return parts, nil
}
