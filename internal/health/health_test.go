package health

import (
	"sync"
	"testing"
	"time"
)

// stepClock is a manually advanced clock.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *stepClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestMarkExpireClear(t *testing.T) {
	clk := &stepClock{t: time.Unix(1000, 0)}
	tr := NewTrackerClock[string](time.Second, clk.now)

	if tr.InCooldown("a") {
		t.Fatal("fresh tracker has suspects")
	}
	tr.MarkSuspect("a")
	if !tr.InCooldown("a") {
		t.Fatal("marked peer not in cooldown")
	}
	if tr.InCooldown("b") {
		t.Fatal("unmarked peer in cooldown")
	}
	if got := tr.Suspects(); got != 1 {
		t.Fatalf("Suspects = %d, want 1", got)
	}

	// Cooldown expires lazily.
	clk.advance(1500 * time.Millisecond)
	if tr.InCooldown("a") {
		t.Fatal("cooldown did not expire")
	}
	if got := tr.Suspects(); got != 0 {
		t.Fatalf("Suspects after expiry = %d, want 0", got)
	}

	// One healthy response forgives immediately.
	tr.MarkSuspect("a")
	tr.Clear("a")
	if tr.InCooldown("a") {
		t.Fatal("Clear did not forgive the peer")
	}
}

func TestRemarkRestartsWindow(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	tr := NewTrackerClock[int](time.Second, clk.now)
	tr.MarkSuspect(7)
	clk.advance(900 * time.Millisecond)
	tr.MarkSuspect(7) // window restarts
	clk.advance(900 * time.Millisecond)
	if !tr.InCooldown(7) {
		t.Fatal("re-mark did not restart the cooldown window")
	}
	clk.advance(200 * time.Millisecond)
	if tr.InCooldown(7) {
		t.Fatal("restarted window never expired")
	}
}

func TestNegativeCooldownDisables(t *testing.T) {
	tr := NewTracker[string](-1)
	tr.MarkSuspect("a")
	if tr.InCooldown("a") {
		t.Fatal("quarantine should be disabled with negative cooldown")
	}
	if got := tr.Suspects(); got != 0 {
		t.Fatalf("Suspects = %d, want 0 (disabled tracker stores nothing)", got)
	}
}

func TestZeroCooldownUsesDefault(t *testing.T) {
	clk := &stepClock{t: time.Unix(0, 0)}
	tr := NewTrackerClock[string](0, clk.now)
	tr.MarkSuspect("a")
	clk.advance(DefaultCooldown / 2)
	if !tr.InCooldown("a") {
		t.Fatal("default cooldown expired too early")
	}
	clk.advance(DefaultCooldown)
	if tr.InCooldown("a") {
		t.Fatal("default cooldown never expired")
	}
}

func TestStructKeys(t *testing.T) {
	// The transport group keys on {replica, member} pairs.
	tr := NewTracker[[2]int](time.Minute)
	tr.MarkSuspect([2]int{1, 3})
	if !tr.InCooldown([2]int{1, 3}) {
		t.Fatal("pair key not tracked")
	}
	if tr.InCooldown([2]int{3, 1}) {
		t.Fatal("distinct pair key matched")
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := NewTracker[int](time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w + i) % 16
				tr.MarkSuspect(k)
				tr.InCooldown(k)
				tr.Suspects()
				tr.Clear(k)
			}
		}(w)
	}
	wg.Wait()
}
