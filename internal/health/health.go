// Package health is the shared peer-quarantine bookkeeping used by the
// failover paths: transport.Group's replica failover and the shardmap
// migration puller both track suspects through one Tracker instead of
// two hand-rolled cooldown maps.
//
// The model is deliberately small — this is a local hint, not a failure
// detector: marking a peer suspect quarantines it for a cooldown window
// so callers prefer other replicas instead of paying a full retry
// schedule against a dead host on every request. Quarantined peers are
// still reachable (callers run a last-resort pass over them), and one
// healthy response clears the suspicion immediately.
package health

import (
	"sync"
	"time"
)

// Tracker quarantines keys for a cooldown window. K is whatever
// identifies a peer at the call site: transport.Group uses
// {replica, member} index pairs, the migration puller uses member IDs.
// The zero duration means DefaultCooldown; a negative duration disables
// quarantine entirely (InCooldown is always false). Safe for concurrent
// use.
type Tracker[K comparable] struct {
	cooldown time.Duration
	now      func() time.Time

	mu      sync.Mutex
	suspect map[K]time.Time // key -> quarantine expiry
}

// DefaultCooldown is how long a suspect stays quarantined when the
// Tracker is built with a zero cooldown.
const DefaultCooldown = time.Second

// NewTracker builds a Tracker with the given cooldown (0 means
// DefaultCooldown, negative disables quarantine).
func NewTracker[K comparable](cooldown time.Duration) *Tracker[K] {
	return NewTrackerClock[K](cooldown, time.Now)
}

// NewTrackerClock is NewTracker with an injectable clock, for tests that
// need to step time instead of sleeping through cooldowns.
func NewTrackerClock[K comparable](cooldown time.Duration, now func() time.Time) *Tracker[K] {
	if cooldown == 0 {
		cooldown = DefaultCooldown
	}
	return &Tracker[K]{
		cooldown: cooldown,
		now:      now,
		suspect:  make(map[K]time.Time),
	}
}

// MarkSuspect quarantines k for the cooldown window, restarting the
// window if k is already quarantined. No-op when quarantine is disabled.
func (t *Tracker[K]) MarkSuspect(k K) {
	if t.cooldown < 0 {
		return
	}
	t.mu.Lock()
	t.suspect[k] = t.now().Add(t.cooldown)
	t.mu.Unlock()
}

// Clear removes k's quarantine — called on any healthy response, so one
// success forgives a peer immediately instead of waiting out the window.
func (t *Tracker[K]) Clear(k K) {
	t.mu.Lock()
	delete(t.suspect, k)
	t.mu.Unlock()
}

// InCooldown reports whether k is currently quarantined, expiring the
// entry lazily once the window has passed.
func (t *Tracker[K]) InCooldown(k K) bool {
	if t.cooldown < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	until, ok := t.suspect[k]
	if !ok {
		return false
	}
	if t.now().After(until) {
		delete(t.suspect, k)
		return false
	}
	return true
}

// Suspects returns how many keys are currently quarantined (expired
// entries are swept first), for metrics and tests.
func (t *Tracker[K]) Suspects() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for k, until := range t.suspect {
		if now.After(until) {
			delete(t.suspect, k)
		}
	}
	return len(t.suspect)
}
