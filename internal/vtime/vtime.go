// Package vtime provides virtual clocks and deterministic random number
// generation for the simulated-cluster execution mode.
//
// Every simulated rank owns a Clock. Real Go code executes (data is really
// moved, batches are really decoded) while the *time* each operation would
// take on the modeled machine is charged to the rank's clock. Synchronizing
// operations (barriers, collectives) align clocks to the maximum of the
// participants, which reproduces straggler effects: one rank with a slow
// disk read delays every rank that waits for it.
//
// All randomness used by the simulation flows through RNG, a SplitMix64
// generator, so experiments are reproducible bit-for-bit from a seed.
package vtime

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Clock is a per-rank virtual clock. The zero value reads zero time.
//
// A Clock is advanced by the rank goroutine that owns it, but may be read by
// other goroutines during synchronization, so the counter is atomic.
type Clock struct {
	ns atomic.Int64
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Advance moves the clock forward by d. Negative d is ignored: modeled costs
// are never negative, and allowing a rewind would break the monotonicity
// invariant that synchronization relies on.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.ns.Add(int64(d))
	}
}

// AdvanceTo moves the clock forward to time t if t is later than the current
// time; otherwise it leaves the clock unchanged. It returns the resulting
// clock value. AdvanceTo is how barriers and collectives express "wait until
// the slowest participant arrives".
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.ns.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.ns.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Reset sets the clock back to zero. Only used between experiment runs.
func (c *Clock) Reset() { c.ns.Store(0) }

// MaxClock returns the latest time among the given clocks.
func MaxClock(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if t := c.Now(); t > max {
			max = t
		}
	}
	return max
}

// SyncAll advances every clock to the maximum of the group plus an extra
// cost, and returns the resulting common time. It models a barrier.
func SyncAll(clocks []*Clock, extra time.Duration) time.Duration {
	t := MaxClock(clocks) + extra
	for _, c := range clocks {
		c.AdvanceTo(t)
	}
	return t
}

// RNG is a deterministic SplitMix64 pseudo-random generator. It is not safe
// for concurrent use; give each rank its own RNG (see Split).
type RNG struct {
	state uint64
	// cached second normal variate from Box-Muller
	haveNorm bool
	norm     float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from r, keyed by id. Deriving the
// per-rank generators from a root seed keeps whole-experiment determinism
// while decorrelating the streams.
func (r *RNG) Split(id uint64) *RNG {
	// Mix the id through one SplitMix64 round of a copy of the state.
	z := r.Uint64() ^ (id+1)*0x9E3779B97F4A7C15
	return &RNG{state: z}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: Intn with non-positive n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveNorm {
		r.haveNorm = false
		return r.norm
	}
	var u1, u2 float64
	for {
		u1 = r.Float64()
		if u1 > 0 {
			break
		}
	}
	u2 = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.norm = mag * math.Sin(2*math.Pi*u2)
	r.haveNorm = true
	return mag * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Dist is a sampleable latency distribution.
type Dist interface {
	// Sample draws one latency using rng.
	Sample(rng *RNG) time.Duration
	// Mean returns the distribution mean, used by analytic summaries.
	Mean() time.Duration
}

// Fixed is a degenerate distribution that always returns D.
type Fixed struct{ D time.Duration }

// Sample implements Dist.
func (f Fixed) Sample(*RNG) time.Duration { return f.D }

// Mean implements Dist.
func (f Fixed) Mean() time.Duration { return f.D }

// LogNormal is a log-normal latency distribution parameterized by Mu and
// Sigma of the underlying normal. Latency tails on shared HPC resources
// (disks, networks under contention) are well approximated by log-normals,
// which is why the paper's CDFs have the characteristic long right tail.
type LogNormal struct {
	Mu    float64 // log of the median, in seconds
	Sigma float64 // shape: larger => heavier tail
}

// NewLogNormalMedianP99 builds a LogNormal with the given median and 99th
// percentile. It panics if p99 <= median or either is non-positive, because a
// log-normal cannot represent that.
func NewLogNormalMedianP99(median, p99 time.Duration) LogNormal {
	if median <= 0 || p99 <= median {
		panic(fmt.Sprintf("vtime: invalid log-normal spec median=%v p99=%v", median, p99))
	}
	mu := math.Log(median.Seconds())
	// For a log-normal, p99 = exp(mu + z99*sigma) with z99 ≈ 2.3263.
	const z99 = 2.3263478740408408
	sigma := (math.Log(p99.Seconds()) - mu) / z99
	return LogNormal{Mu: mu, Sigma: sigma}
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *RNG) time.Duration {
	v := math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
	return time.Duration(v * float64(time.Second))
}

// Mean implements Dist.
func (l LogNormal) Mean() time.Duration {
	v := math.Exp(l.Mu + l.Sigma*l.Sigma/2)
	return time.Duration(v * float64(time.Second))
}

// Median returns the distribution median.
func (l LogNormal) Median() time.Duration {
	return time.Duration(math.Exp(l.Mu) * float64(time.Second))
}

// Scaled wraps a distribution and multiplies every sample by Factor. It is
// used to apply contention multipliers to a base latency distribution.
type Scaled struct {
	Base   Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(rng *RNG) time.Duration {
	return time.Duration(float64(s.Base.Sample(rng)) * s.Factor)
}

// Mean implements Dist.
func (s Scaled) Mean() time.Duration {
	return time.Duration(float64(s.Base.Mean()) * s.Factor)
}
