package vtime

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock reads %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if got := c.Now(); got != 8*time.Millisecond {
		t.Fatalf("Now = %v, want 8ms", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got := c.Now(); got != time.Second {
		t.Fatalf("negative advance changed clock: %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Millisecond)
	if got := c.AdvanceTo(5 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("AdvanceTo backwards returned %v, want 10ms", got)
	}
	if got := c.AdvanceTo(20 * time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("AdvanceTo forward returned %v, want 20ms", got)
	}
	if got := c.Now(); got != 20*time.Millisecond {
		t.Fatalf("Now = %v after AdvanceTo, want 20ms", got)
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(time.Hour)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Reset left clock at %v", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per*time.Microsecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestSyncAll(t *testing.T) {
	clocks := []*Clock{{}, {}, {}}
	clocks[0].Advance(1 * time.Millisecond)
	clocks[1].Advance(7 * time.Millisecond)
	clocks[2].Advance(3 * time.Millisecond)
	got := SyncAll(clocks, 2*time.Millisecond)
	want := 9 * time.Millisecond
	if got != want {
		t.Fatalf("SyncAll = %v, want %v", got, want)
	}
	for i, c := range clocks {
		if c.Now() != want {
			t.Fatalf("clock %d at %v after SyncAll, want %v", i, c.Now(), want)
		}
	}
}

func TestMaxClockEmpty(t *testing.T) {
	if got := MaxClock(nil); got != 0 {
		t.Fatalf("MaxClock(nil) = %v, want 0", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	r1 := root.Split(1)
	root2 := NewRNG(7)
	r1b := root2.Split(1)
	for i := 0; i < 50; i++ {
		if r1.Uint64() != r1b.Uint64() {
			t.Fatalf("Split not deterministic at step %d", i)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(2)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("Intn badly skewed: value %d occurred %d/10000 times", v, n)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	f := func(seed uint64) bool {
		rr := r.Split(seed)
		n := 1 + int(seed%100)
		p := rr.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	// All 6 permutations of 3 elements should appear with roughly equal
	// frequency — a Fisher-Yates sanity check.
	r := NewRNG(6)
	counts := map[[3]int]int{}
	for i := 0; i < 6000; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations of 3, want 6", len(counts))
	}
	for p, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("permutation %v occurred %d/6000 times", p, n)
		}
	}
}

func TestFixedDist(t *testing.T) {
	d := Fixed{D: 3 * time.Millisecond}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 3*time.Millisecond {
			t.Fatalf("Fixed sample = %v", got)
		}
	}
	if d.Mean() != 3*time.Millisecond {
		t.Fatalf("Fixed mean = %v", d.Mean())
	}
}

func TestLogNormalMedianP99(t *testing.T) {
	median, p99 := 2*time.Millisecond, 12*time.Millisecond
	d := NewLogNormalMedianP99(median, p99)
	if got := d.Median(); math.Abs(got.Seconds()-median.Seconds()) > 1e-9 {
		t.Fatalf("median = %v, want %v", got, median)
	}
	// Empirically verify the 99th percentile.
	r := NewRNG(9)
	const n = 100000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.Sample(r).Seconds()
	}
	// Count fraction below p99.
	below := 0
	for _, s := range samples {
		if s <= p99.Seconds() {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.985 || frac > 0.995 {
		t.Fatalf("fraction below p99 = %v, want ~0.99", frac)
	}
}

func TestLogNormalInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p99 < median")
		}
	}()
	NewLogNormalMedianP99(10*time.Millisecond, 5*time.Millisecond)
}

func TestLogNormalMean(t *testing.T) {
	d := NewLogNormalMedianP99(time.Millisecond, 5*time.Millisecond)
	r := NewRNG(11)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r).Seconds()
	}
	emp := sum / n
	ana := d.Mean().Seconds()
	if math.Abs(emp-ana)/ana > 0.05 {
		t.Fatalf("empirical mean %v vs analytic %v", emp, ana)
	}
}

func TestScaledDist(t *testing.T) {
	base := Fixed{D: 4 * time.Millisecond}
	s := Scaled{Base: base, Factor: 2.5}
	r := NewRNG(1)
	if got := s.Sample(r); got != 10*time.Millisecond {
		t.Fatalf("Scaled sample = %v, want 10ms", got)
	}
	if got := s.Mean(); got != 10*time.Millisecond {
		t.Fatalf("Scaled mean = %v, want 10ms", got)
	}
}

func TestLogNormalSamplesPositive(t *testing.T) {
	d := NewLogNormalMedianP99(100*time.Microsecond, time.Millisecond)
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if s := d.Sample(r); s <= 0 {
			t.Fatalf("non-positive sample %v", s)
		}
	}
}
