package graph

import (
	"bytes"
	"testing"
)

// fuzzCorpus returns valid encodings to seed the fuzzer: with and without
// positions, empty edges, multi-target Y.
func fuzzCorpus() [][]byte {
	gs := []*Graph{
		{ID: 0, NumNodes: 1, NodeFeatDim: 1, NodeFeat: []float32{1}, Y: []float32{0}},
		{ID: 7, NumNodes: 3, NodeFeatDim: 2, NodeFeat: make([]float32, 6),
			EdgeSrc: []int32{0, 1, 2}, EdgeDst: []int32{1, 2, 0},
			EdgeFeatDim: 1, EdgeFeat: []float32{1, 2, 3}, Y: []float32{4, 5}},
		{ID: 42, NumNodes: 2, NodeFeatDim: 1, NodeFeat: []float32{1, 2},
			Pos: []float32{0, 0, 0, 1, 1, 1}, Y: []float32{9}},
	}
	out := make([][]byte, len(gs))
	for i, g := range gs {
		out[i] = g.Encode()
	}
	return out
}

// FuzzDecodeGraph hammers the decoder with arbitrary bytes. Decode must
// never panic or over-allocate; when it does accept an input, the decoded
// graph must survive a re-encode/re-decode round trip byte-identically —
// the property the TCP data plane relies on when it frames chunks.
func FuzzDecodeGraph(f *testing.F) {
	for _, seed := range fuzzCorpus() {
		f.Add(seed)
		// Truncations and bit flips reach the interesting error paths fast.
		f.Add(seed[:len(seed)/2])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(data)
		if err != nil {
			return
		}
		enc := g.Encode()
		g2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded accepted input failed: %v", err)
		}
		if !bytes.Equal(enc, g2.Encode()) {
			t.Fatal("encode/decode round trip is not a fixed point")
		}
		if g2.ID != g.ID || g2.NumNodes != g.NumNodes || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %+v vs %+v", g, g2)
		}
	})
}
