package graph

import (
	"bytes"
	"testing"

	"ddstore/internal/vtime"
)

// testRef counts Retain/Release calls so tests can assert on the lazy
// view's ownership transitions.
type testRef struct {
	retains  int
	releases int
}

func (r *testRef) Retain()  { r.retains++ }
func (r *testRef) Release() { r.releases++ }

func TestDecodeLazyMatchesEagerDecode(t *testing.T) {
	rng := vtime.NewRNG(7)
	for i := 0; i < 50; i++ {
		want := randomGraph(rng, int64(i))
		enc := want.Encode()
		lz, err := DecodeLazy(enc, nil)
		if err != nil {
			t.Fatalf("DecodeLazy: %v", err)
		}
		if lz.ID() != want.ID || lz.NumNodes() != want.NumNodes || lz.NumEdges() != len(want.EdgeSrc) {
			t.Fatalf("lazy header fields: id %d nodes %d edges %d, want %d %d %d",
				lz.ID(), lz.NumNodes(), lz.NumEdges(), want.ID, want.NumNodes, len(want.EdgeSrc))
		}
		if lz.EncodedSize() != len(enc) {
			t.Fatalf("EncodedSize = %d, want %d", lz.EncodedSize(), len(enc))
		}
		if lz.Materialized() {
			t.Fatal("Materialized before Graph()")
		}
		got := lz.Graph()
		if !graphsEqual(got, want) {
			t.Fatalf("lazy-materialized graph %d differs from source", i)
		}
		if !lz.Materialized() {
			t.Fatal("not Materialized after Graph()")
		}
		if lz.Graph() != got {
			t.Fatal("Graph() not memoized")
		}
	}
}

// TestDecodeLazyRejectsCorruptHeaderBeforeMaterialize proves the
// acceptance criterion: a corrupt header is rejected by DecodeLazy itself
// — before any tensor is materialized and before a reference is taken.
func TestDecodeLazyRejectsCorruptHeaderBeforeMaterialize(t *testing.T) {
	enc := testGraph(1).Encode()
	corrupt := [][]byte{
		enc[:3],                  // truncated header
		enc[:len(enc)-1],         // truncated payload
		append([]byte{}, enc...), // bad magic (patched below)
	}
	corrupt[2][0] ^= 0xFF
	for i, data := range corrupt {
		ref := &testRef{}
		lz, err := DecodeLazy(data, ref)
		if err == nil {
			t.Fatalf("case %d: corrupt input accepted", i)
		}
		if lz != nil {
			t.Fatalf("case %d: non-nil Lazy alongside error", i)
		}
		if ref.retains != 0 || ref.releases != 0 {
			t.Fatalf("case %d: ref touched on error (retains %d, releases %d)", i, ref.retains, ref.releases)
		}
	}
	// Trailing garbage after a valid frame is also rejected (DecodeLazy is
	// exact-length, like Decode).
	if _, err := DecodeLazy(append(append([]byte{}, enc...), 0xEE), nil); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestLazyGraphReleasesRefOnce(t *testing.T) {
	ref := &testRef{}
	lz, err := DecodeLazy(testGraph(9).Encode(), ref)
	if err != nil {
		t.Fatal(err)
	}
	lz.Graph()
	lz.Graph()
	if ref.releases != 1 {
		t.Fatalf("releases = %d after materialize, want 1", ref.releases)
	}
	lz.Release() // after materialization: no double release
	if ref.releases != 1 {
		t.Fatalf("releases = %d after Release post-materialize, want 1", ref.releases)
	}
}

func TestLazyReleaseWithoutMaterialize(t *testing.T) {
	ref := &testRef{}
	lz, err := DecodeLazy(testGraph(9).Encode(), ref)
	if err != nil {
		t.Fatal(err)
	}
	lz.Release()
	lz.Release() // idempotent
	if ref.releases != 1 {
		t.Fatalf("releases = %d, want 1", ref.releases)
	}
}

// TestLazyAppendToBitIdentical proves the zero-decode re-encode path: a
// lazy view appends its retained wire bytes verbatim, and the fallback
// after materialization re-encodes to the identical frame.
func TestLazyAppendToBitIdentical(t *testing.T) {
	rng := vtime.NewRNG(21)
	for i := 0; i < 30; i++ {
		enc := randomGraph(rng, int64(i)).Encode()
		lz, err := DecodeLazy(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := lz.AppendTo(nil); !bytes.Equal(got, enc) {
			t.Fatalf("AppendTo before materialize differs at graph %d", i)
		}
		lz.Graph()
		if got := lz.AppendTo(nil); !bytes.Equal(got, enc) {
			t.Fatalf("AppendTo after materialize differs at graph %d", i)
		}
		// Appending onto an existing prefix keeps the prefix.
		pre := []byte{1, 2, 3}
		if got := lz.AppendTo(append([]byte{}, pre...)); !bytes.Equal(got[:3], pre) || !bytes.Equal(got[3:], enc) {
			t.Fatalf("AppendTo with prefix mangled output at graph %d", i)
		}
	}
}

// TestLazyCloneIndependentViews pins the duplicate-position contract:
// each clone holds its own reference and is consumed on its own, so
// releasing one view never invalidates a sibling.
func TestLazyCloneIndependentViews(t *testing.T) {
	want := testGraph(4)
	ref := &testRef{}
	lz, err := DecodeLazy(want.Encode(), ref)
	if err != nil {
		t.Fatal(err)
	}
	cl := lz.Clone()
	if ref.retains != 1 {
		t.Fatalf("retains = %d after Clone, want 1", ref.retains)
	}
	lz.Release()
	if ref.releases != 1 {
		t.Fatalf("releases = %d, want 1", ref.releases)
	}
	// The clone survives the original's release.
	if got := cl.Graph(); !graphsEqual(got, want) {
		t.Fatal("clone materialized wrong graph after sibling release")
	}
	if ref.releases != 2 {
		t.Fatalf("releases = %d after clone materialize, want 2", ref.releases)
	}
	// Cloning a materialized view shares the immutable graph, no ref.
	if cl.Clone().Graph() != cl.Graph() {
		t.Fatal("clone of materialized view does not share the graph")
	}
	if ref.retains != 1 {
		t.Fatalf("retains = %d after materialized clone, want 1", ref.retains)
	}
	// Cloning a released, unmaterialized view panics.
	lz2, _ := DecodeLazy(want.Encode(), nil)
	lz2.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of released Lazy did not panic")
		}
	}()
	lz2.Clone()
}

// TestDecodeLazyAllocs pins the headline number: header-validating a wire
// frame costs one allocation (the Lazy itself), down from the eager
// decoder's seven.
func TestDecodeLazyAllocs(t *testing.T) {
	enc := randomGraph(vtime.NewRNG(3), 1).Encode()
	allocs := testing.AllocsPerRun(200, func() {
		lz, err := DecodeLazy(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = lz.NumNodes()
	})
	if allocs > 1 {
		t.Fatalf("DecodeLazy allocs/op = %v, want <= 1", allocs)
	}
}
