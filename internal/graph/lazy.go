package graph

import "fmt"

// Ref is the reference a Lazy may hold on the buffer backing its encoded
// bytes. It is declared structurally (rather than importing the arena) so
// the codec stays dependency-free; *bufarena.Buf satisfies it, as does the
// cache package's identical interface.
type Ref interface {
	Retain()
	Release()
}

// Lazy is a validated-but-not-materialized graph: the codec header has
// been fully checked (magic, version, counts, exact payload length) but
// the tensors still live in the encoded wire bytes. This is what the hot
// read path produces per sample — validation costs one allocation (the
// Lazy itself) instead of one per tensor — and materialization is deferred
// to the first Graph call, typically batch assembly in the training loop.
// Samples that are fetched for cache warming, prefetched speculatively, or
// re-encoded verbatim never pay decode cost at all.
//
// A Lazy may hold one reference on the buffer backing data (ref != nil
// when the bytes came from the pooled arena). The reference is released as
// soon as it is no longer needed: by Graph on first materialization, or by
// Release if the tensors are never touched. A Lazy is not safe for
// concurrent use; callers serialize access per value.
type Lazy struct {
	data []byte
	ref  Ref
	h    header
	g    *Graph
}

// DecodeLazy validates one encoded graph without materializing tensors.
// data must contain exactly one encoded graph, as for Decode. If ref is
// non-nil the Lazy takes ownership of one reference on the buffer backing
// data and releases it when the bytes are no longer needed (first Graph
// call, or Release). On error no reference is taken: the caller keeps
// ownership.
func DecodeLazy(data []byte, ref Ref) (*Lazy, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if rest := len(data) - h.want; rest != 0 {
		return nil, fmt.Errorf("graph: %d trailing bytes after decoded graph", rest)
	}
	return &Lazy{data: data, ref: ref, h: h}, nil
}

// ID returns the sample id from the header.
func (l *Lazy) ID() int64 { return l.h.id }

// NumNodes returns the atom count from the header.
func (l *Lazy) NumNodes() int { return l.h.numNodes }

// NumEdges returns the directed edge count from the header.
func (l *Lazy) NumEdges() int { return l.h.numEdges }

// EncodedSize returns the encoded byte length.
func (l *Lazy) EncodedSize() int { return l.h.want }

// Materialized reports whether Graph has already been called.
func (l *Lazy) Materialized() bool { return l.g != nil }

// Ref returns the buffer reference the Lazy holds, or nil. The Lazy keeps
// ownership; callers that want their own alias must Retain.
func (l *Lazy) Ref() Ref { return l.ref }

// AppendTo appends the encoded bytes onto buf — a bit-identical re-encode
// with no decode round trip. It must not be called after Release unless
// the graph was materialized first (the backing bytes are gone).
func (l *Lazy) AppendTo(buf []byte) []byte {
	if l.data == nil {
		return l.g.AppendTo(buf)
	}
	return append(buf, l.data...)
}

// Clone returns an independent view over the same encoded bytes, holding
// its own (newly retained) reference on the backing buffer, so each view
// is consumed independently — duplicate batch positions each get a clone,
// and releasing one position cannot invalidate another. Cloning an
// already-materialized view shares the (immutable) *Graph; cloning a
// released, unmaterialized view panics.
func (l *Lazy) Clone() *Lazy {
	if l.data == nil {
		if l.g == nil {
			panic("graph: Clone of a released Lazy")
		}
		return &Lazy{h: l.h, g: l.g}
	}
	if l.ref != nil {
		l.ref.Retain()
	}
	return &Lazy{data: l.data, ref: l.ref, h: l.h}
}

// Graph materializes the tensors on first call and memoizes the result;
// the buffer reference (if any) is released at that point since the
// encoded bytes are no longer needed.
func (l *Lazy) Graph() *Graph {
	if l.g == nil {
		l.g = l.h.materialize(l.data)
		l.data = nil
		l.releaseRef()
	}
	return l.g
}

// Release drops the Lazy's buffer reference without materializing, for
// samples whose tensors will never be touched. Idempotent; a later Graph
// call is only valid if the graph was already materialized.
func (l *Lazy) Release() {
	l.data = nil
	l.releaseRef()
}

func (l *Lazy) releaseRef() {
	if l.ref != nil {
		l.ref.Release()
		l.ref = nil
	}
}
