package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"ddstore/internal/vtime"
)

// testGraph builds a small valid sample.
func testGraph(id int64) *Graph {
	return &Graph{
		ID:          id,
		NumNodes:    3,
		NodeFeatDim: 2,
		NodeFeat:    []float32{1, 2, 3, 4, 5, 6},
		EdgeSrc:     []int32{0, 1, 2},
		EdgeDst:     []int32{1, 2, 0},
		EdgeFeatDim: 1,
		EdgeFeat:    []float32{0.5, 0.6, 0.7},
		Pos:         []float32{0, 0, 0, 1, 0, 0, 0, 1, 0},
		Y:           []float32{42},
	}
}

// randomGraph generates a structurally valid random graph.
func randomGraph(rng *vtime.RNG, id int64) *Graph {
	n := 1 + rng.Intn(40)
	nf := rng.Intn(5)
	ef := rng.Intn(3)
	ne := rng.Intn(3 * n)
	g := &Graph{
		ID:          id,
		NumNodes:    n,
		NodeFeatDim: nf,
		NodeFeat:    make([]float32, n*nf),
		EdgeSrc:     make([]int32, ne),
		EdgeDst:     make([]int32, ne),
		EdgeFeatDim: ef,
		EdgeFeat:    make([]float32, ne*ef),
		Y:           make([]float32, 1+rng.Intn(8)),
	}
	for i := range g.NodeFeat {
		g.NodeFeat[i] = float32(rng.NormFloat64())
	}
	for i := range g.EdgeSrc {
		g.EdgeSrc[i] = int32(rng.Intn(n))
		g.EdgeDst[i] = int32(rng.Intn(n))
	}
	for i := range g.EdgeFeat {
		g.EdgeFeat[i] = float32(rng.NormFloat64())
	}
	for i := range g.Y {
		g.Y[i] = float32(rng.NormFloat64())
	}
	if rng.Intn(2) == 0 {
		g.Pos = make([]float32, n*3)
		for i := range g.Pos {
			g.Pos[i] = float32(rng.Float64())
		}
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.ID != b.ID || a.NumNodes != b.NumNodes ||
		a.NodeFeatDim != b.NodeFeatDim || a.EdgeFeatDim != b.EdgeFeatDim {
		return false
	}
	eqF := func(x, y []float32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	eqI := func(x, y []int32) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eqF(a.NodeFeat, b.NodeFeat) && eqI(a.EdgeSrc, b.EdgeSrc) &&
		eqI(a.EdgeDst, b.EdgeDst) && eqF(a.EdgeFeat, b.EdgeFeat) &&
		eqF(a.Pos, b.Pos) && eqF(a.Y, b.Y)
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := testGraph(1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := map[string]func(g *Graph){
		"node feature length": func(g *Graph) { g.NodeFeat = g.NodeFeat[:3] },
		"edge src/dst":        func(g *Graph) { g.EdgeDst = g.EdgeDst[:2] },
		"edge feature length": func(g *Graph) { g.EdgeFeat = append(g.EdgeFeat, 1) },
		"edge out of range":   func(g *Graph) { g.EdgeSrc[0] = 7 },
		"negative edge":       func(g *Graph) { g.EdgeDst[1] = -1 },
		"bad positions":       func(g *Graph) { g.Pos = g.Pos[:4] },
	}
	for name, mutate := range cases {
		g := testGraph(1)
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt graph", name)
		}
	}
}

func TestInDegrees(t *testing.T) {
	g := testGraph(1)
	deg := g.InDegrees()
	for i, d := range deg {
		if d != 1 {
			t.Fatalf("node %d in-degree %d, want 1", i, d)
		}
	}
	g.EdgeDst = []int32{0, 0, 0}
	deg = g.InDegrees()
	if deg[0] != 3 || deg[1] != 0 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := testGraph(77)
	data := g.Encode()
	if len(data) != g.EncodedSize() {
		t.Fatalf("Encode produced %d bytes, EncodedSize says %d", len(data), g.EncodedSize())
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", g, got)
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := vtime.NewRNG(123)
	f := func(seed uint64) bool {
		g := randomGraph(rng.Split(seed), int64(seed))
		got, err := Decode(g.Encode())
		if err != nil {
			return false
		}
		return graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePrefixStreaming(t *testing.T) {
	g1, g2 := testGraph(1), testGraph(2)
	buf := g1.AppendTo(nil)
	buf = g2.AppendTo(buf)
	a, rest, err := DecodePrefix(buf)
	if err != nil {
		t.Fatal(err)
	}
	b, rest, err := DecodePrefix(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids %d %d", a.ID, b.ID)
	}
}

func TestDecodeErrors(t *testing.T) {
	g := testGraph(1)
	data := g.Encode()

	if _, err := Decode(data[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decode(data[:len(data)-4]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
	badv := append([]byte(nil), data...)
	badv[2] = 0xEE
	if _, err := Decode(badv); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}
	if _, err := Decode(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted by Decode")
	}
	// Corrupt node count implying a huge payload must error, not panic.
	huge := append([]byte(nil), data...)
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := Decode(huge); err == nil {
		t.Error("absurd node count accepted")
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := vtime.NewRNG(5)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := r.Intn(200)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		_, _ = Decode(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := &Graph{ID: 9}
	got, err := Decode(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.NumNodes != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty graph mangled: %+v", got)
	}
}

func TestNewBatchOffsets(t *testing.T) {
	g1, g2 := testGraph(1), testGraph(2)
	b, err := NewBatch([]*Graph{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumGraphs != 2 || b.NumNodes != 6 || b.NumEdges() != 6 {
		t.Fatalf("batch shape: %d graphs %d nodes %d edges", b.NumGraphs, b.NumNodes, b.NumEdges())
	}
	// Second graph's edges must be shifted by 3.
	if b.EdgeSrc[3] != 3 || b.EdgeDst[3] != 4 {
		t.Fatalf("edge offsets wrong: %v -> %v", b.EdgeSrc, b.EdgeDst)
	}
	want := []int32{0, 0, 0, 1, 1, 1}
	for i, gi := range b.GraphIndex {
		if gi != want[i] {
			t.Fatalf("GraphIndex = %v", b.GraphIndex)
		}
	}
	if len(b.Y) != 2 || b.Y[0] != 42 || b.Y[1] != 42 {
		t.Fatalf("batch targets: %v", b.Y)
	}
	if b.IDs[0] != 1 || b.IDs[1] != 2 {
		t.Fatalf("batch ids: %v", b.IDs)
	}
	if b.Bytes() <= 0 {
		t.Fatal("batch bytes not positive")
	}
}

func TestNewBatchRejectsEmpty(t *testing.T) {
	if _, err := NewBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestNewBatchRejectsMixedDims(t *testing.T) {
	g1, g2 := testGraph(1), testGraph(2)
	g2.NodeFeatDim = 3
	g2.NodeFeat = make([]float32, 9)
	if _, err := NewBatch([]*Graph{g1, g2}); err == nil {
		t.Fatal("mixed node dims accepted")
	}
	g3 := testGraph(3)
	g3.Y = []float32{1, 2}
	if _, err := NewBatch([]*Graph{g1, g3}); err == nil {
		t.Fatal("mixed target dims accepted")
	}
}

func TestBatchEdgesAlwaysInRange(t *testing.T) {
	rng := vtime.NewRNG(99)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		count := 1 + r.Intn(8)
		gs := make([]*Graph, count)
		for i := range gs {
			g := randomGraph(r, int64(i))
			// Normalize dims so batching succeeds.
			g.NodeFeatDim = 2
			g.NodeFeat = make([]float32, g.NumNodes*2)
			g.EdgeFeatDim = 0
			g.EdgeFeat = nil
			g.Y = []float32{1}
			gs[i] = g
		}
		b, err := NewBatch(gs)
		if err != nil {
			return false
		}
		for i := range b.EdgeSrc {
			if b.EdgeSrc[i] < 0 || int(b.EdgeSrc[i]) >= b.NumNodes ||
				b.EdgeDst[i] < 0 || int(b.EdgeDst[i]) >= b.NumNodes {
				return false
			}
		}
		// GraphIndex must be monotonically non-decreasing covering all graphs.
		for i := 1; i < len(b.GraphIndex); i++ {
			if b.GraphIndex[i] < b.GraphIndex[i-1] {
				return false
			}
		}
		return len(b.GraphIndex) == b.NumNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	g := randomGraph(vtime.NewRNG(1), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Encode()
	}
}

func BenchmarkDecode(b *testing.B) {
	data := randomGraph(vtime.NewRNG(1), 0).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewBatch128(b *testing.B) {
	rng := vtime.NewRNG(2)
	gs := make([]*Graph, 128)
	for i := range gs {
		g := randomGraph(rng, int64(i))
		g.NodeFeatDim = 4
		g.NodeFeat = make([]float32, g.NumNodes*4)
		g.EdgeFeatDim = 0
		g.EdgeFeat = nil
		g.Y = []float32{1}
		gs[i] = g
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewBatch(gs); err != nil {
			b.Fatal(err)
		}
	}
}

func FuzzDecodePrefix(f *testing.F) {
	// Seed with valid encodings and truncations thereof.
	g := testGraph(1)
	data := g.Encode()
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(append(data, data...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the graph must re-encode to the
		// same prefix length it consumed.
		g, rest, err := DecodePrefix(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		if got := g.EncodedSize(); got != consumed {
			t.Fatalf("decoded graph re-encodes to %d bytes, consumed %d", got, consumed)
		}
	})
}
