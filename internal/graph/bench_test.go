package graph

import (
	"fmt"
	"testing"

	"ddstore/internal/vtime"
)

// sizedGraph builds a dense, fixed-dimension sample with the given node
// count — the shape knob the decode sweep turns.
func sizedGraph(rng *vtime.RNG, nodes int) *Graph {
	const nodeDim, edgeDim = 16, 4
	edges := 3 * nodes
	g := &Graph{
		ID:          1,
		NumNodes:    nodes,
		NodeFeatDim: nodeDim,
		NodeFeat:    make([]float32, nodes*nodeDim),
		EdgeSrc:     make([]int32, edges),
		EdgeDst:     make([]int32, edges),
		EdgeFeatDim: edgeDim,
		EdgeFeat:    make([]float32, edges*edgeDim),
		Pos:         make([]float32, nodes*3),
		Y:           []float32{1},
	}
	for i := range g.NodeFeat {
		g.NodeFeat[i] = float32(rng.NormFloat64())
	}
	for i := range g.EdgeSrc {
		g.EdgeSrc[i] = int32(rng.Intn(nodes))
		g.EdgeDst[i] = int32(rng.Intn(nodes))
	}
	for i := range g.EdgeFeat {
		g.EdgeFeat[i] = float32(rng.NormFloat64())
	}
	for i := range g.Pos {
		g.Pos[i] = float32(rng.Float64())
	}
	return g
}

// BenchmarkDecodeSizes measures the wire-validation hot path Store.Load
// pays once per remote sample, swept over graph size. Since the lazy
// decode split, this is DecodeLazy: full header validation with tensor
// materialization deferred — the cost every fetched sample pays whether or
// not its tensors are ever touched. The allocs/op budget (<= 1, the Lazy
// itself) is enforced by `make bench-allocs` in CI.
func BenchmarkDecodeSizes(b *testing.B) {
	rng := vtime.NewRNG(11)
	for _, nodes := range []int{8, 64, 256} {
		enc := sizedGraph(rng, nodes).Encode()
		b.Run(fmt.Sprintf("nodes%d", nodes), func(b *testing.B) {
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeLazy(enc, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaterializeSizes is the honest other half: header validation
// plus full tensor materialization (what Decode used to measure), so the
// lazy split can't hide the decode cost — it only defers it to first
// touch. Two slab allocations back all six tensors.
func BenchmarkMaterializeSizes(b *testing.B) {
	rng := vtime.NewRNG(11)
	for _, nodes := range []int{8, 64, 256} {
		enc := sizedGraph(rng, nodes).Encode()
		b.Run(fmt.Sprintf("nodes%d", nodes), func(b *testing.B) {
			b.SetBytes(int64(len(enc)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lz, err := DecodeLazy(enc, nil)
				if err != nil {
					b.Fatal(err)
				}
				if lz.Graph() == nil {
					b.Fatal("nil graph")
				}
			}
		})
	}
}
