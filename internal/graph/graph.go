// Package graph defines the atomistic graph sample model used throughout
// DDStore: a molecule or crystal configuration with atoms as nodes and
// interatomic bonds as edges, node/edge features, and one or more prediction
// targets (energy, HOMO-LUMO gap, UV-vis spectrum).
//
// The package also provides a compact binary codec (the serialized form
// stored in PFF files, CFF containers, and DDStore memory windows) and
// mini-batch assembly (the disjoint-union batching used by graph neural
// networks).
package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Graph is one atomistic sample.
type Graph struct {
	// ID is the global sample index within its dataset.
	ID int64
	// NumNodes is the number of atoms.
	NumNodes int
	// NodeFeatDim is the per-atom feature width; NodeFeat is row-major
	// NumNodes × NodeFeatDim.
	NodeFeatDim int
	NodeFeat    []float32
	// EdgeSrc/EdgeDst hold one directed edge per entry (undirected bonds are
	// stored as two directed edges).
	EdgeSrc []int32
	EdgeDst []int32
	// EdgeFeatDim is the per-edge feature width; EdgeFeat is row-major
	// len(EdgeSrc) × EdgeFeatDim. May be zero.
	EdgeFeatDim int
	EdgeFeat    []float32
	// Pos holds atom coordinates, NumNodes × 3, or nil.
	Pos []float32
	// Y is the prediction target vector (length = dataset's output dim).
	Y []float32
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.EdgeSrc) }

// Validate checks structural invariants.
func (g *Graph) Validate() error {
	if g.NumNodes < 0 {
		return fmt.Errorf("graph %d: negative node count", g.ID)
	}
	if g.NodeFeatDim < 0 || g.EdgeFeatDim < 0 {
		return fmt.Errorf("graph %d: negative feature dim", g.ID)
	}
	if len(g.NodeFeat) != g.NumNodes*g.NodeFeatDim {
		return fmt.Errorf("graph %d: node features %d != %d nodes × %d dims",
			g.ID, len(g.NodeFeat), g.NumNodes, g.NodeFeatDim)
	}
	if len(g.EdgeSrc) != len(g.EdgeDst) {
		return fmt.Errorf("graph %d: %d edge sources vs %d destinations",
			g.ID, len(g.EdgeSrc), len(g.EdgeDst))
	}
	if len(g.EdgeFeat) != len(g.EdgeSrc)*g.EdgeFeatDim {
		return fmt.Errorf("graph %d: edge features %d != %d edges × %d dims",
			g.ID, len(g.EdgeFeat), len(g.EdgeSrc), g.EdgeFeatDim)
	}
	if g.Pos != nil && len(g.Pos) != g.NumNodes*3 {
		return fmt.Errorf("graph %d: positions %d != %d nodes × 3", g.ID, len(g.Pos), g.NumNodes)
	}
	for i := range g.EdgeSrc {
		if g.EdgeSrc[i] < 0 || int(g.EdgeSrc[i]) >= g.NumNodes ||
			g.EdgeDst[i] < 0 || int(g.EdgeDst[i]) >= g.NumNodes {
			return fmt.Errorf("graph %d: edge %d (%d->%d) out of range [0,%d)",
				g.ID, i, g.EdgeSrc[i], g.EdgeDst[i], g.NumNodes)
		}
	}
	return nil
}

// InDegrees returns the in-degree of every node.
func (g *Graph) InDegrees() []int32 {
	deg := make([]int32, g.NumNodes)
	for _, d := range g.EdgeDst {
		deg[d]++
	}
	return deg
}

// Codec constants.
const (
	codecMagic   = 0xDD57 // "DDSTore"
	codecVersion = 1
)

// EncodedSize returns the exact number of bytes Encode will produce.
func (g *Graph) EncodedSize() int {
	n := 4 + 8 // magic+version, id
	n += 6 * 4 // numNodes, nodeFeatDim, numEdges, edgeFeatDim, hasPos, lenY
	n += 4 * len(g.NodeFeat)
	n += 4 * len(g.EdgeSrc)
	n += 4 * len(g.EdgeDst)
	n += 4 * len(g.EdgeFeat)
	n += 4 * len(g.Pos)
	n += 4 * len(g.Y)
	return n
}

// Encode serializes the graph into a fresh buffer.
func (g *Graph) Encode() []byte {
	return g.AppendTo(make([]byte, 0, g.EncodedSize()))
}

// AppendTo serializes the graph onto buf and returns the extended slice.
// Layout (little endian): u16 magic, u16 version, i64 id, u32 numNodes,
// u32 nodeFeatDim, u32 numEdges, u32 edgeFeatDim, u32 hasPos, u32 lenY,
// then the float32/int32 payloads in declaration order.
func (g *Graph) AppendTo(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, codecMagic)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.NumNodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.NodeFeatDim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.EdgeSrc)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.EdgeFeatDim))
	hasPos := uint32(0)
	if g.Pos != nil {
		hasPos = 1
	}
	buf = binary.LittleEndian.AppendUint32(buf, hasPos)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.Y)))
	buf = appendFloat32s(buf, g.NodeFeat)
	buf = appendInt32s(buf, g.EdgeSrc)
	buf = appendInt32s(buf, g.EdgeDst)
	buf = appendFloat32s(buf, g.EdgeFeat)
	buf = appendFloat32s(buf, g.Pos)
	buf = appendFloat32s(buf, g.Y)
	return buf
}

func appendFloat32s(buf []byte, xs []float32) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return buf
}

func appendInt32s(buf []byte, xs []int32) []byte {
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// headerSize is the fixed codec header: u16 magic, u16 version, i64 id,
// then six u32 counts.
const headerSize = 4 + 8 + 6*4

// header is the parsed fixed-size codec header plus the derived total
// encoded size. Parsing it validates everything about an encoded graph
// except the tensor payload bytes themselves, so a header alone is enough
// to accept a sample onto the hot path and defer materialization.
type header struct {
	id          int64
	numNodes    int
	nodeFeatDim int
	numEdges    int
	edgeFeatDim int
	lenY        int
	hasPos      bool
	want        int // total encoded bytes including the header
}

// parseHeader validates and reads the codec header at the front of data,
// including the payload-length guard against corrupt headers requesting
// absurd allocations. It allocates nothing.
func parseHeader(data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("graph: truncated header: %d bytes", len(data))
	}
	if m := binary.LittleEndian.Uint16(data[0:]); m != codecMagic {
		return h, fmt.Errorf("graph: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[2:]); v != codecVersion {
		return h, fmt.Errorf("graph: unsupported codec version %d", v)
	}
	h.id = int64(binary.LittleEndian.Uint64(data[4:]))
	h.numNodes = int(binary.LittleEndian.Uint32(data[12:]))
	h.nodeFeatDim = int(binary.LittleEndian.Uint32(data[16:]))
	h.numEdges = int(binary.LittleEndian.Uint32(data[20:]))
	h.edgeFeatDim = int(binary.LittleEndian.Uint32(data[24:]))
	h.hasPos = binary.LittleEndian.Uint32(data[28:]) != 0
	h.lenY = int(binary.LittleEndian.Uint32(data[32:]))

	h.want = headerSize + 4*(h.numNodes*h.nodeFeatDim+2*h.numEdges+h.numEdges*h.edgeFeatDim+h.lenY)
	if h.hasPos {
		h.want += 4 * h.numNodes * 3
	}
	if h.numNodes < 0 || h.numEdges < 0 || h.lenY < 0 || h.want < headerSize || len(data) < h.want {
		return h, fmt.Errorf("graph: payload needs %d bytes, have %d", h.want, len(data))
	}
	return h, nil
}

// materialize builds the Graph for a validated header. All float tensors
// share one slab and both edge-index tensors share another, so a full
// decode costs three allocations (Graph + two slabs) instead of one per
// tensor. Subslices are capacity-clipped so appending to one tensor can
// never scribble over its slab neighbors, and zero-length tensors stay
// nil exactly as the per-tensor decoder produced them.
func (h *header) materialize(data []byte) *Graph {
	g := &Graph{
		ID:          h.id,
		NumNodes:    h.numNodes,
		NodeFeatDim: h.nodeFeatDim,
		EdgeFeatDim: h.edgeFeatDim,
	}
	nNode := h.numNodes * h.nodeFeatDim
	nEdgeFeat := h.numEdges * h.edgeFeatDim
	nPos := 0
	if h.hasPos {
		nPos = h.numNodes * 3
	}
	floats := make([]float32, nNode+nEdgeFeat+nPos+h.lenY)
	ints := make([]int32, 2*h.numEdges)

	p := data[headerSize:]
	fillFloat32s(floats[:nNode], p)
	p = p[4*nNode:]
	fillInt32s(ints[:h.numEdges], p)
	p = p[4*h.numEdges:]
	fillInt32s(ints[h.numEdges:], p)
	p = p[4*h.numEdges:]
	fillFloat32s(floats[nNode:nNode+nEdgeFeat], p)
	p = p[4*nEdgeFeat:]
	fillFloat32s(floats[nNode+nEdgeFeat:nNode+nEdgeFeat+nPos], p)
	p = p[4*nPos:]
	fillFloat32s(floats[nNode+nEdgeFeat+nPos:], p)

	g.NodeFeat = subFloats(floats, 0, nNode)
	g.EdgeSrc = subInts(ints, 0, h.numEdges)
	g.EdgeDst = subInts(ints, h.numEdges, 2*h.numEdges)
	g.EdgeFeat = subFloats(floats, nNode, nNode+nEdgeFeat)
	g.Pos = subFloats(floats, nNode+nEdgeFeat, nNode+nEdgeFeat+nPos)
	g.Y = subFloats(floats, nNode+nEdgeFeat+nPos, len(floats))
	return g
}

func subFloats(s []float32, lo, hi int) []float32 {
	if lo == hi {
		return nil
	}
	return s[lo:hi:hi]
}

func subInts(s []int32, lo, hi int) []int32 {
	if lo == hi {
		return nil
	}
	return s[lo:hi:hi]
}

func fillFloat32s(dst []float32, data []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
	}
}

func fillInt32s(dst []int32, data []byte) {
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
}

// Decode deserializes one graph from data, which must contain exactly one
// encoded graph (as produced by Encode).
func Decode(data []byte) (*Graph, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	if rest := len(data) - h.want; rest != 0 {
		return nil, fmt.Errorf("graph: %d trailing bytes after decoded graph", rest)
	}
	return h.materialize(data), nil
}

// DecodePrefix deserializes one graph from the front of data and returns the
// remaining bytes, enabling streaming decode of concatenated graphs.
func DecodePrefix(data []byte) (*Graph, []byte, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, nil, err
	}
	return h.materialize(data), data[h.want:], nil
}

// Batch is the disjoint union of several graphs: node and edge arrays are
// concatenated with edge indices shifted by the node offsets, exactly like
// PyTorch Geometric's Batch. The GNN consumes Batches.
type Batch struct {
	NumGraphs   int
	NumNodes    int
	NodeFeatDim int
	NodeFeat    []float32
	EdgeSrc     []int32
	EdgeDst     []int32
	EdgeFeatDim int
	EdgeFeat    []float32
	// GraphIndex maps each node to the index of its graph within the batch
	// (used by the readout/pooling layer).
	GraphIndex []int32
	// YDim is the per-graph target width; Y is NumGraphs × YDim.
	YDim int
	Y    []float32
	// IDs are the global sample ids of the member graphs.
	IDs []int64
}

// NewBatch assembles graphs into one batch. All graphs must share feature
// and target dimensions.
func NewBatch(graphs []*Graph) (*Batch, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("graph: empty batch")
	}
	b := &Batch{
		NumGraphs:   len(graphs),
		NodeFeatDim: graphs[0].NodeFeatDim,
		EdgeFeatDim: graphs[0].EdgeFeatDim,
		YDim:        len(graphs[0].Y),
	}
	var totalNodes, totalEdges int
	for _, g := range graphs {
		if g.NodeFeatDim != b.NodeFeatDim {
			return nil, fmt.Errorf("graph: batch mixes node feature dims %d and %d", b.NodeFeatDim, g.NodeFeatDim)
		}
		if g.EdgeFeatDim != b.EdgeFeatDim {
			return nil, fmt.Errorf("graph: batch mixes edge feature dims %d and %d", b.EdgeFeatDim, g.EdgeFeatDim)
		}
		if len(g.Y) != b.YDim {
			return nil, fmt.Errorf("graph: batch mixes target dims %d and %d", b.YDim, len(g.Y))
		}
		totalNodes += g.NumNodes
		totalEdges += g.NumEdges()
	}
	b.NumNodes = totalNodes
	b.NodeFeat = make([]float32, 0, totalNodes*b.NodeFeatDim)
	b.EdgeSrc = make([]int32, 0, totalEdges)
	b.EdgeDst = make([]int32, 0, totalEdges)
	b.EdgeFeat = make([]float32, 0, totalEdges*b.EdgeFeatDim)
	b.GraphIndex = make([]int32, 0, totalNodes)
	b.Y = make([]float32, 0, len(graphs)*b.YDim)
	b.IDs = make([]int64, 0, len(graphs))

	offset := int32(0)
	for gi, g := range graphs {
		b.NodeFeat = append(b.NodeFeat, g.NodeFeat...)
		for i := range g.EdgeSrc {
			b.EdgeSrc = append(b.EdgeSrc, g.EdgeSrc[i]+offset)
			b.EdgeDst = append(b.EdgeDst, g.EdgeDst[i]+offset)
		}
		b.EdgeFeat = append(b.EdgeFeat, g.EdgeFeat...)
		for i := 0; i < g.NumNodes; i++ {
			b.GraphIndex = append(b.GraphIndex, int32(gi))
		}
		b.Y = append(b.Y, g.Y...)
		b.IDs = append(b.IDs, g.ID)
		offset += int32(g.NumNodes)
	}
	return b, nil
}

// NumEdges returns the number of directed edges in the batch.
func (b *Batch) NumEdges() int { return len(b.EdgeSrc) }

// Bytes returns the approximate in-memory footprint of the batch payload,
// used for cost accounting.
func (b *Batch) Bytes() int64 {
	return int64(4 * (len(b.NodeFeat) + len(b.EdgeSrc) + len(b.EdgeDst) +
		len(b.EdgeFeat) + len(b.GraphIndex) + len(b.Y)))
}
