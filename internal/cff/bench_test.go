package cff

import (
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/vtime"
)

// BenchmarkRealReadSample measures the true wall-clock cost of the CFF
// access pattern on the local filesystem: one positional read inside an
// already-open container per access (no per-sample metadata op).
func BenchmarkRealReadSample(b *testing.B) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 512})
	dir := b.TempDir()
	if err := Write(dir, ds, 4); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rng := vtime.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ReadSample(int64(rng.Intn(512))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealWrite measures container materialization throughput.
func BenchmarkRealWrite(b *testing.B) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(b.TempDir(), ds, 4); err != nil {
			b.Fatal(err)
		}
	}
}
