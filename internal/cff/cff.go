// Package cff implements the containerized file format baseline (the
// paper's "CFF", modeled after ADIOS): many samples packed into a small
// number of container subfiles, each carrying a footer index mapping sample
// id to (offset, length). Containers avoid PFF's per-sample metadata storm,
// but random shuffled reads still turn into seeks inside shared files, and
// thousands of processes seeking in the same containers congest the
// filesystem.
//
// As with package pff, Store is the real on-disk implementation and Sim is
// the simulated-filesystem implementation used by the at-scale experiments.
package cff

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/pfs"
	"ddstore/internal/vtime"
)

const (
	containerMagic   = 0xADD105C0
	containerVersion = 1
	metaFile         = "meta.json"
)

// Meta describes a CFF container directory.
type Meta struct {
	Name        string `json:"name"`
	NumGraphs   int    `json:"num_graphs"`
	NumParts    int    `json:"num_parts"`
	NodeFeatDim int    `json:"node_feat_dim"`
	EdgeFeatDim int    `json:"edge_feat_dim"`
	OutputDim   int    `json:"output_dim"`
}

// indexEntry locates one sample inside a part.
type indexEntry struct {
	ID     int64
	Offset int64
	Length int32
}

func partPath(dir string, part int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%04d.ddc", part))
}

// partRange returns the sample-id range [lo, hi) stored in a part when
// total samples are split evenly over numParts parts.
func partRange(total, numParts, part int) (int64, int64) {
	per := total / numParts
	rem := total % numParts
	lo := part*per + min(part, rem)
	hi := lo + per
	if part < rem {
		hi++
	}
	return int64(lo), int64(hi)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Write materializes the dataset as numParts container subfiles under dir.
func Write(dir string, ds *datasets.Dataset, numParts int) error {
	if numParts < 1 {
		return fmt.Errorf("cff: numParts %d must be positive", numParts)
	}
	if numParts > ds.Len() && ds.Len() > 0 {
		numParts = ds.Len()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for part := 0; part < numParts; part++ {
		lo, hi := partRange(ds.Len(), numParts, part)
		if err := writePart(partPath(dir, part), ds, lo, hi); err != nil {
			return err
		}
	}
	meta := Meta{
		Name:        ds.Name(),
		NumGraphs:   ds.Len(),
		NumParts:    numParts,
		NodeFeatDim: ds.NodeFeatDim(),
		EdgeFeatDim: ds.EdgeFeatDim(),
		OutputDim:   ds.OutputDim(),
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, metaFile), data, 0o644)
}

// writePart streams samples [lo, hi) into one container file:
//
//	u32 magic, u32 version,
//	sample payloads (concatenated encoded graphs),
//	index entries (id i64, offset i64, length i32) × count,
//	i64 index offset, u32 count, u32 magic.
func writePart(path string, ds *datasets.Dataset, lo, hi int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:], containerMagic)
	binary.LittleEndian.PutUint32(header[4:], containerVersion)
	if _, err := f.Write(header[:]); err != nil {
		return err
	}
	offset := int64(len(header))
	index := make([]indexEntry, 0, hi-lo)
	for id := lo; id < hi; id++ {
		g, err := ds.Sample(id)
		if err != nil {
			return err
		}
		data := g.Encode()
		if _, err := f.Write(data); err != nil {
			return err
		}
		index = append(index, indexEntry{ID: id, Offset: offset, Length: int32(len(data))})
		offset += int64(len(data))
	}
	footer := make([]byte, 0, len(index)*20+16)
	for _, e := range index {
		footer = binary.LittleEndian.AppendUint64(footer, uint64(e.ID))
		footer = binary.LittleEndian.AppendUint64(footer, uint64(e.Offset))
		footer = binary.LittleEndian.AppendUint32(footer, uint32(e.Length))
	}
	footer = binary.LittleEndian.AppendUint64(footer, uint64(offset))
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(index)))
	footer = binary.LittleEndian.AppendUint32(footer, containerMagic)
	_, err = f.Write(footer)
	return err
}

// readPartIndex loads a container's footer index.
func readPartIndex(path string) ([]indexEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 24 {
		return nil, fmt.Errorf("cff: %s too small (%d bytes)", path, st.Size())
	}
	var tail [16]byte
	if _, err := f.ReadAt(tail[:], st.Size()-16); err != nil {
		return nil, err
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[0:]))
	count := int(binary.LittleEndian.Uint32(tail[8:]))
	if magic := binary.LittleEndian.Uint32(tail[12:]); magic != containerMagic {
		return nil, fmt.Errorf("cff: %s bad footer magic %#x", path, magic)
	}
	if indexOff < 8 || indexOff+int64(count)*20+16 != st.Size() {
		return nil, fmt.Errorf("cff: %s corrupt index geometry", path)
	}
	raw := make([]byte, count*20)
	if _, err := f.ReadAt(raw, indexOff); err != nil {
		return nil, err
	}
	index := make([]indexEntry, count)
	for i := range index {
		p := raw[i*20:]
		index[i] = indexEntry{
			ID:     int64(binary.LittleEndian.Uint64(p[0:])),
			Offset: int64(binary.LittleEndian.Uint64(p[8:])),
			Length: int32(binary.LittleEndian.Uint32(p[16:])),
		}
	}
	return index, nil
}

// Store reads a real CFF directory. The part indexes are loaded once at
// Open; sample reads are a single positional read.
type Store struct {
	dir   string
	meta  Meta
	parts []*os.File
	// loc maps sample id to its location.
	loc map[int64]location
}

type location struct {
	part   int
	offset int64
	length int32
}

// Open opens a CFF directory produced by Write.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("cff: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("cff: corrupt metadata: %w", err)
	}
	s := &Store{dir: dir, meta: meta, loc: make(map[int64]location, meta.NumGraphs)}
	for part := 0; part < meta.NumParts; part++ {
		index, err := readPartIndex(partPath(dir, part))
		if err != nil {
			s.Close()
			return nil, err
		}
		f, err := os.Open(partPath(dir, part))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.parts = append(s.parts, f)
		for _, e := range index {
			s.loc[e.ID] = location{part: part, offset: e.Offset, length: e.Length}
		}
	}
	if len(s.loc) != meta.NumGraphs {
		s.Close()
		return nil, fmt.Errorf("cff: index has %d samples, metadata says %d", len(s.loc), meta.NumGraphs)
	}
	return s, nil
}

// Close releases the container file handles.
func (s *Store) Close() error {
	var first error
	for _, f := range s.parts {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.parts = nil
	return first
}

// Name returns the dataset name.
func (s *Store) Name() string { return s.meta.Name }

// Len returns the number of samples.
func (s *Store) Len() int { return s.meta.NumGraphs }

// OutputDim returns the per-graph target width.
func (s *Store) OutputDim() int { return s.meta.OutputDim }

// NodeFeatDim returns the per-node feature width.
func (s *Store) NodeFeatDim() int { return s.meta.NodeFeatDim }

// EdgeFeatDim returns the per-edge feature width.
func (s *Store) EdgeFeatDim() int { return s.meta.EdgeFeatDim }

// ReadSample performs one positional read inside the owning container.
func (s *Store) ReadSample(id int64) (*graph.Graph, error) {
	l, ok := s.loc[id]
	if !ok {
		return nil, fmt.Errorf("cff: sample %d not in index", id)
	}
	buf := make([]byte, l.length)
	if _, err := s.parts[l.part].ReadAt(buf, l.offset); err != nil && err != io.EOF {
		return nil, fmt.Errorf("cff: %w", err)
	}
	return graph.Decode(buf)
}

// ReadRange decodes samples [lo, hi) with one streaming read per touched
// container region — the preloader's bulk path.
func (s *Store) ReadRange(lo, hi int64) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, 0, hi-lo)
	for id := lo; id < hi; id++ {
		g, err := s.ReadSample(id)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// SimLayout is the container layout registered on a simulated filesystem:
// per-sample locations within virtual part files.
type SimLayout struct {
	NumParts int
	Loc      []location // indexed by sample id
	PartName func(part int) string
}

// RegisterSim lays the dataset out into numParts virtual containers on the
// simulated filesystem and returns the layout (shared by all ranks).
func RegisterSim(fs *pfs.PFS, ds *datasets.Dataset, numParts int) (*SimLayout, error) {
	sizes := make([]int64, ds.Len())
	for id := int64(0); id < int64(ds.Len()); id++ {
		g, err := ds.Sample(id)
		if err != nil {
			return nil, err
		}
		sizes[id] = int64(g.EncodedSize())
	}
	return RegisterSimSizes(fs, ds, sizes, numParts)
}

// RegisterSimSizes is RegisterSim with precomputed per-sample encoded sizes
// (see pff.SampleSizes), skipping regeneration.
func RegisterSimSizes(fs *pfs.PFS, ds *datasets.Dataset, sizes []int64, numParts int) (*SimLayout, error) {
	if numParts < 1 {
		return nil, fmt.Errorf("cff: numParts %d must be positive", numParts)
	}
	if numParts > ds.Len() && ds.Len() > 0 {
		numParts = ds.Len()
	}
	if len(sizes) != ds.Len() {
		return nil, fmt.Errorf("cff: %d sizes for %d samples", len(sizes), ds.Len())
	}
	name := ds.Name()
	layout := &SimLayout{
		NumParts: numParts,
		Loc:      make([]location, ds.Len()),
		PartName: func(part int) string { return fmt.Sprintf("cff/%s/part-%04d.ddc", name, part) },
	}
	for part := 0; part < numParts; part++ {
		lo, hi := partRange(ds.Len(), numParts, part)
		offset := int64(8) // header
		for id := lo; id < hi; id++ {
			layout.Loc[id] = location{part: part, offset: offset, length: int32(sizes[id])}
			offset += sizes[id]
		}
		// index + footer
		offset += int64(hi-lo)*20 + 16
		fs.Create(layout.PartName(part), offset)
	}
	return layout, nil
}

// Sim models CFF reads for one rank on the simulated filesystem.
type Sim struct {
	ds     *datasets.Dataset
	layout *SimLayout
	reader *pfs.Reader
}

// NewSim creates a per-rank simulated CFF reader.
func NewSim(fs *pfs.PFS, ds *datasets.Dataset, layout *SimLayout, clock *vtime.Clock, rng *vtime.RNG) *Sim {
	return &Sim{ds: ds, layout: layout, reader: fs.Reader(clock, rng)}
}

// Name returns the dataset name.
func (s *Sim) Name() string { return s.ds.Name() }

// Len returns the number of samples.
func (s *Sim) Len() int { return s.ds.Len() }

// OutputDim returns the per-graph target width.
func (s *Sim) OutputDim() int { return s.ds.OutputDim() }

// NodeFeatDim returns the per-node feature width.
func (s *Sim) NodeFeatDim() int { return s.ds.NodeFeatDim() }

// EdgeFeatDim returns the per-edge feature width.
func (s *Sim) EdgeFeatDim() int { return s.ds.EdgeFeatDim() }

// Reader exposes the underlying filesystem reader and its counters.
func (s *Sim) Reader() *pfs.Reader { return s.reader }

// ReadSample charges the modeled cost of a positional read inside the
// owning container and returns the generated sample.
func (s *Sim) ReadSample(id int64) (*graph.Graph, error) {
	g, _, err := s.ReadSampleTimed(id)
	return g, err
}

// ReadSampleTimed is ReadSample plus the charged duration.
func (s *Sim) ReadSampleTimed(id int64) (*graph.Graph, time.Duration, error) {
	if id < 0 || id >= int64(s.ds.Len()) {
		return nil, 0, fmt.Errorf("cff: sample %d out of range [0,%d)", id, s.ds.Len())
	}
	l := s.layout.Loc[id]
	cost, err := s.reader.ReadAt(s.layout.PartName(l.part), l.offset, int64(l.length))
	if err != nil {
		return nil, 0, err
	}
	g, err := s.ds.Sample(id)
	return g, cost, err
}

// ReadFilePreload charges the cost of streaming an entire part — used when
// DDStore preloads from CFF sources.
func (s *Sim) ReadFilePreload(part int) (time.Duration, error) {
	return s.reader.ReadFile(s.layout.PartName(part))
}
