package cff

import (
	"os"
	"path/filepath"
	"testing"

	"ddstore/internal/cluster"
	"ddstore/internal/datasets"
	"ddstore/internal/pfs"
	"ddstore/internal/vtime"
)

func TestPartRangeCoversAll(t *testing.T) {
	for _, tc := range []struct{ total, parts int }{
		{10, 1}, {10, 3}, {10, 10}, {7, 4}, {100, 8}, {1, 1},
	} {
		covered := 0
		var prevHi int64
		for p := 0; p < tc.parts; p++ {
			lo, hi := partRange(tc.total, tc.parts, p)
			if lo != prevHi {
				t.Fatalf("total=%d parts=%d: part %d starts at %d, want %d", tc.total, tc.parts, p, lo, prevHi)
			}
			covered += int(hi - lo)
			prevHi = hi
		}
		if covered != tc.total {
			t.Fatalf("total=%d parts=%d: covered %d", tc.total, tc.parts, covered)
		}
	}
}

func TestWriteOpenReadRoundTrip(t *testing.T) {
	ds := datasets.Ising(datasets.Config{NumGraphs: 25})
	dir := t.TempDir()
	if err := Write(dir, ds, 4); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 25 || st.Name() != ds.Name() || st.OutputDim() != 1 {
		t.Fatalf("metadata mismatch: %+v", st.meta)
	}
	for id := int64(0); id < 25; id++ {
		got, err := st.ReadSample(id)
		if err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
		want, _ := ds.Sample(id)
		if got.ID != id || got.Y[0] != want.Y[0] {
			t.Fatalf("sample %d mismatch", id)
		}
	}
}

func TestReadRange(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 12})
	dir := t.TempDir()
	if err := Write(dir, ds, 3); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	gs, err := st.ReadRange(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 6 {
		t.Fatalf("got %d samples", len(gs))
	}
	for i, g := range gs {
		if g.ID != int64(3+i) {
			t.Fatalf("sample %d has id %d", i, g.ID)
		}
	}
}

func TestMorePartsThanSamples(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	dir := t.TempDir()
	if err := Write(dir, ds, 10); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.meta.NumParts != 3 {
		t.Fatalf("NumParts = %d, want clamped to 3", st.meta.NumParts)
	}
	for id := int64(0); id < 3; id++ {
		if _, err := st.ReadSample(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteRejectsBadParts(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	if err := Write(t.TempDir(), ds, 0); err == nil {
		t.Fatal("zero parts accepted")
	}
}

func TestReadSampleUnknownID(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	dir := t.TempDir()
	if err := Write(dir, ds, 1); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.ReadSample(99); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestOpenDetectsCorruptFooter(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	dir := t.TempDir()
	if err := Write(dir, ds, 1); err != nil {
		t.Fatal(err)
	}
	// Truncate the container: the index geometry check must fire.
	path := partPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt container accepted")
	}
}

func TestOpenDetectsBadMagic(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	dir := t.TempDir()
	if err := Write(dir, ds, 1); err != nil {
		t.Fatal(err)
	}
	path := partPath(dir, 0)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("bad footer magic accepted")
	}
}

func TestOpenMissingMeta(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of empty dir succeeded")
	}
}

func TestContainerFileCountIsSmall(t *testing.T) {
	// The whole point of CFF: the number of files does not scale with the
	// number of samples.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	dir := t.TempDir()
	if err := Write(dir, ds, 4); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 { // 4 parts + meta.json
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir has %d entries: %v", len(entries), names)
	}
	_ = filepath.Join // keep import if unused in future edits
}

func TestSimMatchesGenerator(t *testing.T) {
	ds := datasets.AISDExSmooth(datasets.Config{NumGraphs: 40, SpectrumBins: 50})
	fs := pfs.New(cluster.Perlmutter(), 8)
	layout, err := RegisterSim(fs, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumFiles() != 4 {
		t.Fatalf("registered %d virtual containers", fs.NumFiles())
	}
	clock := &vtime.Clock{}
	sim := NewSim(fs, ds, layout, clock, vtime.NewRNG(1))
	g, cost, err := sim.ReadSampleTimed(13)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ds.Sample(13)
	if g.ID != 13 || g.NumNodes != want.NumNodes {
		t.Fatal("sim sample differs from generator")
	}
	if cost <= 0 || clock.Now() != cost {
		t.Fatalf("cost accounting broken: cost=%v clock=%v", cost, clock.Now())
	}
}

func TestSimAmortizesMetadata(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 500})
	fs := pfs.New(cluster.Perlmutter(), 64)
	layout, err := RegisterSim(fs, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(fs, ds, layout, &vtime.Clock{}, vtime.NewRNG(1))
	for id := int64(0); id < 500; id++ {
		if _, err := sim.ReadSample(id); err != nil {
			t.Fatal(err)
		}
	}
	// Two containers: exactly two metadata ops for 500 samples.
	if sim.Reader().MetadataOps != 2 {
		t.Fatalf("MetadataOps = %d, want 2", sim.Reader().MetadataOps)
	}
}

func TestSimSmallDatasetHitsPageCache(t *testing.T) {
	// The Ising effect (paper §4.4): a small containerized dataset ends up
	// served mostly from the page cache after the first epoch.
	ds := datasets.Ising(datasets.Config{NumGraphs: 300})
	fs := pfs.New(cluster.Perlmutter(), 4)
	layout, err := RegisterSim(fs, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(fs, ds, layout, &vtime.Clock{}, vtime.NewRNG(1))
	// Epoch 1: sequential-ish.
	for id := int64(0); id < 300; id++ {
		if _, err := sim.ReadSample(id); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := sim.Reader().CacheHits, sim.Reader().CacheMisses
	// Epoch 2: shuffled.
	perm := vtime.NewRNG(2).Perm(300)
	for _, id := range perm {
		if _, err := sim.ReadSample(int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	h2 := sim.Reader().CacheHits - h1
	if h2 < 290 {
		t.Fatalf("second epoch cache hits = %d/300 (first epoch: %d hits %d misses)", h2, h1, m1)
	}
}

func TestSimPreload(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	fs := pfs.New(cluster.Perlmutter(), 4)
	layout, err := RegisterSim(fs, ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(fs, ds, layout, &vtime.Clock{}, vtime.NewRNG(1))
	cost, err := sim.ReadFilePreload(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("preload free")
	}
	if _, err := sim.ReadFilePreload(99); err == nil {
		t.Fatal("preload of bad part accepted")
	}
}

func TestSimRangeCheck(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	fs := pfs.New(cluster.Laptop(), 2)
	layout, _ := RegisterSim(fs, ds, 1)
	sim := NewSim(fs, ds, layout, &vtime.Clock{}, vtime.NewRNG(1))
	if _, err := sim.ReadSample(3); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestRegisterSimRejectsBadParts(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	fs := pfs.New(cluster.Laptop(), 2)
	if _, err := RegisterSim(fs, ds, 0); err == nil {
		t.Fatal("zero parts accepted")
	}
}

func FuzzReadPartIndex(f *testing.F) {
	// Seed with a real container and mutations of it.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 4})
	dir := f.TempDir()
	if err := Write(dir, ds, 1); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(partPath(dir, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// readPartIndex must never panic and never claim more samples than
		// the bytes can hold.
		path := filepath.Join(t.TempDir(), "part.ddc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		index, err := readPartIndex(path)
		if err != nil {
			return
		}
		if len(index)*20+24 > len(data)+20 {
			t.Fatalf("index of %d entries cannot fit in %d bytes", len(index), len(data))
		}
	})
}
