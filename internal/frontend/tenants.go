package frontend

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// TenantConfig is the admission budget of one tenant. Zero-valued limits
// mean "unlimited", so the zero config admits everything — the frontend
// only ever subtracts capacity, never grants more than the raw server.
type TenantConfig struct {
	// Name identifies the tenant; clients declare it in the hello frame.
	// The name "*" is the template applied to tenants that connect
	// without an explicit entry.
	Name string
	// Rate is the sustained admitted-request rate in requests/second
	// (token bucket). 0 = unlimited.
	Rate float64
	// Burst is the token-bucket capacity; defaults to max(Rate, 1) so a
	// rate-limited tenant can always make progress.
	Burst float64
	// BytesPerSec is the sustained response-byte quota (leaky bucket on
	// payload bytes, charged after each response). 0 = unlimited.
	BytesPerSec float64
	// ByteBurst is the byte-bucket capacity; defaults to BytesPerSec
	// (one second of quota).
	ByteBurst float64
	// MaxConns caps the tenant's concurrent connections. 0 = unlimited.
	MaxConns int
}

// withDefaults fills the derived bucket capacities.
func (c TenantConfig) withDefaults() TenantConfig {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.BytesPerSec > 0 && c.ByteBurst <= 0 {
		c.ByteBurst = c.BytesPerSec
	}
	return c
}

// ParseTenants parses the -tenants flag syntax: semicolon-separated
// entries of the form
//
//	name:rate=500,burst=50,bytes=1048576,byteburst=2097152,conns=8
//
// The limit list after the colon is optional (a bare name admits the
// tenant unlimited), every key is optional, and the pseudo-tenant "*"
// supplies the template for tenants that have no entry of their own.
func ParseTenants(spec string) ([]TenantConfig, error) {
	var out []TenantConfig
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, limits, _ := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("frontend: tenant entry %q has no name", entry)
		}
		if seen[name] {
			return nil, fmt.Errorf("frontend: duplicate tenant %q", name)
		}
		seen[name] = true
		cfg := TenantConfig{Name: name}
		if limits != "" {
			for _, kv := range strings.Split(limits, ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("frontend: tenant %q: limit %q is not key=value", name, kv)
				}
				f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
				if err != nil || f < 0 {
					return nil, fmt.Errorf("frontend: tenant %q: bad value for %q: %q", name, key, val)
				}
				switch strings.TrimSpace(key) {
				case "rate":
					cfg.Rate = f
				case "burst":
					cfg.Burst = f
				case "bytes":
					cfg.BytesPerSec = f
				case "byteburst":
					cfg.ByteBurst = f
				case "conns":
					cfg.MaxConns = int(f)
				default:
					return nil, fmt.Errorf("frontend: tenant %q: unknown limit %q (want rate, burst, bytes, byteburst, conns)", name, key)
				}
			}
		}
		out = append(out, cfg)
	}
	return out, nil
}

// tenant is the live state behind one TenantConfig: token/byte buckets
// and the connection count. All fields are guarded by Frontend.mu.
type tenant struct {
	cfg     TenantConfig
	tokens  float64 // request bucket balance
	balance float64 // byte bucket balance (may go negative: debt)
	last    time.Time
	conns   int
}

func newTenant(cfg TenantConfig, now time.Time) *tenant {
	cfg = cfg.withDefaults()
	return &tenant{cfg: cfg, tokens: cfg.Burst, balance: cfg.ByteBurst, last: now}
}

// refill advances both buckets to now.
func (t *tenant) refill(now time.Time) {
	dt := now.Sub(t.last).Seconds()
	if dt <= 0 {
		return
	}
	t.last = now
	if t.cfg.Rate > 0 {
		t.tokens += dt * t.cfg.Rate
		if t.tokens > t.cfg.Burst {
			t.tokens = t.cfg.Burst
		}
	}
	if t.cfg.BytesPerSec > 0 {
		t.balance += dt * t.cfg.BytesPerSec
		if t.balance > t.cfg.ByteBurst {
			t.balance = t.cfg.ByteBurst
		}
	}
}

// takeToken admits one request against the rate bucket.
func (t *tenant) takeToken(now time.Time) bool {
	if t.cfg.Rate <= 0 {
		return true
	}
	t.refill(now)
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// bytesOK reports whether the byte bucket is out of debt. Response sizes
// are unknown at admission time, so the quota is a debt model: admit
// while the balance is positive, charge the actual payload at release.
func (t *tenant) bytesOK(now time.Time) bool {
	if t.cfg.BytesPerSec <= 0 {
		return true
	}
	t.refill(now)
	return t.balance > 0
}

// chargeBytes debits the payload actually served.
func (t *tenant) chargeBytes(now time.Time, n int64) {
	if t.cfg.BytesPerSec <= 0 {
		return
	}
	t.refill(now)
	t.balance -= float64(n)
}
