// Package frontend is the serving front door between transport's accept
// loop and the chunk source: tenant identity (declared by the client's
// hello frame), per-tenant token-bucket rate limits and byte quotas, a
// global connection cap with per-tenant caps, bounded per-priority-class
// request queues drained by a fixed pool of worker permits under weighted
// round-robin scheduling, explicit load shedding (requests over budget
// fail with transport.ErrOverloaded so clients back off instead of
// failing over), and a graceful drain state machine for shutdown.
//
// It implements transport.Admission; the transport server calls
// AdmitConn per accepted connection and the returned gate's Hello/Admit/
// Close per request, so the front end never touches sockets itself.
package frontend

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// Defaults applied by New when the corresponding Options field is zero.
const (
	DefaultQueueDepth   = 64
	DefaultLookupWeight = 3
	DefaultBulkWeight   = 1
	// DefaultTenant is the identity of connections that never send a
	// hello frame (old clients). Give it an explicit entry — or a "*"
	// template — to budget anonymous traffic.
	DefaultTenant = "default"
	// maxTenants caps auto-created registry entries so a client cannot
	// grow server memory by inventing tenant names.
	maxTenants = 1024
)

// Options configures a Frontend.
type Options struct {
	// Tenants are the static budgets; see ParseTenants for the flag
	// syntax. Tenants not listed are auto-created from the "*" template
	// entry (unlimited when there is no template).
	Tenants []TenantConfig
	// MaxConns caps concurrent admitted connections. 0 = unlimited.
	MaxConns int
	// QueueDepth bounds each priority-class queue. Default 64.
	QueueDepth int
	// Workers is the number of concurrent request permits (the worker
	// pool the queues drain into). Default GOMAXPROCS.
	Workers int
	// LookupWeight:BulkWeight is the weighted round-robin ratio between
	// the interactive and training classes. Default 3:1; scheduling is
	// work-conserving, so an idle class never strands capacity.
	LookupWeight int
	BulkWeight   int
	// Reg receives per-tenant and per-class metrics; nil disables.
	Reg *obs.Registry
	// Now overrides the clock for deterministic bucket tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.LookupWeight <= 0 {
		o.LookupWeight = DefaultLookupWeight
	}
	if o.BulkWeight <= 0 {
		o.BulkWeight = DefaultBulkWeight
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ticket is one request waiting for a worker permit.
type ticket struct {
	t     *tenant
	class transport.Class
	enq   time.Time
	// grant receives nil when a permit is assigned, or the shed error
	// when the frontend closes with the ticket still queued.
	grant chan error
}

// Frontend implements transport.Admission. Create with New.
type Frontend struct {
	opts Options
	m    *metrics

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on drain-relevant transitions
	tenants  map[string]*tenant
	template *TenantConfig // the "*" entry, if any
	conns    int
	queues   [2][]*ticket // indexed by transport.Class
	credits  [2]int       // weighted-RR credits left this round
	free     int          // free worker permits
	inflight int          // permits granted, release not yet called
	draining bool
	closed   bool

	admitted [2]int64
	shed     map[string]int64 // by reason: rate, bytes, queue, conns, drain
}

// New builds a Frontend from opts.
func New(opts Options) (*Frontend, error) {
	opts = opts.withDefaults()
	fe := &Frontend{
		opts:    opts,
		m:       newMetrics(opts.Reg),
		tenants: make(map[string]*tenant),
		free:    opts.Workers,
		credits: [2]int{opts.LookupWeight, opts.BulkWeight},
		shed:    make(map[string]int64),
	}
	fe.cond = sync.NewCond(&fe.mu)
	now := opts.Now()
	for _, cfg := range opts.Tenants {
		if cfg.Name == "" {
			return nil, fmt.Errorf("frontend: tenant with empty name")
		}
		if cfg.Name == "*" {
			tmpl := cfg
			fe.template = &tmpl
			continue
		}
		if _, dup := fe.tenants[cfg.Name]; dup {
			return nil, fmt.Errorf("frontend: duplicate tenant %q", cfg.Name)
		}
		fe.tenants[cfg.Name] = newTenant(cfg, now)
	}
	fe.m.setDraining(false)
	return fe, nil
}

// overloadedf builds a shed error the transport layer maps to the
// overloaded wire status (clients back off and retry, never fail over).
func overloadedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", transport.ErrOverloaded, fmt.Sprintf(format, args...))
}

// tenantLocked resolves (auto-creating from the template) a tenant.
func (fe *Frontend) tenantLocked(name string) (*tenant, error) {
	if name == "" {
		name = DefaultTenant
	}
	if t, ok := fe.tenants[name]; ok {
		return t, nil
	}
	if len(fe.tenants) >= maxTenants {
		return nil, fmt.Errorf("frontend: tenant registry full (%d tenants)", maxTenants)
	}
	cfg := TenantConfig{Name: name}
	if fe.template != nil {
		cfg = *fe.template
		cfg.Name = name
	}
	t := newTenant(cfg, fe.opts.Now())
	fe.tenants[name] = t
	return t, nil
}

func (fe *Frontend) shedLocked(tenantName string, reason string) {
	fe.shed[reason]++
	fe.m.shed(tenantName, reason)
}

// AdmitConn implements transport.Admission: called once per accepted
// connection, before any request is read. Refusals carry the overloaded
// wire status back to the client.
func (fe *Frontend) AdmitConn(remoteAddr string) (transport.ConnGate, error) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.draining || fe.closed {
		fe.m.connReject()
		return nil, overloadedf("draining: not accepting connections")
	}
	if fe.opts.MaxConns > 0 && fe.conns >= fe.opts.MaxConns {
		fe.m.connReject()
		return nil, overloadedf("connection cap reached (%d)", fe.opts.MaxConns)
	}
	t, err := fe.tenantLocked(DefaultTenant)
	if err != nil {
		fe.m.connReject()
		return nil, err
	}
	if t.cfg.MaxConns > 0 && t.conns >= t.cfg.MaxConns {
		fe.m.connReject()
		fe.shedLocked(t.cfg.Name, "conns")
		return nil, overloadedf("tenant %q connection cap reached (%d)", t.cfg.Name, t.cfg.MaxConns)
	}
	fe.conns++
	t.conns++
	fe.m.connsOpen(t.cfg.Name, t.conns)
	return &Conn{fe: fe, t: t}, nil
}

// Conn is the per-connection gate returned by AdmitConn. The transport
// server drives it from the connection's single handler goroutine, so
// Hello/Admit/Close never race each other; shared frontend state is
// guarded by fe.mu.
type Conn struct {
	fe     *Frontend
	t      *tenant
	closed bool
}

// Hello re-homes the connection under the declared tenant, enforcing the
// target tenant's connection cap.
func (c *Conn) Hello(name string) error {
	fe := c.fe
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.draining || fe.closed {
		return overloadedf("draining: not accepting connections")
	}
	t, err := fe.tenantLocked(name)
	if err != nil {
		return err
	}
	if t == c.t {
		return nil
	}
	if t.cfg.MaxConns > 0 && t.conns >= t.cfg.MaxConns {
		fe.shedLocked(t.cfg.Name, "conns")
		return overloadedf("tenant %q connection cap reached (%d)", t.cfg.Name, t.cfg.MaxConns)
	}
	c.t.conns--
	fe.m.connsOpen(c.t.cfg.Name, c.t.conns)
	t.conns++
	fe.m.connsOpen(t.cfg.Name, t.conns)
	c.t = t
	return nil
}

// Admit gates one request: rate and byte buckets first (over-budget
// requests shed immediately), then the class queue (full queue sheds),
// then a blocking wait for a worker permit under weighted scheduling.
// The returned release must be called once, with the response payload
// size, after the response is written.
func (c *Conn) Admit(class transport.Class) (func(payloadBytes int64), error) {
	fe := c.fe
	t := c.t
	fe.mu.Lock()
	if fe.draining || fe.closed {
		fe.shedLocked(t.cfg.Name, "drain")
		fe.mu.Unlock()
		return nil, overloadedf("draining: not accepting requests")
	}
	now := fe.opts.Now()
	if !t.takeToken(now) {
		fe.shedLocked(t.cfg.Name, "rate")
		fe.mu.Unlock()
		return nil, overloadedf("tenant %q over request rate (%.0f/s)", t.cfg.Name, t.cfg.Rate)
	}
	if !t.bytesOK(now) {
		fe.shedLocked(t.cfg.Name, "bytes")
		fe.mu.Unlock()
		return nil, overloadedf("tenant %q over byte quota (%.0f B/s)", t.cfg.Name, t.cfg.BytesPerSec)
	}
	ci := int(class)
	if len(fe.queues[ci]) >= fe.opts.QueueDepth {
		fe.shedLocked(t.cfg.Name, "queue")
		fe.mu.Unlock()
		return nil, overloadedf("%s queue full (%d deep)", class, fe.opts.QueueDepth)
	}
	tk := &ticket{t: t, class: class, enq: now, grant: make(chan error, 1)}
	fe.queues[ci] = append(fe.queues[ci], tk)
	fe.m.queueDepth(class, len(fe.queues[ci]))
	fe.scheduleLocked()
	fe.mu.Unlock()

	if err := <-tk.grant; err != nil {
		return nil, err
	}
	start := fe.opts.Now()
	return func(payloadBytes int64) { fe.release(t, class, payloadBytes, start) }, nil
}

// Close implements the gate's end-of-connection hook.
func (c *Conn) Close() {
	fe := c.fe
	fe.mu.Lock()
	if !c.closed {
		c.closed = true
		fe.conns--
		c.t.conns--
		fe.m.connsOpen(c.t.cfg.Name, c.t.conns)
	}
	fe.mu.Unlock()
}

// release returns a worker permit and settles the byte quota.
func (fe *Frontend) release(t *tenant, class transport.Class, payloadBytes int64, start time.Time) {
	fe.mu.Lock()
	now := fe.opts.Now()
	fe.free++
	fe.inflight--
	t.chargeBytes(now, payloadBytes)
	fe.m.service(class, now.Sub(start))
	fe.scheduleLocked()
	if fe.draining {
		fe.cond.Broadcast()
	}
	fe.mu.Unlock()
}

// scheduleLocked hands free worker permits to queued tickets in weighted
// round-robin order: LookupWeight interactive grants per BulkWeight bulk
// grants, work-conserving when one class is idle.
func (fe *Frontend) scheduleLocked() {
	for fe.free > 0 {
		tk := fe.nextLocked()
		if tk == nil {
			return
		}
		fe.free--
		fe.inflight++
		fe.admitted[tk.class]++
		fe.m.admitted(tk.t.cfg.Name, tk.class)
		fe.m.queueWait(tk.class, fe.opts.Now().Sub(tk.enq))
		tk.grant <- nil
	}
}

// nextLocked pops the next ticket per the weighted-RR credits, starting a
// fresh credit round whenever work remains but the credited class cannot
// use the permit.
func (fe *Frontend) nextLocked() *ticket {
	const L, B = int(transport.ClassLookup), int(transport.ClassBulk)
	for {
		if fe.credits[L] > 0 && len(fe.queues[L]) > 0 {
			fe.credits[L]--
			return fe.popLocked(L)
		}
		if fe.credits[B] > 0 && len(fe.queues[B]) > 0 && (fe.credits[L] == 0 || len(fe.queues[L]) == 0) {
			fe.credits[B]--
			return fe.popLocked(B)
		}
		if len(fe.queues[L]) == 0 && len(fe.queues[B]) == 0 {
			return nil
		}
		fe.credits[L], fe.credits[B] = fe.opts.LookupWeight, fe.opts.BulkWeight
	}
}

func (fe *Frontend) popLocked(ci int) *ticket {
	tk := fe.queues[ci][0]
	fe.queues[ci] = fe.queues[ci][1:]
	fe.m.queueDepth(transport.Class(ci), len(fe.queues[ci]))
	return tk
}

// StartDrain flips the front end into the draining state: new
// connections and new requests are refused with the overloaded status,
// while queued and in-flight requests keep running to completion.
func (fe *Frontend) StartDrain() {
	fe.mu.Lock()
	if !fe.draining {
		fe.draining = true
		fe.m.setDraining(true)
	}
	fe.cond.Broadcast()
	fe.mu.Unlock()
}

// Drain enters the draining state and waits up to timeout for every
// queued and in-flight request to finish. It reports whether the front
// end drained completely.
func (fe *Frontend) Drain(timeout time.Duration) bool {
	fe.StartDrain()
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		fe.mu.Lock()
		fe.cond.Broadcast()
		fe.mu.Unlock()
	})
	defer timer.Stop()
	fe.mu.Lock()
	defer fe.mu.Unlock()
	for !fe.idleLocked() && !fe.closed && time.Now().Before(deadline) {
		fe.cond.Wait()
	}
	return fe.idleLocked()
}

func (fe *Frontend) idleLocked() bool {
	return fe.inflight == 0 && len(fe.queues[0]) == 0 && len(fe.queues[1]) == 0
}

// Close hard-stops the front end: any still-queued tickets are shed with
// the drain status. In-flight releases remain safe after Close.
func (fe *Frontend) Close() {
	fe.mu.Lock()
	if !fe.closed {
		fe.closed = true
		if !fe.draining {
			fe.draining = true
			fe.m.setDraining(true)
		}
		for ci := range fe.queues {
			for _, tk := range fe.queues[ci] {
				fe.shedLocked(tk.t.cfg.Name, "drain")
				tk.grant <- overloadedf("draining: server shutting down")
			}
			fe.queues[ci] = nil
			fe.m.queueDepth(transport.Class(ci), 0)
		}
	}
	fe.cond.Broadcast()
	fe.mu.Unlock()
}

// Stats is a point-in-time snapshot for tests and end-of-run reports.
type Stats struct {
	Conns           int
	Queued          int
	InFlight        int
	AdmittedByClass [2]int64 // indexed by transport.Class
	Shed            int64
	ShedByReason    map[string]int64
	Draining        bool
}

// Stats snapshots the front end.
func (fe *Frontend) Stats() Stats {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	st := Stats{
		Conns:           fe.conns,
		Queued:          len(fe.queues[0]) + len(fe.queues[1]),
		InFlight:        fe.inflight,
		AdmittedByClass: fe.admitted,
		ShedByReason:    make(map[string]int64, len(fe.shed)),
		Draining:        fe.draining,
	}
	for r, n := range fe.shed {
		st.Shed += n
		st.ShedByReason[r] = n
	}
	return st
}
