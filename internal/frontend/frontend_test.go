package frontend

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// fakeClock is a manually advanced clock for deterministic bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustNew(t *testing.T, opts Options) *Frontend {
	t.Helper()
	fe, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fe
}

func mustAdmitConn(t *testing.T, fe *Frontend) transport.ConnGate {
	t.Helper()
	gate, err := fe.AdmitConn("test")
	if err != nil {
		t.Fatalf("AdmitConn: %v", err)
	}
	return gate
}

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("alpha:rate=500,burst=50,conns=8; beta ;*:rate=10,bytes=1024,byteburst=2048")
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	want := []TenantConfig{
		{Name: "alpha", Rate: 500, Burst: 50, MaxConns: 8},
		{Name: "beta"},
		{Name: "*", Rate: 10, BytesPerSec: 1024, ByteBurst: 2048},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTenantsErrors(t *testing.T) {
	for _, spec := range []string{
		"a:rate=500;a:rate=1", // duplicate
		":rate=1",             // empty name
		"a:rate",              // not key=value
		"a:rate=-3",           // negative
		"a:rate=x",            // not a number
		"a:turbo=9",           // unknown key
	} {
		if _, err := ParseTenants(spec); err == nil {
			t.Errorf("ParseTenants(%q): want error, got nil", spec)
		}
	}
}

func TestRateLimitSheds(t *testing.T) {
	clk := newFakeClock()
	fe := mustNew(t, Options{
		Tenants: []TenantConfig{{Name: DefaultTenant, Rate: 2, Burst: 2}},
		Workers: 4, Now: clk.Now,
	})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	for i := 0; i < 2; i++ {
		release, err := gate.Admit(transport.ClassLookup)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release(0)
	}
	if _, err := gate.Admit(transport.ClassLookup); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("over-rate admit: got %v, want ErrOverloaded", err)
	}
	clk.Advance(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		release, err := gate.Admit(transport.ClassLookup)
		if err != nil {
			t.Fatalf("post-refill admit %d: %v", i, err)
		}
		release(0)
	}
	st := fe.Stats()
	if st.ShedByReason["rate"] != 1 {
		t.Errorf("shed[rate] = %d, want 1", st.ShedByReason["rate"])
	}
}

func TestByteQuotaSheds(t *testing.T) {
	clk := newFakeClock()
	fe := mustNew(t, Options{
		Tenants: []TenantConfig{{Name: DefaultTenant, BytesPerSec: 100, ByteBurst: 100}},
		Workers: 4, Now: clk.Now,
	})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	release, err := gate.Admit(transport.ClassBulk)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	release(1000) // 10 seconds of quota in one response: deep debt
	if _, err := gate.Admit(transport.ClassBulk); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("in-debt admit: got %v, want ErrOverloaded", err)
	}
	clk.Advance(10 * time.Second) // pays the debt back to a positive balance
	if _, err := gate.Admit(transport.ClassBulk); err != nil {
		t.Fatalf("post-repay admit: %v", err)
	}
	if got := fe.Stats().ShedByReason["bytes"]; got != 1 {
		t.Errorf("shed[bytes] = %d, want 1", got)
	}
}

func TestQueueFullSheds(t *testing.T) {
	fe := mustNew(t, Options{Workers: 1, QueueDepth: 1})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	release, err := gate.Admit(transport.ClassLookup) // occupies the only worker
	if err != nil {
		t.Fatalf("admit holder: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := gate.Admit(transport.ClassLookup) // fills the queue
		if err == nil {
			r(0)
		}
		queued <- err
	}()
	waitFor(t, func() bool { return fe.Stats().Queued == 1 })
	if _, err := gate.Admit(transport.ClassLookup); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("queue-full admit: got %v, want ErrOverloaded", err)
	}
	release(0)
	if err := <-queued; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}
	if got := fe.Stats().ShedByReason["queue"]; got != 1 {
		t.Errorf("shed[queue] = %d, want 1", got)
	}
}

// TestWeightedScheduling pins the weighted round-robin grant order: one
// worker, a held lookup permit, 4 bulk then 4 lookup requests queued.
// With the default 3:1 weights (one lookup credit consumed by the
// holder) the drain order is L,L,B,L,L,B,B,B — lookups run ~3x as often
// while both queues are backed up, and the tail is work-conserving.
func TestWeightedScheduling(t *testing.T) {
	fe := mustNew(t, Options{Workers: 1, QueueDepth: 8})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	release, err := gate.Admit(transport.ClassLookup)
	if err != nil {
		t.Fatalf("admit holder: %v", err)
	}
	var mu sync.Mutex
	var order []transport.Class
	var wg sync.WaitGroup
	enqueue := func(class transport.Class) {
		defer wg.Done()
		r, err := gate.Admit(class)
		if err != nil {
			t.Errorf("admit %v: %v", class, err)
			return
		}
		mu.Lock()
		order = append(order, class)
		mu.Unlock()
		r(0)
	}
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go enqueue(transport.ClassBulk)
	}
	waitFor(t, func() bool { return fe.Stats().Queued == 4 })
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go enqueue(transport.ClassLookup)
	}
	waitFor(t, func() bool { return fe.Stats().Queued == 8 })
	release(0)
	wg.Wait()
	want := []transport.Class{
		transport.ClassLookup, transport.ClassLookup, transport.ClassBulk,
		transport.ClassLookup, transport.ClassLookup, transport.ClassBulk,
		transport.ClassBulk, transport.ClassBulk,
	}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

func TestConnCaps(t *testing.T) {
	fe := mustNew(t, Options{
		MaxConns: 2,
		Tenants:  []TenantConfig{{Name: "solo", MaxConns: 1}},
	})
	defer fe.Close()
	g1 := mustAdmitConn(t, fe)
	g2 := mustAdmitConn(t, fe)
	if _, err := fe.AdmitConn("x"); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("over global cap: got %v, want ErrOverloaded", err)
	}
	if err := g1.Hello("solo"); err != nil {
		t.Fatalf("hello solo: %v", err)
	}
	if err := g2.Hello("solo"); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("over tenant cap: got %v, want ErrOverloaded", err)
	}
	g1.Close()
	if err := g2.Hello("solo"); err != nil {
		t.Fatalf("hello solo after close: %v", err)
	}
	g2.Close()
	if got := fe.Stats().Conns; got != 0 {
		t.Errorf("conns after closes = %d, want 0", got)
	}
}

func TestTemplateAutoCreate(t *testing.T) {
	clk := newFakeClock()
	fe := mustNew(t, Options{
		Tenants: []TenantConfig{{Name: "*", Rate: 1, Burst: 1}},
		Workers: 4, Now: clk.Now,
	})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	if err := gate.Hello("newcomer"); err != nil {
		t.Fatalf("hello: %v", err)
	}
	release, err := gate.Admit(transport.ClassLookup)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	release(0)
	// The template's rate=1 budget applies to the auto-created tenant.
	if _, err := gate.Admit(transport.ClassLookup); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("second admit: got %v, want ErrOverloaded", err)
	}
}

func TestTenantRegistryCap(t *testing.T) {
	fe := mustNew(t, Options{})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	var full bool
	for i := 0; i < maxTenants+2 && !full; i++ {
		full = gate.Hello(fmt.Sprintf("t%04d", i)) != nil
	}
	if !full {
		t.Fatal("tenant registry never filled up")
	}
}

func TestDrainRefusesNewWorkAndCompletesQueued(t *testing.T) {
	fe := mustNew(t, Options{Workers: 1, QueueDepth: 4})
	gate := mustAdmitConn(t, fe)
	release, err := gate.Admit(transport.ClassLookup) // in-flight through the drain
	if err != nil {
		t.Fatalf("admit holder: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		r, err := gate.Admit(transport.ClassBulk)
		if err == nil {
			r(0)
		}
		queued <- err
	}()
	waitFor(t, func() bool { return fe.Stats().Queued == 1 })
	fe.StartDrain()
	// New work is refused while draining...
	if _, err := gate.Admit(transport.ClassLookup); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("admit while draining: got %v, want ErrOverloaded", err)
	}
	if _, err := fe.AdmitConn("x"); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("conn while draining: got %v, want ErrOverloaded", err)
	}
	// ...while the queued request completes once the holder releases.
	drained := make(chan bool, 1)
	go func() { drained <- fe.Drain(5 * time.Second) }()
	release(0)
	if err := <-queued; err != nil {
		t.Fatalf("queued request during drain: %v", err)
	}
	if !<-drained {
		t.Fatal("Drain timed out with no outstanding work")
	}
	gate.Close()
	fe.Close()
}

func TestDrainTimesOutOnStuckRequest(t *testing.T) {
	fe := mustNew(t, Options{Workers: 1})
	defer fe.Close()
	gate := mustAdmitConn(t, fe)
	defer gate.Close()
	release, err := gate.Admit(transport.ClassLookup)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if fe.Drain(20 * time.Millisecond) {
		t.Fatal("Drain reported success with a request still in flight")
	}
	release(0)
}

func TestCloseShedsQueuedTickets(t *testing.T) {
	fe := mustNew(t, Options{Workers: 1, QueueDepth: 4})
	gate := mustAdmitConn(t, fe)
	release, err := gate.Admit(transport.ClassLookup)
	if err != nil {
		t.Fatalf("admit holder: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := gate.Admit(transport.ClassBulk)
		queued <- err
	}()
	waitFor(t, func() bool { return fe.Stats().Queued == 1 })
	fe.Close()
	if err := <-queued; !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("queued ticket on Close: got %v, want ErrOverloaded", err)
	}
	release(0) // release after Close must not panic
	gate.Close()
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	fe := mustNew(t, Options{
		Tenants: []TenantConfig{{Name: DefaultTenant, Rate: 1, Burst: 1}},
		Workers: 2, Reg: reg,
	})
	gate := mustAdmitConn(t, fe)
	release, err := gate.Admit(transport.ClassLookup)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	release(10)
	if _, err := gate.Admit(transport.ClassLookup); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("want rate shed, got %v", err)
	}
	if got := reg.Counter(obs.MetricTenantRequests, "tenant", DefaultTenant, "class", "lookup").Value(); got != 1 {
		t.Errorf("tenant requests = %d, want 1", got)
	}
	if got := reg.Counter(obs.MetricTenantShed, "tenant", DefaultTenant, "reason", "rate").Value(); got != 1 {
		t.Errorf("tenant shed = %d, want 1", got)
	}
	if got := reg.Gauge(obs.MetricConnsOpen, "tenant", DefaultTenant).Value(); got != 1 {
		t.Errorf("conns open = %v, want 1", got)
	}
	fe.StartDrain()
	if got := reg.Gauge(obs.MetricDraining).Value(); got != 1 {
		t.Errorf("draining gauge = %v, want 1", got)
	}
	gate.Close()
	fe.Close()
}

// TestConcurrentHammer drives many connections through admit/release with
// rate limits and a mid-flight drain; run under -race in CI.
func TestConcurrentHammer(t *testing.T) {
	fe := mustNew(t, Options{
		Tenants:  []TenantConfig{{Name: "*", Rate: 1e6, Burst: 1e6, MaxConns: 64}},
		MaxConns: 64, Workers: 4, QueueDepth: 16,
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gate, err := fe.AdmitConn("hammer")
			if err != nil {
				return
			}
			defer gate.Close()
			gate.Hello(fmt.Sprintf("tenant-%d", g%4))
			for i := 0; i < 200; i++ {
				class := transport.ClassLookup
				if i%3 == 0 {
					class = transport.ClassBulk
				}
				release, err := gate.Admit(class)
				if err != nil {
					if !errors.Is(err, transport.ErrOverloaded) {
						t.Errorf("admit: %v", err)
					}
					continue
				}
				release(int64(i))
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	fe.StartDrain()
	wg.Wait()
	if ok := fe.Drain(5 * time.Second); !ok {
		t.Fatal("Drain did not complete after workers exited")
	}
	fe.Close()
	st := fe.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("leftover work after close: %+v", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
