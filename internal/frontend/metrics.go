package frontend

import (
	"time"

	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// metrics wires the front end into an obs.Registry. A nil *metrics (no
// registry configured) makes every method a no-op, so the hot path never
// branches on configuration.
type metrics struct {
	reg       *obs.Registry
	draining  *obs.Gauge
	connRejct *obs.Counter
	queueD    [2]*obs.Gauge
	queueW    [2]*obs.Histogram
	svc       [2]*obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{reg: reg, draining: obs.DrainingGauge(reg)}
	reg.Help(obs.MetricConnRejected, "Connections refused by the serving front end (caps, drain).")
	m.connRejct = reg.Counter(obs.MetricConnRejected)
	reg.Help(obs.MetricTenantRequests, "Admitted requests per tenant and priority class.")
	reg.Help(obs.MetricTenantShed, "Shed requests per tenant and reason (rate, bytes, queue, conns, drain).")
	reg.Help(obs.MetricQueueDepth, "Current front-end queue depth per priority class.")
	reg.Help(obs.MetricQueueWait, "Time requests spend queued before a worker permit, per class.")
	reg.Help(obs.MetricServiceByClass, "Service time from worker grant to response written, per class.")
	reg.Help(obs.MetricConnsOpen, "Currently admitted connections per tenant.")
	for _, cl := range []transport.Class{transport.ClassLookup, transport.ClassBulk} {
		m.queueD[cl] = reg.Gauge(obs.MetricQueueDepth, "class", cl.String())
		m.queueW[cl] = reg.Histogram(obs.MetricQueueWait, nil, "class", cl.String())
		m.svc[cl] = reg.Histogram(obs.MetricServiceByClass, nil, "class", cl.String())
	}
	return m
}

func (m *metrics) setDraining(on bool) {
	if m == nil {
		return
	}
	if on {
		m.draining.Set(1)
	} else {
		m.draining.Set(0)
	}
}

func (m *metrics) connReject() {
	if m == nil {
		return
	}
	m.connRejct.Add(1)
}

func (m *metrics) admitted(tenant string, class transport.Class) {
	if m == nil {
		return
	}
	m.reg.Counter(obs.MetricTenantRequests, "tenant", tenant, "class", class.String()).Add(1)
}

func (m *metrics) shed(tenant, reason string) {
	if m == nil {
		return
	}
	m.reg.Counter(obs.MetricTenantShed, "tenant", tenant, "reason", reason).Add(1)
}

func (m *metrics) connsOpen(tenant string, n int) {
	if m == nil {
		return
	}
	m.reg.Gauge(obs.MetricConnsOpen, "tenant", tenant).Set(float64(n))
}

func (m *metrics) queueDepth(class transport.Class, depth int) {
	if m == nil {
		return
	}
	m.queueD[class].Set(float64(depth))
}

func (m *metrics) queueWait(class transport.Class, d time.Duration) {
	if m == nil {
		return
	}
	m.queueW[class].Observe(d.Seconds())
}

func (m *metrics) service(class transport.Class, d time.Duration) {
	if m == nil {
		return
	}
	m.svc[class].Observe(d.Seconds())
}
