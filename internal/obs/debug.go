// Optional HTTP debug server: /metrics (Prometheus text exposition of a
// Registry), /healthz, /trace (Chrome trace JSON of the live span rings),
// and the standard net/http/pprof endpoints under /debug/pprof/. Enabled
// by the -debug-addr flag on ddstore-serve and ddstore-train.
package obs

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running debug endpoint.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugMux builds the debug handler tree over a registry and an
// optional trace sink (nil disables /trace).
func NewDebugMux(reg *Registry, traces *TraceSink) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("obs: /metrics write: %v", err)
		}
	})
	// /healthz is pure liveness: the process is up and serving HTTP. It
	// never reports load or lifecycle state — restart policies key off it.
	// Readiness (drain, migration) is the separate /readyz, see AddReadyz.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if traces != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="ddstore-trace.json"`)
			if err := traces.WriteChromeTrace(w); err != nil {
				log.Printf("obs: /trace write: %v", err)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AddReadyz mounts /readyz on the mux: 200 "ok" when check returns ready,
// 503 with the reason otherwise. Load balancers and rolling restarts key
// off readiness — a draining server or one mid-migration answers 503 here
// while /healthz keeps saying "ok", so traffic steers away without the
// process being declared dead and restarted.
func AddReadyz(mux *http.ServeMux, check func() (ready bool, reason string)) {
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ready, reason := check()
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			if reason == "" {
				reason = "not ready"
			}
			fmt.Fprintln(w, reason)
			return
		}
		fmt.Fprintln(w, "ok")
	})
}

// StartDebug listens on addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves the debug endpoints in a background
// goroutine. traces may be nil.
func StartDebug(addr string, reg *Registry, traces *TraceSink) (*DebugServer, error) {
	return StartDebugHandler(addr, NewDebugMux(reg, traces))
}

// StartDebugHandler is StartDebug over a caller-built handler — the hook
// for callers that extend the standard mux with extra admin endpoints
// (e.g. the elastic cluster's /admin/reshard).
func StartDebugHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: debug server: %v", err)
		}
	}()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolves ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
