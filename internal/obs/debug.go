// Optional HTTP debug server: /metrics (Prometheus text exposition of a
// Registry), /healthz, /trace (Chrome trace JSON of the live span rings),
// and the standard net/http/pprof endpoints under /debug/pprof/. Enabled
// by the -debug-addr flag on ddstore-serve and ddstore-train.
package obs

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running debug endpoint.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugMux builds the debug handler tree over a registry and an
// optional trace sink (nil disables /trace).
func NewDebugMux(reg *Registry, traces *TraceSink) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("obs: /metrics write: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if traces != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="ddstore-trace.json"`)
			if err := traces.WriteChromeTrace(w); err != nil {
				log.Printf("obs: /trace write: %v", err)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebug listens on addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves the debug endpoints in a background
// goroutine. traces may be nil.
func StartDebug(addr string, reg *Registry, traces *TraceSink) (*DebugServer, error) {
	return StartDebugHandler(addr, NewDebugMux(reg, traces))
}

// StartDebugHandler is StartDebug over a caller-built handler — the hook
// for callers that extend the standard mux with extra admin endpoints
// (e.g. the elastic cluster's /admin/reshard).
func StartDebugHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("obs: debug server: %v", err)
		}
	}()
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (resolves ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
