// Bridges from DDStore's existing signal sources into the registry: the
// region profiler (internal/trace), the hot-sample cache (internal/cache),
// fetch-latency summaries, the Go runtime, and the Inc(name, delta) counter
// sinks the transport and cache packages emit events through.
package obs

import (
	"runtime"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/trace"
)

// Canonical metric names shared by every DDStore process, so dashboards
// work against ddstore-serve and ddstore-train alike.
const (
	// MetricFetchLatency is the per-sample fetch latency histogram: the
	// engine's per-unique-id load latency on the client side, the
	// per-request service latency on the server side.
	MetricFetchLatency = "ddstore_fetch_latency_seconds"
	// MetricEvents is the labeled event-counter family the trace/cache/
	// transport counter names feed: ddstore_events_total{event="cache-hits"}.
	MetricEvents = "ddstore_events_total"
	// MetricRegionSeconds / MetricRegionSteps are the profiler's per-region
	// accumulated time (seconds, as a monotonic gauge so fractional virtual
	// time survives) and occurrence count.
	MetricRegionSeconds = "ddstore_region_seconds_total"
	MetricRegionSteps   = "ddstore_region_steps_total"
	// MetricLoadgenInFlight gauges load-generator workers currently driving
	// requests at a live server (internal/loadgen); it rises to the phase's
	// worker count while a phase runs and drains back to zero between
	// phases, so a scrape distinguishes "idle harness" from "mid-phase".
	MetricLoadgenInFlight = "ddstore_loadgen_workers_inflight"

	// Serving front-end metrics (internal/frontend + transport server).
	// MetricAcceptRejected counts connections turned away at the accept
	// loop because the server's concurrent-connection semaphore was full.
	MetricAcceptRejected = "ddstore_serve_accept_rejected_total"
	// MetricConnRejected counts connections admitted by the accept loop
	// but refused by the front end (tenant conn cap, global cap, drain).
	MetricConnRejected = "ddstore_serve_conn_rejected_total"
	// MetricTenantRequests counts admitted requests per tenant and
	// priority class: {tenant=...,class=...}.
	MetricTenantRequests = "ddstore_tenant_requests_total"
	// MetricTenantShed counts shed requests per tenant and reason:
	// {tenant=...,reason=rate|bytes|queue|drain}.
	MetricTenantShed = "ddstore_tenant_shed_total"
	// MetricQueueDepth gauges the front end's current queue depth per
	// priority class.
	MetricQueueDepth = "ddstore_frontend_queue_depth"
	// MetricQueueWait is the time-in-queue histogram per priority class.
	MetricQueueWait = "ddstore_frontend_queue_wait_seconds"
	// MetricServiceByClass is the service-time histogram per priority
	// class (admission grant to response written).
	MetricServiceByClass = "ddstore_frontend_service_seconds"
	// MetricConnsOpen gauges currently admitted connections per tenant.
	MetricConnsOpen = "ddstore_frontend_conns_open"
	// MetricDraining is 1 while the server is draining, else 0.
	MetricDraining = "ddstore_serve_draining"
	// MetricShardMapGeneration gauges the live shard map generation of the
	// elastic ownership store. Monotonically non-decreasing; a reshard
	// bumps it by one once migration completes.
	MetricShardMapGeneration = "ddstore_shardmap_generation"
	// MetricShardMapChunksMoved counts shard moves executed by resharding
	// migrations (one per shard that changed owners and was pulled).
	MetricShardMapChunksMoved = "ddstore_shardmap_chunks_moved_total"
	// MetricMigrationBytes is the per-generation migration volume
	// histogram: encoded sample bytes pulled to their new owners.
	MetricMigrationBytes = "ddstore_shardmap_migration_bytes"
	// MetricMigrationSeconds is the per-generation migration duration
	// histogram, from planning to publishing the new generation.
	MetricMigrationSeconds = "ddstore_shardmap_migration_seconds"

	// MetricBuildInfo is the constant-1 build identity gauge
	// (ddstore_build_info{version=...,go=...}); dashboards join it to pin
	// which binary produced a metric series.
	MetricBuildInfo = "ddstore_build_info"
	// MetricUptime gauges seconds since the process registered its
	// collectors — the scrape-side signal for restart detection.
	MetricUptime = "ddstore_process_uptime_seconds"
)

// Version identifies the build in ddstore_build_info. Overridable at link
// time: -ldflags "-X ddstore/internal/obs.Version=v1.2.3".
var Version = "dev"

// CollectBuildInfo registers the build-identity gauge (constant 1, with
// the version and Go runtime as labels) and the process-uptime gauge.
func CollectBuildInfo(reg *Registry) {
	reg.Help(MetricBuildInfo, "Build identity: constant 1 with version/go labels.")
	reg.Help(MetricUptime, "Seconds since this process registered its collectors.")
	reg.Gauge(MetricBuildInfo, "version", Version, "go", runtime.Version()).Set(1)
	start := time.Now()
	reg.AddCollector(func() {
		reg.Gauge(MetricUptime).Set(time.Since(start).Seconds())
	})
}

// DrainingGauge returns the canonical draining gauge of a registry,
// registering its help text on first use.
func DrainingGauge(reg *Registry) *Gauge {
	reg.Help(MetricDraining, "1 while the server is draining (refusing new work), else 0.")
	return reg.Gauge(MetricDraining)
}

// ShardMapGenerationGauge returns the canonical shard-map generation
// gauge of a registry, registering its help text on first use.
func ShardMapGenerationGauge(reg *Registry) *Gauge {
	reg.Help(MetricShardMapGeneration, "Live shard map generation (monotonically non-decreasing).")
	return reg.Gauge(MetricShardMapGeneration)
}

// ShardMapChunksMovedCounter returns the canonical chunks-moved counter of
// a registry, registering its help text on first use.
func ShardMapChunksMovedCounter(reg *Registry) *Counter {
	reg.Help(MetricShardMapChunksMoved, "Shard moves executed by resharding migrations.")
	return reg.Counter(MetricShardMapChunksMoved)
}

// MigrationBytesHistogram returns the canonical per-migration byte-volume
// histogram of a registry (buckets 4KiB..~4GiB).
func MigrationBytesHistogram(reg *Registry) *Histogram {
	h := reg.Histogram(MetricMigrationBytes, ExpBuckets(4096, 4, 11))
	reg.Help(MetricMigrationBytes, "Encoded bytes pulled per resharding migration.")
	return h
}

// MigrationSecondsHistogram returns the canonical per-migration duration
// histogram of a registry.
func MigrationSecondsHistogram(reg *Registry) *Histogram {
	h := reg.Histogram(MetricMigrationSeconds, DefLatencyBuckets)
	reg.Help(MetricMigrationSeconds, "Wall time per resharding migration, planning to publish.")
	return h
}

// LoadgenWorkersGauge returns the canonical in-flight load-generator
// worker gauge of a registry, registering its help text on first use.
func LoadgenWorkersGauge(reg *Registry) *Gauge {
	reg.Help(MetricLoadgenInFlight, "Load-generator workers currently issuing requests.")
	return reg.Gauge(MetricLoadgenInFlight)
}

// FetchLatencyHistogram returns the canonical fetch-latency histogram of a
// registry (creating it with the default bucket spread).
func FetchLatencyHistogram(reg *Registry) *Histogram {
	h := reg.Histogram(MetricFetchLatency, DefLatencyBuckets)
	reg.Help(MetricFetchLatency, "Per-sample fetch latency (client engine) or per-request service latency (server).")
	return h
}

// IncSink is the structural counter-sink interface shared by
// trace.Profiler, cache.Counters, and transport.Counters: named monotonic
// event counts.
type IncSink interface {
	Inc(name string, delta int64)
}

// CounterSink adapts a labeled registry counter family to the IncSink
// interface, so cache/transport event counters flow live into the
// registry: Inc("cache-hits", 1) bumps metric{labelKey="cache-hits"}.
type CounterSink struct {
	reg      *Registry
	metric   string
	labelKey string
}

// NewCounterSink builds a sink over metric/labelKey and pre-registers the
// known label values at zero, so a scrape before any traffic still shows
// every series a dashboard expects.
func NewCounterSink(reg *Registry, metric, labelKey string, known ...string) *CounterSink {
	for _, name := range known {
		reg.Counter(metric, labelKey, name)
	}
	return &CounterSink{reg: reg, metric: metric, labelKey: labelKey}
}

// Inc implements the counter-sink interface.
func (s *CounterSink) Inc(name string, delta int64) {
	s.reg.Counter(s.metric, s.labelKey, name).Add(delta)
}

// EventSink returns the canonical ddstore_events_total{event=...} sink of a
// registry.
func EventSink(reg *Registry) *CounterSink {
	reg.Help(MetricEvents, "DDStore event counts: cache hits/misses/evictions, transport retries/failovers/timeouts.")
	return NewCounterSink(reg, MetricEvents, "event")
}

// TeeCounters fans one Inc out to several sinks (e.g. a trace.Profiler and
// a registry EventSink receiving the same cache events).
func TeeCounters(sinks ...IncSink) IncSink { return teeSink(sinks) }

type teeSink []IncSink

func (t teeSink) Inc(name string, delta int64) {
	for _, s := range t {
		s.Inc(name, delta)
	}
}

// AddProfiler folds a finished run's profiler into the registry with Add
// semantics, so several runs accumulate (the bench suite's registry).
func AddProfiler(reg *Registry, p *trace.Profiler) {
	for _, r := range p.Regions() {
		reg.Gauge(MetricRegionSeconds, "region", r.Name).Add(r.Total.Seconds())
		reg.Counter(MetricRegionSteps, "region", r.Name).Add(r.Count)
	}
	for name, v := range p.Counters() {
		reg.Counter(MetricEvents, "event", name).Add(v)
	}
}

// CollectProfiler registers a collector that mirrors the profiler's region
// totals and event counters into the registry on every scrape. get is
// called per scrape to produce the profiler to read — the hook
// ddstore-train uses to fold per-rank profilers into one on demand.
func CollectProfiler(reg *Registry, get func() *trace.Profiler) {
	reg.Help(MetricRegionSeconds, "Accumulated per-region time in seconds (virtual time under a machine model).")
	reg.Help(MetricRegionSteps, "Per-region occurrence count.")
	reg.AddCollector(func() {
		p := get()
		if p == nil {
			return
		}
		for _, r := range p.Regions() {
			reg.Gauge(MetricRegionSeconds, "region", r.Name).Set(r.Total.Seconds())
			reg.Counter(MetricRegionSteps, "region", r.Name).Set(r.Count)
		}
		for name, v := range p.Counters() {
			reg.Counter(MetricEvents, "event", name).Set(v)
		}
	})
}

// CollectCache registers a collector that mirrors a cache's statistics
// into the registry on every scrape: the event totals plus resident
// entry/byte gauges.
func CollectCache(reg *Registry, get func() cache.Stats) {
	reg.Help("ddstore_cache_entries", "Resident hot-sample cache entries.")
	reg.Help("ddstore_cache_bytes", "Resident hot-sample cache bytes.")
	reg.AddCollector(func() {
		st := get()
		reg.Counter(MetricEvents, "event", cache.CounterHits).Set(st.Hits)
		reg.Counter(MetricEvents, "event", cache.CounterMisses).Set(st.Misses)
		reg.Counter(MetricEvents, "event", cache.CounterCoalesced).Set(st.Coalesced)
		reg.Counter(MetricEvents, "event", cache.CounterEvictions).Set(st.Evictions)
		reg.Gauge("ddstore_cache_entries").Set(float64(st.Entries))
		reg.Gauge("ddstore_cache_bytes").Set(float64(st.Bytes))
		reg.Gauge("ddstore_cache_hit_rate").Set(st.HitRate())
	})
}

// CollectLatencySummary registers a collector exporting percentile gauges
// of a latency digest (the engine's sliding window) on every scrape.
func CollectLatencySummary(reg *Registry, get func() (count int64, p50, p95, p99 time.Duration)) {
	reg.Help("ddstore_fetch_latency_quantile_seconds", "Sliding-window fetch latency percentiles from the engine.")
	reg.AddCollector(func() {
		count, p50, p95, p99 := get()
		reg.Counter("ddstore_fetch_latency_window_count").Set(count)
		reg.Gauge("ddstore_fetch_latency_quantile_seconds", "quantile", "0.5").Set(p50.Seconds())
		reg.Gauge("ddstore_fetch_latency_quantile_seconds", "quantile", "0.95").Set(p95.Seconds())
		reg.Gauge("ddstore_fetch_latency_quantile_seconds", "quantile", "0.99").Set(p99.Seconds())
	})
}

// CollectGoRuntime registers the standard Go process gauges: goroutines,
// heap residency, GC cycles.
func CollectGoRuntime(reg *Registry) {
	reg.Help("go_goroutines", "Live goroutines.")
	reg.Help("go_heap_alloc_bytes", "Heap bytes allocated and in use.")
	reg.AddCollector(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reg.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
		reg.Gauge("go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		reg.Gauge("go_sys_bytes").Set(float64(ms.Sys))
		reg.Counter("go_gc_cycles_total").Set(int64(ms.NumGC))
	})
}
