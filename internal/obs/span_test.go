package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanRingRecordAndContext(t *testing.T) {
	r := NewSpanRing(8, 3)
	r.SetContext(2, 17)
	r.Record(Span{Name: "load-batch", Cat: "train", Owner: -1, Samples: 4, Start: time.Second, Dur: time.Millisecond})
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("len = %d, want 1", len(spans))
	}
	s := spans[0]
	if s.Rank != 3 || s.Epoch != 2 || s.Step != 17 {
		t.Fatalf("context not stamped: %+v", s)
	}
	if r.Rank() != 3 || r.Len() != 1 || r.Dropped() != 0 {
		t.Fatalf("ring state: rank=%d len=%d dropped=%d", r.Rank(), r.Len(), r.Dropped())
	}
}

func TestSpanRingWrapsAndCountsDrops(t *testing.T) {
	r := NewSpanRing(4, 0)
	for i := 0; i < 10; i++ {
		r.Record(Span{Name: "s", Start: time.Duration(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	spans := r.Spans()
	for i, s := range spans {
		if want := time.Duration(6 + i); s.Start != want {
			t.Fatalf("span[%d].Start = %v, want %v (oldest-first retention window)", i, s.Start, want)
		}
	}
}

func TestSpanRingRecordAll(t *testing.T) {
	r := NewSpanRing(4, 2)
	r.SetContext(1, 9)
	r.RecordAll(
		Span{Name: "a", Start: 0},
		Span{Name: "b", Start: 1},
		Span{Name: "c", Start: 2},
	)
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Start != time.Duration(i) {
			t.Fatalf("span[%d].Start = %v: batch order not preserved", i, s.Start)
		}
		if s.Rank != 2 || s.Epoch != 1 || s.Step != 9 {
			t.Fatalf("context not stamped on batched span: %+v", s)
		}
	}
	// Overflow inside one batch drops oldest, same as Record.
	r.RecordAll(Span{Name: "d", Start: 3}, Span{Name: "e", Start: 4})
	if r.Len() != 4 || r.Dropped() != 1 {
		t.Fatalf("after overflow batch: len=%d dropped=%d, want 4/1", r.Len(), r.Dropped())
	}
	if got := r.Spans()[0].Start; got != 1 {
		t.Fatalf("oldest retained = %v, want 1", got)
	}
}

func TestSpanRingDefaultCap(t *testing.T) {
	r := NewSpanRing(0, 0)
	if len(r.buf) != DefaultSpanCap {
		t.Fatalf("default cap = %d, want %d", len(r.buf), DefaultSpanCap)
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.SetContext(i/10, i)
				r.Record(Span{Name: "x", Dur: time.Microsecond})
				r.Spans()
			}
		}()
	}
	wg.Wait()
	if got := int64(r.Len()) + r.Dropped(); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}

// chromeTrace mirrors the JSON shape Chrome's trace viewer loads.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewSpanRing(16, 2)
	r.SetContext(1, 5)
	r.Record(Span{Name: "load-batch", Cat: "train", Owner: -1, Samples: 8,
		Start: 3 * time.Millisecond, Dur: 2 * time.Millisecond})
	r.Record(Span{Name: "fetch-owner", Cat: "fetch", Owner: 7, Samples: 3, Bytes: 4096,
		CacheHit: false, Start: 3100 * time.Microsecond, Dur: 900 * time.Microsecond})

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Pid != 2 {
				t.Fatalf("pid = %d, want rank 2", ev.Pid)
			}
			if ev.Name == "fetch-owner" {
				if ev.Args["owner"] != float64(7) || ev.Args["bytes"] != float64(4096) {
					t.Fatalf("fetch-owner args: %v", ev.Args)
				}
				if ev.Ts != 3100 || ev.Dur != 900 {
					t.Fatalf("ts/dur in µs: ts=%v dur=%v", ev.Ts, ev.Dur)
				}
			}
			if ev.Name == "load-batch" {
				if _, ok := ev.Args["owner"]; ok {
					t.Fatal("owner -1 must be omitted from args")
				}
				if ev.Args["epoch"] != float64(1) || ev.Args["step"] != float64(5) {
					t.Fatalf("load-batch args: %v", ev.Args)
				}
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// process_name + two thread_name metadata events, two complete events.
	if meta != 3 || complete != 2 {
		t.Fatalf("meta=%d complete=%d, want 3/2", meta, complete)
	}
}

func TestTraceSinkDistinctPids(t *testing.T) {
	sink := NewTraceSink(8)
	var rings []*SpanRing
	for run := 0; run < 2; run++ {
		for rank := 0; rank < 2; rank++ {
			r := sink.NewRing(fmt.Sprintf("run%d", run), rank)
			r.Record(Span{Name: "s", Cat: "train", Dur: time.Microsecond})
			rings = append(rings, r)
		}
	}
	pids := map[int]bool{}
	for _, r := range rings {
		if pids[r.pid] {
			t.Fatalf("duplicate pid %d", r.pid)
		}
		pids[r.pid] = true
	}
	var buf bytes.Buffer
	if err := sink.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("sink trace invalid: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Name == "process_name" {
			names[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	for _, want := range []string{"run0 rank 0", "run0 rank 1", "run1 rank 0", "run1 rank 1"} {
		if !names[want] {
			t.Fatalf("missing process %q (have %v)", want, names)
		}
	}
}
