// Package obs is DDStore's run-wide observability layer: a typed metrics
// registry every existing signal feeds into (trace region timings and event
// counters, cache statistics, fetch-latency windows, transport resilience
// counters), per-batch span tracing exportable as Chrome trace-event JSON,
// an HTTP debug server (/metrics, /healthz, net/http/pprof), and cluster
// telemetry aggregation that folds per-rank profiles into the paper's
// Fig. 7-style time-share breakdown plus a loading-skew report.
//
// The registry holds three instrument kinds:
//
//   - Counter: a monotonic int64 total (atomic).
//   - Gauge: a settable float64 level (atomic).
//   - Histogram: a bounded-bucket distribution with sum and count. Bucket
//     bounds are fixed at creation, so memory never grows with traffic.
//
// Instruments are identified by metric name plus an optional label set, the
// same data model Prometheus uses; Snapshot returns a JSON-friendly
// point-in-time copy and WritePrometheus renders the text exposition format
// (version 0.0.4) a Prometheus server scrapes.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes the instrument types of a Registry.
type Kind uint8

// The three instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing total. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta (negative deltas are ignored — a
// counter never goes down).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter with an externally observed total — the hook
// snapshot-fed collectors use when an upstream component (a profiler, a
// cache) already accumulates the monotonic total itself.
func (c *Counter) Set(total int64) { c.v.Store(total) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a level that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf overflow
// bucket. Bounds are fixed at creation, so a histogram's memory is constant
// no matter how much traffic it sees.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds (exclusive of +Inf)
	counts []uint64  // len(bounds)+1; last is the +Inf overflow
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// snapshot returns cumulative bucket counts, sum, and count.
func (h *Histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var run uint64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.sum, h.total
}

// ExpBuckets returns n exponentially growing upper bounds starting at
// start: start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets spans 10µs to ~1.3s in powers of two — wide enough for
// both in-memory reads and multi-retry TCP fetches.
var DefLatencyBuckets = ExpBuckets(10e-6, 2, 18)

// Label is one name/value pair attached to an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// series is one instrument plus its identity within a family.
type series struct {
	labels []Label // sorted by key
	sig    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	kind   Kind
	help   string
	bounds []float64 // histogram families only
	series map[string]*series
	sigs   []string // insertion order; output sorts
}

// Registry holds instruments and renders them as snapshots or Prometheus
// text. All methods are safe for concurrent use; instrument handles may be
// cached by hot paths so steady-state recording is lock-free (counters,
// gauges) or a single short mutex (histograms).
type Registry struct {
	mu         sync.Mutex
	fams       map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// labelsFromPairs validates and sorts alternating key/value pairs.
func labelsFromPairs(pairs []string) ([]Label, string) {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %q", pairs))
	}
	ls := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		ls = append(ls, Label{Key: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return ls, b.String()
}

// seriesFor returns (creating if needed) the series of one name+labels,
// enforcing kind consistency within the family.
func (r *Registry) seriesFor(name string, kind Kind, bounds []float64, pairs []string) *series {
	labels, sig := labelsFromPairs(pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		if kind == KindHistogram {
			f.bounds = append([]float64(nil), bounds...)
		}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: labels, sig: sig}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
		}
		f.series[sig] = s
		f.sigs = append(f.sigs, sig)
	}
	return s
}

// Counter returns (creating if needed) the counter of one name plus
// alternating label key/value pairs: r.Counter("ddstore_events_total",
// "event", "cache-hits").
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	return r.seriesFor(name, KindCounter, nil, labelPairs).c
}

// Gauge returns (creating if needed) the gauge of one name+labels.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	return r.seriesFor(name, KindGauge, nil, labelPairs).g
}

// Histogram returns (creating if needed) the histogram of one name+labels.
// The bucket bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	return r.seriesFor(name, KindHistogram, buckets, labelPairs).h
}

// Help attaches a # HELP line to a metric name (creating the family record
// lazily is not needed — call after the first instrument registration).
func (r *Registry) Help(name, help string) {
	r.mu.Lock()
	if f, ok := r.fams[name]; ok {
		f.help = help
	}
	r.mu.Unlock()
}

// AddCollector registers a function run before every Snapshot and
// WritePrometheus — the hook that folds pull-time state (profiler totals,
// cache statistics, runtime memory) into the registry.
func (r *Registry) AddCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// collect runs the registered collectors outside the registry lock (they
// call back into instrument getters, which lock).
func (r *Registry) collect() {
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// CounterPoint is one counter series in a Snapshot.
type CounterPoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// GaugePoint is one gauge series in a Snapshot.
type GaugePoint struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramPoint is one histogram series in a Snapshot. Buckets are
// cumulative counts aligned with UpperBounds; the last bucket is +Inf (its
// bound is reported as +Inf by math, omitted from UpperBounds).
type HistogramPoint struct {
	Name        string    `json:"name"`
	Labels      []Label   `json:"labels,omitempty"`
	UpperBounds []float64 `json:"upper_bounds"`
	Cumulative  []uint64  `json:"cumulative"`
	Sum         float64   `json:"sum"`
	Count       uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument, ordered by metric
// name then label signature — deterministic, so it can be diffed and
// golden-tested.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// famView is one family's mutable state — help text and series list —
// captured under the registry lock, so readers never touch the live maps
// while seriesFor is inserting or Help is writing. Name, kind, and bucket
// bounds are immutable after creation; the instruments themselves are safe
// to read lock-free.
type famView struct {
	*family
	help    string
	ordered []*series
}

// sortedFamilies returns a consistent view of every family ordered by
// name, each with its series sorted by label signature.
func (r *Registry) sortedFamilies() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]famView, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, famView{family: f, help: f.help, ordered: f.sortedSeriesLocked()})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Snapshot runs the collectors and returns a copy of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.ordered {
			switch f.kind {
			case KindCounter:
				snap.Counters = append(snap.Counters, CounterPoint{Name: f.name, Labels: s.labels, Value: s.c.Value()})
			case KindGauge:
				snap.Gauges = append(snap.Gauges, GaugePoint{Name: f.name, Labels: s.labels, Value: s.g.Value()})
			case KindHistogram:
				cum, sum, total := s.h.snapshot()
				snap.Histograms = append(snap.Histograms, HistogramPoint{
					Name:        f.name,
					Labels:      s.labels,
					UpperBounds: append([]float64(nil), f.bounds...),
					Cumulative:  cum,
					Sum:         sum,
					Count:       total,
				})
			}
		}
	}
	return snap
}

// JSON renders the snapshot as indented JSON with stable field order.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// sortedSeriesLocked returns the family's series sorted by label
// signature; the caller must hold the registry lock.
func (f *family) sortedSeriesLocked() []*series {
	sigs := append([]string(nil), f.sigs...)
	sort.Strings(sigs)
	out := make([]*series, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, f.series[sig])
	}
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// formatLabels renders {k="v",...} with an optional extra pair appended
// (the histogram le bound).
func formatLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus runs the collectors and renders every instrument in the
// Prometheus text exposition format (version 0.0.4), families sorted by
// name and series by label signature so the output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.ordered {
			var err error
			switch f.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels, "", ""), s.c.Value())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", ""), formatFloat(s.g.Value()))
			case KindHistogram:
				cum, sum, total := s.h.snapshot()
				for i, bound := range f.bounds {
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, formatLabels(s.labels, "le", formatFloat(bound)), cum[i]); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, formatLabels(s.labels, "le", "+Inf"), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels, "", ""), formatFloat(sum)); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels, "", ""), total)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
