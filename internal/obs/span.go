// Span tracing: every batch load and owner fetch records a Span into a
// bounded per-rank ring, tagged with rank, epoch, step, owner, sample and
// byte counts, and cache hit/miss. Rings export as Chrome trace-event JSON
// (the about://tracing / Perfetto format), so one training run opens as a
// per-rank, per-thread timeline.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one traced interval on a rank's timeline. Start and Dur are
// offsets on the rank's clock — virtual time under a machine model, wall
// time otherwise; either way the per-rank timelines are mutually
// comparable.
type Span struct {
	Name     string        `json:"name"`
	Cat      string        `json:"cat"` // "train" (DDP), "fetch" (engine), "server" (remote timing)
	Rank     int           `json:"rank"`
	Epoch    int           `json:"epoch"`
	Step     int           `json:"step"`
	Owner    int           `json:"owner"` // -1 when not owner-specific
	Samples  int           `json:"samples"`
	Bytes    int64         `json:"bytes"`
	CacheHit bool          `json:"cache_hit"`
	Start    time.Duration `json:"start"`
	Dur      time.Duration `json:"dur"`

	// Distributed-tracing identity (zero when the span is untraced): which
	// request tree the span belongs to, its own id, and its parent's.
	TraceID  uint64 `json:"trace_id,omitempty"`
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Server-reported attribution, merged from the timing trailer: the
	// tenant queue the request was charged to and the shard map generation
	// it was served under. ShardLo is the lower bound of the shard the
	// request's first sample routed through (meaningful with Gen set).
	Tenant  string `json:"tenant,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	ShardLo int64  `json:"shard_lo,omitempty"`
}

// EpochNow returns the wall clock as an offset from the Unix epoch — the
// shared clock origin for real-time span recording. Rings filled against
// EpochNow from different processes (a trainer and the owners it fetched
// from, loadgen on another machine) line up when merged into one Chrome
// trace, because every timestamp is absolute: Ts = unix time in
// microseconds. Chrome's float64 microsecond timestamps carry ~53 bits of
// precision, which holds sub-microsecond resolution for wall-clock values
// through this century. Machine-model runs keep their virtual clocks; only
// real-time recording anchors here.
func EpochNow() time.Duration { return time.Duration(time.Now().UnixNano()) }

// SpanRing is a bounded ring of spans for one rank. When full, the oldest
// span is overwritten (and counted as dropped), so a long run retains its
// most recent window at constant memory. Safe for concurrent use — the
// fetch engine's fan-out workers and the training loop record into the
// same ring.
type SpanRing struct {
	rank  int
	pid   int    // Chrome trace pid; defaults to rank, overridden by TraceSink
	label string // Chrome trace process name; default "rank N"

	epoch atomic.Int64
	step  atomic.Int64

	mu      sync.Mutex
	buf     []Span
	idx     int
	n       int
	dropped int64
}

// DefaultSpanCap bounds a ring when the caller passes no capacity.
const DefaultSpanCap = 1 << 16

// NewSpanRing returns a ring of at most capacity spans (<= 0 means
// DefaultSpanCap) for the given rank.
func NewSpanRing(capacity, rank int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRing{
		rank:  rank,
		pid:   rank,
		label: fmt.Sprintf("rank %d", rank),
		buf:   make([]Span, capacity),
	}
}

// Rank returns the ring's rank tag.
func (r *SpanRing) Rank() int { return r.rank }

// SetLabel overrides the Chrome trace process name.
func (r *SpanRing) SetLabel(label string) { r.label = label }

// SetContext sets the epoch/step tags applied to subsequently recorded
// spans. The training loop calls it once per step; spans recorded by
// background prefetch workers inherit the loop's current step, which may
// lag the batch being prefetched by one — a tagging approximation, not a
// timing error.
func (r *SpanRing) SetContext(epoch, step int) {
	r.epoch.Store(int64(epoch))
	r.step.Store(int64(step))
}

// Record appends one span, stamping it with the ring's rank and current
// epoch/step context.
func (r *SpanRing) Record(s Span) {
	s.Rank = r.rank
	s.Epoch = int(r.epoch.Load())
	s.Step = int(r.step.Load())
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.idx] = s
	r.idx = (r.idx + 1) % len(r.buf)
	r.mu.Unlock()
}

// RecordAll appends several spans under one lock acquisition. The traced
// fetch path synthesizes a few server segments per request; batching them
// keeps ring contention flat as request rate grows.
func (r *SpanRing) RecordAll(spans ...Span) {
	epoch := int(r.epoch.Load())
	step := int(r.step.Load())
	r.mu.Lock()
	for _, s := range spans {
		s.Rank = r.rank
		s.Epoch = epoch
		s.Step = step
		if r.n == len(r.buf) {
			r.dropped++
		} else {
			r.n++
		}
		r.buf[r.idx] = s
		r.idx = (r.idx + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := (r.idx - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained spans.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many spans were overwritten because the ring was
// full.
func (r *SpanRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

const us = float64(time.Microsecond)

// WriteChromeTrace renders the rings as one Chrome trace-event JSON object
// ({"traceEvents": [...]}) loadable by about://tracing and Perfetto. Each
// ring becomes one process (pid = rank), with the span categories mapped to
// named threads within it.
func WriteChromeTrace(w io.Writer, rings ...*SpanRing) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := w.Write([]byte{',', '\n'}); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for _, ring := range rings {
		if ring == nil {
			continue
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: ring.pid,
			Args: map[string]any{"name": ring.label}}); err != nil {
			return err
		}
		tids := map[string]int{}
		for _, s := range ring.Spans() {
			tid, ok := tids[s.Cat]
			if !ok {
				tid = len(tids)
				tids[s.Cat] = tid
				if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: ring.pid, Tid: tid,
					Args: map[string]any{"name": s.Cat}}); err != nil {
					return err
				}
			}
			args := map[string]any{"epoch": s.Epoch, "step": s.Step, "samples": s.Samples}
			if s.Owner >= 0 {
				args["owner"] = s.Owner
			}
			if s.Bytes > 0 {
				args["bytes"] = s.Bytes
			}
			args["cache_hit"] = s.CacheHit
			if s.TraceID != 0 {
				args["trace_id"] = fmt.Sprintf("%016x", s.TraceID)
				if s.SpanID != 0 {
					args["span_id"] = fmt.Sprintf("%016x", s.SpanID)
				}
				if s.ParentID != 0 {
					args["parent_id"] = fmt.Sprintf("%016x", s.ParentID)
				}
			}
			if s.Tenant != "" {
				args["tenant"] = s.Tenant
			}
			if s.Gen != 0 {
				args["gen"] = s.Gen
				args["shard_lo"] = s.ShardLo
			}
			if err := emit(chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X", Pid: ring.pid, Tid: tid,
				Ts: float64(s.Start) / us, Dur: float64(s.Dur) / us, Args: args,
			}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// TraceSink collects span rings from many runs (the bench suite) and
// assigns each a distinct Chrome trace pid, so rank 0 of two different
// experiments does not collide in the exported timeline.
type TraceSink struct {
	mu    sync.Mutex
	cap   int
	rings []*SpanRing
}

// NewTraceSink returns a sink whose rings hold at most capPerRing spans
// (<= 0 means DefaultSpanCap).
func NewTraceSink(capPerRing int) *TraceSink { return &TraceSink{cap: capPerRing} }

// NewRing registers and returns a fresh ring labeled "<label> rank N".
func (t *TraceSink) NewRing(label string, rank int) *SpanRing {
	r := NewSpanRing(t.cap, rank)
	t.mu.Lock()
	r.pid = len(t.rings)
	if label != "" {
		r.label = fmt.Sprintf("%s rank %d", label, rank)
	}
	t.rings = append(t.rings, r)
	t.mu.Unlock()
	return r
}

// Rings returns the registered rings in registration order.
func (t *TraceSink) Rings() []*SpanRing {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*SpanRing(nil), t.rings...)
}

// WriteChromeTrace renders every registered ring as one Chrome trace.
func (t *TraceSink) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Rings()...)
}
