// Package flightrec is DDStore's always-on flight recorder: a bounded
// in-memory ring of structured records for the requests worth a second
// look — slow (over a configurable threshold), errored, shed by admission
// control, or re-routed after a stale-generation answer — each with its
// full timing breakdown (queue wait, service, chunk-source time), byte
// volume, tenant, shard-map generation, and trace ID.
//
// Unlike metrics (which average the tail away) and unlike sampling tracers
// (which usually miss the one request that mattered), the recorder keeps
// the most recent window of anomalies at constant memory, is always
// enabled, and is readable two ways: live over HTTP at
// /debug/flightrecorder on the debug mux, and as automatic JSON snapshots
// written to disk when the shed or stale-retry rate spikes (the Watcher) —
// so a 3 a.m. incident leaves evidence even if nobody was scraping.
package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies why a request was recorded.
type Kind string

// The record kinds.
const (
	// KindSlow marks a request whose total service time exceeded the
	// recorder's owner-configured slow threshold.
	KindSlow Kind = "slow"
	// KindError marks a request answered with an error status.
	KindError Kind = "error"
	// KindShed marks a request refused by admission control (overloaded).
	KindShed Kind = "shed"
	// KindStale marks a request answered with a stale-generation status
	// (or, client-side, re-routed after one).
	KindStale Kind = "stale"
)

// kinds is the fixed enumeration, for counters and JSON output.
var kinds = []Kind{KindSlow, KindError, KindShed, KindStale}

// Record is one captured request. Durations are exported in milliseconds
// so the JSON reads directly; TraceID is the 16-hex-digit form (empty for
// untraced requests).
type Record struct {
	Time        time.Time `json:"time"`
	Kind        Kind      `json:"kind"`
	Op          string    `json:"op"`
	Tenant      string    `json:"tenant,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	DurMs       float64   `json:"dur_ms"`
	QueueWaitMs float64   `json:"queue_wait_ms,omitempty"`
	SourceMs    float64   `json:"source_ms,omitempty"`
	Bytes       int64     `json:"bytes,omitempty"`
	Samples     int       `json:"samples,omitempty"`
	Generation  uint64    `json:"generation,omitempty"`
	Err         string    `json:"err,omitempty"`
}

// Ms converts a duration to the milliseconds Record fields carry.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// DefaultCapacity bounds a recorder built with capacity <= 0.
const DefaultCapacity = 256

// Recorder is the bounded record ring. Safe for concurrent use: request
// handlers Add while HTTP reads Snapshot.
type Recorder struct {
	mu      sync.Mutex
	buf     []Record
	idx     int
	n       int
	dropped int64

	counts [4]atomic.Int64 // indexed by kind position in kinds
}

// New returns a recorder keeping the most recent capacity records
// (<= 0 means DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Record, capacity)}
}

func kindIndex(k Kind) int {
	for i, kk := range kinds {
		if kk == k {
			return i
		}
	}
	return -1
}

// Add appends one record, overwriting (and counting as dropped) the oldest
// when the ring is full. A zero Time is stamped with the current wall
// clock.
func (r *Recorder) Add(rec Record) {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if i := kindIndex(rec.Kind); i >= 0 {
		r.counts[i].Add(1)
	}
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.idx] = rec
	r.idx = (r.idx + 1) % len(r.buf)
	r.mu.Unlock()
}

// Records returns the retained records, oldest first.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.n)
	start := (r.idx - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many records were overwritten because the ring was
// full.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Count returns the cumulative number of records ever added for a kind —
// monotonic even after the ring wraps, which is what the spike watcher
// rates on.
func (r *Recorder) Count(k Kind) int64 {
	if i := kindIndex(k); i >= 0 {
		return r.counts[i].Load()
	}
	return 0
}

// snapshot is the JSON document served over HTTP and written to disk.
type snapshot struct {
	Time    time.Time      `json:"time"`
	Reason  string         `json:"reason,omitempty"`
	Counts  map[Kind]int64 `json:"counts"`
	Dropped int64          `json:"dropped"`
	Records []Record       `json:"records"`
}

func (r *Recorder) snapshotDoc(reason string) snapshot {
	doc := snapshot{
		Time:    time.Now(),
		Reason:  reason,
		Counts:  make(map[Kind]int64, len(kinds)),
		Dropped: r.Dropped(),
		Records: r.Records(),
	}
	for _, k := range kinds {
		doc.Counts[k] = r.Count(k)
	}
	return doc
}

// Handler serves the recorder's current contents as JSON — the
// /debug/flightrecorder endpoint.
func (r *Recorder) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.snapshotDoc(""))
	}
}

// WriteSnapshot writes the recorder's current contents to dir as a
// timestamped JSON file and returns the file path.
func (r *Recorder) WriteSnapshot(dir, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flightrec: %w", err)
	}
	doc := r.snapshotDoc(reason)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("flightrec: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flightrec-%d.json", doc.Time.UnixNano()))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("flightrec: %w", err)
	}
	return path, nil
}

// WatchConfig tunes the spike watcher.
type WatchConfig struct {
	// Dir is where snapshots land. Required.
	Dir string
	// Interval is the rate-sampling period (default 2s).
	Interval time.Duration
	// ShedPerSec / StalePerSec are the record rates (per second, averaged
	// over one interval) that trigger a snapshot. <= 0 disables that
	// trigger; defaults 5/s shed, 5/s stale.
	ShedPerSec  float64
	StalePerSec float64
	// MinGap rate-limits snapshots: at most one per MinGap (default 30s),
	// so a sustained storm leaves a handful of files, not thousands.
	MinGap time.Duration
	// OnSnapshot, when set, observes every written snapshot path (tests,
	// log lines). Write errors surface as an empty path with the error.
	OnSnapshot func(path string, err error)
}

func (c WatchConfig) withDefaults() WatchConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.ShedPerSec == 0 {
		c.ShedPerSec = 5
	}
	if c.StalePerSec == 0 {
		c.StalePerSec = 5
	}
	if c.MinGap <= 0 {
		c.MinGap = 30 * time.Second
	}
	return c
}

// Watch starts a background goroutine that samples the shed and
// stale-retry record rates every Interval and snapshots the ring to disk
// when either spikes, at most once per MinGap. The returned stop function
// terminates the watcher (idempotent) and blocks until it has exited.
func (r *Recorder) Watch(cfg WatchConfig) (stop func()) {
	cfg = cfg.withDefaults()
	done := make(chan struct{})
	exited := make(chan struct{})
	// Baseline the counters before returning, so records added right after
	// Watch returns count toward the first interval's rate.
	lastShed := r.Count(KindShed)
	lastStale := r.Count(KindStale)
	go func() {
		defer close(exited)
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		var lastSnap time.Time
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			shed, stale := r.Count(KindShed), r.Count(KindStale)
			secs := cfg.Interval.Seconds()
			shedRate := float64(shed-lastShed) / secs
			staleRate := float64(stale-lastStale) / secs
			lastShed, lastStale = shed, stale

			var reason string
			switch {
			case cfg.ShedPerSec > 0 && shedRate >= cfg.ShedPerSec:
				reason = fmt.Sprintf("shed rate %.1f/s >= %.1f/s", shedRate, cfg.ShedPerSec)
			case cfg.StalePerSec > 0 && staleRate >= cfg.StalePerSec:
				reason = fmt.Sprintf("stale-retry rate %.1f/s >= %.1f/s", staleRate, cfg.StalePerSec)
			default:
				continue
			}
			if now := time.Now(); now.Sub(lastSnap) >= cfg.MinGap {
				lastSnap = now
				path, err := r.WriteSnapshot(cfg.Dir, reason)
				if cfg.OnSnapshot != nil {
					cfg.OnSnapshot(path, err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
