package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := New(4)
	for i := 0; i < 6; i++ {
		r.Add(Record{Kind: KindSlow, Op: fmt.Sprintf("op-%d", i)})
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("len = %d, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("op-%d", i+2); rec.Op != want {
			t.Errorf("record %d: op %q, want %q", i, rec.Op, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	if r.Count(KindSlow) != 6 {
		t.Errorf("count(slow) = %d, want 6", r.Count(KindSlow))
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
}

func TestAddStampsTime(t *testing.T) {
	r := New(0)
	if len(r.buf) != DefaultCapacity {
		t.Fatalf("default capacity %d, want %d", len(r.buf), DefaultCapacity)
	}
	r.Add(Record{Kind: KindError, Err: "boom"})
	if recs := r.Records(); recs[0].Time.IsZero() {
		t.Fatal("Add did not stamp a zero Time")
	}
}

func TestHandlerJSON(t *testing.T) {
	r := New(8)
	r.Add(Record{Kind: KindSlow, Op: "getbatch", Tenant: "bravo", TraceID: "00000000deadbeef", DurMs: 12.5, Bytes: 4096, Generation: 3})
	r.Add(Record{Kind: KindShed, Op: "get", Tenant: "alpha"})

	w := httptest.NewRecorder()
	r.Handler()(w, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc struct {
		Counts  map[Kind]int64 `json:"counts"`
		Records []Record       `json:"records"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if len(doc.Records) != 2 || doc.Records[0].Op != "getbatch" || doc.Records[1].Kind != KindShed {
		t.Fatalf("records = %+v", doc.Records)
	}
	if doc.Counts[KindSlow] != 1 || doc.Counts[KindShed] != 1 || doc.Counts[KindError] != 0 {
		t.Fatalf("counts = %+v", doc.Counts)
	}
}

// TestConcurrentAddWhileServing is the -race hammer required by the issue:
// writers pound the ring while readers repeatedly fetch
// /debug/flightrecorder and Records().
func TestConcurrentAddWhileServing(t *testing.T) {
	r := New(64)
	const writers, readers, per = 4, 3, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(Record{
					Kind:   kinds[i%len(kinds)],
					Op:     "getbatch",
					Tenant: fmt.Sprintf("t%d", w),
					DurMs:  float64(i),
				})
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Handler()
			for i := 0; i < 200; i++ {
				rec := httptest.NewRecorder()
				h(rec, httptest.NewRequest("GET", "/debug/flightrecorder", nil))
				if !json.Valid(rec.Body.Bytes()) {
					t.Error("handler produced invalid JSON under concurrency")
					return
				}
				_ = r.Records()
				_ = r.Dropped()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, k := range kinds {
		total += r.Count(k)
	}
	if total != writers*per {
		t.Fatalf("counts sum to %d, want %d", total, writers*per)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", r.Len())
	}
}

func TestWriteSnapshot(t *testing.T) {
	dir := t.TempDir()
	r := New(8)
	r.Add(Record{Kind: KindStale, Op: "getbatch", Generation: 7})
	path, err := r.WriteSnapshot(dir, "test reason")
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason  string   `json:"reason"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("bad snapshot JSON: %v", err)
	}
	if doc.Reason != "test reason" || len(doc.Records) != 1 || doc.Records[0].Generation != 7 {
		t.Fatalf("snapshot = %+v", doc)
	}
	if !strings.HasPrefix(filepath.Base(path), "flightrec-") {
		t.Fatalf("unexpected snapshot name %q", path)
	}
}

func TestWatchSnapshotsOnShedSpike(t *testing.T) {
	dir := t.TempDir()
	r := New(32)
	snaps := make(chan string, 4)
	stop := r.Watch(WatchConfig{
		Dir:        dir,
		Interval:   20 * time.Millisecond,
		ShedPerSec: 10,
		MinGap:     time.Hour, // at most one snapshot in this test
		OnSnapshot: func(path string, err error) {
			if err != nil {
				t.Errorf("snapshot error: %v", err)
				return
			}
			select {
			case snaps <- path:
			default:
			}
		},
	})
	defer stop()

	// Well above 10 sheds/sec across a 20ms window.
	for i := 0; i < 50; i++ {
		r.Add(Record{Kind: KindShed, Op: "get"})
	}
	select {
	case path := <-snaps:
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("snapshot file missing: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no snapshot written after shed spike")
	}
	stop()
	stop() // idempotent
}

func TestWatchQuietBelowThreshold(t *testing.T) {
	dir := t.TempDir()
	r := New(8)
	fired := make(chan struct{}, 1)
	stop := r.Watch(WatchConfig{
		Dir:         dir,
		Interval:    10 * time.Millisecond,
		ShedPerSec:  1e9,
		StalePerSec: 1e9,
		OnSnapshot: func(string, error) {
			select {
			case fired <- struct{}{}:
			default:
			}
		},
	})
	r.Add(Record{Kind: KindShed})
	r.Add(Record{Kind: KindStale})
	time.Sleep(60 * time.Millisecond)
	stop()
	select {
	case <-fired:
		t.Fatal("watcher snapshotted below threshold")
	default:
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("unexpected snapshot files: %v", ents)
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != 1.5 {
		t.Fatalf("Ms = %v, want 1.5", got)
	}
}
