// Cluster telemetry aggregation: each epoch every rank serializes its
// profiler snapshot and gathers it to rank 0 over a cost-free collective,
// where it folds into a Fig. 7-style time-share table plus a per-epoch
// loading-time skew report that flags stragglers. The gather rides the
// same collectives the training loop already synchronizes on, but charges
// no modeled cost, so enabling telemetry never perturbs the virtual-time
// results the bench suite pins.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ddstore/internal/trace"
)

// Gatherer is the collective surface telemetry needs — satisfied
// structurally by *comm.Comm so obs does not import the comm package.
// GatherNoCost must synchronize all ranks without charging virtual time.
type Gatherer interface {
	Rank() int
	Size() int
	GatherNoCost(mine []byte, root int) ([][]byte, error)
}

// StragglerFactor flags a rank as a straggler when its per-epoch loading
// time exceeds this multiple of the epoch's mean.
const StragglerFactor = 1.5

// RegionSample is one region's accumulated state in a serialized snapshot.
type RegionSample struct {
	Name  string        `json:"name"`
	Total time.Duration `json:"total_ns"`
	Count int64         `json:"count"`
}

// rankSnapshot is the wire form of one rank's cumulative profiler state.
type rankSnapshot struct {
	Rank     int              `json:"rank"`
	Epoch    int              `json:"epoch"`
	Regions  []RegionSample   `json:"regions"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func snapshotProfiler(rank, epoch int, p *trace.Profiler) rankSnapshot {
	snap := rankSnapshot{Rank: rank, Epoch: epoch, Counters: p.Counters()}
	for _, r := range p.Regions() {
		snap.Regions = append(snap.Regions, RegionSample{Name: r.Name, Total: r.Total, Count: r.Count})
	}
	return snap
}

// Telemetry drives the per-epoch gathers on one rank. Every rank of a run
// constructs one over its own profiler and the shared communicator; rank 0
// additionally accumulates the cluster view and produces the Report.
type Telemetry struct {
	g    Gatherer
	prof *trace.Profiler

	// Root-only accumulation state.
	mu          sync.Mutex
	prevLoading []time.Duration // cumulative CPU-Loading per rank at the previous gather
	epochs      []EpochSkew
	latest      []rankSnapshot // most recent cumulative snapshot per rank
}

// NewTelemetry wires one rank's profiler to the communicator. prof may be
// nil only if GatherEpoch is never called.
func NewTelemetry(g Gatherer, prof *trace.Profiler) *Telemetry {
	return &Telemetry{g: g, prof: prof, prevLoading: make([]time.Duration, g.Size())}
}

// GatherEpoch serializes this rank's cumulative profiler state and gathers
// all ranks' snapshots to rank 0, which folds the epoch's loading-time
// deltas into the skew series. Collective: every rank must call it the
// same number of times. Call it right after the epoch barrier so the
// cost-free gather sees already-aligned clocks.
func (t *Telemetry) GatherEpoch(epoch int) error {
	b, err := json.Marshal(snapshotProfiler(t.g.Rank(), epoch, t.prof))
	if err != nil {
		return fmt.Errorf("obs: telemetry encode: %w", err)
	}
	all, err := t.g.GatherNoCost(b, 0)
	if err != nil {
		return fmt.Errorf("obs: telemetry gather: %w", err)
	}
	if t.g.Rank() != 0 {
		return nil
	}
	snaps := make([]rankSnapshot, len(all))
	for i, raw := range all {
		if err := json.Unmarshal(raw, &snaps[i]); err != nil {
			return fmt.Errorf("obs: telemetry decode rank %d: %w", i, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latest = snaps
	t.epochs = append(t.epochs, t.epochSkewLocked(epoch, snaps))
	return nil
}

// epochSkewLocked computes the loading-time skew of one epoch from the
// per-rank cumulative snapshots, updating prevLoading in place.
func (t *Telemetry) epochSkewLocked(epoch int, snaps []rankSnapshot) EpochSkew {
	sk := EpochSkew{Epoch: epoch, Region: trace.RegionLoading, MinRank: -1, MaxRank: -1}
	deltas := make([]time.Duration, len(snaps))
	var sum time.Duration
	for i, snap := range snaps {
		var cum time.Duration
		for _, r := range snap.Regions {
			if r.Name == trace.RegionLoading {
				cum = r.Total
				break
			}
		}
		d := cum - t.prevLoading[i]
		t.prevLoading[i] = cum
		deltas[i] = d
		sum += d
		if sk.MinRank < 0 || d < sk.Min {
			sk.Min, sk.MinRank = d, i
		}
		if sk.MaxRank < 0 || d > sk.Max {
			sk.Max, sk.MaxRank = d, i
		}
	}
	if len(deltas) > 0 {
		sk.Mean = sum / time.Duration(len(deltas))
	}
	if sk.Mean > 0 {
		for rank, d := range deltas {
			if float64(d) > StragglerFactor*float64(sk.Mean) {
				sk.Stragglers = append(sk.Stragglers, rank)
			}
		}
	}
	return sk
}

// Report folds the accumulated cluster state into a ClusterTelemetry.
// Returns nil on non-root ranks or before the first gather.
func (t *Telemetry) Report() *ClusterTelemetry {
	if t == nil || t.g.Rank() != 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.latest) == 0 {
		return nil
	}
	ct := &ClusterTelemetry{
		Ranks:  len(t.latest),
		Epochs: append([]EpochSkew(nil), t.epochs...),
	}

	// Per-rank cumulative profiles and the merged whole-cluster totals.
	merged := map[string]*ShareRow{}
	var order []string
	counters := map[string]int64{}
	for _, snap := range t.latest {
		rp := RankProfile{Rank: snap.Rank}
		for _, r := range snap.Regions {
			rp.Regions = append(rp.Regions, r)
			rp.Total += r.Total
			row, ok := merged[r.Name]
			if !ok {
				row = &ShareRow{Region: r.Name}
				merged[r.Name] = row
				order = append(order, r.Name)
			}
			row.Total += r.Total
			row.Count += r.Count
		}
		for name, v := range snap.Counters {
			counters[name] += v
		}
		ct.PerRank = append(ct.PerRank, rp)
	}
	var total time.Duration
	for _, name := range order {
		total += merged[name].Total
	}
	for _, name := range order {
		row := *merged[name]
		if total > 0 {
			row.Share = float64(row.Total) / float64(total)
		}
		ct.TimeShare = append(ct.TimeShare, row)
	}
	sort.Slice(ct.TimeShare, func(i, j int) bool { return ct.TimeShare[i].Total > ct.TimeShare[j].Total })
	if len(counters) > 0 {
		ct.Counters = counters
	}
	return ct
}

// ClusterTelemetry is the whole-run cluster view assembled on rank 0: the
// Fig. 7-style time-share table over all ranks, per-rank cumulative
// profiles, and the per-epoch loading-time skew series. It serializes into
// the bench JSON report.
type ClusterTelemetry struct {
	Ranks     int              `json:"ranks"`
	TimeShare []ShareRow       `json:"time_share"`
	PerRank   []RankProfile    `json:"per_rank"`
	Epochs    []EpochSkew      `json:"epochs,omitempty"`
	Counters  map[string]int64 `json:"counters,omitempty"`
}

// ShareRow is one region of the cluster-wide time-share table.
type ShareRow struct {
	Region string        `json:"region"`
	Total  time.Duration `json:"total_ns"`
	Count  int64         `json:"count"`
	Share  float64       `json:"share"`
}

// RankProfile is one rank's cumulative region profile.
type RankProfile struct {
	Rank    int            `json:"rank"`
	Regions []RegionSample `json:"regions"`
	Total   time.Duration  `json:"total_ns"`
}

// EpochSkew summarizes one epoch's per-rank loading-time spread.
type EpochSkew struct {
	Epoch      int           `json:"epoch"`
	Region     string        `json:"region"`
	Mean       time.Duration `json:"mean_ns"`
	Min        time.Duration `json:"min_ns"`
	Max        time.Duration `json:"max_ns"`
	MinRank    int           `json:"min_rank"`
	MaxRank    int           `json:"max_rank"`
	Stragglers []int         `json:"stragglers,omitempty"`
}

// String renders the cluster time-share table and the per-epoch skew
// series as the end-of-run report block.
func (ct *ClusterTelemetry) String() string {
	if ct == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster time-share (%d ranks)\n", ct.Ranks)
	fmt.Fprintf(&b, "  %-16s %14s %10s %7s\n", "region", "total", "count", "share")
	for _, row := range ct.TimeShare {
		fmt.Fprintf(&b, "  %-16s %14v %10d %6.1f%%\n",
			row.Region, row.Total.Round(time.Microsecond), row.Count, row.Share*100)
	}
	if len(ct.Epochs) > 0 {
		fmt.Fprintf(&b, "per-epoch %s skew (straggler > %.1fx mean)\n", ct.Epochs[0].Region, StragglerFactor)
		fmt.Fprintf(&b, "  %5s %12s %12s %6s %12s %6s %8s %s\n",
			"epoch", "mean", "min", "rank", "max", "rank", "max/mean", "stragglers")
		for _, e := range ct.Epochs {
			ratio := 0.0
			if e.Mean > 0 {
				ratio = float64(e.Max) / float64(e.Mean)
			}
			strag := "-"
			if len(e.Stragglers) > 0 {
				parts := make([]string, len(e.Stragglers))
				for i, r := range e.Stragglers {
					parts[i] = fmt.Sprintf("%d", r)
				}
				strag = strings.Join(parts, ",")
			}
			fmt.Fprintf(&b, "  %5d %12v %12v %6d %12v %6d %7.2fx %s\n",
				e.Epoch, e.Mean.Round(time.Microsecond), e.Min.Round(time.Microsecond), e.MinRank,
				e.Max.Round(time.Microsecond), e.MaxRank, ratio, strag)
		}
	}
	return b.String()
}
