package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Inc()
	c.Add(-3) // negative deltas are ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	c.Set(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Set: counter = %d, want 42", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{0.25, 0.5, 1})
	for _, v := range []float64{0.1, 0.25, 0.3, 0.75, 2} {
		h.Observe(v)
	}
	h.ObserveDuration(100 * time.Millisecond)
	cum, sum, total := h.snapshot()
	// 0.1, 0.25, 0.1s land <= 0.25; 0.3 <= 0.5; 0.75 <= 1; 2 overflows.
	want := []uint64{3, 4, 5, 6}
	for i, c := range cum {
		if c != want[i] {
			t.Fatalf("cum[%d] = %d, want %d (all: %v)", i, c, want[i], cum)
		}
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if math.Abs(sum-(0.1+0.25+0.3+0.75+2+0.1)) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0, 2, 4) did not panic")
		}
	}()
	ExpBuckets(0, 2, 4)
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge over counter name did not panic")
		}
	}()
	reg.Gauge("m")
}

func TestRegistryOddLabelsPanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label pairs did not panic")
		}
	}()
	reg.Counter("m", "key-without-value")
}

func TestRegistrySameSeriesSameInstrument(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ev", "event", "hits")
	b := reg.Counter("ev", "event", "hits")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("instrument not shared")
	}
	// Label order must not matter.
	g1 := reg.Gauge("g", "a", "1", "b", "2")
	g2 := reg.Gauge("g", "b", "2", "a", "1")
	if g1 != g2 {
		t.Fatal("label order changed series identity")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz").Add(1)
	reg.Counter("aa", "k", "2").Add(2)
	reg.Counter("aa", "k", "1").Add(1)
	snap := reg.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("counters = %d, want 3", len(snap.Counters))
	}
	if snap.Counters[0].Name != "aa" || snap.Counters[0].Labels[0].Value != "1" {
		t.Fatalf("order: %+v", snap.Counters)
	}
	if snap.Counters[2].Name != "zz" {
		t.Fatalf("order: %+v", snap.Counters)
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

func TestCollectorRunsOnSnapshot(t *testing.T) {
	reg := NewRegistry()
	n := 0
	reg.AddCollector(func() { n++; reg.Gauge("pull").Set(float64(n)) })
	reg.Snapshot()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("collector ran %d times, want 2", n)
	}
	if !strings.Contains(buf.String(), "pull 2") {
		t.Fatalf("exposition missing collector gauge:\n%s", buf.String())
	}
}

// TestRegistryConcurrent hammers Add/Inc/Set/Observe from many goroutines
// while snapshots and expositions run concurrently. Run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	sink := EventSink(reg)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := reg.Histogram(MetricFetchLatency, nil)
			for i := 0; i < perWorker; i++ {
				reg.Counter("hits", "worker", string(rune('a'+w))).Inc()
				reg.Gauge("level").Set(float64(i))
				reg.Gauge("accum").Add(1)
				h.Observe(float64(i) * 1e-6)
				sink.Inc("cache-hits", 1)
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reg.Snapshot()
				reg.WritePrometheus(&bytes.Buffer{})
			}
		}()
	}
	wg.Wait()

	var total int64
	for _, cp := range reg.Snapshot().Counters {
		if cp.Name == "hits" {
			total += cp.Value
		}
	}
	if total != workers*perWorker {
		t.Fatalf("hits total = %d, want %d", total, workers*perWorker)
	}
	if got := reg.Counter(MetricEvents, "event", "cache-hits").Value(); got != workers*perWorker {
		t.Fatalf("events total = %d, want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("accum").Value(); got != workers*perWorker {
		t.Fatalf("accum gauge = %v, want %d", got, workers*perWorker)
	}
	if got := reg.Histogram(MetricFetchLatency, nil).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestPrometheusGolden pins the exact text exposition format against a
// golden file (regenerate with go test ./internal/obs -run Golden -update).
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ddstore_events_total", "event", "cache-hits").Add(3)
	reg.Counter("ddstore_events_total", "event", "net-retries").Add(1)
	reg.Help("ddstore_events_total", "DDStore event counts.")
	reg.Gauge("ddstore_cache_bytes").Set(1.5e6)
	reg.Help("ddstore_cache_bytes", "Resident hot-sample cache bytes.")
	h := reg.Histogram("ddstore_fetch_latency_seconds", []float64{0.25, 0.5, 1})
	reg.Help("ddstore_fetch_latency_seconds", "Per-sample fetch latency.")
	h.Observe(0.125)
	h.Observe(0.375)
	h.Observe(2)
	reg.Gauge("ddstore_quantile", "quantile", "0.99", "plane", `tcp"w2\`).Set(0.0625)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
