package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	FetchLatencyHistogram(reg).Observe(0.001)
	EventSink(reg).Inc("cache-hits", 2)
	sink := NewTraceSink(8)
	sink.NewRing("train", 0).Record(Span{Name: "load-batch", Cat: "train", Dur: time.Millisecond})

	srv, err := StartDebug("127.0.0.1:0", reg, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE ddstore_fetch_latency_seconds histogram",
		"ddstore_fetch_latency_seconds_count 1",
		`ddstore_events_total{event="cache-hits"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	var tr chromeTrace
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatalf("/trace not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("/trace has no events")
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestDebugServerNoTraceSink(t *testing.T) {
	srv, err := StartDebug("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("/trace without sink: %d, want 404", code)
	}
}

func TestStartDebugBadAddr(t *testing.T) {
	if _, err := StartDebug("256.256.256.256:1", NewRegistry(), nil); err == nil {
		t.Fatal("bad addr did not error")
	}
}
