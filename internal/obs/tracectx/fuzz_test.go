package tracectx

import (
	"bytes"
	"testing"
)

// FuzzDecode pins the frame path's safety contract: Decode must never
// panic, must reject anything that is not a well-formed context, and must
// round-trip exactly what it accepts. Mutated, truncated, and hostile
// inputs therefore silently disable tracing instead of failing requests.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(make([]byte, Size))
	f.Add(New(true).Encode())
	f.Add(New(false).Encode())
	f.Add(bytes.Repeat([]byte{0xff}, Size))
	f.Add(bytes.Repeat([]byte{0xff}, Size+7))
	f.Add([]byte{Version})

	f.Fuzz(func(t *testing.T, b []byte) {
		c, ok := Decode(b) // must not panic, whatever b holds
		if !ok {
			if c != (Context{}) {
				t.Fatalf("rejected input returned non-zero context %+v", c)
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("Decode accepted an invalid context %+v", c)
		}
		// Accepted contexts re-encode to a block Decode accepts identically.
		again, ok2 := Decode(c.Encode())
		if !ok2 || again != c {
			t.Fatalf("re-encode round trip: got %+v ok=%v want %+v", again, ok2, c)
		}
	})
}
