package tracectx

import (
	"bytes"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	c := New(true)
	if !c.Valid() {
		t.Fatal("New returned an invalid context")
	}
	enc := c.Encode()
	if len(enc) != Size {
		t.Fatalf("encoded length %d, want %d", len(enc), Size)
	}
	got, ok := Decode(enc)
	if !ok {
		t.Fatal("Decode rejected a freshly encoded context")
	}
	if got != c {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, c)
	}

	c2 := New(false)
	got2, ok := Decode(c2.Encode())
	if !ok || got2.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got2, ok)
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	c := New(true)
	body := append(c.Encode(), []byte{1, 2, 3, 4, 5, 6, 7, 8}...)
	got, ok := Decode(body)
	if !ok || got != c {
		t.Fatalf("Decode with trailing bytes: got %+v ok=%v", got, ok)
	}
}

func TestDecodeRejects(t *testing.T) {
	c := New(true)
	enc := c.Encode()

	cases := map[string][]byte{
		"nil":           nil,
		"empty":         {},
		"short":         enc[:Size-1],
		"bad version":   append([]byte{99}, enc[1:]...),
		"zero trace id": make([]byte, Size),
	}
	// A zero trace ID with a valid version byte must also be rejected.
	zeroed := append([]byte(nil), enc...)
	for i := 4; i < 12; i++ {
		zeroed[i] = 0
	}
	cases["zeroed trace id"] = zeroed

	for name, b := range cases {
		if got, ok := Decode(b); ok {
			t.Errorf("%s: Decode accepted %v as %+v", name, b, got)
		}
	}
}

func TestChild(t *testing.T) {
	root := New(true)
	ch := root.Child()
	if ch.TraceID != root.TraceID {
		t.Fatalf("child trace id %x, want %x", ch.TraceID, root.TraceID)
	}
	if ch.SpanID == root.SpanID {
		t.Fatal("child span id equals parent span id")
	}
	if !ch.Sampled {
		t.Fatal("child lost the sampled flag")
	}
	if (Context{}).Child().Valid() {
		t.Fatal("child of the zero context should be invalid")
	}
}

func TestAppendTo(t *testing.T) {
	c := New(true)
	prefix := []byte("hdr")
	out := c.AppendTo(append([]byte(nil), prefix...))
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("AppendTo clobbered the prefix")
	}
	got, ok := Decode(out[3:])
	if !ok || got != c {
		t.Fatalf("AppendTo round trip: got %+v ok=%v", got, ok)
	}
}

func TestConcurrentIDsAreDistinct(t *testing.T) {
	const workers, per = 8, 1000
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, 2*per)
			for i := 0; i < per; i++ {
				c := New(true)
				local = append(local, c.TraceID, c.SpanID)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if id == 0 {
					t.Error("generated a zero id")
				}
				if seen[id] {
					t.Errorf("duplicate id %x", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestStrings(t *testing.T) {
	if (Context{}).String() != "tracectx(none)" {
		t.Fatalf("zero context string: %q", (Context{}).String())
	}
	if IDString(0) != "" {
		t.Fatalf("IDString(0) = %q, want empty", IDString(0))
	}
	if s := IDString(0xdeadbeef); len(s) != 16 {
		t.Fatalf("IDString length %d, want 16", len(s))
	}
}
