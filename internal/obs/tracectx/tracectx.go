// Package tracectx defines the compact binary trace context DDStore
// propagates across process boundaries: a 24-byte block carrying a trace
// ID, a parent span ID, and a sampled flag. The TCP data plane prepends it
// to traced request bodies (transport's OpGetTraced/OpGetBatchTraced), the
// fetch engine stamps a fresh child span ID onto every per-owner fan-out,
// and the DDP load loop mints the root context per batch — so one request
// is causally linkable from the training step that asked for it down to
// the owner that served it.
//
// Wire layout (little-endian, 24 bytes):
//
//	[0]      version (currently 1)
//	[1]      flags (bit 0 = sampled)
//	[2:4]    reserved, must be zero on encode, ignored on decode
//	[4:12]   trace ID  (u64, non-zero for a valid context)
//	[12:20]  span ID   (u64)
//	[20:24]  reserved, must be zero on encode, ignored on decode
//
// Decode is defensive by contract: corrupt, truncated, or future-versioned
// contexts decode to (Context{}, false) and MUST be ignored by the frame
// path — a bad trace context never fails a request, it only disables
// tracing for it. The fuzz test pins that property.
package tracectx

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// Size is the encoded byte length of a Context.
const Size = 24

// Version is the wire version this package encodes.
const Version = 1

// flagSampled marks a context whose request should record spans.
const flagSampled = 1 << 0

// Context identifies one request's position in a distributed trace. The
// zero Context is "no trace" (Valid reports false).
type Context struct {
	// TraceID identifies the whole request tree; zero means no trace.
	TraceID uint64
	// SpanID identifies the sender's span — the parent of whatever span
	// the receiver opens for this request.
	SpanID uint64
	// Sampled carries the sampling decision made at the root: receivers
	// record spans and return timing trailers only for sampled contexts.
	Sampled bool
}

// Valid reports whether the context carries a trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Encode renders the context into its 24-byte wire form.
func (c Context) Encode() []byte {
	return c.AppendTo(make([]byte, 0, Size))
}

// AppendTo appends the 24-byte wire form to dst and returns the extended
// slice — the allocation-free path for request assembly.
func (c Context) AppendTo(dst []byte) []byte {
	var b [Size]byte
	b[0] = Version
	if c.Sampled {
		b[1] |= flagSampled
	}
	binary.LittleEndian.PutUint64(b[4:], c.TraceID)
	binary.LittleEndian.PutUint64(b[12:], c.SpanID)
	return append(dst, b[:]...)
}

// Decode parses a context from the first Size bytes of b. It returns
// ok=false — and never panics — for short input, an unknown version, or a
// zero trace ID; callers treat that as "tracing off for this request".
// Bytes beyond Size are ignored, so a request body can carry the context
// as a prefix.
func Decode(b []byte) (Context, bool) {
	if len(b) < Size {
		return Context{}, false
	}
	if b[0] != Version {
		return Context{}, false
	}
	c := Context{
		TraceID: binary.LittleEndian.Uint64(b[4:]),
		SpanID:  binary.LittleEndian.Uint64(b[12:]),
		Sampled: b[1]&flagSampled != 0,
	}
	if c.TraceID == 0 {
		return Context{}, false
	}
	return c, true
}

// seq drives ID generation: a process-unique base mixed with a counter
// through splitmix64, so concurrent New/Child calls are cheap (one atomic
// add) and collisions across processes are as unlikely as 64 random bits
// allow.
var seq atomic.Uint64

func init() {
	seq.Store(uint64(time.Now().UnixNano()))
}

// mix64 is the splitmix64 finalizer — a full-avalanche mixer, so
// consecutive counter values map to well-spread IDs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newID returns a fresh non-zero 64-bit ID.
func newID() uint64 {
	for {
		if id := mix64(seq.Add(1)); id != 0 {
			return id
		}
	}
}

// New mints a root context: a fresh trace ID, a fresh root span ID, and
// the sampled flag set per the argument.
func New(sampled bool) Context {
	return Context{TraceID: newID(), SpanID: newID(), Sampled: sampled}
}

// Child derives the context for an outgoing sub-request: same trace, a
// fresh span ID (the child's identity; the parent's is what c carried).
// Child of an invalid context is invalid.
func (c Context) Child() Context {
	if !c.Valid() {
		return Context{}
	}
	return Context{TraceID: c.TraceID, SpanID: newID(), Sampled: c.Sampled}
}

// String renders the context for logs and flight-recorder records.
func (c Context) String() string {
	if !c.Valid() {
		return "tracectx(none)"
	}
	return fmt.Sprintf("%016x/%016x", c.TraceID, c.SpanID)
}

// IDString renders a bare trace or span ID the way traces and the flight
// recorder expose them (16 hex digits), with "" for zero.
func IDString(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}
