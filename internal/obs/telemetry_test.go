package obs

import (
	"strings"
	"testing"
	"time"

	"ddstore/internal/trace"
)

// fakeGather is an in-process stand-in for comm's cost-free gather: every
// rank deposits into a shared slot array; the root (called last in these
// tests) reads the full set.
type fakeGather struct {
	rank, size int
	slots      *[][]byte
}

func newFakeWorld(size int) []*fakeGather {
	slots := make([][]byte, size)
	out := make([]*fakeGather, size)
	for i := range out {
		out[i] = &fakeGather{rank: i, size: size, slots: &slots}
	}
	return out
}

func (f *fakeGather) Rank() int { return f.rank }
func (f *fakeGather) Size() int { return f.size }
func (f *fakeGather) GatherNoCost(mine []byte, root int) ([][]byte, error) {
	(*f.slots)[f.rank] = append([]byte(nil), mine...)
	if f.rank == root {
		return *f.slots, nil
	}
	return nil, nil
}

// gatherAll runs one telemetry epoch across the fake world, root last so
// its read sees every deposit.
func gatherAll(t *testing.T, tels []*Telemetry, epoch int) {
	t.Helper()
	for i := len(tels) - 1; i >= 0; i-- {
		if err := tels[i].GatherEpoch(epoch); err != nil {
			t.Fatalf("rank %d epoch %d: %v", i, epoch, err)
		}
	}
}

func TestTelemetrySkewAndStragglers(t *testing.T) {
	const ranks = 4
	world := newFakeWorld(ranks)
	profs := make([]*trace.Profiler, ranks)
	tels := make([]*Telemetry, ranks)
	for i := range profs {
		profs[i] = trace.New()
		tels[i] = NewTelemetry(world[i], profs[i])
	}

	// Epoch 0: rank 3 is a straggler (10x the others' loading time).
	for i := 0; i < ranks; i++ {
		d := 100 * time.Millisecond
		if i == 3 {
			d = time.Second
		}
		profs[i].Add(trace.RegionLoading, d)
		profs[i].Add(trace.RegionForward, 50*time.Millisecond)
	}
	gatherAll(t, tels, 0)

	// Epoch 1: even loading; the skew must be computed on per-epoch deltas,
	// not cumulative totals, so rank 3 is no longer flagged.
	for i := 0; i < ranks; i++ {
		profs[i].Add(trace.RegionLoading, 200*time.Millisecond)
		profs[i].Add(trace.RegionForward, 50*time.Millisecond)
	}
	gatherAll(t, tels, 1)

	for i := 1; i < ranks; i++ {
		if tels[i].Report() != nil {
			t.Fatalf("rank %d produced a report; only root should", i)
		}
	}
	ct := tels[0].Report()
	if ct == nil {
		t.Fatal("root report is nil")
	}
	if ct.Ranks != ranks || len(ct.Epochs) != 2 || len(ct.PerRank) != ranks {
		t.Fatalf("shape: ranks=%d epochs=%d perRank=%d", ct.Ranks, len(ct.Epochs), len(ct.PerRank))
	}

	e0 := ct.Epochs[0]
	if e0.MaxRank != 3 || e0.Max != time.Second {
		t.Fatalf("epoch 0 max: rank=%d dur=%v", e0.MaxRank, e0.Max)
	}
	if e0.Min != 100*time.Millisecond {
		t.Fatalf("epoch 0 min = %v", e0.Min)
	}
	if want := 325 * time.Millisecond; e0.Mean != want {
		t.Fatalf("epoch 0 mean = %v, want %v", e0.Mean, want)
	}
	if len(e0.Stragglers) != 1 || e0.Stragglers[0] != 3 {
		t.Fatalf("epoch 0 stragglers = %v, want [3]", e0.Stragglers)
	}

	e1 := ct.Epochs[1]
	if e1.Mean != 200*time.Millisecond || e1.Min != 200*time.Millisecond || e1.Max != 200*time.Millisecond {
		t.Fatalf("epoch 1 deltas not even: %+v", e1)
	}
	if len(e1.Stragglers) != 0 {
		t.Fatalf("epoch 1 stragglers = %v, want none", e1.Stragglers)
	}

	// Time-share table: loading dominates and shares sum to ~1.
	if ct.TimeShare[0].Region != trace.RegionLoading {
		t.Fatalf("largest region = %q, want %q", ct.TimeShare[0].Region, trace.RegionLoading)
	}
	var shareSum float64
	for _, row := range ct.TimeShare {
		shareSum += row.Share
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Fatalf("shares sum to %v", shareSum)
	}
	// Cumulative loading over both epochs: 3*300ms + 1200ms = 2.1s.
	if want := 2100 * time.Millisecond; ct.TimeShare[0].Total != want {
		t.Fatalf("loading total = %v, want %v", ct.TimeShare[0].Total, want)
	}
}

func TestTelemetryCountersAggregate(t *testing.T) {
	world := newFakeWorld(2)
	var tels []*Telemetry
	for i := 0; i < 2; i++ {
		p := trace.New()
		p.Add(trace.RegionLoading, time.Millisecond)
		p.Inc("net-retries", int64(i+1))
		tels = append(tels, NewTelemetry(world[i], p))
	}
	gatherAll(t, tels, 0)
	ct := tels[0].Report()
	if ct.Counters["net-retries"] != 3 {
		t.Fatalf("net-retries = %d, want 3", ct.Counters["net-retries"])
	}
}

func TestTelemetryString(t *testing.T) {
	world := newFakeWorld(2)
	var tels []*Telemetry
	for i := 0; i < 2; i++ {
		p := trace.New()
		p.Add(trace.RegionLoading, time.Duration(i+1)*100*time.Millisecond)
		p.Add(trace.RegionForward, 20*time.Millisecond)
		tels = append(tels, NewTelemetry(world[i], p))
	}
	gatherAll(t, tels, 0)
	s := tels[0].Report().String()
	for _, want := range []string{"cluster time-share (2 ranks)", trace.RegionLoading, "skew", "max/mean"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	var nilCT *ClusterTelemetry
	if nilCT.String() != "" {
		t.Fatal("nil report must render empty")
	}
}

func TestTelemetryReportBeforeGather(t *testing.T) {
	world := newFakeWorld(1)
	tel := NewTelemetry(world[0], trace.New())
	if tel.Report() != nil {
		t.Fatal("report before any gather must be nil")
	}
	var nilTel *Telemetry
	if nilTel.Report() != nil {
		t.Fatal("nil telemetry must report nil")
	}
}
