package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	p := New()
	p.Add(RegionLoading, 5*time.Millisecond)
	p.Add(RegionLoading, 3*time.Millisecond)
	p.Add(RegionForward, 2*time.Millisecond)
	r := p.Get(RegionLoading)
	if r.Total != 8*time.Millisecond || r.Count != 2 {
		t.Fatalf("loading region: %+v", r)
	}
	if got := p.Get("absent"); got.Total != 0 || got.Count != 0 {
		t.Fatalf("absent region: %+v", got)
	}
	if p.Total() != 10*time.Millisecond {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestShare(t *testing.T) {
	p := New()
	if p.Share(RegionLoading) != 0 {
		t.Fatal("empty profiler share not 0")
	}
	p.Add(RegionLoading, 67*time.Millisecond)
	p.Add(RegionForward, 33*time.Millisecond)
	if s := p.Share(RegionLoading); s < 0.669 || s > 0.671 {
		t.Fatalf("Share = %v, want 0.67", s)
	}
}

func TestSamplesRetention(t *testing.T) {
	p := NewSampling()
	p.Add(RegionRMA, time.Millisecond)
	p.Add(RegionRMA, 2*time.Millisecond)
	if got := p.Samples(RegionRMA); len(got) != 2 || got[1] != 2*time.Millisecond {
		t.Fatalf("Samples = %v", got)
	}
	plain := New()
	plain.Add(RegionRMA, time.Millisecond)
	if got := plain.Samples(RegionRMA); got != nil {
		t.Fatalf("non-sampling profiler retained samples: %v", got)
	}
	if got := p.Samples("absent"); got != nil {
		t.Fatal("absent region returned samples")
	}
}

func TestMerge(t *testing.T) {
	a := NewSampling()
	a.Add(RegionLoading, time.Millisecond)
	b := NewSampling()
	b.Add(RegionLoading, 2*time.Millisecond)
	b.Add(RegionComm, 4*time.Millisecond)
	a.Merge(b)
	if r := a.Get(RegionLoading); r.Total != 3*time.Millisecond || r.Count != 2 {
		t.Fatalf("merged loading: %+v", r)
	}
	if r := a.Get(RegionComm); r.Total != 4*time.Millisecond {
		t.Fatalf("merged comm: %+v", r)
	}
	if len(a.Samples(RegionLoading)) != 2 {
		t.Fatal("merge dropped samples")
	}
}

func TestRegionsOrder(t *testing.T) {
	p := New()
	p.Add("z", 1)
	p.Add("a", 1)
	p.Add("z", 1)
	regions := p.Regions()
	if len(regions) != 2 || regions[0].Name != "z" || regions[1].Name != "a" {
		t.Fatalf("Regions = %+v", regions)
	}
}

func TestString(t *testing.T) {
	p := New()
	p.Add(RegionLoading, 10*time.Millisecond)
	p.Add(RegionForward, 30*time.Millisecond)
	s := p.String()
	if !strings.Contains(s, RegionLoading) || !strings.Contains(s, RegionForward) {
		t.Fatalf("String missing regions:\n%s", s)
	}
	// Largest first.
	if strings.Index(s, RegionForward) > strings.Index(s, RegionLoading) {
		t.Fatalf("String not sorted by total:\n%s", s)
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	p := NewSampling()
	p.MaxSamples = 100
	for i := 0; i < 10000; i++ {
		p.Add(RegionLoading, time.Duration(i+1)*time.Microsecond)
	}
	got := p.Samples(RegionLoading)
	if len(got) != 100 {
		t.Fatalf("reservoir size = %d, want 100", len(got))
	}
	if r := p.Get(RegionLoading); r.Count != 10000 {
		t.Fatalf("Count = %d (capping samples must not cap counts)", r.Count)
	}
	// The reservoir is a uniform sample of the 1µs..10000µs ramp: its mean
	// must sit near the stream mean (~5000µs), not near either end, which
	// is what a keep-first or keep-last policy would produce.
	var sum time.Duration
	for _, d := range got {
		sum += d
	}
	mean := sum / time.Duration(len(got))
	if mean < 3500*time.Microsecond || mean > 6500*time.Microsecond {
		t.Fatalf("reservoir mean = %v, want ~5000µs (biased retention?)", mean)
	}
}

func TestReservoirDefaultCap(t *testing.T) {
	p := NewSampling()
	for i := 0; i < DefaultMaxSamples+500; i++ {
		p.Add(RegionRMA, time.Microsecond)
	}
	if got := len(p.Samples(RegionRMA)); got != DefaultMaxSamples {
		t.Fatalf("default reservoir size = %d, want %d", got, DefaultMaxSamples)
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	p := NewSampling()
	p.Add(RegionRMA, time.Millisecond)
	s1 := p.Samples(RegionRMA)
	s1[0] = 42 * time.Hour
	if got := p.Samples(RegionRMA); got[0] != time.Millisecond {
		t.Fatal("Samples returned the live backing array")
	}
	r := p.Get(RegionRMA)
	r.Samples[0] = 42 * time.Hour
	if got := p.Samples(RegionRMA); got[0] != time.Millisecond {
		t.Fatal("Get returned the live backing array")
	}
}

func TestMergeRespectsReservoirCap(t *testing.T) {
	a := NewSampling()
	a.MaxSamples = 64
	b := NewSampling()
	b.MaxSamples = 64
	// a: 1000 fast observations; b: 1000 slow ones. The merged reservoir
	// must stay capped and draw from both streams.
	for i := 0; i < 1000; i++ {
		a.Add(RegionLoading, time.Microsecond)
		b.Add(RegionLoading, time.Second)
	}
	a.Merge(b)
	got := a.Samples(RegionLoading)
	if len(got) != 64 {
		t.Fatalf("merged reservoir size = %d, want 64", len(got))
	}
	var fast, slow int
	for _, d := range got {
		if d == time.Microsecond {
			fast++
		} else if d == time.Second {
			slow++
		} else {
			t.Fatalf("foreign sample %v", d)
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("merge lost a stream: fast=%d slow=%d", fast, slow)
	}
	if r := a.Get(RegionLoading); r.Count != 2000 {
		t.Fatalf("merged Count = %d, want 2000", r.Count)
	}
}

func TestMergeSmallStaysExact(t *testing.T) {
	a := NewSampling()
	b := NewSampling()
	a.Add(RegionLoading, time.Millisecond)
	b.Add(RegionLoading, 2*time.Millisecond)
	b.Add(RegionLoading, 3*time.Millisecond)
	a.Merge(b)
	if got := len(a.Samples(RegionLoading)); got != 3 {
		t.Fatalf("small merge not exact: %d samples", got)
	}
}

func TestMergeCounters(t *testing.T) {
	a := New()
	a.Inc("net-retries", 2)
	b := New()
	b.Inc("net-retries", 3)
	b.Inc("net-failovers", 1)
	a.Merge(b)
	if a.Counter("net-retries") != 5 || a.Counter("net-failovers") != 1 {
		t.Fatalf("merged counters: %v", a.Counters())
	}
}

// TestProfilerConcurrent exercises Add/Inc/Merge/Samples/Regions from many
// goroutines; run under -race in CI. The reservoir overwrites samples in
// place, so any shared-slice escape shows up here.
func TestProfilerConcurrent(t *testing.T) {
	p := NewSampling()
	p.MaxSamples = 32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			other := NewSampling()
			other.MaxSamples = 32
			for i := 0; i < 500; i++ {
				p.Add(RegionLoading, time.Duration(i)*time.Microsecond)
				p.Inc("events", 1)
				other.Add(RegionLoading, time.Microsecond)
				if i%100 == 99 {
					p.Merge(other)
				}
				_ = p.Samples(RegionLoading)
				_ = p.Regions()
				_ = p.String()
			}
		}(w)
	}
	wg.Wait()
	if got := p.Counter("events"); got != 2000 {
		t.Fatalf("events = %d, want 2000", got)
	}
	// 4 workers * (500 adds + 5 merges * growing other)... just assert the
	// reservoir stayed capped and counts are the exact stream length.
	if got := len(p.Samples(RegionLoading)); got != 32 {
		t.Fatalf("reservoir = %d, want 32", got)
	}
	wantCount := int64(4 * (500 + 100 + 200 + 300 + 400 + 500))
	if r := p.Get(RegionLoading); r.Count != wantCount {
		t.Fatalf("Count = %d, want %d", r.Count, wantCount)
	}
}
