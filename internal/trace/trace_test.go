package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndGet(t *testing.T) {
	p := New()
	p.Add(RegionLoading, 5*time.Millisecond)
	p.Add(RegionLoading, 3*time.Millisecond)
	p.Add(RegionForward, 2*time.Millisecond)
	r := p.Get(RegionLoading)
	if r.Total != 8*time.Millisecond || r.Count != 2 {
		t.Fatalf("loading region: %+v", r)
	}
	if got := p.Get("absent"); got.Total != 0 || got.Count != 0 {
		t.Fatalf("absent region: %+v", got)
	}
	if p.Total() != 10*time.Millisecond {
		t.Fatalf("Total = %v", p.Total())
	}
}

func TestShare(t *testing.T) {
	p := New()
	if p.Share(RegionLoading) != 0 {
		t.Fatal("empty profiler share not 0")
	}
	p.Add(RegionLoading, 67*time.Millisecond)
	p.Add(RegionForward, 33*time.Millisecond)
	if s := p.Share(RegionLoading); s < 0.669 || s > 0.671 {
		t.Fatalf("Share = %v, want 0.67", s)
	}
}

func TestSamplesRetention(t *testing.T) {
	p := NewSampling()
	p.Add(RegionRMA, time.Millisecond)
	p.Add(RegionRMA, 2*time.Millisecond)
	if got := p.Samples(RegionRMA); len(got) != 2 || got[1] != 2*time.Millisecond {
		t.Fatalf("Samples = %v", got)
	}
	plain := New()
	plain.Add(RegionRMA, time.Millisecond)
	if got := plain.Samples(RegionRMA); got != nil {
		t.Fatalf("non-sampling profiler retained samples: %v", got)
	}
	if got := p.Samples("absent"); got != nil {
		t.Fatal("absent region returned samples")
	}
}

func TestMerge(t *testing.T) {
	a := NewSampling()
	a.Add(RegionLoading, time.Millisecond)
	b := NewSampling()
	b.Add(RegionLoading, 2*time.Millisecond)
	b.Add(RegionComm, 4*time.Millisecond)
	a.Merge(b)
	if r := a.Get(RegionLoading); r.Total != 3*time.Millisecond || r.Count != 2 {
		t.Fatalf("merged loading: %+v", r)
	}
	if r := a.Get(RegionComm); r.Total != 4*time.Millisecond {
		t.Fatalf("merged comm: %+v", r)
	}
	if len(a.Samples(RegionLoading)) != 2 {
		t.Fatal("merge dropped samples")
	}
}

func TestRegionsOrder(t *testing.T) {
	p := New()
	p.Add("z", 1)
	p.Add("a", 1)
	p.Add("z", 1)
	regions := p.Regions()
	if len(regions) != 2 || regions[0].Name != "z" || regions[1].Name != "a" {
		t.Fatalf("Regions = %+v", regions)
	}
}

func TestString(t *testing.T) {
	p := New()
	p.Add(RegionLoading, 10*time.Millisecond)
	p.Add(RegionForward, 30*time.Millisecond)
	s := p.String()
	if !strings.Contains(s, RegionLoading) || !strings.Contains(s, RegionForward) {
		t.Fatalf("String missing regions:\n%s", s)
	}
	// Largest first.
	if strings.Index(s, RegionForward) > strings.Index(s, RegionLoading) {
		t.Fatalf("String not sorted by total:\n%s", s)
	}
}
