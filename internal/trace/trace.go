// Package trace is a lightweight region profiler in the spirit of Score-P:
// named regions accumulate virtual-time durations and counts, and can retain
// raw samples for latency CDFs. One Profiler per rank; profiles merge for
// whole-run reports (the paper's Fig. 7 time-share breakdown).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Standard region names used by the DDP training loop, matching the paper's
// breakdown figures.
const (
	RegionLoading   = "CPU-Loading"
	RegionBatching  = "CPU-Batching"
	RegionForward   = "GPU-Forward"
	RegionBackward  = "GPU-Backward"
	RegionComm      = "GPU-Comm"
	RegionOptimizer = "Optimizer"
	RegionRMA       = "MPI-RMA"
	RegionPreload   = "Preload"
	RegionOther     = "Other"
)

// Profiler accumulates per-region timing plus named event counters (the
// resilience events of the TCP data plane: retries, failovers, timeouts).
// All methods are safe for concurrent use — network callbacks record into
// the profiler from multiple goroutines.
type Profiler struct {
	mu       sync.Mutex
	regions  map[string]*Region
	order    []string
	counters map[string]int64
	corder   []string
	rng      *rand.Rand
	// KeepSamples enables raw-sample retention (for CDFs). Off by default to
	// bound memory.
	KeepSamples bool
	// MaxSamples caps the per-region sample buffer (0 means
	// DefaultMaxSamples). Once a region exceeds the cap, retention switches
	// to uniform reservoir sampling over the region's whole stream, so
	// percentile estimates stay valid while memory stays constant.
	MaxSamples int
}

// DefaultMaxSamples is the per-region reservoir size when MaxSamples is 0:
// large enough that p99 over the reservoir tracks p99 over the stream to
// well under a percentile point, small enough that a week-long run holds a
// few hundred KiB of samples per region.
const DefaultMaxSamples = 8192

// Region is the accumulated timing of one named region.
type Region struct {
	Name    string
	Total   time.Duration
	Count   int64
	Samples []time.Duration // only if KeepSamples; reservoir, unordered past the cap
	// sampleStream is the number of observations the reservoir represents
	// (== Count for regions fed only by Add; tracked separately so Merge can
	// weight two reservoirs correctly).
	sampleStream int64
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{regions: make(map[string]*Region), counters: make(map[string]int64)}
}

// NewSampling returns a profiler that retains raw samples.
func NewSampling() *Profiler {
	p := New()
	p.KeepSamples = true
	return p
}

func (p *Profiler) region(name string) *Region {
	r, ok := p.regions[name]
	if !ok {
		r = &Region{Name: name}
		p.regions[name] = r
		p.order = append(p.order, name)
	}
	return r
}

func (p *Profiler) maxSamples() int {
	if p.MaxSamples > 0 {
		return p.MaxSamples
	}
	return DefaultMaxSamples
}

// rand returns the profiler's reservoir rng, created lazily under p.mu.
// Seeded deterministically so runs with identical streams retain identical
// reservoirs.
func (p *Profiler) rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(0x5eed))
	}
	return p.rng
}

// Add records one occurrence of a region taking d. With KeepSamples on,
// the first MaxSamples observations are retained verbatim; past the cap,
// Algorithm R reservoir sampling keeps a uniform sample of the whole
// stream, so memory is bounded and percentile estimates stay unbiased.
func (p *Profiler) Add(name string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := p.region(name)
	r.Total += d
	r.Count++
	if p.KeepSamples {
		r.sampleStream++
		max := p.maxSamples()
		if len(r.Samples) < max {
			r.Samples = append(r.Samples, d)
		} else if j := p.rand().Int63n(r.sampleStream); j < int64(max) {
			r.Samples[j] = d
		}
	}
}

// Inc adds delta to a named event counter. It satisfies the data plane's
// transport.Counters interface, so one profiler carries both the paper's
// region timings and the resilience counters of a run.
func (p *Profiler) Inc(name string, delta int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.counters[name]; !ok {
		p.corder = append(p.corder, name)
	}
	p.counters[name] += delta
}

// Counter returns the value of a named event counter (0 if absent).
func (p *Profiler) Counter(name string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[name]
}

// Counters returns a copy of all event counters.
func (p *Profiler) Counters() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.counters))
	for k, v := range p.counters {
		out[k] = v
	}
	return out
}

// copyRegion snapshots a region, cloning the sample reservoir — the live
// reservoir is overwritten in place past the cap, so handing out the
// shared backing array would race with concurrent Adds.
func copyRegion(r *Region) Region {
	out := *r
	if r.Samples != nil {
		out.Samples = append([]time.Duration(nil), r.Samples...)
	}
	return out
}

// Get returns the region's accumulated state (zero Region if absent).
func (p *Profiler) Get(name string) Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[name]; ok {
		return copyRegion(r)
	}
	return Region{Name: name}
}

// Samples returns a copy of the retained samples of a region. Past
// MaxSamples the samples are a uniform reservoir of the stream, in no
// particular order.
func (p *Profiler) Samples(name string) []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.regions[name]; ok && r.Samples != nil {
		return append([]time.Duration(nil), r.Samples...)
	}
	return nil
}

// Total returns the sum over all regions.
func (p *Profiler) Total() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total()
}

func (p *Profiler) total() time.Duration {
	var t time.Duration
	for _, r := range p.regions {
		t += r.Total
	}
	return t
}

// Share returns a region's fraction of the profiler total (0 if empty).
func (p *Profiler) Share(name string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.total()
	if total == 0 {
		return 0
	}
	if r, ok := p.regions[name]; ok {
		return float64(r.Total) / float64(total)
	}
	return 0
}

// Merge accumulates other into p (used to fold per-rank profiles into a
// whole-run profile).
func (p *Profiler) Merge(other *Profiler) {
	other.mu.Lock()
	names := append([]string(nil), other.order...)
	regions := make([]Region, 0, len(names))
	for _, name := range names {
		regions = append(regions, copyRegion(other.regions[name]))
	}
	cnames := append([]string(nil), other.corder...)
	counts := make([]int64, 0, len(cnames))
	for _, name := range cnames {
		counts = append(counts, other.counters[name])
	}
	other.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	for i, name := range names {
		dst := p.region(name)
		dst.Total += regions[i].Total
		dst.Count += regions[i].Count
		if p.KeepSamples {
			p.mergeSamples(dst, regions[i])
		}
	}
	for i, name := range cnames {
		if _, ok := p.counters[name]; !ok {
			p.corder = append(p.corder, name)
		}
		p.counters[name] += counts[i]
	}
}

// mergeSamples folds src's sample reservoir into dst's under p.mu. When
// the combined samples fit the cap they concatenate; otherwise a weighted
// reservoir merge (A-Res: key u^(1/w), weight = represented stream length
// per retained sample) keeps the top MaxSamples, so a sample from a
// heavily subsampled reservoir correctly outweighs one retained verbatim.
func (p *Profiler) mergeSamples(dst *Region, src Region) {
	defer func() { dst.sampleStream += src.sampleStream }()
	if len(src.Samples) == 0 {
		return
	}
	max := p.maxSamples()
	if len(dst.Samples)+len(src.Samples) <= max {
		dst.Samples = append(dst.Samples, src.Samples...)
		return
	}
	type keyed struct {
		d   time.Duration
		key float64
	}
	rng := p.rand()
	all := make([]keyed, 0, len(dst.Samples)+len(src.Samples))
	weigh := func(samples []time.Duration, stream int64) {
		if len(samples) == 0 {
			return
		}
		w := float64(stream) / float64(len(samples))
		if w < 1 {
			w = 1
		}
		for _, d := range samples {
			all = append(all, keyed{d: d, key: math.Pow(rng.Float64(), 1/w)})
		}
	}
	weigh(dst.Samples, dst.sampleStream)
	weigh(src.Samples, src.sampleStream)
	sort.Slice(all, func(i, j int) bool { return all[i].key > all[j].key })
	out := make([]time.Duration, max)
	for i := range out {
		out[i] = all[i].d
	}
	dst.Samples = out
}

// Regions returns all regions in first-use order (samples copied).
func (p *Profiler) Regions() []Region {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Region, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, copyRegion(p.regions[name]))
	}
	return out
}

// String renders a table of regions sorted by total time, largest first.
func (p *Profiler) String() string {
	regions := p.Regions()
	sort.Slice(regions, func(i, j int) bool { return regions[i].Total > regions[j].Total })
	total := p.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %7s\n", "region", "total", "count", "share")
	for _, r := range regions {
		share := 0.0
		if total > 0 {
			share = float64(r.Total) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-16s %12v %10d %6.1f%%\n", r.Name, r.Total.Round(time.Microsecond), r.Count, share)
	}
	p.mu.Lock()
	cnames := append([]string(nil), p.corder...)
	counts := make([]int64, 0, len(cnames))
	for _, name := range cnames {
		counts = append(counts, p.counters[name])
	}
	p.mu.Unlock()
	for i, name := range cnames {
		fmt.Fprintf(&b, "%-16s %12s %10d\n", name, "-", counts[i])
	}
	return b.String()
}
