// Package trace is a lightweight region profiler in the spirit of Score-P:
// named regions accumulate virtual-time durations and counts, and can retain
// raw samples for latency CDFs. One Profiler per rank; profiles merge for
// whole-run reports (the paper's Fig. 7 time-share breakdown).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Standard region names used by the DDP training loop, matching the paper's
// breakdown figures.
const (
	RegionLoading   = "CPU-Loading"
	RegionBatching  = "CPU-Batching"
	RegionForward   = "GPU-Forward"
	RegionBackward  = "GPU-Backward"
	RegionComm      = "GPU-Comm"
	RegionOptimizer = "Optimizer"
	RegionRMA       = "MPI-RMA"
	RegionPreload   = "Preload"
	RegionOther     = "Other"
)

// Profiler accumulates per-region timing.
type Profiler struct {
	regions map[string]*Region
	order   []string
	// KeepSamples enables raw-sample retention (for CDFs). Off by default to
	// bound memory.
	KeepSamples bool
}

// Region is the accumulated timing of one named region.
type Region struct {
	Name    string
	Total   time.Duration
	Count   int64
	Samples []time.Duration // only if KeepSamples
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{regions: make(map[string]*Region)}
}

// NewSampling returns a profiler that retains raw samples.
func NewSampling() *Profiler {
	p := New()
	p.KeepSamples = true
	return p
}

func (p *Profiler) region(name string) *Region {
	r, ok := p.regions[name]
	if !ok {
		r = &Region{Name: name}
		p.regions[name] = r
		p.order = append(p.order, name)
	}
	return r
}

// Add records one occurrence of a region taking d.
func (p *Profiler) Add(name string, d time.Duration) {
	r := p.region(name)
	r.Total += d
	r.Count++
	if p.KeepSamples {
		r.Samples = append(r.Samples, d)
	}
}

// Get returns the region's accumulated state (zero Region if absent).
func (p *Profiler) Get(name string) Region {
	if r, ok := p.regions[name]; ok {
		return *r
	}
	return Region{Name: name}
}

// Samples returns the retained samples of a region.
func (p *Profiler) Samples(name string) []time.Duration {
	if r, ok := p.regions[name]; ok {
		return r.Samples
	}
	return nil
}

// Total returns the sum over all regions.
func (p *Profiler) Total() time.Duration {
	var t time.Duration
	for _, r := range p.regions {
		t += r.Total
	}
	return t
}

// Share returns a region's fraction of the profiler total (0 if empty).
func (p *Profiler) Share(name string) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	return float64(p.Get(name).Total) / float64(total)
}

// Merge accumulates other into p (used to fold per-rank profiles into a
// whole-run profile).
func (p *Profiler) Merge(other *Profiler) {
	for _, name := range other.order {
		r := other.regions[name]
		dst := p.region(name)
		dst.Total += r.Total
		dst.Count += r.Count
		if p.KeepSamples {
			dst.Samples = append(dst.Samples, r.Samples...)
		}
	}
}

// Regions returns all regions in first-use order.
func (p *Profiler) Regions() []Region {
	out := make([]Region, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.regions[name])
	}
	return out
}

// String renders a table of regions sorted by total time, largest first.
func (p *Profiler) String() string {
	regions := p.Regions()
	sort.Slice(regions, func(i, j int) bool { return regions[i].Total > regions[j].Total })
	total := p.Total()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %10s %7s\n", "region", "total", "count", "share")
	for _, r := range regions {
		share := 0.0
		if total > 0 {
			share = float64(r.Total) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-16s %12v %10d %6.1f%%\n", r.Name, r.Total.Round(time.Microsecond), r.Count, share)
	}
	return b.String()
}
