package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// IsolationConfig describes the two-tenant isolation sweep: tenant A is
// driven alone at a polite rate (the baseline), then driven again at the
// same rate while a hostile tenant B offers traffic far beyond its
// server-side quota. A front end that isolates tenants keeps A's tail
// latency near its baseline and sheds B's excess instead of collapsing.
type IsolationConfig struct {
	// Addrs / MetricsURL / Seed / Policy / Dialer / Registry mirror the
	// corresponding Config fields.
	Addrs      []string
	MetricsURL string
	Seed       uint64
	Policy     transport.RetryPolicy
	Dialer     transport.DialFunc
	Registry   *obs.Registry

	// TenantA is the polite tenant; TenantB the hostile one.
	TenantA, TenantB string
	// QPSA is A's offered rate, which should fit inside A's quota.
	// QPSB is B's offered rate — set it well past B's quota (the ISSUE's
	// chaos bar drives B at 4× its budget).
	QPSA, QPSB float64
	// Duration bounds each of the two stages (default 3s).
	Duration time.Duration
	// Workers is the per-tenant worker count (default 4).
	Workers int
	// MixB is the hostile tenant's bulk-batch fraction (B models a
	// training job; A stays all-interactive lookups).
	MixB float64
}

// IsolationResult holds the three measured views of the sweep. P99Ratio
// is Contended.P99ms / Baseline.P99ms — the isolation guarantee is that
// it stays small (the ISSUE pins ≤ 2×) even while Hostile.Shed is large.
type IsolationResult struct {
	Baseline  PhaseResult `json:"baseline"`  // A alone
	Contended PhaseResult `json:"contended"` // A while B hammers
	Hostile   PhaseResult `json:"hostile"`   // B's own view of the same window
	P99Ratio  float64     `json:"p99_ratio"`
}

// RunIsolation executes the sweep: stage one runs A alone, stage two
// runs A and B concurrently (separate client pools, so each tenant's
// hello identity rides its own connections).
func RunIsolation(ctx context.Context, cfg IsolationConfig) (*IsolationResult, error) {
	if cfg.TenantA == "" || cfg.TenantB == "" || cfg.TenantA == cfg.TenantB {
		return nil, fmt.Errorf("loadgen: isolation sweep needs two distinct tenants (got %q, %q)", cfg.TenantA, cfg.TenantB)
	}
	if cfg.QPSA <= 0 || cfg.QPSB <= 0 {
		return nil, fmt.Errorf("loadgen: isolation sweep needs positive QPS for both tenants")
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 3 * time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	runOne := func(ctx context.Context, tenant, phase string, qps, mix float64, seedOff uint64) (*Result, error) {
		return Run(ctx, Config{
			Addrs:      cfg.Addrs,
			Seed:       seed + seedOff,
			Policy:     cfg.Policy,
			Dialer:     cfg.Dialer,
			MetricsURL: cfg.MetricsURL,
			Registry:   cfg.Registry,
			Tenant:     tenant,
			Phases: []Phase{{
				Name: phase, Mode: Open, Workers: workers,
				TargetQPS: qps, Duration: dur, Mix: mix,
			}},
		})
	}

	out := &IsolationResult{}

	// Stage 1: tenant A alone — the isolated baseline.
	base, err := runOne(ctx, cfg.TenantA, cfg.TenantA+"-alone", cfg.QPSA, 0, 0)
	if err != nil {
		return nil, err
	}
	out.Baseline = base.Phases[0]

	// Stage 2: A at the same polite rate while B floods. Two Run
	// invocations share the wall clock but nothing else.
	var wg sync.WaitGroup
	var resA, resB *Result
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		resA, errA = runOne(ctx, cfg.TenantA, cfg.TenantA+"-contended", cfg.QPSA, 0, 1)
	}()
	go func() {
		defer wg.Done()
		resB, errB = runOne(ctx, cfg.TenantB, cfg.TenantB+"-hostile", cfg.QPSB, cfg.MixB, 2)
	}()
	wg.Wait()
	if errA != nil {
		return nil, errA
	}
	if errB != nil {
		return nil, errB
	}
	out.Contended = resA.Phases[0]
	out.Hostile = resB.Phases[0]
	if out.Baseline.P99ms > 0 {
		out.P99Ratio = out.Contended.P99ms / out.Baseline.P99ms
	}
	return out, nil
}
