package loadgen

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/obs"
	"ddstore/internal/serveboot"
	"ddstore/internal/transport"
)

// waitGoroutines retries until the process is back to at most want
// goroutines — servers, workers, and HTTP connections need a few
// scheduler rounds to unwind after Close.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still running, want <= %d\n%s", n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkOrdering asserts the percentile invariants of one phase.
func checkOrdering(t *testing.T, ph PhaseResult) {
	t.Helper()
	if ph.P50ms <= 0 {
		t.Errorf("%s: p50 %.4f ms, want > 0", ph.Name, ph.P50ms)
	}
	if !(ph.P50ms <= ph.P95ms && ph.P95ms <= ph.P99ms && ph.P99ms <= ph.MaxMs) {
		t.Errorf("%s: percentile ordering violated: p50=%.4f p95=%.4f p99=%.4f max=%.4f",
			ph.Name, ph.P50ms, ph.P95ms, ph.P99ms, ph.MaxMs)
	}
}

// TestEndToEndLoopback is the headline e2e: boot ddstore-serve in-process,
// run the quick sweep (closed cold, closed warm, open loop) against it
// over real TCP, and check the harness's accounting — deterministic
// request counts, non-zero achieved QPS, ordered percentiles, a server
// metrics scrape per phase, warm-phase cache hits, and zero leaked
// goroutines after shutdown.
func TestEndToEndLoopback(t *testing.T) {
	before := runtime.NumGoroutine()

	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 300})
	inst, err := serveboot.Boot(serveboot.Config{
		Source: ds, Lo: 0, Hi: 300,
		CacheBytes: 8 << 20, WriteTimeout: 5 * time.Second,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg := Config{
		Addrs:      []string{inst.Addr()},
		Seed:       42,
		Phases:     Sweep(SweepOptions{Quick: true, Clients: 4, Mix: 0.25, ColdStart: inst.ResetCache}),
		MetricsURL: inst.MetricsURL(),
		Registry:   reg,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("%d phases, want 3 (closed-cold, closed-warm, open)", len(res.Phases))
	}

	for _, ph := range res.Phases {
		if ph.Errors != 0 {
			t.Errorf("%s: %d errors against a healthy server", ph.Name, ph.Errors)
		}
		if ph.AchievedQPS <= 0 {
			t.Errorf("%s: achieved QPS %.2f, want > 0", ph.Name, ph.AchievedQPS)
		}
		if ph.Samples <= 0 || ph.Bytes <= 0 {
			t.Errorf("%s: samples=%d bytes=%d, want > 0", ph.Name, ph.Samples, ph.Bytes)
		}
		checkOrdering(t, ph)
		if len(ph.Server) == 0 {
			t.Errorf("%s: no server metrics scraped", ph.Name)
		}
	}

	cold, warm, open := res.Phases[0], res.Phases[1], res.Phases[2]
	// Deterministic closed-loop quick mode: exactly QuickClosedRequests
	// requests per closed phase, all accounted for.
	for _, ph := range []PhaseResult{cold, warm} {
		if ph.Mode != string(Closed) {
			t.Errorf("%s: mode %q, want closed", ph.Name, ph.Mode)
		}
		if ph.Requests != QuickClosedRequests {
			t.Errorf("%s: %d requests, want exactly %d", ph.Name, ph.Requests, QuickClosedRequests)
		}
	}
	if open.Mode != string(Open) {
		t.Errorf("%s: mode %q, want open", open.Name, open.Mode)
	}
	if open.TargetQPS <= 0 {
		t.Errorf("open phase lost its target QPS")
	}

	// The warm phase rides the cold phase's cache fill: the server must
	// report cache hits by the time the warm scrape happens.
	hits := warm.Server[`ddstore_events_total{event="cache-hits"}`]
	if hits <= 0 {
		t.Errorf("warm-phase scrape shows no cache hits (scrape: %v)", warm.Server)
	}
	if got := warm.Server[`ddstore_serve_requests_total{op="get"}`] +
		warm.Server[`ddstore_serve_requests_total{op="getbatch"}`]; got <= 0 {
		t.Errorf("warm-phase scrape shows no served requests")
	}

	// The in-flight gauge must be back to zero once Run returns.
	if v := obs.LoadgenWorkersGauge(reg).Value(); v != 0 {
		t.Errorf("in-flight worker gauge = %v after run, want 0", v)
	}
	// Client-pool reuse across phases: 3 phases × 4 workers against one
	// server must not cost 12 dials.
	if res.Pool.Dials == 0 || res.Pool.Reuses == 0 {
		t.Errorf("pool stats %+v: want both dials and reuses > 0", res.Pool)
	}
	if res.Pool.Dials > 5 { // 4 workers + the meta probe
		t.Errorf("pool dialed %d times for 4 workers, connections are not being reused", res.Pool.Dials)
	}

	// Report and artifact render without error and carry every phase.
	rep := res.Report()
	if len(rep.Rows) != 3 {
		t.Errorf("report has %d rows, want 3", len(rep.Rows))
	}
	if !strings.Contains(rep.String(), "closed-cold-c4") {
		t.Errorf("report table missing phase name:\n%s", rep.String())
	}
	art := res.Artifact("e2e test")
	if art.Schema != ArtifactSchema || art.Kind != "loadgen" || len(art.Phases) != 3 {
		t.Errorf("artifact schema=%d kind=%q phases=%d", art.Schema, art.Kind, len(art.Phases))
	}
	if _, err := art.JSON(); err != nil {
		t.Errorf("artifact JSON: %v", err)
	}

	inst.Close()
	waitGoroutines(t, before)
}

// TestRunDrainsOnCancel cancels mid-phase and checks the harness drains
// cleanly: Run returns promptly with context.Canceled, the partial result
// is usable, and no worker or dispatcher goroutines leak.
func TestRunDrainsOnCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 100})
	inst, err := serveboot.Boot(serveboot.Config{Source: ds, Lo: 0, Hi: 100})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		Addrs: []string{inst.Addr()},
		Phases: []Phase{
			{Name: "open-long", Mode: Open, Workers: 3, TargetQPS: 500, Duration: time.Hour},
			{Name: "never-runs", Mode: Closed, Workers: 2, MaxRequests: 10},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v to drain", elapsed)
	}
	if res == nil {
		t.Fatal("no partial result on cancel")
	}
	// The cancelled phase still reports what it measured before the cut.
	if len(res.Phases) != 1 {
		t.Fatalf("%d phases in partial result, want 1 (the cancelled one)", len(res.Phases))
	}
	if res.Phases[0].Requests == 0 {
		t.Error("cancelled phase recorded no requests in 150ms at 500 QPS")
	}

	inst.Close()
	waitGoroutines(t, before)
}

// TestRunValidation rejects malformed configs up front.
func TestRunValidation(t *testing.T) {
	valid := Phase{Name: "ok", Mode: Closed, Workers: 1, MaxRequests: 1}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no addrs", Config{Phases: []Phase{valid}}},
		{"no phases", Config{Addrs: []string{"x"}}},
		{"open without qps", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: Open, Workers: 1, Duration: time.Second}}}},
		{"open without duration", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: Open, Workers: 1, TargetQPS: 10}}}},
		{"closed without bound", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: Closed, Workers: 1}}}},
		{"zero workers", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: Closed, MaxRequests: 1}}}},
		{"bad mix", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: Closed, Workers: 1, MaxRequests: 1, Mix: 1.5}}}},
		{"bad mode", Config{Addrs: []string{"x"}, Phases: []Phase{{Mode: "burst", Workers: 1}}}},
	}
	for _, tc := range cases {
		if _, err := Run(context.Background(), tc.cfg); err == nil {
			t.Errorf("%s: Run accepted the config", tc.name)
		}
	}
}

// TestMultiServerSpread drives two servers covering disjoint ranges and
// checks both see traffic — the cluster path of the harness.
func TestMultiServerSpread(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	a, err := serveboot.Boot(serveboot.Config{Source: ds, Lo: 0, Hi: 100, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := serveboot.Boot(serveboot.Config{Source: ds, Lo: 100, Hi: 200, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	res, err := Run(context.Background(), Config{
		Addrs: []string{a.Addr(), b.Addr()},
		Seed:  7,
		Phases: []Phase{
			{Name: "closed", Mode: Closed, Workers: 4, MaxRequests: 200, Mix: 0.5, BatchSize: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Requests != 200 || ph.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 200/0", ph.Requests, ph.Errors)
	}
	for name, url := range map[string]string{"a": a.MetricsURL(), "b": b.MetricsURL()} {
		m, err := ScrapeMetrics(url)
		if err != nil {
			t.Fatalf("scrape %s: %v", name, err)
		}
		served := m[`ddstore_serve_requests_total{op="get"}`] + m[`ddstore_serve_requests_total{op="getbatch"}`]
		if served <= 0 {
			t.Errorf("server %s saw no traffic", name)
		}
	}
}

// TestPoolReuseAcrossRuns shares one pool-backed config across two runs
// implicitly via transport.ClientPool inside Run; here we verify the
// pool primitive itself against a live server.
func TestPoolReuseAcrossRuns(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	inst, err := serveboot.Boot(serveboot.Config{Source: ds, Lo: 0, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	pool := transport.NewClientPool(transport.ClientOptions{})
	defer pool.Close()
	c1, err := pool.Get(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(c1)
	c2, err := pool.Get(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("pool dialed a fresh client with one idle")
	}
	if _, err := c2.Get(3); err != nil {
		t.Fatalf("pooled client get: %v", err)
	}
	pool.Put(c2)
	if st := pool.Stats(); st.Dials != 1 || st.Reuses != 1 {
		t.Errorf("pool stats %+v, want 1 dial / 1 reuse", st)
	}
}

// TestIsolationSweep is the chaos-backed isolation proof from the PR's
// acceptance bar: with the serving front end enabled, hostile tenant
// beta offers 4x its quota while polite tenant alpha stays inside its
// own budget. Alpha must ride through untouched — zero sheds, zero
// errors, p99 near its isolated baseline — while beta's excess is shed
// with the overloaded status and counted in both the loadgen artifact
// and the server's per-tenant metrics.
func TestIsolationSweep(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 256})
	inst, err := serveboot.Boot(serveboot.Config{
		Source: ds, Lo: 0, Hi: 256, WriteTimeout: time.Second,
		DebugAddr: "127.0.0.1:0",
		Tenants:   "alpha:rate=2000,burst=200;beta:rate=100,burst=20",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	res, err := RunIsolation(context.Background(), IsolationConfig{
		Addrs:      []string{inst.Addr()},
		MetricsURL: inst.MetricsURL(),
		TenantA:    "alpha", TenantB: "beta",
		QPSA: 150, QPSB: 400, // beta offers 4x its 100/s quota
		Duration: 1200 * time.Millisecond,
		Workers:  4,
		Policy:   transport.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The polite tenant is untouched by the hostile one.
	if res.Baseline.Errors != 0 || res.Contended.Errors != 0 {
		t.Errorf("alpha saw errors: baseline %d, contended %d", res.Baseline.Errors, res.Contended.Errors)
	}
	if res.Contended.Shed != 0 {
		t.Errorf("alpha was shed %d times while inside its quota", res.Contended.Shed)
	}
	// Tail-latency isolation: contended p99 within 2x the isolated
	// baseline, with a small absolute floor so loopback microsecond
	// noise cannot flake the ratio.
	if limit := 2 * res.Baseline.P99ms; res.Contended.P99ms > limit && res.Contended.P99ms > 5.0 {
		t.Errorf("alpha p99 %.3fms under contention, isolated baseline %.3fms (limit 2x)",
			res.Contended.P99ms, res.Baseline.P99ms)
	}

	// The hostile tenant's excess was shed, not served and not errored.
	if res.Hostile.Shed == 0 {
		t.Error("beta at 4x quota recorded no sheds")
	}
	if res.Hostile.Errors != 0 {
		t.Errorf("beta saw %d hard errors; overload must shed, not break", res.Hostile.Errors)
	}
	served := res.Hostile.Requests - res.Hostile.Shed - res.Hostile.Errors
	if perSec := float64(served) / res.Hostile.DurationS; perSec > 250 {
		t.Errorf("beta got %.0f successful requests/s, quota is 100/s", perSec)
	}

	// The server's per-tenant metrics counted beta's sheds.
	var counted float64
	for name, v := range res.Hostile.Server {
		if strings.Contains(name, "ddstore_tenant_shed_total") && strings.Contains(name, "beta") {
			counted += v
		}
	}
	if counted == 0 {
		t.Error("/metrics shows no ddstore_tenant_shed_total for beta")
	}

	if res.P99Ratio <= 0 {
		t.Errorf("P99Ratio = %g, want > 0", res.P99Ratio)
	}
}
