package loadgen

import (
	"context"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/serveboot"
	"ddstore/internal/transport"
)

// TestFaultMixReportsRetriesAndStallLatency runs the load generator
// against a serve instance wrapped in faultnet stalls and resets, and
// checks the harness reports — rather than hides — the damage: retry and
// reconnect counts surface in the phase result, every issued request is
// accounted for as success or error, and the p99 latency reflects the
// injected 15ms stalls.
func TestFaultMixReportsRetriesAndStallLatency(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	inst, err := serveboot.Boot(serveboot.Config{
		Source: ds, Lo: 0, Hi: 200,
		WriteTimeout: 5 * time.Second,
		Chaos: &faultnet.Scenario{
			Seed:      99,
			StallProb: 0.3, StallFor: 15 * time.Millisecond,
			ResetProb: 0.02,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	const reqs = 300
	res, err := Run(context.Background(), Config{
		Addrs: []string{inst.Addr()},
		Seed:  5,
		Phases: []Phase{
			{Name: "faulty-closed", Mode: Closed, Workers: 4, MaxRequests: reqs, Mix: 0.2, BatchSize: 4},
		},
		Policy: transport.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]

	// Accounting must be exact under faults: every ticket ends as a
	// success latency sample or a counted error — nothing vanishes.
	if ph.Requests != reqs {
		t.Errorf("requests=%d, want exactly %d (successes+errors)", ph.Requests, reqs)
	}
	// Injected connection resets force client retries/reconnects; a
	// harness that swallowed them would report zero here.
	if ph.Retries == 0 {
		t.Errorf("retries=0 under %g reset probability; the harness is hiding transport retries", 0.02)
	}
	if ph.Reconnects == 0 {
		t.Errorf("reconnects=0 under injected resets")
	}
	// 30% stall probability per I/O op means well over 1% of requests eat
	// at least one 15ms stall: p99 must sit at or above the stall.
	if ph.P99ms < 15 {
		t.Errorf("p99=%.3fms under injected 15ms stalls, want >= 15ms", ph.P99ms)
	}
	checkOrdering(t, ph)

	// The injector itself must have fired, or the assertions above prove
	// nothing about fault reporting.
	st, ok := inst.FaultStats()
	if !ok {
		t.Fatal("instance reports no injector")
	}
	if st.Stalls == 0 {
		t.Errorf("injector stalled nothing (stats %+v); raise MaxRequests or StallProb", st)
	}
}

// TestFaultGiveUpsSurfaceAsErrors drives a server so hostile that some
// requests exhaust every retry, and checks those surface as phase errors
// and give-ups instead of disappearing.
func TestFaultGiveUpsSurfaceAsErrors(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 100})
	inst, err := serveboot.Boot(serveboot.Config{
		Source: ds, Lo: 0, Hi: 100,
		Chaos: &faultnet.Scenario{Seed: 3, ResetProb: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	const reqs = 120
	res, err := Run(context.Background(), Config{
		Addrs: []string{inst.Addr()},
		// Explicit range: with 50% resets even the Meta discovery probe
		// would be a coin flip.
		Lo: 0, Hi: 100,
		Phases: []Phase{
			{Name: "hostile", Mode: Closed, Workers: 4, MaxRequests: reqs},
		},
		Policy: transport.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Requests != reqs {
		t.Errorf("requests=%d, want exactly %d", ph.Requests, reqs)
	}
	if ph.Errors == 0 {
		t.Errorf("errors=0 with 50%% resets and 2 attempts; failures are being hidden")
	}
	if ph.GiveUps == 0 {
		t.Errorf("giveups=0 with errors=%d; counter plumbing is broken", ph.Errors)
	}
	if ph.Errors+int64(0) > 0 && ph.AchievedQPS < 0 {
		t.Errorf("achieved QPS went negative")
	}
}
