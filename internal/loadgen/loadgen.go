// Package loadgen is the closed-loop load generator and latency harness
// for a live ddstore-serve cluster: N concurrent workers drive the real
// TCP data plane in open-loop (fixed-QPS token bucket, measuring
// queue-induced latency) or closed-loop (back-to-back, measuring maximum
// sustainable throughput) phases, with a configurable mix of single
// OpGet lookups vs OpGetBatch bulk fetches to model interactive vs
// training traffic.
//
// A run is a sequence of Phases — concurrency or QPS ramps, warm vs cold
// cache passes — each producing a PhaseResult with p50/p95/p99/max
// latency, achieved QPS, error/retry counts, and bytes moved, plus an
// optional scrape of the server's /metrics endpoint. Results render as a
// bench.Report table or a versioned JSON artifact diffable across PRs
// (see report.go).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ddstore/internal/bufarena"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/obs/tracectx"
	"ddstore/internal/stats"
	"ddstore/internal/transport"
)

// Mode selects how a phase paces its requests.
type Mode string

const (
	// Open paces requests at a fixed target QPS with a token bucket;
	// latency is measured from the token's scheduled issue time, so a
	// server that cannot keep up shows queue-induced latency growth —
	// the honest open-loop number coordinated-omission hides.
	Open Mode = "open"
	// Closed issues requests back to back from every worker; throughput
	// is bounded by server capacity and round-trip time.
	Closed Mode = "closed"
)

// Phase is one step of a load run.
type Phase struct {
	// Name labels the phase in tables and artifacts ("closed-cold-c8").
	Name string
	// Mode is Open or Closed.
	Mode Mode
	// Workers is the number of concurrent client workers.
	Workers int
	// TargetQPS is the token-bucket rate for Open phases.
	TargetQPS float64
	// Duration bounds the phase's wall clock. For Closed phases with
	// MaxRequests it is a safety cap (0 = none).
	Duration time.Duration
	// MaxRequests, for Closed phases, issues exactly this many requests
	// and stops — the deterministic quick mode.
	MaxRequests int64
	// Mix is the fraction of requests issued as OpGetBatch bulk fetches
	// (0 = all single OpGet lookups, 1 = all batches).
	Mix float64
	// BatchSize is the ids per batch request (default 8).
	BatchSize int
	// Seed, when non-zero, pins this phase's request stream instead of
	// deriving it from the phase index. A warm phase that shares its cold
	// partner's seed (and worker count) replays the exact same id
	// sequence, so warm-vs-cold isolates the server cache.
	Seed uint64
	// Before, if set, runs just before the phase starts — the hook a
	// harness uses to reset server caches for a cold phase. Not part of
	// the artifact.
	Before func()
}

// Config describes a full load run against one or more live servers.
type Config struct {
	// Addrs are the ddstore-serve endpoints to drive. Each worker draws a
	// target uniformly per request, so load spreads across the cluster.
	Addrs []string
	// Seed makes the id streams reproducible (0 = 1).
	Seed uint64
	// Lo, Hi, when Hi > Lo, give the id range served by every addr and
	// skip the startup Meta probes — the knob for driving a cluster so
	// faulty that even discovery round trips may fail.
	Lo, Hi int64
	// Phases run in order.
	Phases []Phase
	// Policy is the per-client retry/deadline policy (zero = defaults).
	Policy transport.RetryPolicy
	// Dialer overrides the TCP dialer — the faultnet seam (nil = TCP).
	Dialer transport.DialFunc
	// MetricsURL, when set, is scraped after every phase and the
	// ddstore_* families attached to the PhaseResult.
	MetricsURL string
	// Registry, when set, carries the in-flight worker gauge
	// (obs.MetricLoadgenInFlight) while phases run.
	Registry *obs.Registry
	// Tenant, when set, is declared to the server on every connection
	// (the hello frame), so a front-end-enabled server charges this
	// run's traffic to that tenant's budget.
	Tenant string
	// Elastic routes every request through one shared elastic
	// transport.Group bootstrapped from Addrs instead of per-address
	// pooled clients: ownership follows the cluster's live shard map, so
	// a mid-run reshard costs the workers a stale-generation refresh
	// round trip instead of hard errors. The id range comes from the
	// bootstrapped map (Lo/Hi still override it), and Meta probes are
	// skipped.
	Elastic bool
	// Trace opens a sampled distributed trace per request: clients
	// negotiate tracing at hello, every request carries a fresh root
	// context over the wire, and the servers' timing trailers come back
	// as merged "server" spans (see TraceSpans). Slowest exemplars in the
	// artifact then carry trace ids, so a tail-latency outlier in
	// BENCH_*.json links straight to its spans in the Chrome trace.
	Trace bool
	// TraceSpans, when non-nil with Trace set, receives the client root
	// span of every traced request plus the synthesized server segments —
	// the ring behind ddstore-bench's -trace-out merged Chrome trace.
	TraceSpans *obs.SpanRing
}

// PhaseResult is the measured outcome of one phase. Field names and types
// are pinned by the artifact golden test: BENCH_*.json files must stay
// comparable across PRs, so additions are fine but renames are not.
type PhaseResult struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	TargetQPS float64 `json:"target_qps,omitempty"`
	BatchMix  float64 `json:"batch_mix"`
	BatchSize int     `json:"batch_size,omitempty"`
	DurationS float64 `json:"duration_s"`
	Requests  int64   `json:"requests"`
	Samples   int64   `json:"samples"`
	Errors    int64   `json:"errors"`
	// Tenant is the identity this run declared; Shed counts requests the
	// server refused with the overloaded status (admission control working
	// as intended — kept distinct from Errors, which mean breakage).
	Tenant     string `json:"tenant,omitempty"`
	Shed       int64  `json:"shed,omitempty"`
	Retries    int64  `json:"retries"`
	Reconnects int64  `json:"reconnects"`
	GiveUps    int64  `json:"giveups"`
	// StaleRetries counts requests that were re-routed after a
	// stale-generation answer installed a newer shard map — the elastic
	// mode's "the chunk moved under you" events, which cost one extra
	// round trip each but are not errors.
	StaleRetries int64   `json:"stale_retries,omitempty"`
	Dropped      int64   `json:"dropped_tokens,omitempty"`
	Bytes        int64   `json:"bytes"`
	AchievedQPS  float64 `json:"achieved_qps"`
	SamplesPerS  float64 `json:"samples_per_s"`
	P50ms        float64 `json:"p50_ms"`
	P95ms        float64 `json:"p95_ms"`
	P99ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	// Server holds the post-phase /metrics scrape (ddstore_* families),
	// keyed by series name including labels.
	Server map[string]float64 `json:"server_metrics,omitempty"`
	// Slowest holds the phase's worst-latency exemplars (up to
	// slowestPerPhase, worst first). With Config.Trace each carries its
	// trace id and the server's reported service time, so the artifact's
	// tail links straight to spans in the merged Chrome trace.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest is one tail-latency exemplar in a phase artifact.
type SlowRequest struct {
	LatencyMs float64 `json:"latency_ms"`
	Op        string  `json:"op"` // "get", "batch", or "elastic-load"
	Samples   int64   `json:"samples"`
	Bytes     int64   `json:"bytes"`
	TraceID   string  `json:"trace_id,omitempty"`
	// ServerMs is the server-reported service time from the timing
	// trailer; the gap to LatencyMs is network plus client overhead.
	ServerMs float64 `json:"server_ms,omitempty"`
}

// slowestPerPhase bounds the exemplar list kept per phase (and per worker
// while the phase runs).
const slowestPerPhase = 5

// Result is a completed (or cancelled) load run.
type Result struct {
	Addrs  []string            `json:"addrs"`
	Seed   uint64              `json:"seed"`
	Phases []PhaseResult       `json:"phases"`
	Pool   transport.PoolStats `json:"pool"`
}

// target is one server and its advertised sample range.
type target struct {
	addr   string
	lo, hi int64
}

// counterSink aggregates the transport's resilience events across every
// pooled client; phases report deltas between snapshots.
type counterSink struct {
	retries, reconnects, giveups, stale atomic.Int64
}

func (s *counterSink) Inc(name string, delta int64) {
	switch name {
	case transport.CounterRetries:
		s.retries.Add(delta)
	case transport.CounterReconnects:
		s.reconnects.Add(delta)
	case transport.CounterGiveUps:
		s.giveups.Add(delta)
	case transport.CounterStaleRefreshes:
		s.stale.Add(delta)
	}
}

type counterSnap struct{ retries, reconnects, giveups, stale int64 }

func (s *counterSink) snapshot() counterSnap {
	return counterSnap{s.retries.Load(), s.reconnects.Load(), s.giveups.Load(), s.stale.Load()}
}

func validate(cfg Config) error {
	if len(cfg.Addrs) == 0 {
		return fmt.Errorf("loadgen: no server addresses")
	}
	if len(cfg.Phases) == 0 {
		return fmt.Errorf("loadgen: no phases")
	}
	for i, ph := range cfg.Phases {
		switch ph.Mode {
		case Open:
			if ph.TargetQPS <= 0 {
				return fmt.Errorf("loadgen: phase %d (%s): open loop needs TargetQPS > 0", i, ph.Name)
			}
			if ph.Duration <= 0 {
				return fmt.Errorf("loadgen: phase %d (%s): open loop needs Duration > 0", i, ph.Name)
			}
		case Closed:
			if ph.Duration <= 0 && ph.MaxRequests <= 0 {
				return fmt.Errorf("loadgen: phase %d (%s): closed loop needs Duration or MaxRequests", i, ph.Name)
			}
		default:
			return fmt.Errorf("loadgen: phase %d (%s): unknown mode %q", i, ph.Name, ph.Mode)
		}
		if ph.Workers <= 0 {
			return fmt.Errorf("loadgen: phase %d (%s): %d workers", i, ph.Name, ph.Workers)
		}
		if ph.Mix < 0 || ph.Mix > 1 {
			return fmt.Errorf("loadgen: phase %d (%s): batch mix %g outside [0,1]", i, ph.Name, ph.Mix)
		}
	}
	return nil
}

// Run executes every phase in order. On context cancellation it drains
// in-flight workers cleanly, returns the phases completed so far, and
// reports the context's error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	sink := &counterSink{}
	pool := transport.NewClientPool(transport.ClientOptions{
		Policy:   cfg.Policy,
		Counters: sink,
		Dialer:   cfg.Dialer,
		Tenant:   cfg.Tenant,
		Tracing:  cfg.Trace,
	})
	defer pool.Close()

	// Elastic mode: one shared group routes every worker's requests via
	// the live shard map; the map's keyspace replaces the Meta probes.
	var group *transport.Group
	var targets []target
	if cfg.Elastic {
		var err error
		group, err = transport.NewElasticGroup(cfg.Addrs, transport.GroupOptions{
			Client: transport.ClientOptions{
				Policy: cfg.Policy, Counters: sink, Dialer: cfg.Dialer, Tenant: cfg.Tenant,
				Tracing: cfg.Trace,
			},
			Spans: cfg.TraceSpans,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: elastic bootstrap: %w", err)
		}
		defer group.Close()
		lo, hi := group.Range()
		if cfg.Hi > cfg.Lo {
			lo, hi = cfg.Lo, cfg.Hi
		}
		if hi <= lo {
			return nil, fmt.Errorf("loadgen: elastic map spans empty range [%d,%d)", lo, hi)
		}
		targets = []target{{addr: "elastic", lo: lo, hi: hi}}
	} else {
		// Discover each server's advertised range once, so workers draw ids
		// that the target actually owns. An explicit Lo/Hi skips the probes.
		targets = make([]target, len(cfg.Addrs))
		for i, addr := range cfg.Addrs {
			if cfg.Hi > cfg.Lo {
				targets[i] = target{addr: addr, lo: cfg.Lo, hi: cfg.Hi}
				continue
			}
			cl, err := pool.Get(addr)
			if err != nil {
				return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
			}
			lo, hi, err := cl.Meta()
			pool.Put(cl)
			if err != nil {
				return nil, fmt.Errorf("loadgen: meta %s: %w", addr, err)
			}
			if hi <= lo {
				return nil, fmt.Errorf("loadgen: %s advertises empty range [%d,%d)", addr, lo, hi)
			}
			targets[i] = target{addr: addr, lo: lo, hi: hi}
		}
	}

	var gauge *obs.Gauge
	if cfg.Registry != nil {
		gauge = obs.LoadgenWorkersGauge(cfg.Registry)
	}

	res := &Result{Addrs: cfg.Addrs, Seed: seed}
	for i, ph := range cfg.Phases {
		if err := ctx.Err(); err != nil {
			res.Pool = pool.Stats()
			return res, err
		}
		if ph.Before != nil {
			ph.Before()
		}
		phaseSeed := seed + uint64(i)*1_000_003
		if ph.Seed != 0 {
			phaseSeed = ph.Seed
		}
		pr := runPhase(ctx, ph, targets, pool, group, sink, gauge, phaseSeed, cfg.Trace, cfg.TraceSpans)
		pr.Tenant = cfg.Tenant
		if cfg.MetricsURL != "" {
			if m, err := ScrapeMetrics(cfg.MetricsURL); err == nil {
				pr.Server = m
			}
		}
		res.Phases = append(res.Phases, pr)
	}
	res.Pool = pool.Stats()
	return res, ctx.Err()
}

// workerStats is one worker's private tally, merged after the phase so
// the hot loop never shares a cache line.
type workerStats struct {
	lats    []time.Duration
	errors  int64
	shed    int64
	bytes   int64
	samples int64
	slow    []SlowRequest // worst-first, at most slowestPerPhase
}

// noteSlow offers one finished request as a tail exemplar, keeping the
// worker's worst slowestPerPhase in descending latency order.
func (ws *workerStats) noteSlow(sr SlowRequest) {
	i := len(ws.slow)
	for i > 0 && ws.slow[i-1].LatencyMs < sr.LatencyMs {
		i--
	}
	if i >= slowestPerPhase {
		return
	}
	ws.slow = append(ws.slow, SlowRequest{})
	copy(ws.slow[i+1:], ws.slow[i:])
	ws.slow[i] = sr
	if len(ws.slow) > slowestPerPhase {
		ws.slow = ws.slow[:slowestPerPhase]
	}
}

// mergeSlow folds every worker's exemplars into one worst-first list.
func mergeSlow(perWorker []workerStats) []SlowRequest {
	var all []SlowRequest
	for i := range perWorker {
		all = append(all, perWorker[i].slow...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].LatencyMs > all[b].LatencyMs })
	if len(all) > slowestPerPhase {
		all = all[:slowestPerPhase]
	}
	return all
}

func runPhase(ctx context.Context, ph Phase, targets []target, pool *transport.ClientPool,
	group *transport.Group, sink *counterSink, gauge *obs.Gauge, seed uint64,
	traced bool, spans *obs.SpanRing) PhaseResult {

	batch := ph.BatchSize
	if batch <= 0 {
		batch = 8
	}
	before := sink.snapshot()

	// Open loop: a dispatcher issues tokens carrying their scheduled time;
	// the bounded queue models the arrival queue, and a full queue drops
	// (and counts) tokens rather than blocking the schedule.
	var tokens chan time.Time
	var dropped atomic.Int64
	start := time.Now()
	var deadline time.Time
	if ph.Duration > 0 {
		deadline = start.Add(ph.Duration)
	}
	dispatchDone := make(chan struct{})
	if ph.Mode == Open {
		tokens = make(chan time.Time, tokenQueueCap)
		go func() {
			defer close(tokens)
			defer close(dispatchDone)
			interval := time.Duration(float64(time.Second) / ph.TargetQPS)
			if interval <= 0 {
				interval = time.Nanosecond
			}
			next := time.Now()
			timer := time.NewTimer(0)
			defer timer.Stop()
			if !timer.Stop() {
				<-timer.C
			}
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if wait := next.Sub(now); wait > 0 {
					timer.Reset(wait)
					select {
					case <-ctx.Done():
						return
					case <-timer.C:
					}
				}
				select {
				case tokens <- next:
				default:
					dropped.Add(1)
				}
				next = next.Add(interval)
			}
		}()
	} else {
		close(dispatchDone)
	}

	// Closed loop with MaxRequests: a shared ticket counter makes the
	// total request count exact regardless of worker interleaving.
	var issued atomic.Int64

	perWorker := make([]workerStats, ph.Workers)
	var wg sync.WaitGroup
	for w := 0; w < ph.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if gauge != nil {
				gauge.Add(1)
				defer gauge.Add(-1)
			}
			rng := rand.New(rand.NewSource(int64(seed) + int64(w)*7919))
			ws := &perWorker[w]

			// Each worker checks one client per distinct target out of the
			// pool for the phase and returns them on exit, so connections
			// stay warm across phases.
			clients := make(map[string]*transport.Client, len(targets))
			defer func() {
				for _, c := range clients {
					pool.Put(c)
				}
			}()

			one := func(issuedAt time.Time) {
				t := targets[rng.Intn(len(targets))]
				span := t.hi - t.lo
				var nbytes, nsamples int64
				var err error
				var tc tracectx.Context
				var timing *transport.ServerTiming
				if traced {
					tc = tracectx.New(true)
				}
				op := "get"
				reqStart := obs.EpochNow()
				switch {
				case group != nil:
					// Elastic: the group resolves each id's owner under the
					// live map, coalesces, fails over, and refreshes on stale
					// generations; the worker only draws ids.
					op = "elastic-load"
					n := int64(1)
					if rng.Float64() < ph.Mix {
						n = int64(batch)
					}
					ids := make([]int64, n)
					for i := range ids {
						ids[i] = t.lo + rng.Int63n(span)
					}
					var lzs []*graph.Lazy
					if traced {
						lzs, _, err = group.LoadLazyTraced(ids, tc)
					} else {
						lzs, _, err = group.LoadLazy(ids)
					}
					if err == nil {
						for _, lz := range lzs {
							nbytes += int64(lz.EncodedSize())
							lz.Release()
						}
						nsamples = int64(len(lzs))
					}
				default:
					cl, ok := clients[t.addr]
					if !ok {
						if cl, err = pool.Get(t.addr); err != nil {
							ws.errors++
							return
						}
						clients[t.addr] = cl
					}
					if rng.Float64() < ph.Mix {
						op = "batch"
						ids := make([]int64, batch)
						for i := range ids {
							ids[i] = t.lo + rng.Int63n(span)
						}
						if traced {
							var buf *bufarena.Buf
							var parts [][]byte
							if buf, parts, timing, err = cl.GetBatchBufsTraced(ids, tc); err == nil {
								for _, p := range parts {
									nbytes += int64(len(p))
								}
								nsamples = int64(len(parts))
								buf.Release()
							}
						} else {
							var parts [][]byte
							if parts, err = cl.GetBatchRaw(ids); err == nil {
								for _, p := range parts {
									nbytes += int64(len(p))
								}
								nsamples = int64(len(parts))
							}
						}
					} else {
						id := t.lo + rng.Int63n(span)
						var raw []byte
						if traced {
							raw, timing, err = cl.GetRawTraced(id, tc)
						} else {
							raw, err = cl.GetRaw(id)
						}
						if err == nil {
							nbytes = int64(len(raw))
							nsamples = 1
						}
					}
				}
				if err != nil {
					// Overload refusals are the server's admission control
					// doing its job — tallied apart from real failures.
					if errors.Is(err, transport.ErrOverloaded) {
						ws.shed++
					} else {
						ws.errors++
					}
					return
				}
				lat := time.Since(issuedAt)
				ws.lats = append(ws.lats, lat)
				ws.bytes += nbytes
				ws.samples += nsamples
				sr := SlowRequest{
					LatencyMs: lat.Seconds() * 1e3, Op: op,
					Samples: nsamples, Bytes: nbytes,
				}
				if traced {
					sr.TraceID = tracectx.IDString(tc.TraceID)
					if timing != nil {
						sr.ServerMs = timing.Service.Seconds() * 1e3
					}
				}
				ws.noteSlow(sr)
				if traced && spans != nil {
					end := obs.EpochNow()
					spans.Record(obs.Span{
						Name: op, Cat: "loadgen", Owner: -1,
						Samples: int(nsamples), Bytes: nbytes,
						Start: reqStart, Dur: end - reqStart,
						TraceID: tc.TraceID, SpanID: tc.SpanID,
					})
					// The elastic group records its own server segments; the
					// pooled-client paths surface theirs here.
					if timing != nil {
						recordServerSpans(spans, tc, timing, end)
					}
				}
			}

			switch ph.Mode {
			case Open:
				for tok := range tokens {
					select {
					case <-ctx.Done():
						// Drain without issuing: the dispatcher stops on
						// cancel, and leftover queued tokens must not keep
						// the phase alive.
						continue
					default:
					}
					one(tok)
				}
			case Closed:
				for {
					select {
					case <-ctx.Done():
						return
					default:
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						return
					}
					if ph.MaxRequests > 0 && issued.Add(1) > ph.MaxRequests {
						return
					}
					one(time.Now())
				}
			}
		}(w)
	}
	wg.Wait()
	<-dispatchDone
	elapsed := time.Since(start)
	delta := sink.snapshot()

	pr := PhaseResult{
		Name:      ph.Name,
		Mode:      string(ph.Mode),
		Workers:   ph.Workers,
		TargetQPS: ph.TargetQPS,
		BatchMix:  ph.Mix,
		DurationS: elapsed.Seconds(),
		Dropped:   dropped.Load(),
	}
	if ph.Mix > 0 {
		pr.BatchSize = batch
	}
	var all []time.Duration
	for i := range perWorker {
		ws := &perWorker[i]
		all = append(all, ws.lats...)
		pr.Errors += ws.errors
		pr.Shed += ws.shed
		pr.Bytes += ws.bytes
		pr.Samples += ws.samples
	}
	pr.Slowest = mergeSlow(perWorker)
	pr.Requests = int64(len(all)) + pr.Errors + pr.Shed
	pr.Retries = delta.retries - before.retries
	pr.Reconnects = delta.reconnects - before.reconnects
	pr.GiveUps = delta.giveups - before.giveups
	pr.StaleRetries = delta.stale - before.stale
	if secs := elapsed.Seconds(); secs > 0 {
		pr.AchievedQPS = float64(len(all)) / secs
		pr.SamplesPerS = float64(pr.Samples) / secs
	}
	if len(all) > 0 {
		msOf := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
		pr.P50ms = msOf(stats.DurationPercentile(all, 50))
		pr.P95ms = msOf(stats.DurationPercentile(all, 95))
		pr.P99ms = msOf(stats.DurationPercentile(all, 99))
		max := all[0]
		for _, d := range all[1:] {
			if d > max {
				max = d
			}
		}
		pr.MaxMs = msOf(max)
	}
	return pr
}

// recordServerSpans merges one timing trailer into the span ring, anchored
// to the client's view of the request end (the trailer carries durations,
// so clocks need not agree) — the same synthesis the transport group does
// for its per-owner chunks, here for the pooled single-client paths.
func recordServerSpans(r *obs.SpanRing, tc tracectx.Context, t *transport.ServerTiming, reqEnd time.Duration) {
	serverStart := reqEnd - t.Service
	sub := tc.Child()
	base := obs.Span{
		Cat: "server", Owner: -1, Tenant: t.Tenant, Gen: t.Generation,
		TraceID: sub.TraceID, SpanID: sub.SpanID, ParentID: tc.SpanID,
	}
	req := base
	req.Name, req.Start, req.Dur, req.Bytes = "server-request", serverStart, t.Service, t.Bytes
	spans := make([]obs.Span, 1, 3)
	spans[0] = req
	if t.QueueWait > 0 {
		qw := base
		qw.SpanID, qw.ParentID = tc.Child().SpanID, sub.SpanID
		qw.Name, qw.Start, qw.Dur = "server-queue-wait", serverStart, t.QueueWait
		spans = append(spans, qw)
	}
	if t.Source > 0 {
		src := base
		src.SpanID, src.ParentID = tc.Child().SpanID, sub.SpanID
		src.Name, src.Start, src.Dur = "server-chunk-source", serverStart+t.QueueWait, t.Source
		spans = append(spans, src)
	}
	r.RecordAll(spans...)
}

// tokenQueueCap bounds the open-loop arrival queue. A server that falls
// behind sees latency grow up to the queue depth; beyond that, tokens are
// dropped and counted, keeping the generator itself unbounded-memory-safe.
const tokenQueueCap = 4096
