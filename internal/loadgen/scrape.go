package loadgen

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ScrapeMetrics fetches a Prometheus text exposition (the ddstore-serve
// /metrics endpoint) and returns the ddstore_* series as a flat map keyed
// by series name including labels, e.g.
//
//	ddstore_serve_requests_total{op="getbatch"} -> 1234
//
// Histogram bucket series are skipped — the harness keeps the _count and
// _sum series, which are what phase-over-phase diffs use.
func ScrapeMetrics(url string) (map[string]float64, error) {
	// Keep-alives are disabled so a finished run leaves no idle-connection
	// goroutines behind — the e2e suite asserts the harness drains clean.
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: status %d", url, resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "ddstore_") {
			continue
		}
		// series and value are separated by the last space: label values
		// may contain escaped spaces, the float may not.
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			continue
		}
		series, valStr := line[:idx], line[idx+1:]
		if strings.Contains(series, "_bucket") {
			continue
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s: %w", url, err)
	}
	return out, nil
}
