package loadgen

// Live-resharding harness: drive an elastic cluster through a membership
// change under load and measure steady-state throughput before, during,
// and after the migration — the number behind the "resharding costs a
// refresh round trip, not a regression" claim.

import (
	"context"
	"fmt"
	"time"
)

// Resharder is the control-plane hook RunReshard drives — satisfied by
// serveboot.Cluster and by any admin shim that forwards to a remote
// cluster's /admin/reshard endpoint.
type Resharder interface {
	// Generation returns the cluster's current shard-map generation.
	Generation() uint64
	// Reshard grows or shrinks the cluster to the given owner count,
	// returning once migration finished and the new generation is live.
	Reshard(owners int) error
}

// ReshardResult is a Result plus the migration's control-plane
// measurements and the steady-state verdict.
type ReshardResult struct {
	Result
	TargetOwners int    `json:"target_owners"`
	PreGen       uint64 `json:"pre_generation"`
	PostGen      uint64 `json:"post_generation"`
	// MigrationS is the wall time of the Reshard call itself: planning,
	// chunk pulls over the data plane, and the generation publish.
	MigrationS float64 `json:"migration_s"`
	// RegressionPct compares the pre and post phases' samples/s:
	// positive means the post-reshard steady state is slower. The
	// acceptance bound for a grow is <= 5%.
	RegressionPct float64 `json:"steady_state_regression_pct"`
}

// RunReshard runs a three-phase pre/during/post load plan over an elastic
// cluster, firing r.Reshard(owners) in the background as the middle phase
// starts. The post phase is gated on the migration finishing, so its
// numbers are pure new-topology steady state, while the middle phase
// overlaps the migration by construction. cfg must route elastically and
// carry exactly three phases.
func RunReshard(ctx context.Context, cfg Config, r Resharder, owners int) (*ReshardResult, error) {
	if !cfg.Elastic {
		return nil, fmt.Errorf("loadgen: reshard run needs Config.Elastic routing")
	}
	if len(cfg.Phases) != 3 {
		return nil, fmt.Errorf("loadgen: reshard run wants exactly 3 phases (pre, during, post), got %d", len(cfg.Phases))
	}
	out := &ReshardResult{TargetOwners: owners, PreGen: r.Generation()}
	var migErr error
	done := make(chan struct{})
	triggered := false

	phases := append([]Phase(nil), cfg.Phases...)
	duringBefore := phases[1].Before
	phases[1].Before = func() {
		if duringBefore != nil {
			duringBefore()
		}
		triggered = true
		go func() {
			defer close(done)
			start := time.Now()
			migErr = r.Reshard(owners)
			out.MigrationS = time.Since(start).Seconds()
		}()
	}
	postBefore := phases[2].Before
	phases[2].Before = func() {
		<-done // post measures the settled topology, not the tail of the move
		if postBefore != nil {
			postBefore()
		}
	}
	cfg.Phases = phases

	res, err := Run(ctx, cfg)
	if res != nil {
		out.Result = *res
	}
	if triggered {
		<-done
		out.PostGen = r.Generation()
		if migErr != nil {
			return out, fmt.Errorf("loadgen: reshard to %d owners: %w", owners, migErr)
		}
	}
	if err != nil {
		return out, err
	}
	if pre, post := out.Phases[0].SamplesPerS, out.Phases[2].SamplesPerS; pre > 0 {
		out.RegressionPct = (pre - post) / pre * 100
	}
	return out, nil
}
