package loadgen

import (
	"context"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/serveboot"
	"ddstore/internal/transport"
)

func bootElastic(t *testing.T, owners, n int) *serveboot.Cluster {
	t.Helper()
	c, err := serveboot.BootCluster(serveboot.ElasticConfig{
		Source: datasets.HomoLumo(datasets.Config{NumGraphs: n}),
		Owners: owners,
		Net: transport.RetryPolicy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
			DialTimeout: time.Second, ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second,
			Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestElasticRoutingDrivesCluster: Config.Elastic routes the workers
// through a live shard map instead of per-address clients — every request
// lands on its owner, so a width-1 two-owner cluster serves a full sweep
// with zero errors (per-address routing would miss half the ids).
func TestElasticRoutingDrivesCluster(t *testing.T) {
	c := bootElastic(t, 2, 200)
	res, err := Run(context.Background(), Config{
		Addrs:   c.Addrs(),
		Elastic: true,
		Phases: []Phase{
			{Name: "elastic-closed", Mode: Closed, Workers: 4, MaxRequests: 200, Mix: 0.5, BatchSize: 8,
				Duration: 30 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Errors != 0 {
		t.Fatalf("elastic sweep saw %d errors, want 0", ph.Errors)
	}
	if ph.Requests != 200 || ph.Samples == 0 || ph.Bytes == 0 {
		t.Fatalf("elastic sweep accounting off: requests=%d samples=%d bytes=%d",
			ph.Requests, ph.Samples, ph.Bytes)
	}
	checkOrdering(t, ph)
}

// TestRunReshardZeroHardErrors is the acceptance drill: a 2-owner cluster
// grows to 3 while the middle phase hammers it, and no phase sees a hard
// error — moved chunks cost the workers stale-generation refreshes at
// worst. The post phase runs against the settled 3-owner topology and its
// steady state stays within the regression bound.
func TestRunReshardZeroHardErrors(t *testing.T) {
	c := bootElastic(t, 2, 240)
	phase := func(name string) Phase {
		return Phase{Name: name, Mode: Closed, Workers: 4, MaxRequests: 300,
			Mix: 0.5, BatchSize: 8, Duration: 30 * time.Second}
	}
	res, err := RunReshard(context.Background(), Config{
		Addrs:   c.Addrs(),
		Elastic: true,
		Phases:  []Phase{phase("pre"), phase("during"), phase("post")},
	}, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(res.Phases))
	}
	for _, ph := range res.Phases {
		if ph.Errors != 0 {
			t.Fatalf("phase %s saw %d hard errors, want 0", ph.Name, ph.Errors)
		}
		if ph.Samples == 0 {
			t.Fatalf("phase %s moved no samples", ph.Name)
		}
	}
	if res.PreGen != 1 || res.PostGen != 2 {
		t.Fatalf("generation %d -> %d, want 1 -> 2", res.PreGen, res.PostGen)
	}
	if res.MigrationS <= 0 {
		t.Fatalf("migration wall time %.6fs, want > 0", res.MigrationS)
	}
	if got := c.OwnerCount(); got != 3 {
		t.Fatalf("owner count %d after reshard, want 3", got)
	}
}

// TestRunReshardValidation rejects non-elastic configs and wrong phase
// counts before touching the cluster.
func TestRunReshardValidation(t *testing.T) {
	c := bootElastic(t, 2, 50)
	if _, err := RunReshard(context.Background(), Config{
		Addrs:  c.Addrs(),
		Phases: []Phase{{}, {}, {}},
	}, c, 3); err == nil {
		t.Fatal("non-elastic config accepted")
	}
	if _, err := RunReshard(context.Background(), Config{
		Addrs:   c.Addrs(),
		Elastic: true,
		Phases:  []Phase{{Name: "only", Mode: Closed, Workers: 1, MaxRequests: 1}},
	}, c, 3); err == nil {
		t.Fatal("single-phase plan accepted")
	}
}
