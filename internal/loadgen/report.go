package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ddstore/internal/bench"
	"ddstore/internal/transport"
)

// ArtifactSchema is the version stamped into every loadgen JSON artifact.
// Bump it only when a field is renamed or its meaning changes; additions
// keep the version. The golden test in report_test.go pins the encoding.
const ArtifactSchema = 1

// Host records where an artifact was measured, so cross-PR diffs can
// tell a regression from a hardware change.
type Host struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost describes the running process's host.
func CurrentHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Artifact is the versioned on-disk form of a load run — the BENCH_*.json
// trajectory started in PR 3, now with per-phase serving profiles.
type Artifact struct {
	Schema    int                 `json:"schema"`
	Kind      string              `json:"kind"`
	Title     string              `json:"title"`
	CreatedAt string              `json:"created_at,omitempty"`
	Host      Host                `json:"host"`
	Addrs     []string            `json:"addrs"`
	Seed      uint64              `json:"seed"`
	Pool      transport.PoolStats `json:"pool"`
	Phases    []PhaseResult       `json:"phases"`
	// Reshard is the migration block a RunReshard artifact attaches; nil
	// for plain sweeps (an addition, so the schema version holds).
	Reshard *ReshardInfo `json:"reshard,omitempty"`
}

// ReshardInfo summarizes the membership change a reshard bench performed
// while its middle phase ran.
type ReshardInfo struct {
	TargetOwners  int     `json:"target_owners"`
	PreGen        uint64  `json:"pre_generation"`
	PostGen       uint64  `json:"post_generation"`
	MigrationS    float64 `json:"migration_s"`
	RegressionPct float64 `json:"steady_state_regression_pct"`
}

// Artifact packages a reshard run for writing: the three phases plus the
// migration block, under kind "reshard".
func (r *ReshardResult) Artifact(title string) *Artifact {
	a := r.Result.Artifact(title)
	a.Kind = "reshard"
	a.Reshard = &ReshardInfo{
		TargetOwners:  r.TargetOwners,
		PreGen:        r.PreGen,
		PostGen:       r.PostGen,
		MigrationS:    r.MigrationS,
		RegressionPct: r.RegressionPct,
	}
	return a
}

// Artifact packages the result for writing, stamping schema, host, and
// creation time.
func (r *Result) Artifact(title string) *Artifact {
	return &Artifact{
		Schema:    ArtifactSchema,
		Kind:      "loadgen",
		Title:     title,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host:      CurrentHost(),
		Addrs:     r.Addrs,
		Seed:      r.Seed,
		Pool:      r.Pool,
		Phases:    r.Phases,
	}
}

// JSON renders the artifact with stable indentation (the format the
// golden test pins and BENCH_*.json files are committed in).
func (a *Artifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// WriteFile writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	b, err := a.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Report renders the run as a bench.Report table: one row per phase with
// the latency percentiles, achieved throughput, and error/retry counts.
func (r *Result) Report() *bench.Report {
	rep := &bench.Report{
		ID:    "loadgen",
		Title: "live-serve load generator: per-phase latency and throughput",
		Columns: []string{
			"phase", "mode", "workers", "target-qps", "req", "err", "retry",
			"achieved-qps", "samples/s", "p50-ms", "p95-ms", "p99-ms", "max-ms", "MB",
		},
	}
	for _, ph := range r.Phases {
		target := "-"
		if ph.TargetQPS > 0 {
			target = fmt.Sprintf("%.4g", ph.TargetQPS)
		}
		rep.AddRow(ph.Name, ph.Mode, ph.Workers, target, ph.Requests, ph.Errors, ph.Retries,
			ph.AchievedQPS, ph.SamplesPerS, ph.P50ms, ph.P95ms, ph.P99ms, ph.MaxMs,
			float64(ph.Bytes)/(1<<20))
		if ph.Dropped > 0 {
			rep.AddNote("%s: dropped %d open-loop tokens (server saturated beyond the %d-deep arrival queue)",
				ph.Name, ph.Dropped, tokenQueueCap)
		}
		if len(ph.Slowest) > 0 {
			worst := ph.Slowest[0]
			if worst.TraceID != "" {
				rep.AddNote("%s: slowest %s %.2fms (server %.2fms) trace %s",
					ph.Name, worst.Op, worst.LatencyMs, worst.ServerMs, worst.TraceID)
			} else {
				rep.AddNote("%s: slowest %s %.2fms", ph.Name, worst.Op, worst.LatencyMs)
			}
		}
	}
	rep.AddNote("pool: %d dials, %d reuses across %d phases", r.Pool.Dials, r.Pool.Reuses, len(r.Phases))
	return rep
}

// SweepOptions shape the standard phase plan built by Sweep — the plan
// behind `ddstore-bench -loadgen`.
type SweepOptions struct {
	// Quick runs a deterministic, seconds-long plan: closed phases issue
	// exactly QuickClosedRequests requests and the open phase runs for
	// under a second.
	Quick bool
	// Clients is the worker count (default 4) for non-ramped phases.
	Clients int
	// Ramp, when set, runs the closed-loop pair once per client count.
	Ramp []int
	// QPS is the open-loop target rate (default 200).
	QPS float64
	// Duration is the per-phase wall budget in full mode (default 5s).
	Duration time.Duration
	// Mix is the OpGetBatch fraction (default 0.25).
	Mix float64
	// BatchSize is the ids per batch request (default 8).
	BatchSize int
	// ColdStart, if set, runs before each cold phase (e.g. the server's
	// cache reset) so cold numbers are honest on a warm process.
	ColdStart func()
}

// QuickClosedRequests is the exact request count of each quick-mode
// closed-loop phase; the e2e tests assert it.
const QuickClosedRequests = 256

// Sweep builds the standard phase plan: for each ramp step, a cold then a
// warm closed-loop phase (ColdStart runs before the cold one), followed
// by one open-loop phase at the target QPS. Warm-vs-cold pairs quantify
// the server cache; the open-loop tail measures queue-induced latency at
// a fixed arrival rate.
func Sweep(o SweepOptions) []Phase {
	clients := o.Clients
	if clients <= 0 {
		clients = 4
	}
	qps := o.QPS
	if qps <= 0 {
		qps = 200
	}
	dur := o.Duration
	if dur <= 0 {
		dur = 5 * time.Second
	}
	mix := o.Mix
	if mix == 0 {
		mix = 0.25
	}
	ramp := o.Ramp
	if len(ramp) == 0 {
		ramp = []int{clients}
	}

	var phases []Phase
	for step, c := range ramp {
		// Cold and warm share a pinned seed (and worker count), so the warm
		// phase replays the cold phase's exact request stream: the delta
		// between the pair isolates the server's cache.
		pairSeed := uint64(0x5eed) + uint64(step+1)*7919
		cold := Phase{
			Name: fmt.Sprintf("closed-cold-c%d", c), Mode: Closed, Workers: c,
			Mix: mix, BatchSize: o.BatchSize, Seed: pairSeed, Before: o.ColdStart,
		}
		warm := Phase{
			Name: fmt.Sprintf("closed-warm-c%d", c), Mode: Closed, Workers: c,
			Mix: mix, BatchSize: o.BatchSize, Seed: pairSeed,
		}
		if o.Quick {
			cold.MaxRequests, warm.MaxRequests = QuickClosedRequests, QuickClosedRequests
			cold.Duration, warm.Duration = 30*time.Second, 30*time.Second // safety cap
		} else {
			cold.Duration, warm.Duration = dur, dur
		}
		phases = append(phases, cold, warm)
	}
	open := Phase{
		Name: fmt.Sprintf("open-qps%g", qps), Mode: Open, Workers: clients,
		TargetQPS: qps, Duration: dur, Mix: mix, BatchSize: o.BatchSize,
	}
	if o.Quick {
		open.Duration = 800 * time.Millisecond
	}
	return append(phases, open)
}
