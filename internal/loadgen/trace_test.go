package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/obs"
	"ddstore/internal/serveboot"
)

// TestTracedRunMergesServerSpansAndExemplars drives a traced quick run
// against a live server and checks the whole observability chain: client
// root spans and synthesized server segments share trace ids in one ring,
// the merged Chrome trace carries both categories, and the artifact's
// slowest exemplars link to trace ids with server-reported service times.
func TestTracedRunMergesServerSpansAndExemplars(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	inst, err := serveboot.Boot(serveboot.Config{
		Source: ds, Lo: 0, Hi: 200, WriteTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	ring := obs.NewSpanRing(4096, 0)
	ring.SetLabel("loadgen")
	res, err := Run(context.Background(), Config{
		Addrs: []string{inst.Addr()},
		Seed:  7,
		Phases: []Phase{{
			Name: "traced", Mode: Closed, Workers: 2,
			MaxRequests: 64, Duration: 30 * time.Second,
			Mix: 0.5, BatchSize: 4,
		}},
		Tenant:     "bench",
		Trace:      true,
		TraceSpans: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if ph.Errors != 0 || ph.Requests != 64 {
		t.Fatalf("phase = %+v", ph)
	}

	// Every request produced a client root span; server segments pair up
	// by trace id with tenant attribution from the trailer.
	roots := map[uint64]bool{}
	serverByTrace := map[uint64]int{}
	for _, s := range ring.Spans() {
		switch s.Cat {
		case "loadgen":
			if s.TraceID == 0 || s.SpanID == 0 {
				t.Fatalf("untraced root span %+v", s)
			}
			roots[s.TraceID] = true
		case "server":
			serverByTrace[s.TraceID]++
			if s.Name == "server-request" && s.Tenant != "bench" {
				t.Fatalf("server span tenant %q, want bench", s.Tenant)
			}
		}
	}
	if len(roots) != 64 {
		t.Fatalf("%d distinct root traces, want 64", len(roots))
	}
	if len(serverByTrace) == 0 {
		t.Fatal("no server spans merged")
	}
	for tid := range serverByTrace {
		if !roots[tid] {
			t.Fatalf("server span trace %016x has no client root", tid)
		}
	}

	// The merged Chrome trace serializes both sides.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, ring); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"server-request"`, `"trace_id"`, `"tenant":"bench"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}

	// Artifact exemplars: worst-first, trace-linked, with server timing.
	if len(ph.Slowest) == 0 || len(ph.Slowest) > slowestPerPhase {
		t.Fatalf("slowest exemplars = %d", len(ph.Slowest))
	}
	for i := 1; i < len(ph.Slowest); i++ {
		if ph.Slowest[i].LatencyMs > ph.Slowest[i-1].LatencyMs {
			t.Fatalf("exemplars not worst-first: %+v", ph.Slowest)
		}
	}
	worst := ph.Slowest[0]
	if worst.TraceID == "" || worst.ServerMs <= 0 || worst.LatencyMs < worst.ServerMs {
		t.Fatalf("worst exemplar = %+v", worst)
	}
}

// TestUntracedRunStillCollectsExemplars pins that exemplars don't depend
// on tracing: an untraced run records latencies without trace ids.
func TestUntracedRunStillCollectsExemplars(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	inst, err := serveboot.Boot(serveboot.Config{Source: ds, Hi: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	res, err := Run(context.Background(), Config{
		Addrs: []string{inst.Addr()},
		Phases: []Phase{{
			Name: "plain", Mode: Closed, Workers: 1,
			MaxRequests: 16, Duration: 30 * time.Second,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := res.Phases[0]
	if len(ph.Slowest) == 0 {
		t.Fatal("no exemplars on untraced run")
	}
	if ph.Slowest[0].TraceID != "" || ph.Slowest[0].ServerMs != 0 {
		t.Fatalf("untraced exemplar carries trace fields: %+v", ph.Slowest[0])
	}
}
