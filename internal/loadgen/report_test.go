package loadgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ddstore/internal/transport"
)

// fixedArtifact builds an artifact with every field populated and no
// environment-dependent values, so its JSON encoding is reproducible.
func fixedArtifact() *Artifact {
	return &Artifact{
		Schema:    ArtifactSchema,
		Kind:      "loadgen",
		Title:     "golden fixture",
		CreatedAt: "2026-08-08T00:00:00Z",
		Host: Host{
			GoVersion: "go1.22.0", OS: "linux", Arch: "amd64", CPUs: 4, GOMAXPROCS: 4,
		},
		Addrs: []string{"127.0.0.1:7001", "127.0.0.1:7002"},
		Seed:  42,
		Pool:  transport.PoolStats{Dials: 5, Reuses: 7},
		Phases: []PhaseResult{
			{
				Name: "closed-cold-c4", Mode: "closed", Workers: 4,
				BatchMix: 0.25, BatchSize: 8,
				DurationS: 1.5, Requests: 256, Samples: 704, Errors: 2,
				Retries: 3, Reconnects: 1, GiveUps: 1, Bytes: 1048576,
				AchievedQPS: 169.33, SamplesPerS: 469.33,
				P50ms: 1.25, P95ms: 3.5, P99ms: 7.75, MaxMs: 12.5,
				Server: map[string]float64{
					`ddstore_serve_requests_total{op="get"}`: 192,
				},
			},
			{
				Name: "open-qps200", Mode: "open", Workers: 4, TargetQPS: 200,
				BatchMix: 0.25, BatchSize: 8, Dropped: 9,
				DurationS: 0.8, Requests: 160, Samples: 440, Bytes: 524288,
				AchievedQPS: 200, SamplesPerS: 550,
				P50ms: 0.5, P95ms: 1.5, P99ms: 2.5, MaxMs: 4,
			},
		},
	}
}

// TestArtifactGolden pins the artifact JSON schema: field names, types,
// ordering, and indentation. BENCH_*.json files are committed and diffed
// across PRs, so renaming or retyping a field breaks comparability — a
// deliberate change must bump ArtifactSchema and regenerate the golden:
//
//	UPDATE_GOLDEN=1 go test ./internal/loadgen -run TestArtifactGolden
func TestArtifactGolden(t *testing.T) {
	got, err := fixedArtifact().JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "artifact_v1.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("artifact JSON drifted from %s — if intentional, bump ArtifactSchema and regenerate with UPDATE_GOLDEN=1\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestArtifactRoundTripsThroughFile writes and re-reads an artifact.
func TestArtifactRoundTripsThroughFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := fixedArtifact().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 || b[len(b)-1] != '\n' {
		t.Error("artifact file not newline-terminated")
	}
}

// TestSweepPlan checks the standard phase plan: one cold+warm closed pair
// per ramp step with ColdStart wired to cold phases only, then a single
// open-loop tail; quick mode pins the deterministic request count.
func TestSweepPlan(t *testing.T) {
	var resets int
	phases := Sweep(SweepOptions{
		Quick: true, Ramp: []int{1, 8}, Mix: 0.5,
		ColdStart: func() { resets++ },
	})
	if len(phases) != 5 {
		t.Fatalf("%d phases for a 2-step ramp, want 5 (2×cold+warm, 1×open)", len(phases))
	}
	wantNames := []string{"closed-cold-c1", "closed-warm-c1", "closed-cold-c8", "closed-warm-c8", "open-qps200"}
	for i, ph := range phases {
		if ph.Name != wantNames[i] {
			t.Errorf("phase %d named %q, want %q", i, ph.Name, wantNames[i])
		}
	}
	for _, ph := range phases[:4] {
		if ph.Mode != Closed || ph.MaxRequests != QuickClosedRequests {
			t.Errorf("%s: mode=%s max=%d, want closed/%d", ph.Name, ph.Mode, ph.MaxRequests, QuickClosedRequests)
		}
	}
	// Each cold/warm pair shares a pinned seed (warm replays cold's request
	// stream); distinct ramp steps draw distinct streams.
	if phases[0].Seed == 0 || phases[0].Seed != phases[1].Seed {
		t.Errorf("cold/warm seeds %d/%d, want equal and non-zero", phases[0].Seed, phases[1].Seed)
	}
	if phases[2].Seed != phases[3].Seed || phases[0].Seed == phases[2].Seed {
		t.Errorf("ramp-step seeds %d/%d/%d: want per-pair pinning", phases[0].Seed, phases[2].Seed, phases[3].Seed)
	}
	if open := phases[4]; open.Mode != Open || open.TargetQPS != 200 || open.Duration <= 0 {
		t.Errorf("open phase misbuilt: %+v", open)
	}
	for _, ph := range phases {
		if ph.Before != nil {
			ph.Before()
		}
	}
	if resets != 2 {
		t.Errorf("ColdStart wired to %d phases, want the 2 cold ones", resets)
	}

	// Full mode uses durations, not request caps.
	full := Sweep(SweepOptions{Clients: 2, Duration: 3 * time.Second})
	if len(full) != 3 {
		t.Fatalf("%d default phases, want 3", len(full))
	}
	for _, ph := range full[:2] {
		if ph.MaxRequests != 0 || ph.Duration != 3*time.Second {
			t.Errorf("%s: max=%d dur=%v, want duration-bounded", ph.Name, ph.MaxRequests, ph.Duration)
		}
	}
}
