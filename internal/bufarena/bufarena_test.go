package bufarena

import (
	"sync"
	"testing"
)

func TestGetSizesAndRefs(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 4096, 1 << 20, 1<<20 + 1} {
		b := Get(n)
		if b.Len() != n {
			t.Fatalf("Get(%d).Len() = %d", n, b.Len())
		}
		if got := len(b.Bytes()); got != n {
			t.Fatalf("Get(%d) Bytes len = %d", n, got)
		}
		if b.Refs() != 1 {
			t.Fatalf("fresh buffer has %d refs, want 1", b.Refs())
		}
		b.Release()
	}
}

func TestGetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(-1) did not panic")
		}
	}()
	Get(-1)
}

func TestRetainReleaseCounting(t *testing.T) {
	b := Get(64)
	b.Retain()
	b.Retain()
	if b.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", b.Refs())
	}
	b.Release()
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", b.Refs())
	}
	b.Release()
	if b.Refs() != 0 {
		t.Fatalf("refs = %d after final release, want 0", b.Refs())
	}
}

// TestPoisonOnFinalRelease is the mutate-after-release canary: the final
// Release overwrites the payload, so any consumer still reading a released
// buffer sees poison, not stale-but-plausible data.
func TestPoisonOnFinalRelease(t *testing.T) {
	b := Get(128)
	data := b.Bytes()
	for i := range data {
		data[i] = byte(i)
	}
	b.Release()
	for i, v := range data {
		if v != Poison {
			t.Fatalf("byte %d = %#x after final release, want poison %#x", i, v, Poison)
		}
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(32)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterFinalReleasePanics(t *testing.T) {
	b := Get(32)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after final Release did not panic")
		}
	}()
	b.Retain()
}

func TestNilSafe(t *testing.T) {
	var b *Buf
	b.Retain()
	b.Release()
	if b.Len() != 0 || b.Bytes() != nil || b.Refs() != 0 {
		t.Fatal("nil Buf accessors not zero-valued")
	}
}

func TestRecycling(t *testing.T) {
	// A released pooled buffer should come back from the pool. sync.Pool
	// gives no hard guarantee, so assert on the stats counters instead of
	// pointer identity: after warming the class, recycles must rise.
	gets0, _, recycles0 := Stats()
	for i := 0; i < 64; i++ {
		b := Get(512)
		b.Release()
	}
	gets1, _, recycles1 := Stats()
	if gets1-gets0 != 64 {
		t.Fatalf("gets rose by %d, want 64", gets1-gets0)
	}
	if recycles1 <= recycles0 {
		t.Fatalf("no recycles after 64 get/release rounds (before %d, after %d)", recycles0, recycles1)
	}
}

func TestOversizeUnpooled(t *testing.T) {
	b := Get(1<<20 + 1)
	if b.class >= 0 {
		t.Fatalf("oversize buffer got pool class %d, want unpooled", b.class)
	}
	b.Release() // must not panic, must not pool
}

func TestConcurrentRetainRelease(t *testing.T) {
	const workers = 8
	b := Get(256)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		b.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Retain()
				_ = b.Bytes()[0]
				b.Release()
			}
			b.Release()
		}()
	}
	wg.Wait()
	if b.Refs() != 1 {
		t.Fatalf("refs = %d after workers, want 1", b.Refs())
	}
	b.Release()
}
