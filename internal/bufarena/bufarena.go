// Package bufarena provides ref-counted pooled byte buffers for the data
// plane's hot read path. A response payload is read once off the socket
// into a pooled buffer and then aliased — by cache entries, by batch parts,
// by lazy graph decodes — without copying; each alias holds a reference,
// and the buffer returns to its pool only when the last reference is
// released.
//
// Ownership discipline:
//
//   - Get returns a buffer with exactly one reference, owned by the caller.
//   - Passing a buffer across an API that "takes ownership" transfers that
//     one reference; the caller must Retain first if it keeps an alias.
//   - Release with outstanding references is cheap bookkeeping; the final
//     Release poisons the buffer and returns it to the pool.
//   - Releasing more times than retained panics — a double release is a
//     use-after-free in waiting, never a recoverable condition.
//
// A buffer that is never released is not a leak: its memory stays ordinary
// garbage-collected heap, it just never gets recycled. That makes it safe
// to hand a buffer's bytes to callers outside the refcount discipline
// (public APIs returning plain []byte) — the pool merely loses one
// recycling opportunity.
//
// Poisoning is the aliasing canary: the final Release overwrites the
// buffer with a fixed pattern before pooling it, so any alias that
// outlives its reference reads garbage deterministically (and races with
// the poison write under -race) instead of silently reading recycled
// data. The cache and transport aliasing tests are built on it.
package bufarena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Poison is the byte pattern the final Release writes over a pooled
// buffer. Tests assert on it to prove a release happened (or didn't).
const Poison = 0xDB

// Size classes are powers of two from minClass to maxClass; larger
// requests are allocated directly and never pooled.
const (
	minClassBits = 8  // 256 B
	maxClassBits = 20 // 1 MiB
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is one pooled, ref-counted buffer. The zero value is invalid; use
// Get. Buf satisfies the structural Retain/Release interfaces declared by
// the graph and cache packages.
type Buf struct {
	data  []byte // full class-sized capacity
	n     int    // requested length
	refs  atomic.Int32
	class int // pool class index; -1 = unpooled (too large)
}

var pools [numClasses]sync.Pool

// Stats counters, for tests and the /metrics collectors.
var (
	statGets     atomic.Int64 // buffers handed out
	statNews     atomic.Int64 // handed out by allocating (pool miss or oversize)
	statRecycles atomic.Int64 // buffers returned to a pool by a final Release
)

// Stats reports cumulative arena traffic: buffers handed out, buffers that
// required a fresh allocation, and buffers recycled by a final Release.
func Stats() (gets, news, recycles int64) {
	return statGets.Load(), statNews.Load(), statRecycles.Load()
}

// classFor maps a length to its size-class index, or -1 for oversize.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Get returns a buffer of length n holding one reference, owned by the
// caller. The contents are unspecified (previous poison included): the
// caller fills it.
func Get(n int) *Buf {
	if n < 0 {
		panic(fmt.Sprintf("bufarena: negative length %d", n))
	}
	statGets.Add(1)
	class := classFor(n)
	var b *Buf
	if class >= 0 {
		if v := pools[class].Get(); v != nil {
			b = v.(*Buf)
		}
	}
	if b == nil {
		statNews.Add(1)
		size := n
		if class >= 0 {
			size = 1 << (minClassBits + class)
		}
		b = &Buf{data: make([]byte, size), class: class}
	}
	b.n = n
	b.refs.Store(1)
	return b
}

// Bytes returns the buffer's length-n contents (nil for a nil buffer).
// The slice is valid only while the caller holds a reference.
func (b *Buf) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.data[:b.n]
}

// Len returns the requested length (0 for a nil buffer).
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Truncate shortens the buffer's visible length to n (0 <= n <= Len), so
// a consumer can strip trailing framing — e.g. a response timing trailer —
// before aliasing the data in front of it. The discarded capacity stays
// with the buffer and is recycled with it.
func (b *Buf) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("bufarena: Truncate(%d) of a %d-byte buffer", n, b.n))
	}
	b.n = n
}

// Refs returns the current reference count (for tests).
func (b *Buf) Refs() int32 {
	if b == nil {
		return 0
	}
	return b.refs.Load()
}

// Retain adds a reference. Retaining a buffer whose references already hit
// zero panics: the memory may already be recycled.
func (b *Buf) Retain() {
	if b == nil {
		return
	}
	if b.refs.Add(1) <= 1 {
		panic("bufarena: Retain after final Release")
	}
}

// Release drops one reference. The final release poisons the buffer and
// returns it to its pool; releasing below zero panics.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	refs := b.refs.Add(-1)
	switch {
	case refs > 0:
		return
	case refs < 0:
		panic("bufarena: Release of a buffer with no outstanding reference")
	}
	// Poison the whole payload so any alias that outlives its reference
	// reads the canary (and, under -race, races with this write).
	p := b.data[:b.n]
	for i := range p {
		p[i] = Poison
	}
	if b.class < 0 {
		return // oversize: garbage-collected, never pooled
	}
	statRecycles.Add(1)
	pools[b.class].Put(b)
}
