package faultnet

import (
	"net"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/transport"
)

// fanOutWorld starts eight single-chunk TCP servers, each owning an eighth
// of the dataset, and returns their addresses.
func fanOutWorld(t *testing.T, total int) []string {
	t.Helper()
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: total})
	per := int64(total / 8)
	addrs := make([]string, 0, 8)
	for o := 0; o < 8; o++ {
		lo, hi := int64(o)*per, int64(o+1)*per
		gs := make([]*graph.Graph, 0, hi-lo)
		for id := lo; id < hi; id++ {
			g, err := ds.Sample(id)
			if err != nil {
				t.Fatal(err)
			}
			gs = append(gs, g)
		}
		chunk := transport.NewMemChunk(lo, gs)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := transport.ServeListener(ln, chunk, transport.ServerOptions{WriteTimeout: 5 * time.Second})
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, srv.Addr())
	}
	return addrs
}

// fanOutGroup dials the eight servers through a stall injector that delays
// every connection I/O operation, so round-trip time is dominated by the
// injected latency rather than loopback scheduling noise.
func fanOutGroup(t *testing.T, addrs []string, stall time.Duration, par int) *transport.Group {
	t.Helper()
	inj := New(Scenario{Seed: 7, StallProb: 1, StallFor: stall})
	gopts := transport.GroupOptions{
		FetchParallelism: par,
		Client: transport.ClientOptions{
			Dialer: inj.Dialer(nil),
			Policy: transport.RetryPolicy{
				MaxAttempts: 2,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				ReadTimeout: 10 * time.Second,
				Seed:        7,
			},
		},
	}
	grp, err := transport.NewGroupReplicas([][]string{addrs}, gopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { grp.Close() })
	return grp
}

// minLoad times Load(ids) reps times and returns the fastest run — the run
// least disturbed by scheduler noise, which is the quantity the latency
// model predicts.
func minLoad(t *testing.T, grp *transport.Group, ids []int64, reps int) time.Duration {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		got, err := grp.Load(ids)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		for i, g := range got {
			if g.ID != ids[i] {
				t.Fatalf("slot %d: got sample %d want %d", i, g.ID, ids[i])
			}
		}
	}
	return best
}

// TestFanOutOverlapsOwnerLatency is the wall-clock acceptance test for the
// concurrent per-owner fetch: with every connection operation stalled a
// fixed delay, an 8-owner batch under fan-out must complete in at most
// twice the single-owner round trip — the eight round trips overlap —
// while the serial loop pays them back to back.
func TestFanOutOverlapsOwnerLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const total = 64
	const stall = 15 * time.Millisecond
	addrs := fanOutWorld(t, total)

	par := fanOutGroup(t, addrs, stall, 8)
	ser := fanOutGroup(t, addrs, stall, 1)

	oneOwner := []int64{0, 1}
	allOwners := make([]int64, 0, 16)
	for o := 0; o < 8; o++ {
		base := int64(o * total / 8)
		allOwners = append(allOwners, base, base+1)
	}

	// Warm both groups so connection setup (Meta handshake already paid at
	// dial) and first-use costs are out of the measured loads.
	minLoad(t, par, oneOwner, 1)
	minLoad(t, ser, oneOwner, 1)

	t1 := minLoad(t, par, oneOwner, 3)
	t8 := minLoad(t, par, allOwners, 3)
	t8serial := minLoad(t, ser, allOwners, 3)
	t.Logf("single-owner RT %v, 8-owner fan-out %v, 8-owner serial %v", t1, t8, t8serial)

	if t8 > 2*t1 {
		t.Errorf("8-owner fan-out took %v, want <= 2x single-owner RT (%v)", t8, 2*t1)
	}
	if t8serial < 2*t8 {
		t.Errorf("serial 8-owner load took %v, expected back-to-back round trips to cost >= 2x the fan-out (%v)", t8serial, 2*t8)
	}
}

// TestFanOutUnderFaults runs the 8-owner fan-out against a hostile mix —
// resets, stalls, partial writes — and requires every Load to still return
// the right samples: the retry/failover machinery must hold when eight
// owner fetches run concurrently. CorruptProb stays 0 here: a dialer-side
// injector corrupts *requests*, which the server rejects with a decode
// error the client rightly treats as non-retryable (a well-formed reply to
// a malformed question); response corruption is covered by the
// listener-side chaos tests.
func TestFanOutUnderFaults(t *testing.T) {
	const total = 64
	addrs := fanOutWorld(t, total)
	inj := New(Scenario{
		Seed:             3,
		ResetProb:        0.02,
		StallProb:        0.05,
		StallFor:         2 * time.Millisecond,
		PartialWriteProb: 0.02,
	})
	gopts := transport.GroupOptions{
		FetchParallelism: 8,
		Client: transport.ClientOptions{
			Dialer: inj.Dialer(nil),
			Policy: transport.RetryPolicy{
				MaxAttempts: 6,
				BaseDelay:   time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				ReadTimeout: 2 * time.Second,
				Seed:        3,
			},
		},
	}
	grp, err := transport.NewGroupReplicas([][]string{addrs}, gopts)
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()

	ids := make([]int64, 0, 16)
	for o := 0; o < 8; o++ {
		base := int64(o * total / 8)
		ids = append(ids, base, base+1)
	}
	for rep := 0; rep < 10; rep++ {
		got, err := grp.Load(ids)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		for i, g := range got {
			if g.ID != ids[i] {
				t.Fatalf("rep %d slot %d: got sample %d want %d", rep, i, g.ID, ids[i])
			}
		}
	}
	st := inj.Stats()
	if st.Stalls+st.Resets+st.PartialWrites == 0 {
		t.Fatal("fault mix fired nothing; scenario too mild to mean anything")
	}
	t.Logf("faults fired: %+v", st)
}
