package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"ddstore/internal/transport"
)

// pipeOps runs a fixed read/write sequence through a wrapped pipe end and
// returns the injector's stats — the determinism probe.
func pipeOps(t *testing.T, sc Scenario, ops int) Stats {
	t.Helper()
	in := New(sc)
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.Conn(a)
	defer wrapped.Close()

	// Drain the far end so writes complete.
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			b.Write(buf[:1])
		}
	}()
	msg := []byte("0123456789abcdef")
	one := make([]byte, 1)
	for i := 0; i < ops; i++ {
		if _, err := wrapped.Write(msg); err != nil {
			break // injected reset: the sequence ends here, deterministically
		}
		if _, err := io.ReadFull(wrapped, one); err != nil {
			break
		}
	}
	return in.Stats()
}

func TestInjectionIsDeterministic(t *testing.T) {
	sc := Scenario{Seed: 77, ResetProb: 0.02, StallProb: 0.05, StallFor: time.Millisecond,
		CorruptProb: 0.1, PartialWriteProb: 0.02}
	first := pipeOps(t, sc, 200)
	for i := 0; i < 3; i++ {
		if got := pipeOps(t, sc, 200); got != first {
			t.Fatalf("run %d: stats %+v, first run %+v", i, got, first)
		}
	}
	if first == (Stats{Conns: first.Conns}) {
		t.Fatalf("scenario injected nothing: %+v", first)
	}
	// A different seed must give a different fault sequence.
	sc2 := sc
	sc2.Seed = 78
	if got := pipeOps(t, sc2, 200); got == first {
		t.Fatalf("seed 77 and 78 injected identically: %+v", got)
	}
}

func TestCorruptWriteFlipsExactlyOneByte(t *testing.T) {
	in := New(Scenario{Seed: 1, CorruptProb: 1})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.Conn(a)
	defer wrapped.Close()

	msg := []byte("hello, fabric")
	got := make([]byte, len(msg))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(b, got)
		done <- err
	}()
	if _, err := wrapped.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range msg {
		if msg[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (%q -> %q)", diff, msg, got)
	}
	// The caller's buffer must stay pristine.
	if string(msg) != "hello, fabric" {
		t.Fatalf("caller buffer mutated: %q", msg)
	}
	if in.Stats().Corruptions != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestResetAbortsConnection(t *testing.T) {
	in := New(Scenario{Seed: 1, ResetProb: 1})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.Conn(a)
	defer wrapped.Close()
	if _, err := wrapped.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Every later operation fails too: the connection is dead.
	if _, err := wrapped.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after reset: %v", err)
	}
	if in.Stats().Resets != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestFaultyChunkSourceCorruptsCopies(t *testing.T) {
	src := &transport.MemChunk{Lo: 0, Hi: 1, Encoded: [][]byte{{1, 2, 3, 4}}}
	in := New(Scenario{Seed: 4, SourceCorruptProb: 1})
	faulty := in.ChunkSource(src)
	if lo, hi := faulty.LocalRange(); lo != 0 || hi != 1 {
		t.Fatalf("range [%d,%d)", lo, hi)
	}
	got, err := faulty.LocalSampleBytes(0)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i, v := range src.Encoded[0] {
		if got[i] != v {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
	// The backing store must never be mutated.
	if src.Encoded[0][0] != 1 || src.Encoded[0][3] != 4 {
		t.Fatalf("backing store corrupted: %v", src.Encoded[0])
	}
	if _, err := faulty.LocalSampleBytes(9); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if in.Stats().SourceCorruptions != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestSlowStartHitsFirstOpOnly(t *testing.T) {
	in := New(Scenario{Seed: 2, SlowStart: 30 * time.Millisecond})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.Conn(a)
	defer wrapped.Close()
	go io.Copy(io.Discard, b)

	start := time.Now()
	wrapped.Write([]byte("x"))
	firstOp := time.Since(start)
	start = time.Now()
	wrapped.Write([]byte("x"))
	secondOp := time.Since(start)
	if firstOp < 25*time.Millisecond {
		t.Fatalf("first op took %v, slow-start not applied", firstOp)
	}
	if secondOp > 20*time.Millisecond {
		t.Fatalf("second op took %v, slow-start misapplied", secondOp)
	}
	if in.Stats().SlowStarts != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestBreakAllSeversLiveConns(t *testing.T) {
	in := New(Scenario{Seed: 6})
	a, b := net.Pipe()
	defer b.Close()
	wrapped := in.Conn(a)
	if n := in.BreakAll(); n != 1 {
		t.Fatalf("broke %d conns, want 1", n)
	}
	if _, err := wrapped.Write([]byte("x")); err == nil {
		t.Fatal("write on severed conn succeeded")
	}
	wrapped.Close()
	if n := in.BreakAll(); n != 0 {
		t.Fatalf("closed conn still tracked (%d live)", n)
	}
}
