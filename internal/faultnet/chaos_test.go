package faultnet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

// chaosChunk encodes ds samples [lo, hi) into a servable chunk.
func chaosChunk(t *testing.T, ds *datasets.Dataset, lo, hi int64) *transport.MemChunk {
	t.Helper()
	gs := make([]*graph.Graph, 0, hi-lo)
	for id := lo; id < hi; id++ {
		g, err := ds.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return transport.NewMemChunk(lo, gs)
}

// TestGroupSurvivesChaos is the chaos soak: 4 servers in 2 replica groups
// run under a seeded fault scenario (5% connection resets, 1% corrupt
// payloads, occasional stalls longer than the client deadline), and one
// server is killed mid-run. Every sample must still load correctly on
// every pass, with the failover machinery demonstrably engaged. The
// scenario RNG is seeded, so each seed replays the same fault mix.
func TestGroupSurvivesChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})

	// Union of fault kinds over the fixed seeds; each kind must fire in at
	// least one seed (reset, stall -> deadline, corrupt -> checksum
	// reject, dead server -> replica failover is asserted per seed).
	var union Stats
	var unionTimeouts, unionChecksum int64

	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := New(Scenario{
				Seed:      seed,
				ResetProb: 0.05,
				StallProb: 0.01, StallFor: 250 * time.Millisecond,
				CorruptProb: 0.01,
			})

			// 2 replica groups x 2 servers, all accepting through the
			// injector.
			bounds := [][2]int64{{0, 20}, {20, 40}}
			servers := make([][]*transport.Server, 2)
			addrs := make([][]string, 2)
			for r := 0; r < 2; r++ {
				for _, bd := range bounds {
					ln, err := net.Listen("tcp", "127.0.0.1:0")
					if err != nil {
						t.Fatal(err)
					}
					srv := transport.ServeListener(in.Listener(ln), chaosChunk(t, ds, bd[0], bd[1]),
						transport.ServerOptions{WriteTimeout: time.Second})
					defer srv.Close()
					servers[r] = append(servers[r], srv)
					addrs[r] = append(addrs[r], srv.Addr())
				}
			}

			prof := trace.New()
			grp, err := transport.NewGroupReplicas(addrs, transport.GroupOptions{
				Client: transport.ClientOptions{
					Policy: transport.RetryPolicy{
						MaxAttempts: 8,
						BaseDelay:   time.Millisecond,
						MaxDelay:    10 * time.Millisecond,
						DialTimeout: time.Second,
						ReadTimeout: 60 * time.Millisecond,
						Seed:        seed,
					},
					Counters: prof,
				},
				FailoverCooldown: 300 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer grp.Close()

			verifyAll := func(pass string) {
				for id := int64(0); id < 40; id++ {
					g, err := grp.Get(id)
					if err != nil {
						t.Fatalf("%s: sample %d: %v", pass, id, err)
					}
					want, _ := ds.Sample(id)
					if g.ID != id || g.NumNodes != want.NumNodes || g.Y[0] != want.Y[0] {
						t.Fatalf("%s: sample %d corrupted end to end", pass, id)
					}
				}
			}

			verifyAll("healthy pass")
			// Kill one server mid-run: replica 0's owner of [0,20).
			servers[0][0].Close()
			verifyAll("degraded pass 1")
			verifyAll("degraded pass 2")

			if prof.Counter(transport.CounterFailovers) == 0 {
				t.Fatalf("dead server never triggered failover: %v", prof.Counters())
			}
			st := in.Stats()
			t.Logf("seed %d: injector %+v, counters %v", seed, st, prof.Counters())
			union.Resets += st.Resets
			union.Stalls += st.Stalls
			union.Corruptions += st.Corruptions
			unionTimeouts += prof.Counter(transport.CounterTimeouts)
			unionChecksum += prof.Counter(transport.CounterChecksumErrors)
		})
	}

	if union.Resets == 0 {
		t.Error("no seed injected a connection reset")
	}
	if union.Stalls == 0 || unionTimeouts == 0 {
		t.Errorf("no seed exercised stall -> deadline (stalls=%d timeouts=%d)", union.Stalls, unionTimeouts)
	}
	if union.Corruptions == 0 || unionChecksum == 0 {
		t.Errorf("no seed exercised corrupt -> checksum reject (corruptions=%d rejects=%d)", union.Corruptions, unionChecksum)
	}
}

// TestCacheSurvivesOwnerDeath is the cache/chaos interplay: the hot-sample
// cache is warmed through a fault injector, then the owning servers die.
// Cached ids must keep loading with ZERO additional round trips; ids that
// were never cached must fail over to the surviving replica (and, once
// every owner of their range is dead, fail outright) — the cache is a
// resilience layer on top of replica failover, not a replacement for it.
func TestCacheSurvivesOwnerDeath(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})
	in := New(Scenario{Seed: 7, ResetProb: 0.05})

	// 2 replica groups x 2 servers, all accepting through the injector.
	bounds := [][2]int64{{0, 20}, {20, 40}}
	servers := make([][]*transport.Server, 2)
	addrs := make([][]string, 2)
	for r := 0; r < 2; r++ {
		for _, bd := range bounds {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := transport.ServeListener(in.Listener(ln), chaosChunk(t, ds, bd[0], bd[1]),
				transport.ServerOptions{WriteTimeout: time.Second})
			defer srv.Close()
			servers[r] = append(servers[r], srv)
			addrs[r] = append(addrs[r], srv.Addr())
		}
	}

	prof := trace.New()
	grp, err := transport.NewGroupReplicas(addrs, transport.GroupOptions{
		Client: transport.ClientOptions{
			Policy: transport.RetryPolicy{
				MaxAttempts: 8,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				DialTimeout: time.Second,
				ReadTimeout: 100 * time.Millisecond,
				Seed:        7,
			},
			Counters: prof,
		},
		FailoverCooldown: 100 * time.Millisecond,
		CacheBytes:       1 << 20, // the whole dataset fits
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()

	load := func(pass string, ids []int64) {
		t.Helper()
		got, err := grp.Load(ids)
		if err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		for i, g := range got {
			if g.ID != ids[i] {
				t.Fatalf("%s: slot %d got sample %d, want %d", pass, i, g.ID, ids[i])
			}
		}
	}
	idRange := func(lo, hi int64) []int64 {
		ids := make([]int64, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		return ids
	}

	// Warm the cache with HALF of the [0,20) chunk, through injected faults.
	load("warm pass", idRange(0, 10))

	// Kill replica 0's owner of [0,20): cached ids stay wire-free, uncached
	// ids must fail over to replica 1's owner.
	servers[0][0].Close()
	before := prof.Counter(transport.CounterRoundTrips)
	load("cached after owner death", idRange(0, 10))
	if d := prof.Counter(transport.CounterRoundTrips) - before; d != 0 {
		t.Fatalf("cached ids cost %d round trips after owner death, want 0", d)
	}
	load("uncached failover", idRange(10, 20))
	if prof.Counter(transport.CounterFailovers) == 0 {
		t.Fatalf("uncached ids never failed over: %v", prof.Counters())
	}

	// Kill the surviving owner too: every server holding [0,20) is now
	// dead, yet the cache (warmed partly through failover fetches) still
	// serves the whole range without touching the wire.
	servers[1][0].Close()
	before = prof.Counter(transport.CounterRoundTrips)
	load("fully cached, all owners dead", idRange(0, 20))
	if d := prof.Counter(transport.CounterRoundTrips) - before; d != 0 {
		t.Fatalf("cached range cost %d round trips with every owner dead, want 0", d)
	}
	// The other chunk is untouched by the carnage.
	load("other chunk still served", idRange(20, 40))
}
