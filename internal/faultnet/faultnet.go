// Package faultnet is a deterministic, seeded fault injector for the TCP
// data plane. It wraps net.Listener / net.Conn (and transport.ChunkSource)
// to inject the faults a real fabric produces — connection resets, read/
// write stalls, partial writes, corrupt payloads, and slow-start latency —
// under the control of a Scenario, so every chaos test is reproducible:
// the same scenario seed and operation sequence injects the same faults.
//
// The injector sits on the accept path (Injector.Listener wrapping a
// server's listener) or the dial path (Injector.Dialer wrapping a client's
// DialFunc). Each connection derives its own RNG from (Scenario.Seed,
// connection ordinal), so per-connection fault sequences do not depend on
// interleaving across connections.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ddstore/internal/transport"
)

// Scenario describes one reproducible fault mix. Probabilities are checked
// independently per I/O operation (per Read and per Write on a wrapped
// connection), in the fixed order reset, stall, partial write, corruption,
// so a draw sequence is a pure function of the scenario and the operation
// sequence on a connection.
type Scenario struct {
	// Seed drives every random draw. The zero seed is valid (and distinct
	// from seed 1).
	Seed int64

	// ResetProb is P(the operation aborts the connection), modelling a
	// peer crash or an RST from a middlebox.
	ResetProb float64

	// StallProb is P(the operation first sleeps StallFor), modelling a
	// hung peer or a congested path. The peer's deadline, not the stall,
	// decides who gives up first.
	StallProb float64
	StallFor  time.Duration

	// PartialWriteProb is P(a Write delivers only a prefix and then aborts
	// the connection), modelling a peer dying mid-frame.
	PartialWriteProb float64

	// CorruptProb is P(a Write flips one byte), modelling payload
	// corruption in flight. Wire CRC32 checksums must catch this.
	CorruptProb float64

	// SlowStart adds fixed latency to the first operation of every
	// connection, modelling cold paths (ARP, route lookup, TLS...).
	SlowStart time.Duration

	// SourceCorruptProb is P(a FaultyChunkSource read returns a copy with
	// one byte flipped), modelling storage-level corruption *before* the
	// wire checksum is computed — the fault wire CRCs cannot catch and
	// end-to-end validation (graph decode, replica failover) must.
	SourceCorruptProb float64
}

// Stats counts the faults an injector actually fired, by kind. Chaos tests
// assert on these to prove a scenario exercised what it claims to.
type Stats struct {
	Resets            int64
	Stalls            int64
	PartialWrites     int64
	Corruptions       int64
	SlowStarts        int64
	SourceCorruptions int64
	Conns             int64
}

// ErrInjected marks every error produced by the injector, so tests can
// tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Injector applies one Scenario to any number of connections.
type Injector struct {
	sc Scenario

	resets            atomic.Int64
	stalls            atomic.Int64
	partials          atomic.Int64
	corruptions       atomic.Int64
	slowStarts        atomic.Int64
	sourceCorruptions atomic.Int64
	connSeq           atomic.Int64

	mu   sync.Mutex
	live map[*conn]struct{}
}

// New returns an injector for the scenario.
func New(sc Scenario) *Injector {
	return &Injector{sc: sc, live: map[*conn]struct{}{}}
}

// Scenario returns the injector's scenario.
func (in *Injector) Scenario() Scenario { return in.sc }

// Stats returns a snapshot of the fault counts fired so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Resets:            in.resets.Load(),
		Stalls:            in.stalls.Load(),
		PartialWrites:     in.partials.Load(),
		Corruptions:       in.corruptions.Load(),
		SlowStarts:        in.slowStarts.Load(),
		SourceCorruptions: in.sourceCorruptions.Load(),
		Conns:             in.connSeq.Load(),
	}
}

// BreakAll force-closes every live wrapped connection — a transient
// network blip severing established flows while the hosts stay up. Peers
// see resets; reconnects go through the (still healthy) listener.
func (in *Injector) BreakAll() int {
	in.mu.Lock()
	conns := make([]*conn, 0, len(in.live))
	for c := range in.live {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.abort()
	}
	return len(conns)
}

// Conn wraps a single connection with the injector's scenario.
func (in *Injector) Conn(nc net.Conn) net.Conn {
	seq := in.connSeq.Add(1)
	c := &conn{
		Conn: nc,
		in:   in,
		rng:  rand.New(rand.NewSource(in.sc.Seed ^ seq*0x1E3779B97F4A7C15)),
	}
	c.first.Store(true)
	in.mu.Lock()
	in.live[c] = struct{}{}
	in.mu.Unlock()
	return c
}

// Listener wraps a listener so every accepted connection is injected.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dialer wraps a transport dial function so every dialed connection is
// injected (client-side faults).
func (in *Injector) Dialer(base transport.DialFunc) transport.DialFunc {
	if base == nil {
		base = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		nc, err := base(addr)
		if err != nil {
			return nil, err
		}
		return in.Conn(nc), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(nc), nil
}

// conn injects faults into one connection's Reads and Writes. The RNG is
// guarded by mu so concurrent use keeps the draw sequence well-defined.
type conn struct {
	net.Conn
	in    *Injector
	mu    sync.Mutex
	rng   *rand.Rand
	first atomic.Bool
	dead  atomic.Bool
}

// draws takes n probability draws atomically with respect to other ops on
// this connection.
func (c *conn) draws(n int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, n)
	for i := range out {
		out[i] = c.rng.Float64()
	}
	return out
}

// intn draws a bounded int (used to pick the corrupted byte).
func (c *conn) intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// abort severs the connection immediately. On TCP, SetLinger(0) turns the
// close into an RST so the peer sees a genuine connection reset rather
// than a graceful EOF.
func (c *conn) abort() {
	c.dead.Store(true)
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

func (c *conn) Close() error {
	c.in.mu.Lock()
	delete(c.in.live, c)
	c.in.mu.Unlock()
	return c.Conn.Close()
}

func (c *conn) slowStart() {
	if c.in.sc.SlowStart > 0 && c.first.CompareAndSwap(true, false) {
		c.in.slowStarts.Add(1)
		time.Sleep(c.in.sc.SlowStart)
	}
}

func (c *conn) Read(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, fmt.Errorf("%w: connection reset", ErrInjected)
	}
	c.slowStart()
	d := c.draws(2)
	if d[0] < c.in.sc.ResetProb {
		c.in.resets.Add(1)
		c.abort()
		return 0, fmt.Errorf("%w: connection reset", ErrInjected)
	}
	if d[1] < c.in.sc.StallProb {
		c.in.stalls.Add(1)
		time.Sleep(c.in.sc.StallFor)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.dead.Load() {
		return 0, fmt.Errorf("%w: connection reset", ErrInjected)
	}
	c.slowStart()
	d := c.draws(4)
	if d[0] < c.in.sc.ResetProb {
		c.in.resets.Add(1)
		c.abort()
		return 0, fmt.Errorf("%w: connection reset", ErrInjected)
	}
	if d[1] < c.in.sc.StallProb {
		c.in.stalls.Add(1)
		time.Sleep(c.in.sc.StallFor)
	}
	if d[2] < c.in.sc.PartialWriteProb && len(p) > 1 {
		c.in.partials.Add(1)
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.abort()
		return n, fmt.Errorf("%w: partial write then reset", ErrInjected)
	}
	if d[3] < c.in.sc.CorruptProb && len(p) > 0 {
		c.in.corruptions.Add(1)
		corrupt := make([]byte, len(p))
		copy(corrupt, p)
		corrupt[c.intn(len(corrupt))] ^= 0xFF
		return c.Conn.Write(corrupt)
	}
	return c.Conn.Write(p)
}

// FaultyChunkSource wraps a ChunkSource to inject storage-level payload
// corruption: the served bytes are already wrong before the wire checksum
// is computed, so only end-to-end validation (decode failure, failover to
// a clean replica) catches it.
type FaultyChunkSource struct {
	Src transport.ChunkSource

	in  *Injector
	mu  sync.Mutex
	rng *rand.Rand
}

// ChunkSource wraps src with the injector's SourceCorruptProb.
func (in *Injector) ChunkSource(src transport.ChunkSource) *FaultyChunkSource {
	return &FaultyChunkSource{
		Src: src,
		in:  in,
		rng: rand.New(rand.NewSource(in.sc.Seed ^ 0x5DEECE66D)),
	}
}

// LocalRange implements transport.ChunkSource.
func (f *FaultyChunkSource) LocalRange() (int64, int64) { return f.Src.LocalRange() }

// LocalSampleBytes implements transport.ChunkSource, sometimes corruptly.
func (f *FaultyChunkSource) LocalSampleBytes(id int64) ([]byte, error) {
	data, err := f.Src.LocalSampleBytes(id)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	hit := f.rng.Float64() < f.in.sc.SourceCorruptProb && len(data) > 0
	var idx int
	if hit {
		idx = f.rng.Intn(len(data))
	}
	f.mu.Unlock()
	if !hit {
		return data, nil
	}
	f.in.sourceCorruptions.Add(1)
	corrupt := make([]byte, len(data))
	copy(corrupt, data)
	corrupt[idx] ^= 0xFF
	return corrupt, nil
}
