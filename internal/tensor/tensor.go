// Package tensor provides the dense float32 matrix operations the GNN
// substrate is built on: matmul (plain and transposed variants), bias and
// activation kernels, and element-wise helpers. Everything is row-major and
// allocation-explicit; layers reuse buffers across steps where it matters.
package tensor

import (
	"fmt"
	"math"

	"ddstore/internal/vtime"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps data (not copied) as a Rows×Cols matrix.
func FromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values for %dx%d matrix", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Randomize fills the matrix with Glorot-uniform values using rng: uniform
// in ±sqrt(6/(fanIn+fanOut)).
func (m *Matrix) Randomize(rng *vtime.RNG) {
	limit := float32(math.Sqrt(6 / float64(m.Rows+m.Cols)))
	for i := range m.Data {
		m.Data[i] = (2*float32(rng.Float64()) - 1) * limit
	}
}

// MatMul computes out = a · b, allocating out. a is r×k, b is k×c.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a · b into a preallocated out (overwritten).
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul into %dx%d = %dx%d · %dx%d",
			out.Rows, out.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// ikj order: stream through b rows for cache friendliness. Parallel
	// over output rows: each row is zeroed and accumulated by exactly one
	// worker in the serial k order, so results are bit-identical for any
	// worker count.
	ParallelFor(a.Rows, 2*a.Cols*b.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Cols; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range brow {
					orow[j] += aik * brow[j]
				}
			}
		}
	})
}

// MatMulAT computes out = aᵀ · b. a is k×r, b is k×c, out is r×c.
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulAT %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	// Parallel over output rows (a's columns): every worker streams the k
	// rows in order but only touches its own out-row range, preserving the
	// serial per-cell accumulation order exactly.
	ParallelFor(a.Cols, 2*a.Rows*b.Cols, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				aki := arow[i]
				if aki == 0 {
					continue
				}
				orow := out.Row(i)
				for j := range brow {
					orow[j] += aki * brow[j]
				}
			}
		}
	})
	return out
}

// MatMulBT computes out = a · bᵀ. a is r×k, b is c×k, out is r×c.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulBT %dx%d · %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	// Parallel over rows of a; each out row is an independent set of dot
	// products, so partitioning cannot change any accumulation order.
	ParallelFor(a.Rows, 2*a.Cols*b.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var sum float32
				for k := range arow {
					sum += arow[k] * brow[k]
				}
				orow[j] = sum
			}
		}
	})
	return out
}

// AddBiasRows adds bias (length Cols) to every row of m in place.
func AddBiasRows(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: bias %d for %d cols", len(bias), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// BiasGrad accumulates the column sums of dOut into gBias.
func BiasGrad(gBias []float32, dOut *Matrix) {
	if len(gBias) != dOut.Cols {
		panic(fmt.Sprintf("tensor: bias grad %d for %d cols", len(gBias), dOut.Cols))
	}
	for i := 0; i < dOut.Rows; i++ {
		row := dOut.Row(i)
		for j := range row {
			gBias[j] += row[j]
		}
	}
}

// ReluInPlace applies max(0, x) element-wise.
func ReluInPlace(m *Matrix) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ReluBackward zeroes gradient entries where the forward activation was
// clipped: dIn = dOut ⊙ (activated > 0). activated is the post-ReLU output.
func ReluBackward(dOut, activated *Matrix) {
	if len(dOut.Data) != len(activated.Data) {
		panic("tensor: relu backward shape mismatch")
	}
	for i := range dOut.Data {
		if activated.Data[i] <= 0 {
			dOut.Data[i] = 0
		}
	}
}

// AddInPlace computes a += b.
func AddInPlace(a, b *Matrix) {
	if len(a.Data) != len(b.Data) {
		panic("tensor: add shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies every element by s.
func ScaleInPlace(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// ConcatCols concatenates matrices with equal row counts side by side.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("tensor: concat rows %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// SplitCols splits m into column blocks of the given widths (must sum to
// m.Cols), copying.
func SplitCols(m *Matrix, widths ...int) []*Matrix {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != m.Cols {
		panic(fmt.Sprintf("tensor: split widths sum %d != %d cols", total, m.Cols))
	}
	out := make([]*Matrix, len(widths))
	off := 0
	for bi, w := range widths {
		b := New(m.Rows, w)
		for i := 0; i < m.Rows; i++ {
			copy(b.Row(i), m.Row(i)[off:off+w])
		}
		out[bi] = b
		off += w
	}
	return out
}
