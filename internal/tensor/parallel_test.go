package tensor

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"ddstore/internal/vtime"
)

func randMat(rng *vtime.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// withParallelism runs f under the given worker count and restores the
// default afterwards.
func withParallelism(p int, f func()) {
	SetParallelism(p)
	defer SetParallelism(0)
	f()
}

func assertBitsEqual(t *testing.T, name string, got, want *Matrix, par int) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s parallelism=%d: shape %dx%d want %dx%d", name, par, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("%s parallelism=%d: element %d = %x want %x (not bit-identical)",
				name, par, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// TestMatMulDeterministicAcrossParallelism asserts the three matmul
// kernels are bit-identical for every worker count, on shapes chosen to
// hit uneven block boundaries, the small-input inline cutoff, and sizes
// large enough to genuinely dispatch to the pool.
func TestMatMulDeterministicAcrossParallelism(t *testing.T) {
	shapes := []struct{ r, k, c int }{
		{1, 1, 1},
		{3, 5, 7},
		{17, 9, 33},
		{64, 64, 64},
		{127, 63, 65},
	}
	for _, sh := range shapes {
		rng := vtime.NewRNG(uint64(sh.r*1000 + sh.k*100 + sh.c))
		a := randMat(rng, sh.r, sh.k)
		b := randMat(rng, sh.k, sh.c)
		at := randMat(rng, sh.k, sh.r) // for MatMulAT: k×r ᵀ· k×c
		bt := randMat(rng, sh.c, sh.k) // for MatMulBT: r×k · (c×k)ᵀ

		var refMM, refAT, refBT *Matrix
		withParallelism(1, func() {
			refMM = MatMul(a, b)
			refAT = MatMulAT(at, b)
			refBT = MatMulBT(a, bt)
		})
		for _, par := range []int{2, 3, 8} {
			withParallelism(par, func() {
				assertBitsEqual(t, "MatMul", MatMul(a, b), refMM, par)
				assertBitsEqual(t, "MatMulAT", MatMulAT(at, b), refAT, par)
				assertBitsEqual(t, "MatMulBT", MatMulBT(a, bt), refBT, par)
			})
		}
	}
}

// TestMatMulIntoOverwritesUnderParallelism: MatMulInto must fully
// overwrite a dirty out buffer (the serial kernel zeroed it up front; the
// parallel kernel zeroes per row).
func TestMatMulIntoOverwritesUnderParallelism(t *testing.T) {
	rng := vtime.NewRNG(7)
	a := randMat(rng, 33, 17)
	b := randMat(rng, 17, 29)
	var want *Matrix
	withParallelism(1, func() { want = MatMul(a, b) })
	withParallelism(8, func() {
		out := New(33, 29)
		for i := range out.Data {
			out.Data[i] = 999
		}
		MatMulInto(out, a, b)
		assertBitsEqual(t, "MatMulInto", out, want, 8)
	})
}

func TestSetParallelismDefaults(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Parallelism = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism = %d after SetParallelism(3)", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism = %d after SetParallelism(-5), want default", got)
	}
}

// TestParallelForCoversRange: every index in [0, n) is visited exactly
// once, for worker counts below, at, and above the range size, with and
// without the inline cutoff.
func TestParallelForCoversRange(t *testing.T) {
	for _, par := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, 100} {
			// work high enough to defeat the inline cutoff for n > 0.
			counts := make([]int, n)
			var mu sync.Mutex
			withParallelism(par, func() {
				ParallelFor(n, minParallelWork, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("par=%d n=%d: block [%d,%d) out of range", par, n, lo, hi)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						counts[i]++
					}
					mu.Unlock()
				})
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("par=%d n=%d: index %d visited %d times", par, n, i, c)
				}
			}
		}
	}
}

// TestParallelForNested: a body that calls ParallelFor again must not
// deadlock — saturated dispatch degrades to inline execution.
func TestParallelForNested(t *testing.T) {
	withParallelism(8, func() {
		var outer sync.WaitGroup
		total := 0
		var mu sync.Mutex
		outer.Add(1)
		go func() {
			defer outer.Done()
			ParallelFor(16, minParallelWork, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ParallelFor(4, minParallelWork, func(lo2, hi2 int) {
						mu.Lock()
						total += hi2 - lo2
						mu.Unlock()
					})
				}
			})
		}()
		outer.Wait()
		if total != 16*4 {
			t.Fatalf("nested ParallelFor covered %d of %d", total, 16*4)
		}
	})
}
