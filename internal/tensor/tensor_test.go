package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"ddstore/internal/vtime"
)

func TestNewAndAccess(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("shape: %+v", m)
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Fatalf("Row = %v", row)
	}
}

func TestFromDataValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromData(2, 2, []float32{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromData(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 9
	if m.Data[0] != 1 {
		t.Fatal("clone aliases")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromData(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromData(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if got.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTransposedVariantsAgree(t *testing.T) {
	rng := vtime.NewRNG(1)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		ri, k, c := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := New(ri, k)
		b := New(k, c)
		a.Randomize(r)
		b.Randomize(r)
		want := MatMul(a, b)

		// aT stored transposed: aT is k×ri with aT[k][i] = a[i][k].
		aT := New(k, ri)
		for i := 0; i < ri; i++ {
			for kk := 0; kk < k; kk++ {
				aT.Set(kk, i, a.At(i, kk))
			}
		}
		gotAT := MatMulAT(aT, b)
		// bT stored transposed: c×k.
		bT := New(c, k)
		for kk := 0; kk < k; kk++ {
			for j := 0; j < c; j++ {
				bT.Set(j, kk, b.At(kk, j))
			}
		}
		gotBT := MatMulBT(a, bT)
		for i := range want.Data {
			if math.Abs(float64(want.Data[i]-gotAT.Data[i])) > 1e-4 {
				return false
			}
			if math.Abs(float64(want.Data[i]-gotBT.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddBiasAndGrad(t *testing.T) {
	m := FromData(2, 2, []float32{1, 2, 3, 4})
	AddBiasRows(m, []float32{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddBias: %v", m.Data)
	}
	g := make([]float32, 2)
	BiasGrad(g, m)
	if g[0] != 11+13 || g[1] != 22+24 {
		t.Fatalf("BiasGrad = %v", g)
	}
}

func TestRelu(t *testing.T) {
	m := FromData(1, 4, []float32{-1, 0, 2, -3})
	ReluInPlace(m)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("Relu = %v", m.Data)
		}
	}
	d := FromData(1, 4, []float32{1, 1, 1, 1})
	ReluBackward(d, m)
	wantD := []float32{0, 0, 1, 0}
	for i := range wantD {
		if d.Data[i] != wantD[i] {
			t.Fatalf("ReluBackward = %v", d.Data)
		}
	}
}

func TestAddScale(t *testing.T) {
	a := FromData(1, 2, []float32{1, 2})
	b := FromData(1, 2, []float32{3, 4})
	AddInPlace(a, b)
	if a.Data[0] != 4 || a.Data[1] != 6 {
		t.Fatalf("Add = %v", a.Data)
	}
	ScaleInPlace(a, 0.5)
	if a.Data[0] != 2 || a.Data[1] != 3 {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	a := FromData(2, 1, []float32{1, 2})
	b := FromData(2, 2, []float32{3, 4, 5, 6})
	cat := ConcatCols(a, b)
	if cat.Rows != 2 || cat.Cols != 3 {
		t.Fatalf("Concat shape %dx%d", cat.Rows, cat.Cols)
	}
	if cat.At(0, 0) != 1 || cat.At(0, 1) != 3 || cat.At(1, 2) != 6 {
		t.Fatalf("Concat = %v", cat.Data)
	}
	parts := SplitCols(cat, 1, 2)
	for i := range a.Data {
		if parts[0].Data[i] != a.Data[i] {
			t.Fatal("split[0] mismatch")
		}
	}
	for i := range b.Data {
		if parts[1].Data[i] != b.Data[i] {
			t.Fatal("split[1] mismatch")
		}
	}
}

func TestConcatRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ConcatCols(New(2, 1), New(3, 1))
}

func TestRandomizeGlorotRange(t *testing.T) {
	m := New(50, 50)
	m.Randomize(vtime.NewRNG(3))
	limit := float32(math.Sqrt(6.0 / 100))
	var nonzero int
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside ±%v", v, limit)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 2400 {
		t.Fatalf("only %d nonzero entries", nonzero)
	}
}

func TestMatMulIntoReuse(t *testing.T) {
	a := FromData(1, 2, []float32{1, 2})
	b := FromData(2, 1, []float32{3, 4})
	out := New(1, 1)
	MatMulInto(out, a, b)
	if out.Data[0] != 11 {
		t.Fatalf("MatMulInto = %v", out.Data[0])
	}
	MatMulInto(out, a, b) // must overwrite, not accumulate
	if out.Data[0] != 11 {
		t.Fatalf("MatMulInto accumulated: %v", out.Data[0])
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := vtime.NewRNG(1)
	x := New(128, 128)
	y := New(128, 128)
	x.Randomize(rng)
	y.Randomize(rng)
	out := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}
