package tensor

import (
	"fmt"
	"testing"

	"ddstore/internal/vtime"
)

// BenchmarkMatMul measures the matmul kernels at serial parallelism and at
// 4 workers, across the sizes the PNA layers actually multiply (hidden dim
// 200 in the paper's config). On a single-core host the parallel numbers
// degrade gracefully to ~serial: blocks run inline when the pool is busy.
func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{64, 256, 512} {
		rng := vtime.NewRNG(uint64(size))
		x := randMat(rng, size, size)
		y := randMat(rng, size, size)
		out := New(size, size)
		for _, par := range []int{1, 4} {
			b.Run(fmt.Sprintf("%dx%d/par%d", size, size, par), func(b *testing.B) {
				SetParallelism(par)
				defer SetParallelism(0)
				b.SetBytes(int64(size * size * 4))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulInto(out, x, y)
				}
			})
		}
	}
}

func BenchmarkMatMulAT(b *testing.B) {
	const size = 256
	rng := vtime.NewRNG(size)
	x := randMat(rng, size, size)
	y := randMat(rng, size, size)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dx%d/par%d", size, size, par), func(b *testing.B) {
			SetParallelism(par)
			defer SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulAT(x, y)
			}
		})
	}
}

func BenchmarkMatMulBT(b *testing.B) {
	const size = 256
	rng := vtime.NewRNG(size)
	x := randMat(rng, size, size)
	y := randMat(rng, size, size)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dx%d/par%d", size, size, par), func(b *testing.B) {
			SetParallelism(par)
			defer SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulBT(x, y)
			}
		})
	}
}
