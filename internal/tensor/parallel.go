package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The tensor kernels (and the GNN edge-aggregation kernels built on
// ParallelFor) share one process-wide worker pool. Parallelism is a
// scheduling knob only: every kernel partitions its work so each output
// element is produced by exactly one worker with the same floating-point
// operation order as the serial loop, so results are bit-identical for
// every worker count.

// parallelism is the configured worker count; 0 means "use GOMAXPROCS".
var parallelism atomic.Int64

// minParallelWork is the scalar-op threshold below which ParallelFor runs
// inline: dispatching blocks to the pool costs on the order of a
// microsecond, so a kernel must carry at least tens of thousands of scalar
// operations before the fan-out pays for itself.
const minParallelWork = 1 << 16

// SetParallelism sets the worker count used by the compute kernels.
// n <= 0 restores the default, runtime.GOMAXPROCS(0). SetParallelism(1)
// makes every kernel run its serial loop inline. The setting never changes
// results (see the package note above); it only changes how the work is
// scheduled.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// The shared pool: GOMAXPROCS resident workers draining a task channel.
// Workers are started lazily on the first parallel kernel dispatch.
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		poolTasks = make(chan func(), 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for f := range poolTasks {
					f()
				}
			}()
		}
	})
}

// ParallelFor splits [0, n) into at most Parallelism() contiguous blocks
// and runs body(lo, hi) on each, returning when every block is done. work
// is the approximate scalar-op cost per index: when n*work is below the
// dispatch threshold (or parallelism is 1) the body runs inline on the
// caller, so tiny inputs never pay dispatch overhead.
//
// Correctness contract: the blocks tile [0, n) disjointly, so any body
// whose writes for index i depend only on index i (and whose per-index
// operation order matches the serial loop) produces bit-identical results
// for every worker count. Nesting is safe: the caller *helps* — it drains
// the shared task queue while waiting for its own blocks — so a pool
// worker whose body calls ParallelFor again cannot deadlock against its
// own sub-tasks.
func ParallelFor(n, work int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 || int64(n)*int64(work) < minParallelWork {
		body(0, n)
		return
	}
	ensurePool()
	var remaining atomic.Int64
	remaining.Store(int64(p))
	done := make(chan struct{})
	for b := p - 1; b >= 1; b-- {
		lo, hi := b*n/p, (b+1)*n/p
		run := func(lo, hi int) func() {
			return func() {
				body(lo, hi)
				if remaining.Add(-1) == 0 {
					close(done)
				}
			}
		}(lo, hi)
		select {
		case poolTasks <- run:
		default:
			run() // pool saturated: run inline rather than block
		}
	}
	// Block 0 runs on the caller; then the caller keeps pulling queued
	// tasks (its own blocks, or anyone's) until its blocks all finish.
	body(0, n/p)
	if remaining.Add(-1) == 0 {
		return
	}
	for {
		select {
		case <-done:
			return
		case f := <-poolTasks:
			f()
		}
	}
}
