// Package hydra assembles the HydraGNN model the paper trains: a stack of
// message-passing layers followed by one or more fully-connected output
// heads. Like the original HydraGNN, the message-passing policy is
// pluggable (the paper's evaluation uses PNA; GIN is also provided) and the
// model is multi-headed — the ORNL AISD-Ex task predicts 50 peak positions
// and 50 intensities, which map naturally onto two heads.
//
// The paper's configuration (§4.2) is 6 PNA layers of hidden dimension 200
// followed by 3 fully-connected layers of 200 neurons with ReLU, trained
// with AdamW at 1e-3 and a ReduceLROnPlateau schedule.
package hydra

import (
	"fmt"

	"ddstore/internal/gnn"
	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// ConvType selects the message-passing policy.
type ConvType int

const (
	// ConvPNA is Principal Neighbourhood Aggregation (the paper's choice).
	ConvPNA ConvType = iota
	// ConvGIN is the Graph Isomorphism Network convolution — cheaper,
	// included as HydraGNN's alternative policy.
	ConvGIN
)

func (t ConvType) String() string {
	switch t {
	case ConvPNA:
		return "PNA"
	case ConvGIN:
		return "GIN"
	default:
		return fmt.Sprintf("ConvType(%d)", int(t))
	}
}

// Head describes one output head: its own FC stack and loss weight. The
// batch target vector is the concatenation of all heads' targets in
// declaration order.
type Head struct {
	Name      string
	OutputDim int
	FCLayers  int
	// Weight scales this head's contribution to the loss (0 means 1).
	Weight float64
}

// Config describes a HydraGNN instance.
type Config struct {
	NodeFeatDim int
	EdgeFeatDim int
	HiddenDim   int      // paper: 200
	ConvLayers  int      // paper: 6
	Conv        ConvType // paper: PNA
	// FCLayers and OutputDim describe the single default head; ignored when
	// Heads is set.
	FCLayers  int // paper: 3
	OutputDim int
	// Heads configures multi-task output (optional).
	Heads []Head
	// Delta is the PNA degree-scaler normalizer; 0 means a molecular
	// default of log(4).
	Delta float64
	Seed  uint64
}

// heads returns the normalized head list.
func (c Config) heads() []Head {
	if len(c.Heads) > 0 {
		out := make([]Head, len(c.Heads))
		copy(out, c.Heads)
		for i := range out {
			if out[i].Weight == 0 {
				out[i].Weight = 1
			}
		}
		return out
	}
	return []Head{{Name: "out", OutputDim: c.OutputDim, FCLayers: c.FCLayers, Weight: 1}}
}

// TotalOutputDim returns the concatenated width of all heads.
func (c Config) TotalOutputDim() int {
	total := 0
	for _, h := range c.heads() {
		total += h.OutputDim
	}
	return total
}

// PaperConfig returns the configuration from §4.2 for a dataset's
// dimensions.
func PaperConfig(nodeDim, edgeDim, outputDim int) Config {
	return Config{
		NodeFeatDim: nodeDim,
		EdgeFeatDim: edgeDim,
		HiddenDim:   200,
		ConvLayers:  6,
		FCLayers:    3,
		OutputDim:   outputDim,
		Seed:        1,
	}
}

// conv abstracts one message-passing layer so the stack can mix policies.
type conv interface {
	Params() []*gnn.Param
	forward(x *tensor.Matrix, b *graph.Batch) (*tensor.Matrix, any)
	backward(dOut *tensor.Matrix, cache any) *tensor.Matrix
	flops(nodes, edges int) float64
}

type pnaConv struct{ *gnn.PNA }

func (p pnaConv) forward(x *tensor.Matrix, b *graph.Batch) (*tensor.Matrix, any) {
	out, c := p.PNA.Forward(x, b)
	return out, c
}
func (p pnaConv) backward(dOut *tensor.Matrix, cache any) *tensor.Matrix {
	return p.PNA.Backward(dOut, cache.(*gnn.PNACache))
}
func (p pnaConv) flops(nodes, edges int) float64 { return p.FlopsForward(nodes, edges) }

type ginConv struct{ *gnn.GIN }

func (g ginConv) forward(x *tensor.Matrix, b *graph.Batch) (*tensor.Matrix, any) {
	out, c := g.GIN.Forward(x, b)
	return out, c
}
func (g ginConv) backward(dOut *tensor.Matrix, cache any) *tensor.Matrix {
	return g.GIN.Backward(dOut, cache.(*gnn.GINCache))
}
func (g ginConv) flops(nodes, edges int) float64 { return g.FlopsForward(nodes, edges) }

// headNet is one output head's layers.
type headNet struct {
	spec Head
	fcs  []*gnn.Linear
	out  *gnn.Linear
}

// Model is one replica of HydraGNN. In DDP every rank holds an identical
// replica (same seed → same initialization, and allreduced gradients keep
// them in lockstep).
type Model struct {
	cfg   Config
	embed *gnn.Linear
	convs []conv
	heads []*headNet
}

// New builds the model; it panics on nonsensical configuration because
// that is a programming error, not an input error.
func New(cfg Config) *Model {
	if cfg.NodeFeatDim <= 0 || cfg.HiddenDim <= 0 || cfg.ConvLayers < 0 {
		panic(fmt.Sprintf("hydra: bad config %+v", cfg))
	}
	heads := cfg.heads()
	for _, h := range heads {
		if h.OutputDim <= 0 || h.FCLayers < 0 {
			panic(fmt.Sprintf("hydra: bad head %+v", h))
		}
	}
	if cfg.Delta == 0 {
		cfg.Delta = 1.386 // log(4): typical molecular degree
	}
	rng := vtime.NewRNG(cfg.Seed + 0x5DEECE66D)
	m := &Model{cfg: cfg}
	m.embed = gnn.NewLinear("embed", cfg.NodeFeatDim, cfg.HiddenDim, rng)
	for i := 0; i < cfg.ConvLayers; i++ {
		name := fmt.Sprintf("conv%d", i)
		switch cfg.Conv {
		case ConvGIN:
			m.convs = append(m.convs, ginConv{gnn.NewGIN(name, cfg.HiddenDim, cfg.HiddenDim, rng)})
		default:
			m.convs = append(m.convs,
				pnaConv{gnn.NewPNA(name, cfg.HiddenDim, cfg.HiddenDim, cfg.EdgeFeatDim, cfg.Delta, rng)})
		}
	}
	for hi, h := range heads {
		net := &headNet{spec: h}
		for i := 0; i < h.FCLayers; i++ {
			net.fcs = append(net.fcs, gnn.NewLinear(fmt.Sprintf("head%d.fc%d", hi, i), cfg.HiddenDim, cfg.HiddenDim, rng))
		}
		net.out = gnn.NewLinear(fmt.Sprintf("head%d.out", hi), cfg.HiddenDim, h.OutputDim, rng)
		m.heads = append(m.heads, net)
	}
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Params returns all learnable parameters in a stable order.
func (m *Model) Params() []*gnn.Param {
	out := m.embed.Params()
	for _, c := range m.convs {
		out = append(out, c.Params()...)
	}
	for _, h := range m.heads {
		for _, fc := range h.fcs {
			out = append(out, fc.Params()...)
		}
		out = append(out, h.out.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Value.Data)
	}
	return n
}

// headState is one head's forward intermediates.
type headState struct {
	fcIn  []*tensor.Matrix
	fcOut []*tensor.Matrix // post-ReLU
	pred  *tensor.Matrix
}

// forwardState carries the intermediates Backward needs.
type forwardState struct {
	batch     *graph.Batch
	x0        *tensor.Matrix // node features
	embedOut  *tensor.Matrix // post-ReLU embedding
	convCache []any
	pooled    *tensor.Matrix
	heads     []*headState
	pred      *tensor.Matrix // concatenated head outputs
}

// Forward computes predictions for a batch (heads concatenated column-wise)
// and returns the state needed for Backward.
func (m *Model) Forward(b *graph.Batch) (*tensor.Matrix, *forwardState) {
	st := &forwardState{batch: b}
	st.x0 = tensor.FromData(b.NumNodes, b.NodeFeatDim, b.NodeFeat)
	h := m.embed.Forward(st.x0)
	tensor.ReluInPlace(h)
	st.embedOut = h
	for _, conv := range m.convs {
		var cache any
		h, cache = conv.forward(h, b)
		st.convCache = append(st.convCache, cache)
	}
	pooled := gnn.MeanPool(h, b)
	st.pooled = pooled

	preds := make([]*tensor.Matrix, len(m.heads))
	for hi, head := range m.heads {
		hs := &headState{}
		x := pooled
		for _, fc := range head.fcs {
			hs.fcIn = append(hs.fcIn, x)
			y := fc.Forward(x)
			tensor.ReluInPlace(y)
			hs.fcOut = append(hs.fcOut, y)
			x = y
		}
		hs.pred = head.out.Forward(x)
		preds[hi] = hs.pred
		st.heads = append(st.heads, hs)
	}
	if len(preds) == 1 {
		st.pred = preds[0]
	} else {
		st.pred = tensor.ConcatCols(preds...)
	}
	return st.pred, st
}

// Loss computes the weighted multi-head MSE of predictions against the
// batch targets and the gradient of the concatenated prediction.
func (m *Model) Loss(pred *tensor.Matrix, b *graph.Batch) (float64, *tensor.Matrix) {
	heads := m.cfg.heads()
	if len(heads) == 1 {
		loss, d := gnn.MSELoss(pred, b.Y)
		return loss * heads[0].Weight, scaled(d, float32(heads[0].Weight))
	}
	// Split targets and predictions per head, compute weighted losses.
	total := m.cfg.TotalOutputDim()
	if pred.Cols != total || b.YDim != total {
		panic(fmt.Sprintf("hydra: %d prediction cols, %d target dims, config total %d", pred.Cols, b.YDim, total))
	}
	dPred := tensor.New(pred.Rows, pred.Cols)
	var loss float64
	off := 0
	for _, h := range heads {
		for row := 0; row < pred.Rows; row++ {
			prow := pred.Row(row)[off : off+h.OutputDim]
			trow := b.Y[row*total+off : row*total+off+h.OutputDim]
			drow := dPred.Row(row)[off : off+h.OutputDim]
			n := float64(pred.Rows * h.OutputDim)
			for j := range prow {
				diff := float64(prow[j]) - float64(trow[j])
				loss += h.Weight * diff * diff / n
				drow[j] = float32(h.Weight * 2 * diff / n)
			}
		}
		off += h.OutputDim
	}
	return loss, dPred
}

func scaled(m *tensor.Matrix, s float32) *tensor.Matrix {
	if s == 1 {
		return m
	}
	tensor.ScaleInPlace(m, s)
	return m
}

// Backward accumulates gradients for a forward pass, given dPred (from
// Loss; concatenated across heads).
func (m *Model) Backward(st *forwardState, dPred *tensor.Matrix) {
	// Split the prediction gradient per head and run each head's stack,
	// accumulating the pooled-feature gradient.
	widths := make([]int, len(m.heads))
	for i, h := range m.heads {
		widths[i] = h.spec.OutputDim
	}
	var parts []*tensor.Matrix
	if len(m.heads) == 1 {
		parts = []*tensor.Matrix{dPred}
	} else {
		parts = tensor.SplitCols(dPred, widths...)
	}
	dPooled := tensor.New(st.pooled.Rows, st.pooled.Cols)
	for hi, head := range m.heads {
		hs := st.heads[hi]
		var lastIn *tensor.Matrix
		if len(hs.fcOut) > 0 {
			lastIn = hs.fcOut[len(hs.fcOut)-1]
		} else {
			lastIn = st.pooled
		}
		d := head.out.Backward(lastIn, parts[hi])
		for i := len(head.fcs) - 1; i >= 0; i-- {
			tensor.ReluBackward(d, hs.fcOut[i])
			d = head.fcs[i].Backward(hs.fcIn[i], d)
		}
		tensor.AddInPlace(dPooled, d)
	}
	dNodes := gnn.MeanPoolBackward(dPooled, st.batch)
	for i := len(m.convs) - 1; i >= 0; i-- {
		dNodes = m.convs[i].backward(dNodes, st.convCache[i])
	}
	tensor.ReluBackward(dNodes, st.embedOut)
	m.embed.Backward(st.x0, dNodes)
}

// TrainStep runs forward+backward on a batch and returns the loss.
// Gradients accumulate into the parameters (call the optimizer's ZeroGrad
// between steps).
func (m *Model) TrainStep(b *graph.Batch) float64 {
	pred, st := m.Forward(b)
	loss, dPred := m.Loss(pred, b)
	m.Backward(st, dPred)
	return loss
}

// EvalLoss runs forward only and returns the loss.
func (m *Model) EvalLoss(b *graph.Batch) float64 {
	pred, _ := m.Forward(b)
	loss, _ := m.Loss(pred, b)
	return loss
}

// GradBytes returns the byte size of the flattened gradient, the volume a
// DDP allreduce moves per step.
func (m *Model) GradBytes() int64 { return int64(m.NumParams()) * 4 }

// FlattenGrads copies all gradients into one flat vector (allocating if buf
// is too small) — the bucketing step before the DDP allreduce.
func (m *Model) FlattenGrads(buf []float32) []float32 {
	n := m.NumParams()
	if cap(buf) < n {
		buf = make([]float32, n)
	}
	buf = buf[:n]
	off := 0
	for _, p := range m.Params() {
		off += copy(buf[off:], p.Grad.Data)
	}
	return buf
}

// UnflattenGrads writes a flat gradient vector back into the parameters
// (after the allreduce), scaling each element by scale (1/worldSize for
// gradient averaging).
func (m *Model) UnflattenGrads(buf []float32, scale float32) {
	off := 0
	for _, p := range m.Params() {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = buf[off] * scale
			off++
		}
	}
	if off != len(buf) {
		panic(fmt.Sprintf("hydra: gradient vector has %d values, model needs %d", len(buf), off))
	}
}

// FlopsPerBatch estimates the forward+backward flop count for a batch —
// the quantity the simulated-cluster experiments convert into GPU time.
// Backward is counted as 2× forward, the standard estimate.
func (m *Model) FlopsPerBatch(numNodes, numEdges, numGraphs int) float64 {
	f := m.embed.FlopsForward(numNodes)
	for _, c := range m.convs {
		f += c.flops(numNodes, numEdges)
	}
	for _, h := range m.heads {
		for _, fc := range h.fcs {
			f += fc.FlopsForward(numGraphs)
		}
		f += h.out.FlopsForward(numGraphs)
	}
	return 3 * f
}

// ParamCount returns the scalar parameter count of a configuration without
// allocating the model — used by the simulated-compute mode, where
// thousands of ranks share one machine and instantiating real weights per
// rank would exhaust memory.
func ParamCount(cfg Config) int {
	if cfg.HiddenDim <= 0 {
		return 0
	}
	h := cfg.HiddenDim
	n := (cfg.NodeFeatDim + 1) * h // embed
	var perConv int
	switch cfg.Conv {
	case ConvGIN:
		perConv = (h+1)*h + (h+1)*h
	default:
		perConv = (h+1)*h + (13*h+1)*h
		if cfg.EdgeFeatDim > 0 {
			perConv += (cfg.EdgeFeatDim + 1) * h
		}
	}
	n += cfg.ConvLayers * perConv
	for _, head := range cfg.heads() {
		n += head.FCLayers * (h + 1) * h
		n += (h + 1) * head.OutputDim
	}
	return n
}

// FlopsEstimate returns the forward+backward flop estimate for a batch
// shape without allocating the model; it matches Model.FlopsPerBatch.
func FlopsEstimate(cfg Config, numNodes, numEdges, numGraphs int) float64 {
	h := float64(cfg.HiddenDim)
	nodes := float64(numNodes)
	edges := float64(numEdges)
	graphs := float64(numGraphs)
	f := 2 * nodes * float64(cfg.NodeFeatDim) * h // embed
	var perConv float64
	switch cfg.Conv {
	case ConvGIN:
		perConv = edges*h*2 + 2*nodes*h*h + 2*nodes*h*h
	default:
		perConv = 2*nodes*h*h + edges*h*8 + 2*nodes*(13*h)*h
		if cfg.EdgeFeatDim > 0 {
			perConv += 2 * edges * float64(cfg.EdgeFeatDim) * h
		}
	}
	f += float64(cfg.ConvLayers) * perConv
	for _, head := range cfg.heads() {
		f += float64(head.FCLayers) * 2 * graphs * h * h
		f += 2 * graphs * h * float64(head.OutputDim)
	}
	return 3 * f
}
