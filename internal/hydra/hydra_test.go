package hydra

import (
	"math"
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/optim"
	"ddstore/internal/vtime"
)

func smallConfig(nodeDim, edgeDim, outDim int) Config {
	return Config{
		NodeFeatDim: nodeDim,
		EdgeFeatDim: edgeDim,
		HiddenDim:   16,
		ConvLayers:  2,
		FCLayers:    2,
		OutputDim:   outDim,
		Seed:        7,
	}
}

func batchFrom(t *testing.T, ds *datasets.Dataset, ids ...int64) *graph.Batch {
	t.Helper()
	gs := make([]*graph.Graph, len(ids))
	for i, id := range ids {
		g, err := ds.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	b, err := graph.NewBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(3, 0, 100)
	if cfg.HiddenDim != 200 || cfg.ConvLayers != 6 || cfg.FCLayers != 3 || cfg.OutputDim != 100 {
		t.Fatalf("PaperConfig = %+v", cfg)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}

func TestDeterministicInitialization(t *testing.T) {
	a := New(smallConfig(3, 0, 1))
	b := New(smallConfig(3, 0, 1))
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param count differs")
	}
	for i := range pa {
		for j := range pa[i].Value.Data {
			if pa[i].Value.Data[j] != pb[i].Value.Data[j] {
				t.Fatalf("same-seed models differ at %s[%d]", pa[i].Name, j)
			}
		}
	}
	c := New(Config{NodeFeatDim: 3, HiddenDim: 16, ConvLayers: 2, FCLayers: 2, OutputDim: 1, Seed: 8})
	diff := false
	pc := c.Params()
	for j := range pa[0].Value.Data {
		if pa[0].Value.Data[j] != pc[0].Value.Data[j] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestForwardShapes(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	b := batchFrom(t, ds, 0, 1, 2, 3)
	m := New(smallConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim()))
	pred, st := m.Forward(b)
	if pred.Rows != 4 || pred.Cols != 1 {
		t.Fatalf("pred %dx%d", pred.Rows, pred.Cols)
	}
	for _, v := range pred.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite prediction %v", v)
		}
	}
	if st == nil {
		t.Fatal("no forward state")
	}
}

func TestParamCountPaperScale(t *testing.T) {
	// The paper-scale model (hidden 200, 6 PNA + 3 FC) lands in the
	// millions of parameters — the gradient allreduce volume that matters
	// for GPU-Comm modeling.
	m := New(PaperConfig(3, 0, 100))
	n := m.NumParams()
	if n < 3_000_000 || n > 10_000_000 {
		t.Fatalf("paper-scale params = %d, want millions", n)
	}
	if m.GradBytes() != int64(n)*4 {
		t.Fatal("GradBytes inconsistent")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 64})
	m := New(smallConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim()))
	opt := optim.NewAdamW(m.Params(), 1e-3)
	b := batchFrom(t, ds, 0, 1, 2, 3, 4, 5, 6, 7)
	first := m.EvalLoss(b)
	var last float64
	for step := 0; step < 150; step++ {
		opt.ZeroGrad()
		last = m.TrainStep(b)
		opt.ClipGradNorm(5)
		opt.Step()
	}
	if !(last < first*0.5) {
		t.Fatalf("loss did not halve: first %v, last %v", first, last)
	}
	if math.IsNaN(last) {
		t.Fatal("training diverged to NaN")
	}
}

func TestTrainingLearnsIsingEnergy(t *testing.T) {
	ds := datasets.Ising(datasets.Config{NumGraphs: 32})
	m := New(smallConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim()))
	opt := optim.NewAdamW(m.Params(), 1e-3)
	b := batchFrom(t, ds, 0, 1, 2, 3)
	first := m.EvalLoss(b)
	var last float64
	for step := 0; step < 100; step++ {
		opt.ZeroGrad()
		last = m.TrainStep(b)
		opt.ClipGradNorm(5)
		opt.Step()
	}
	if !(last < first) {
		t.Fatalf("Ising loss did not improve: %v -> %v", first, last)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	m := New(smallConfig(3, 0, 2))
	// Fill gradients with recognizable values.
	rng := vtime.NewRNG(3)
	for _, p := range m.Params() {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = float32(rng.NormFloat64())
		}
	}
	flat := m.FlattenGrads(nil)
	if len(flat) != m.NumParams() {
		t.Fatalf("flat len %d, params %d", len(flat), m.NumParams())
	}
	// Unflatten with scale 2 must exactly double every gradient.
	want := make([]float32, len(flat))
	copy(want, flat)
	m.UnflattenGrads(flat, 2)
	got := m.FlattenGrads(nil)
	for i := range want {
		if got[i] != 2*want[i] {
			t.Fatalf("grad %d: %v != 2*%v", i, got[i], want[i])
		}
	}
	// Buffer reuse path.
	buf := make([]float32, m.NumParams())
	flat2 := m.FlattenGrads(buf)
	if &flat2[0] != &buf[0] {
		t.Fatal("FlattenGrads reallocated a sufficient buffer")
	}
}

func TestDDPReplicasStayInLockstep(t *testing.T) {
	// Two replicas with identical seeds, each seeing a different local
	// batch: after exchanging and averaging flattened gradients they must
	// have bit-identical weights — the DDP invariant.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	m1 := New(smallConfig(ds.NodeFeatDim(), 0, 1))
	m2 := New(smallConfig(ds.NodeFeatDim(), 0, 1))
	o1 := optim.NewAdamW(m1.Params(), 1e-3)
	o2 := optim.NewAdamW(m2.Params(), 1e-3)
	b1 := batchFrom(t, ds, 0, 1, 2, 3)
	b2 := batchFrom(t, ds, 4, 5, 6, 7)
	for step := 0; step < 5; step++ {
		o1.ZeroGrad()
		o2.ZeroGrad()
		m1.TrainStep(b1)
		m2.TrainStep(b2)
		g1 := m1.FlattenGrads(nil)
		g2 := m2.FlattenGrads(nil)
		sum := make([]float32, len(g1))
		for i := range sum {
			sum[i] = g1[i] + g2[i]
		}
		m1.UnflattenGrads(sum, 0.5)
		m2.UnflattenGrads(sum, 0.5)
		o1.Step()
		o2.Step()
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data {
			if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
				t.Fatalf("replicas diverged at %s[%d]", p1[i].Name, j)
			}
		}
	}
}

func TestFlopsPerBatchScales(t *testing.T) {
	m := New(smallConfig(3, 0, 1))
	small := m.FlopsPerBatch(100, 200, 4)
	big := m.FlopsPerBatch(1000, 2000, 40)
	if small <= 0 || big <= small {
		t.Fatalf("flops: small %v big %v", small, big)
	}
}

func TestEvalLossMatchesTrainLoss(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	m := New(smallConfig(ds.NodeFeatDim(), 0, 1))
	b := batchFrom(t, ds, 0, 1)
	eval := m.EvalLoss(b)
	train := m.TrainStep(b)
	if eval != train {
		t.Fatalf("EvalLoss %v != TrainStep loss %v", eval, train)
	}
}

func TestParamCountMatchesModel(t *testing.T) {
	for _, cfg := range []Config{
		smallConfig(3, 0, 1),
		smallConfig(4, 1, 100),
		PaperConfig(3, 0, 375),
	} {
		m := New(cfg)
		if got, want := ParamCount(cfg), m.NumParams(); got != want {
			t.Fatalf("cfg %+v: ParamCount %d != model %d", cfg, got, want)
		}
	}
}

func TestFlopsEstimateMatchesModel(t *testing.T) {
	cfg := smallConfig(4, 1, 10)
	m := New(cfg)
	if got, want := FlopsEstimate(cfg, 500, 900, 16), m.FlopsPerBatch(500, 900, 16); got != want {
		t.Fatalf("FlopsEstimate %v != model %v", got, want)
	}
}
