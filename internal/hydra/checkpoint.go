package hydra

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Checkpoint format: a little-endian binary stream of named parameter
// tensors. HydraGNN training runs on shared machines are preemptible, so
// being able to save and resume replicas (which stay bit-identical across
// ranks under DDP) matters in practice.
const (
	checkpointMagic uint32 = 0x48594447 // "HYDG"
	ckptVersion            = 1
)

// Save writes the model's parameters to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Cols)); err != nil {
			return err
		}
		for _, v := range p.Value.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores the model's parameters from r. The checkpoint must have
// been written by a model with an identical architecture (same parameter
// names and shapes in the same order).
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("hydra: checkpoint: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("hydra: checkpoint: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("hydra: checkpoint: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("hydra: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("hydra: checkpoint parameter %q, model expects %q", name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("hydra: checkpoint %s is %dx%d, model expects %dx%d",
				p.Name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		for i := range p.Value.Data {
			var bits uint32
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return err
			}
			p.Value.Data[i] = math.Float32frombits(bits)
		}
	}
	return nil
}

// SaveFile writes a checkpoint to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores a checkpoint from path.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Load(f)
}
