package hydra

import (
	"math"
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/tensor"
)

// TestHydraLossDeterministicAcrossParallelism runs the full model — six
// PNA convolutions, pooling, FC head, loss, backprop — under every worker
// count and asserts the loss and every parameter gradient are bit-identical
// to the serial run. This is the end-to-end guarantee the kernel-level
// determinism tests compose into: multicore training must converge exactly
// like single-core training.
func TestHydraLossDeterministicAcrossParallelism(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 64})
	graphs := make([]*graph.Graph, 0, 16)
	for id := int64(0); id < 16; id++ {
		g, err := ds.ReadSample(id)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, g)
	}
	batch, err := graph.NewBatch(graphs)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		NodeFeatDim: ds.NodeFeatDim(),
		EdgeFeatDim: ds.EdgeFeatDim(),
		HiddenDim:   32,
		ConvLayers:  3,
		FCLayers:    2,
		OutputDim:   ds.OutputDim(),
		Seed:        42,
	}

	run := func() (float64, []float32) {
		m := New(cfg) // deterministic init from Seed
		pred, st := m.Forward(batch)
		loss, dPred := m.Loss(pred, batch)
		m.Backward(st, dPred)
		return loss, m.FlattenGrads(nil)
	}

	tensor.SetParallelism(1)
	refLoss, refGrads := run()
	tensor.SetParallelism(0)
	for _, par := range []int{2, 3, 8} {
		tensor.SetParallelism(par)
		loss, grads := run()
		tensor.SetParallelism(0)
		if math.Float64bits(loss) != math.Float64bits(refLoss) {
			t.Fatalf("parallelism=%d: loss %v != serial %v (not bit-identical)", par, loss, refLoss)
		}
		if len(grads) != len(refGrads) {
			t.Fatalf("parallelism=%d: %d grads want %d", par, len(grads), len(refGrads))
		}
		for i := range grads {
			if math.Float32bits(grads[i]) != math.Float32bits(refGrads[i]) {
				t.Fatalf("parallelism=%d: grad[%d] = %x want %x (not bit-identical)",
					par, i, math.Float32bits(grads[i]), math.Float32bits(refGrads[i]))
			}
		}
	}
}
