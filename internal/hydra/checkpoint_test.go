package hydra

import (
	"bytes"
	"path/filepath"
	"testing"

	"ddstore/internal/datasets"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig(3, 0, 2)
	m := New(cfg)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A differently-seeded model has different weights; loading restores
	// exactly the saved ones.
	cfg2 := cfg
	cfg2.Seed = 99
	m2 := New(cfg2)
	if err := m2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].Value.Data {
			if p1[i].Value.Data[j] != p2[i].Value.Data[j] {
				t.Fatalf("weight %s[%d] differs after load", p1[i].Name, j)
			}
		}
	}
}

func TestCheckpointPredictionsIdentical(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	m := New(smallConfig(ds.NodeFeatDim(), 0, 1))
	b := batchFrom(t, ds, 0, 1, 2)
	want := m.EvalLoss(b)

	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(ds.NodeFeatDim(), 0, 1)
	cfg2.Seed = 1234
	m2 := New(cfg2)
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := m2.EvalLoss(b); got != want {
		t.Fatalf("restored model loss %v, want %v", got, want)
	}
}

func TestCheckpointRejectsMismatchedArchitecture(t *testing.T) {
	m := New(smallConfig(3, 0, 2))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(smallConfig(3, 0, 5)) // different head width
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched architecture accepted")
	}
	bigger := New(Config{NodeFeatDim: 3, HiddenDim: 16, ConvLayers: 3, FCLayers: 2, OutputDim: 2, Seed: 7})
	if err := bigger.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched layer count accepted")
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	m := New(smallConfig(3, 0, 2))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xFF
	if err := m.Load(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
	good := make([]byte, len(data))
	copy(good, data)
	good[0] ^= 0xFF // restore
	if err := m.Load(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if err := m.LoadFile("/nonexistent/x.ckpt"); err == nil {
		t.Fatal("missing file accepted")
	}
}
