package hydra

import (
	"math"
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/optim"
	"ddstore/internal/tensor"
)

func multiHeadConfig(nodeDim int) Config {
	return Config{
		NodeFeatDim: nodeDim,
		HiddenDim:   12,
		ConvLayers:  1,
		Heads: []Head{
			{Name: "peaks", OutputDim: 50, FCLayers: 1},
			{Name: "intensities", OutputDim: 50, FCLayers: 1, Weight: 2},
		},
		Seed: 3,
	}
}

func TestMultiHeadForwardShape(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 10})
	m := New(multiHeadConfig(ds.NodeFeatDim()))
	if m.cfg.TotalOutputDim() != 100 {
		t.Fatalf("TotalOutputDim = %d", m.cfg.TotalOutputDim())
	}
	b := batchFrom(t, ds, 0, 1, 2)
	pred, _ := m.Forward(b)
	if pred.Rows != 3 || pred.Cols != 100 {
		t.Fatalf("pred %dx%d", pred.Rows, pred.Cols)
	}
}

func TestMultiHeadLossWeights(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 10})
	m := New(multiHeadConfig(ds.NodeFeatDim()))
	b := batchFrom(t, ds, 0, 1)
	pred, _ := m.Forward(b)

	// Head 2 has weight 2: doubling its error must raise loss twice as fast
	// as doubling head 1's.
	loss0, _ := m.Loss(pred, b)
	bump := func(off, dim int) float64 {
		p := pred.Clone()
		for row := 0; row < p.Rows; row++ {
			for j := off; j < off+dim; j++ {
				p.Row(row)[j] += 1
			}
		}
		l, _ := m.Loss(p, b)
		return l - loss0
	}
	d1 := bump(0, 50)
	d2 := bump(50, 50)
	// Each bump adds weight * (2*diff*1 + 1)/... identical geometry, so the
	// ratio of added loss is the weight ratio once the cross terms cancel
	// approximately; verify d2 is clearly larger.
	if d2 < 1.5*d1 {
		t.Fatalf("head weights not applied: d1=%v d2=%v", d1, d2)
	}
}

func TestMultiHeadGradCheck(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 10})
	cfg := Config{
		NodeFeatDim: ds.NodeFeatDim(),
		HiddenDim:   6,
		ConvLayers:  1,
		Heads: []Head{
			{Name: "a", OutputDim: 50, FCLayers: 1},
			{Name: "b", OutputDim: 50, FCLayers: 0, Weight: 0.5},
		},
		Seed: 5,
	}
	m := New(cfg)
	b := batchFrom(t, ds, 0, 1)
	forward := func() float64 {
		pred, _ := m.Forward(b)
		loss, _ := m.Loss(pred, b)
		return loss
	}
	pred, st := m.Forward(b)
	_, dPred := m.Loss(pred, b)
	m.Backward(st, dPred)
	// Spot-check a subset of parameters (full check is expensive).
	params := m.Params()
	for _, p := range []int{0, len(params) / 2, len(params) - 1} {
		param := params[p]
		step := len(param.Value.Data)/7 + 1
		for i := 0; i < len(param.Value.Data); i += step {
			orig := param.Value.Data[i]
			const h = 1e-3
			param.Value.Data[i] = orig + h
			up := forward()
			param.Value.Data[i] = orig - h
			down := forward()
			param.Value.Data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(param.Grad.Data[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(math.Max(math.Abs(numeric), math.Abs(analytic)), 1)
			if diff > 0.05*scale {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", param.Name, i, analytic, numeric)
			}
		}
	}
}

func TestMultiHeadTrainingLearns(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 32})
	m := New(multiHeadConfig(ds.NodeFeatDim()))
	opt := optim.NewAdamW(m.Params(), 1e-3)
	b := batchFrom(t, ds, 0, 1, 2, 3)
	first := m.EvalLoss(b)
	var last float64
	for i := 0; i < 80; i++ {
		opt.ZeroGrad()
		last = m.TrainStep(b)
		opt.ClipGradNorm(5)
		opt.Step()
	}
	if !(last < first) {
		t.Fatalf("multi-head training did not improve: %v -> %v", first, last)
	}
}

func TestGINModelTrains(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	cfg := Config{
		NodeFeatDim: ds.NodeFeatDim(),
		HiddenDim:   16,
		ConvLayers:  2,
		Conv:        ConvGIN,
		FCLayers:    1,
		OutputDim:   1,
		Seed:        7,
	}
	m := New(cfg)
	if got, want := m.NumParams(), ParamCount(cfg); got != want {
		t.Fatalf("GIN ParamCount %d != model %d", want, got)
	}
	opt := optim.NewAdamW(m.Params(), 1e-3)
	b := batchFrom(t, ds, 0, 1, 2, 3)
	first := m.EvalLoss(b)
	var last float64
	for i := 0; i < 100; i++ {
		opt.ZeroGrad()
		last = m.TrainStep(b)
		opt.ClipGradNorm(5)
		opt.Step()
	}
	if !(last < first) {
		t.Fatalf("GIN training did not improve: %v -> %v", first, last)
	}
}

func TestGINFlopsEstimateMatches(t *testing.T) {
	cfg := Config{
		NodeFeatDim: 3, HiddenDim: 16, ConvLayers: 2, Conv: ConvGIN,
		FCLayers: 1, OutputDim: 4, Seed: 1,
	}
	m := New(cfg)
	if got, want := FlopsEstimate(cfg, 200, 400, 8), m.FlopsPerBatch(200, 400, 8); got != want {
		t.Fatalf("FlopsEstimate %v != model %v", got, want)
	}
}

func TestMultiHeadParamCountMatches(t *testing.T) {
	cfg := multiHeadConfig(3)
	m := New(cfg)
	if got, want := ParamCount(cfg), m.NumParams(); got != want {
		t.Fatalf("ParamCount %d != model %d", got, want)
	}
}

func TestHeadsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad head accepted")
		}
	}()
	New(Config{NodeFeatDim: 3, HiddenDim: 8, ConvLayers: 1,
		Heads: []Head{{Name: "x", OutputDim: 0}}, Seed: 1})
}

func TestSingleHeadLossMatchesPlainMSE(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	m := New(smallConfig(ds.NodeFeatDim(), 0, 1))
	b := batchFrom(t, ds, 0, 1)
	pred := tensor.FromData(2, 1, []float32{1, 2})
	gotLoss, _ := m.Loss(pred, b)
	want := (math.Pow(1-float64(b.Y[0]), 2) + math.Pow(2-float64(b.Y[1]), 2)) / 2
	if math.Abs(gotLoss-want) > 1e-5 {
		t.Fatalf("single-head loss %v, want %v", gotLoss, want)
	}
}
