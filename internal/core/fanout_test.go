package core

import (
	"fmt"
	"sync"
	"testing"

	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/graph"
)

// loadAll opens a width-8 store and loads one batch touching every owner.
func fanOutBatch(total int) []int64 {
	ids := make([]int64, 0, 2*8)
	for g := 0; g < 8; g++ {
		base := int64(g * total / 8)
		ids = append(ids, base, base+1)
	}
	return ids
}

// TestLoadFanOutMatchesSerial: the concurrent per-owner fetch must return
// the same graphs and the same traffic counters as FetchParallelism=1, for
// both frameworks, with and without a cache.
func TestLoadFanOutMatchesSerial(t *testing.T) {
	const total = 64
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: total})
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"rma", Options{}},
		{"rma-cached", Options{CacheBytes: 1 << 20}},
		{"rma-nonblocking", Options{NonBlocking: true}},
		{"twosided", Options{Framework: FrameworkTwoSided}},
	} {
		for _, par := range []int{1, 0, 8} {
			t.Run(fmt.Sprintf("%s/par%d", tc.name, par), func(t *testing.T) {
				opts := tc.opts
				opts.FetchParallelism = par
				runWorld(t, 8, nil, func(c *comm.Comm) error {
					s, err := Open(c, ds, opts)
					if err != nil {
						return err
					}
					defer s.Close()
					ids := fanOutBatch(total)
					graphs, err := s.Load(ids)
					if err != nil {
						return err
					}
					for i, g := range graphs {
						if g.ID != ids[i] {
							return fmt.Errorf("rank %d: position %d has id %d want %d", c.Rank(), i, g.ID, ids[i])
						}
						want, _ := ds.ReadSample(ids[i])
						if len(g.NodeFeat) != len(want.NodeFeat) {
							return fmt.Errorf("sample %d: %d node feats want %d", ids[i], len(g.NodeFeat), len(want.NodeFeat))
						}
					}
					st := s.Stats()
					// Every rank loaded 16 samples: 2 local, 14 remote
					// (or cache hits after the first load — not here).
					if st.LocalReads != 2 || st.RemoteGets != 14 {
						return fmt.Errorf("rank %d: stats %+v, want 2 local / 14 remote", c.Rank(), st)
					}
					return s.Barrier()
				})
			})
		}
	}
}

// TestLoadConcurrentRace hammers one store's Load from many goroutines on
// every rank at full fan-out — the -race test for the atomic Stats, the
// flight table, and the buffer pool. Run with: go test -race.
func TestLoadConcurrentRace(t *testing.T) {
	const total = 96
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: total})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{CacheBytes: 1 << 20})
		if err != nil {
			return err
		}
		const loaders = 4
		var wg sync.WaitGroup
		errs := make([]error, loaders)
		for w := 0; w < loaders; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for rep := 0; rep < 5; rep++ {
					ids := make([]int64, 12)
					for i := range ids {
						// Overlapping ids across goroutines exercise the
						// coalescing flight table.
						ids[i] = int64((w*7 + rep*13 + i*5) % total)
					}
					graphs, err := s.Load(ids)
					if err != nil {
						errs[w] = err
						return
					}
					for i, g := range graphs {
						if g.ID != ids[i] {
							errs[w] = fmt.Errorf("goroutine %d: got id %d want %d", w, g.ID, ids[i])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		total := s.Stats()
		if total.LocalReads+total.RemoteGets == 0 {
			return fmt.Errorf("no traffic counted")
		}
		return s.Barrier()
	})
}

// BenchmarkStoreLoadOwners measures one Load against a growing owner
// fan-out (in-process RMA, functional mode), serial vs full parallelism.
func BenchmarkStoreLoadOwners(b *testing.B) {
	const total = 256
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: total})
	for _, owners := range []int{1, 2, 4, 7} {
		for _, par := range []int{1, 0} {
			name := fmt.Sprintf("owners%d/par%d", owners, par)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				w, err := comm.NewWorld(8, 42)
				if err != nil {
					b.Fatal(err)
				}
				runErr := w.Run(func(c *comm.Comm) error {
					s, err := Open(c, ds, Options{FetchParallelism: par})
					if err != nil {
						return err
					}
					if c.Rank() != 0 {
						return s.Barrier()
					}
					// Rank 0 loads 4 samples from each of `owners` remote
					// owners while the rest idle at the barrier.
					var ids []int64
					for g := 1; g <= owners; g++ {
						base := int64(g * total / 8)
						ids = append(ids, base, base+1, base+2, base+3)
					}
					var sink []*graph.Graph
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						sink, err = s.Load(ids)
						if err != nil {
							return err
						}
					}
					b.StopTimer()
					_ = sink
					return s.Barrier()
				})
				if runErr != nil {
					b.Fatal(runErr)
				}
			})
		}
	}
}
