package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/vtime"
)

func TestTwoSidedLoadsCorrectSamples(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Framework: FrameworkTwoSided})
		if err != nil {
			return err
		}
		defer s.Close()
		ids := make([]int64, 40)
		for i := range ids {
			ids[i] = int64(i)
		}
		rng := vtime.NewRNG(uint64(c.Rank() + 5))
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			want, _ := ds.Sample(ids[i])
			if g.ID != ids[i] || g.Y[0] != want.Y[0] {
				return fmt.Errorf("rank %d: sample %d mismatch", c.Rank(), ids[i])
			}
		}
		st := s.Stats()
		if st.RemoteGets == 0 || st.LocalReads == 0 {
			return fmt.Errorf("traffic not recorded: %+v", st)
		}
		if st.LockAcquires != 0 {
			return fmt.Errorf("two-sided path acquired %d RMA locks", st.LockAcquires)
		}
		return c.Barrier()
	})
}

func TestTwoSidedTimedLatencies(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	runWorld(t, 2, cluster.Perlmutter(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Framework: FrameworkTwoSided})
		if err != nil {
			return err
		}
		defer s.Close()
		_, lat, err := s.LoadTimed([]int64{0, 8, 15, 3})
		if err != nil {
			return err
		}
		if len(lat) != 4 {
			return fmt.Errorf("%d latencies", len(lat))
		}
		for i, l := range lat {
			if l <= 0 {
				return fmt.Errorf("latency %d = %v", i, l)
			}
		}
		return c.Barrier()
	})
}

func TestTwoSidedCloseIdempotentAndRMACloseNoop(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	runWorld(t, 2, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Framework: FrameworkTwoSided})
		if err != nil {
			return err
		}
		if err := s.Close(); err != nil {
			return err
		}
		if err := s.Close(); err != nil { // second close is a no-op
			return err
		}
		rma, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		return rma.Close()
	})
}

func TestLockPerSampleCountsLocks(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{LockPerSample: true})
		if err != nil {
			return err
		}
		ids := make([]int64, 32)
		for i := range ids {
			ids[i] = int64(i)
		}
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			if g.ID != ids[i] {
				return fmt.Errorf("id mismatch at %d", i)
			}
		}
		st := s.Stats()
		// Per-sample locking: one lock per remote get (24 remote of 32).
		if st.LockAcquires != st.RemoteGets {
			return fmt.Errorf("locks %d != remote gets %d", st.LockAcquires, st.RemoteGets)
		}
		return nil
	})
}

func TestNonBlockingLoadsCorrectSamples(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 64})
	runWorld(t, 4, cluster.Perlmutter(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{NonBlocking: true})
		if err != nil {
			return err
		}
		ids := make([]int64, 64)
		for i := range ids {
			ids[i] = int64(i)
		}
		got, lat, err := s.LoadTimed(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			want, _ := ds.Sample(ids[i])
			if g.ID != ids[i] || g.NumNodes != want.NumNodes {
				return fmt.Errorf("sample %d mismatch", ids[i])
			}
		}
		for i, l := range lat {
			if l <= 0 {
				return fmt.Errorf("latency %d = %v", i, l)
			}
		}
		return nil
	})
}

// TestCommDesignOrdering verifies the paper's design rationale end-to-end:
// overlapped non-blocking gets beat blocking gets, which beat per-sample
// locking; all RMA variants beat the two-sided design when owners are busy.
func TestCommDesignOrdering(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 2048})
	load := func(opts Options) time.Duration {
		var total time.Duration
		var mu sync.Mutex
		runWorld(t, 8, cluster.Perlmutter(), func(c *comm.Comm) error {
			s, err := Open(c, ds, opts)
			if err != nil {
				return err
			}
			defer s.Close()
			rng := vtime.NewRNG(uint64(c.Rank()) * 31)
			start := c.Clock().Now()
			for batch := 0; batch < 4; batch++ {
				ids := make([]int64, 64)
				for i := range ids {
					ids[i] = int64(rng.Intn(2048))
				}
				if _, err := s.Load(ids); err != nil {
					return err
				}
			}
			elapsed := c.Clock().Now() - start
			mu.Lock()
			total += elapsed
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			return nil
		})
		return total
	}
	perSample := load(Options{LockPerSample: true})
	blocking := load(Options{})
	nonBlocking := load(Options{NonBlocking: true})
	if !(nonBlocking < blocking && blocking < perSample) {
		t.Fatalf("RMA design ordering violated: nb=%v blocking=%v perSample=%v",
			nonBlocking, blocking, perSample)
	}
}
