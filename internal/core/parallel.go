package core

import (
	"sync"
	"sync/atomic"
)

// statsCounters is the loader traffic tally. The fields are atomics so the
// fan-out workers (and concurrent Load callers sharing one store) can
// bump them without a lock; Stats() takes a snapshot into the exported
// struct, keeping the public API unchanged.
type statsCounters struct {
	localReads   atomic.Int64
	remoteGets   atomic.Int64
	bytesLocal   atomic.Int64
	bytesRemote  atomic.Int64
	lockAcquires atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		LocalReads:   c.localReads.Load(),
		RemoteGets:   c.remoteGets.Load(),
		BytesLocal:   c.bytesLocal.Load(),
		BytesRemote:  c.bytesRemote.Load(),
		LockAcquires: c.lockAcquires.Load(),
	}
}

// lockSharedRef opens (or joins) a shared access epoch on owner's window.
// comm.Win tracks one epoch per target, so two goroutines Loading from the
// same owner concurrently must share the epoch: the first locker acquires
// the window lock, later ones piggyback on it (MPI shared locks permit
// concurrent readers), and the last unlockSharedRef releases it.
func (s *Store) lockSharedRef(owner int) error {
	s.epochs.mu.Lock()
	defer s.epochs.mu.Unlock()
	if s.epochs.refs == nil {
		s.epochs.refs = map[int]int{}
	}
	if s.epochs.refs[owner] == 0 {
		if err := s.win.LockShared(owner); err != nil {
			return err
		}
	}
	s.epochs.refs[owner]++
	return nil
}

func (s *Store) unlockSharedRef(owner int) error {
	s.epochs.mu.Lock()
	defer s.epochs.mu.Unlock()
	s.epochs.refs[owner]--
	if s.epochs.refs[owner] > 0 {
		return nil
	}
	delete(s.epochs.refs, owner)
	return s.win.Unlock(owner)
}

// epochRefs refcounts the shared-lock epochs per owner.
type epochRefs struct {
	mu   sync.Mutex
	refs map[int]int
}

// Remote samples are fetched into ref-counted buffers from
// internal/bufarena; the old ad-hoc fetchBufPool (which had to guess
// whether a cache flight retained the buffer) is gone. Each fetcher in
// plane.go hands the buffer's single reference to the delivered
// graph.Lazy, and the engine retains additional references for cache
// entries and coalesced waiters.
