package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ddstore/internal/cache"
)

// statsCounters is the loader traffic tally. The fields are atomics so the
// fan-out workers (and concurrent Load callers sharing one store) can
// bump them without a lock; Stats() takes a snapshot into the exported
// struct, keeping the public API unchanged.
type statsCounters struct {
	localReads   atomic.Int64
	remoteGets   atomic.Int64
	bytesLocal   atomic.Int64
	bytesRemote  atomic.Int64
	lockAcquires atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		LocalReads:   c.localReads.Load(),
		RemoteGets:   c.remoteGets.Load(),
		BytesLocal:   c.bytesLocal.Load(),
		BytesRemote:  c.bytesRemote.Load(),
		LockAcquires: c.lockAcquires.Load(),
	}
}

// fetchParallelism returns how many owners this load may fetch from
// concurrently. Always 1 under a machine model: the virtual-time
// simulator charges modeled costs to per-rank clocks through a
// non-thread-safe RNG, and concurrent charging would break the
// deterministic timings the simulation exists for — so simulated stores
// keep the serial loop and fan-out applies to real-time execution (unit
// tests, the TCP plane, real deployments).
func (s *Store) fetchParallelism(owners int) int {
	if owners <= 1 || s.world.Machine() != nil {
		return 1
	}
	p := s.opts.FetchParallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > owners {
		p = owners
	}
	return p
}

// forEachOwner runs fetch once per owner, fanning out across a bounded
// worker pool when fetchParallelism allows. Errors are recorded per owner
// and the lowest-owner error is returned — the same deterministic choice
// the serial loop makes — though unlike the serial loop the remaining
// owners still complete (their flights must be delivered or failed either
// way).
func (s *Store) forEachOwner(owners []int, fetch func(owner int) error) error {
	par := s.fetchParallelism(len(owners))
	if par <= 1 {
		for _, owner := range owners {
			if err := fetch(owner); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(owners))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fetch(owners[i])
			}
		}()
	}
	for i := range owners {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lockSharedRef opens (or joins) a shared access epoch on owner's window.
// comm.Win tracks one epoch per target, so two goroutines Loading from the
// same owner concurrently must share the epoch: the first locker acquires
// the window lock, later ones piggyback on it (MPI shared locks permit
// concurrent readers), and the last unlockSharedRef releases it.
func (s *Store) lockSharedRef(owner int) error {
	s.epochs.mu.Lock()
	defer s.epochs.mu.Unlock()
	if s.epochs.refs == nil {
		s.epochs.refs = map[int]int{}
	}
	if s.epochs.refs[owner] == 0 {
		if err := s.win.LockShared(owner); err != nil {
			return err
		}
	}
	s.epochs.refs[owner]++
	return nil
}

func (s *Store) unlockSharedRef(owner int) error {
	s.epochs.mu.Lock()
	defer s.epochs.mu.Unlock()
	s.epochs.refs[owner]--
	if s.epochs.refs[owner] > 0 {
		return nil
	}
	delete(s.epochs.refs, owner)
	return s.win.Unlock(owner)
}

// epochRefs refcounts the shared-lock epochs per owner.
type epochRefs struct {
	mu   sync.Mutex
	refs map[int]int
}

// flightBox serializes cache-flight delivery across the fetch workers: the
// flight map is shared state the serial loop used to mutate freely.
type flightBox struct {
	mu      sync.Mutex
	flights map[int64]*cache.Flight
}

func newFlightBox(flights map[int64]*cache.Flight) *flightBox {
	return &flightBox{flights: flights}
}

// deliver completes the flight for id (if this load leads one) with
// freshly fetched, decode-validated bytes: the cache keeps them and every
// coalesced waiter is woken. Reports whether a flight took ownership of
// raw — callers must not recycle delivered buffers.
func (b *flightBox) deliver(id int64, raw []byte) bool {
	if b == nil || b.flights == nil {
		return false
	}
	b.mu.Lock()
	f, ok := b.flights[id]
	if ok {
		delete(b.flights, id)
	}
	b.mu.Unlock()
	if ok {
		f.Deliver(raw)
	}
	return ok
}

// failRemaining fails every flight this load still leads, or every
// coalesced waiter would block forever. Called after the fetch workers
// have finished, so no lock contention remains.
func (b *flightBox) failRemaining(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, f := range b.flights {
		f.Fail(err)
	}
	b.flights = nil
}

// fetchBufPool recycles the scratch buffers remote samples are fetched
// into. graph.Decode copies every field out of the raw bytes, so a buffer
// is dead as soon as decode returns — unless a cache flight took it
// (flightBox.deliver reports that), in which case the cache retains it
// and it must not be recycled.
var fetchBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFetchBuf returns a length-n buffer backed by the pool.
func getFetchBuf(n int) *[]byte {
	bp := fetchBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putFetchBuf(bp *[]byte) { fetchBufPool.Put(bp) }
