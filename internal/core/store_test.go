package core

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
	"ddstore/internal/vtime"
)

func runWorld(t *testing.T, n int, machine *cluster.Machine, fn func(c *comm.Comm) error) {
	t.Helper()
	var opts []comm.Option
	if machine != nil {
		opts = append(opts, comm.WithMachine(machine))
	}
	w, err := comm.NewWorld(n, 42, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestChunkStartsExactCover(t *testing.T) {
	f := func(rawTotal uint16, rawW uint8) bool {
		total := int(rawTotal)%5000 + 1
		w := int(rawW)%64 + 1
		starts := chunkStarts(total, w)
		if starts[0] != 0 || starts[w] != int64(total) {
			return false
		}
		for g := 0; g < w; g++ {
			size := starts[g+1] - starts[g]
			// Balanced: sizes differ by at most 1 and are non-negative.
			if size < 0 || size > int64(total/w)+1 {
				return false
			}
			if starts[g+1] < starts[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		if _, err := Open(c, ds, Options{Width: 3}); err == nil {
			return fmt.Errorf("width 3 with 4 ranks accepted")
		}
		if _, err := Open(c, ds, Options{Width: 5}); err == nil {
			return fmt.Errorf("width > size accepted")
		}
		if _, err := Open(c, ds, Options{Width: -1}); err == nil {
			return fmt.Errorf("negative width accepted")
		}
		empty := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
		_ = empty
		return nil
	})
}

func TestStoreMetadata(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 32})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 2})
		if err != nil {
			return err
		}
		if s.Name() != ds.Name() || s.Len() != 32 || s.Width() != 2 || s.Replicas() != 2 {
			return fmt.Errorf("metadata: name=%q len=%d w=%d r=%d", s.Name(), s.Len(), s.Width(), s.Replicas())
		}
		if s.OutputDim() != 100 || s.NodeFeatDim() != 3 || s.EdgeFeatDim() != 0 {
			return fmt.Errorf("dims wrong")
		}
		lo, hi := s.LocalRange()
		if hi-lo != 16 { // 32 samples / width 2
			return fmt.Errorf("rank %d local range [%d,%d)", c.Rank(), lo, hi)
		}
		if s.MemoryBytes() <= 0 {
			return fmt.Errorf("no chunk memory")
		}
		return nil
	})
}

func TestLoadAllSamplesEveryWidth(t *testing.T) {
	const n = 8
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 37}) // not divisible by widths
	for _, width := range []int{1, 2, 4, 8} {
		width := width
		t.Run(fmt.Sprintf("width=%d", width), func(t *testing.T) {
			runWorld(t, n, cluster.Laptop(), func(c *comm.Comm) error {
				s, err := Open(c, ds, Options{Width: width})
				if err != nil {
					return err
				}
				// Every rank loads every sample in a rank-dependent shuffled
				// order; contents must match the generator.
				ids := make([]int64, 37)
				for i := range ids {
					ids[i] = int64(i)
				}
				rng := vtime.NewRNG(uint64(c.Rank() + 1))
				rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
				got, err := s.Load(ids)
				if err != nil {
					return err
				}
				for i, g := range got {
					want, _ := ds.Sample(ids[i])
					if g.ID != ids[i] || g.NumNodes != want.NumNodes || g.Y[0] != want.Y[0] {
						return fmt.Errorf("rank %d: sample %d mismatch", c.Rank(), ids[i])
					}
				}
				return nil
			})
		})
	}
}

func TestWidthOneIsAllLocal(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 1})
		if err != nil {
			return err
		}
		if s.Replicas() != 4 {
			return fmt.Errorf("replicas = %d", s.Replicas())
		}
		ids := []int64{0, 5, 10, 19}
		if _, err := s.Load(ids); err != nil {
			return err
		}
		st := s.Stats()
		if st.RemoteGets != 0 {
			return fmt.Errorf("width=1 issued %d remote gets", st.RemoteGets)
		}
		if st.LocalReads != int64(len(ids)) {
			return fmt.Errorf("local reads = %d", st.LocalReads)
		}
		return nil
	})
}

func TestDefaultWidthSingleReplica(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 24})
	runWorld(t, 6, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		if s.Width() != 6 || s.Replicas() != 1 {
			return fmt.Errorf("default width=%d replicas=%d", s.Width(), s.Replicas())
		}
		lo, hi := s.LocalRange()
		if hi-lo != 4 {
			return fmt.Errorf("local range [%d,%d)", lo, hi)
		}
		return nil
	})
}

func TestOwnerOf(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 4})
		if err != nil {
			return err
		}
		// 10 samples over 4 members: 3,3,2,2.
		wantOwner := []int{0, 0, 0, 1, 1, 1, 2, 2, 3, 3}
		for id, want := range wantOwner {
			got, err := s.OwnerOf(int64(id))
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("OwnerOf(%d) = %d, want %d", id, got, want)
			}
		}
		if _, err := s.OwnerOf(10); err == nil {
			return fmt.Errorf("out-of-range id accepted")
		}
		if _, err := s.OwnerOf(-1); err == nil {
			return fmt.Errorf("negative id accepted")
		}
		return nil
	})
}

func TestOwnershipInvariant(t *testing.T) {
	// Property: every sample's owner holds it in its local range.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 53})
	runWorld(t, 8, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 4})
		if err != nil {
			return err
		}
		lo, hi := s.LocalRange()
		for id := int64(0); id < 53; id++ {
			owner, err := s.OwnerOf(id)
			if err != nil {
				return err
			}
			ownsHere := id >= lo && id < hi
			if (owner == s.Group().Rank()) != ownsHere {
				return fmt.Errorf("rank %d: owner of %d is %d but local range is [%d,%d)",
					c.Rank(), id, owner, lo, hi)
			}
		}
		return nil
	})
}

func TestShardMapGenerationOneMatchesChunkStarts(t *testing.T) {
	// Open seeds the versioned ownership map from the chunk boundaries:
	// generation 1, one shard per member, member index == group rank.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 4})
		if err != nil {
			return err
		}
		st := s.ShardMap()
		if st == nil {
			return fmt.Errorf("ShardMap() = nil")
		}
		if g := st.Generation(); g != 1 {
			return fmt.Errorf("initial generation = %d, want 1", g)
		}
		m := st.Current()
		if lo, hi := m.Range(); lo != 0 || hi != 10 {
			return fmt.Errorf("keyspace [%d,%d), want [0,10)", lo, hi)
		}
		for id := int64(0); id < 10; id++ {
			mi, err := m.OwnerOf(id)
			if err != nil {
				return err
			}
			want, err := s.OwnerOf(id)
			if err != nil {
				return err
			}
			if mi != want {
				return fmt.Errorf("map owner of %d = member %d, OwnerOf = rank %d", id, mi, want)
			}
		}
		return nil
	})
}

func TestOwnerOfFollowsAppliedGeneration(t *testing.T) {
	// Advancing the ownership map re-routes OwnerOf without touching the
	// chunk boundaries: generation 2 hands shard 0 to member 1 and every
	// rank resolves the new primary.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 4})
		if err != nil {
			return err
		}
		next := s.ShardMap().Current().Clone()
		next.Gen = 2
		next.Shards[0].Owners = []int{1}
		if err := s.ShardMap().Apply(next); err != nil {
			return err
		}
		got, err := s.OwnerOf(0)
		if err != nil {
			return err
		}
		if got != 1 {
			return fmt.Errorf("OwnerOf(0) under generation 2 = %d, want 1", got)
		}
		// Samples outside the moved shard keep their generation-1 owner.
		if got, _ := s.OwnerOf(9); got != 3 {
			return fmt.Errorf("OwnerOf(9) = %d, want 3", got)
		}
		return nil
	})
}

func TestLoadErrorOnBadID(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	runWorld(t, 2, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		if _, err := s.Load([]int64{0, 99}); err == nil {
			return fmt.Errorf("bad id accepted")
		}
		return nil
	})
}

func TestLoadEmptyBatch(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	runWorld(t, 2, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		got, err := s.Load(nil)
		if err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("empty batch returned %d graphs", len(got))
		}
		return nil
	})
}

func TestLoadTimedLatencies(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 64})
	runWorld(t, 8, cluster.Perlmutter(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		ids := make([]int64, 64)
		for i := range ids {
			ids[i] = int64(i)
		}
		got, lat, err := s.LoadTimed(ids)
		if err != nil {
			return err
		}
		if len(got) != 64 || len(lat) != 64 {
			return fmt.Errorf("timed load returned %d graphs %d latencies", len(got), len(lat))
		}
		for i, l := range lat {
			if l <= 0 {
				return fmt.Errorf("sample %d latency %v", i, l)
			}
		}
		return nil
	})
}

func TestSmallWidthReducesLatency(t *testing.T) {
	// Fig. 12 / Table 3: width=2 median latency is far below width=N.
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 512})
	medianFor := func(width int) time.Duration {
		var med time.Duration
		var mu sync.Mutex
		runWorld(t, 16, cluster.Perlmutter(), func(c *comm.Comm) error {
			s, err := Open(c, ds, Options{Width: width})
			if err != nil {
				return err
			}
			rng := vtime.NewRNG(uint64(7 + c.Rank()))
			ids := make([]int64, 256)
			for i := range ids {
				ids[i] = int64(rng.Intn(512))
			}
			_, lat, err := s.LoadTimed(ids)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				sorted := append([]time.Duration(nil), lat...)
				for i := 1; i < len(sorted); i++ {
					for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
						sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
					}
				}
				mu.Lock()
				med = sorted[len(sorted)/2]
				mu.Unlock()
			}
			return nil
		})
		return med
	}
	wide := medianFor(16)  // single replica spanning 4 nodes
	narrow := medianFor(2) // 8 replicas, groups within a node
	if narrow >= wide {
		t.Fatalf("width=2 median (%v) not below width=16 median (%v)", narrow, wide)
	}
	// Paper reports ~80–87%% median reduction; require at least 50%%.
	if float64(narrow) > 0.5*float64(wide) {
		t.Fatalf("width=2 median %v, want < 50%% of width=16 median %v", narrow, wide)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		ids := make([]int64, 16)
		for i := range ids {
			ids[i] = int64(i)
		}
		if _, err := s.Load(ids); err != nil {
			return err
		}
		st := s.Stats()
		if st.LocalReads != 4 || st.RemoteGets != 12 {
			return fmt.Errorf("stats: %+v", st)
		}
		if st.LockAcquires != 3 { // one epoch per remote owner
			return fmt.Errorf("lock acquires = %d", st.LockAcquires)
		}
		if st.BytesLocal <= 0 || st.BytesRemote <= 0 {
			return fmt.Errorf("byte counters: %+v", st)
		}
		return nil
	})
}

func TestProfilerRegions(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	runWorld(t, 2, cluster.Laptop(), func(c *comm.Comm) error {
		prof := trace.New()
		s, err := Open(c, ds, Options{Profiler: prof})
		if err != nil {
			return err
		}
		if _, err := s.Load([]int64{0, 7}); err != nil {
			return err
		}
		if prof.Get(trace.RegionRMA).Count == 0 {
			return fmt.Errorf("no RMA region recorded")
		}
		return nil
	})
}

func TestGroupIsolation(t *testing.T) {
	// Two replica groups must never exchange data: check the traffic stays
	// within each group by verifying every rank can load everything even
	// though its window only spans its group.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 40})
	runWorld(t, 8, cluster.Perlmutter(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 4})
		if err != nil {
			return err
		}
		if s.Group().Size() != 4 {
			return fmt.Errorf("group size %d", s.Group().Size())
		}
		ids := []int64{0, 13, 27, 39}
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			if g.ID != ids[i] {
				return fmt.Errorf("got id %d want %d", g.ID, ids[i])
			}
		}
		return nil
	})
}

func TestFenceAndBarrier(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 8})
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 2})
		if err != nil {
			return err
		}
		if err := s.Fence(); err != nil {
			return err
		}
		return s.Barrier()
	})
}

func TestConcurrentLoadsAcrossRanks(t *testing.T) {
	// All ranks hammer the same owners simultaneously (the shuffled-batch
	// pattern); run with -race to catch synchronization bugs.
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 128})
	runWorld(t, 8, cluster.Perlmutter(), func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		rng := vtime.NewRNG(uint64(c.Rank()) + 99)
		for epoch := 0; epoch < 3; epoch++ {
			ids := make([]int64, 64)
			for i := range ids {
				ids[i] = int64(rng.Intn(128))
			}
			got, err := s.Load(ids)
			if err != nil {
				return err
			}
			for i, g := range got {
				if g.ID != ids[i] {
					return fmt.Errorf("epoch %d: id mismatch", epoch)
				}
			}
		}
		return nil
	})
}

func TestMemoryScalesWithReplicas(t *testing.T) {
	// Total memory across ranks = replicas × dataset bytes: width=N uses
	// half the memory of width=N/2.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 64})
	memTotal := func(width int) int64 {
		var total int64
		var mu sync.Mutex
		runWorld(t, 8, nil, func(c *comm.Comm) error {
			s, err := Open(c, ds, Options{Width: width})
			if err != nil {
				return err
			}
			mu.Lock()
			total += s.MemoryBytes()
			mu.Unlock()
			return nil
		})
		return total
	}
	m8 := memTotal(8) // 1 replica
	m4 := memTotal(4) // 2 replicas
	m1 := memTotal(1) // 8 replicas
	if m4 != 2*m8 || m1 != 8*m8 {
		t.Fatalf("memory: w=8:%d w=4:%d w=1:%d", m8, m4, m1)
	}
}

// BenchmarkStoreLoadRemote measures the true wall-clock cost of DDStore's
// access pattern: an in-memory RMA copy + decode per sample (compare with
// the real-file benchmarks in internal/pff and internal/cff — this is why
// the store wins: no filesystem in the steady state).
func BenchmarkStoreLoadRemote(b *testing.B) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 512})
	w, err := comm.NewWorld(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return c.Barrier()
		}
		rng := vtime.NewRNG(3)
		ids := make([]int64, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids[0] = int64(rng.Intn(512))
			if _, err := s.Load(ids); err != nil {
				return err
			}
		}
		b.StopTimer()
		return c.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreLoadBatch128 measures a full shuffled 128-sample batch load.
func BenchmarkStoreLoadBatch128(b *testing.B) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 4096})
	w, err := comm.NewWorld(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return c.Barrier()
		}
		rng := vtime.NewRNG(5)
		ids := make([]int64, 128)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range ids {
				ids[j] = int64(rng.Intn(4096))
			}
			if _, err := s.Load(ids); err != nil {
				return err
			}
		}
		b.StopTimer()
		return c.Barrier()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// TestDialGroupFailsOver wires the store's TCP plumbing end to end: 4 ranks
// with width 2 give 2 replica groups, each rank serves its chunk with
// Options.Net-derived server options, and DialGroup (counters sunk into the
// store's profiler) keeps loading every sample after a whole replica group's
// server dies.
func TestDialGroupFailsOver(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 24})
	prof := trace.New()
	net := transport.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		ReadTimeout: time.Second,
	}

	servers := make([]*transport.Server, 4)
	addrs := make([]string, 4)
	stores := make([]*Store, 4)
	var mu sync.Mutex
	runWorld(t, 4, nil, func(c *comm.Comm) error {
		st, err := Open(c, ds, Options{Width: 2, Net: net, Profiler: prof})
		if err != nil {
			return err
		}
		srv, err := st.ServeTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		mu.Lock()
		servers[c.Rank()] = srv
		addrs[c.Rank()] = srv.Addr()
		stores[c.Rank()] = st
		mu.Unlock()
		return c.Barrier()
	})
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// Ranks 0-1 form replica 0, ranks 2-3 replica 1 (width 2).
	grp, err := stores[0].DialGroup([][]string{{addrs[0], addrs[1]}, {addrs[2], addrs[3]}})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()

	verify := func(pass string) {
		for id := int64(0); id < 24; id++ {
			g, err := grp.Get(id)
			if err != nil {
				t.Fatalf("%s: sample %d: %v", pass, id, err)
			}
			if g.ID != id {
				t.Fatalf("%s: sample %d returned %d", pass, id, g.ID)
			}
		}
	}
	verify("healthy")
	servers[0].Close()
	servers[1].Close() // all of replica 0 is now gone
	verify("replica 0 dead")
	if prof.Counter(transport.CounterFailovers) == 0 {
		t.Fatalf("profiler recorded no failovers: %v", prof.Counters())
	}
}
