package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/vtime"
)

// TestLoadPropertyRandomConfigs drives the full store through random
// (world size, width, dataset size, batch) configurations and checks the
// fundamental contract: Load returns exactly the requested samples, in
// order, bit-identical to the generator, for every rank.
func TestLoadPropertyRandomConfigs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := vtime.NewRNG(seed)
		// World sizes with several divisors.
		sizes := []int{2, 4, 6, 8, 12}
		n := sizes[rng.Intn(len(sizes))]
		// A width that divides n.
		var widths []int
		for w := 1; w <= n; w++ {
			if n%w == 0 {
				widths = append(widths, w)
			}
		}
		width := widths[rng.Intn(len(widths))]
		total := n + rng.Intn(80) // at least one sample per chunk
		batch := 1 + rng.Intn(16)

		ds := datasets.HomoLumo(datasets.Config{NumGraphs: total})
		world, err := comm.NewWorld(n, seed^0xBEEF)
		if err != nil {
			return false
		}
		err = world.Run(func(c *comm.Comm) error {
			s, err := Open(c, ds, Options{Width: width})
			if err != nil {
				return err
			}
			r := vtime.NewRNG(seed + uint64(c.Rank()))
			ids := make([]int64, batch)
			for i := range ids {
				ids[i] = int64(r.Intn(total))
			}
			got, err := s.Load(ids)
			if err != nil {
				return err
			}
			for i, g := range got {
				want, err := ds.Sample(ids[i])
				if err != nil {
					return err
				}
				if g.ID != ids[i] || g.NumNodes != want.NumNodes || g.Y[0] != want.Y[0] {
					return fmt.Errorf("sample %d corrupted (n=%d w=%d)", ids[i], n, width)
				}
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryConsistencyAcrossRanks verifies every rank derives identical
// chunk boundaries and offsets from the collective registry build.
func TestRegistryConsistencyAcrossRanks(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 41})
	const n = 6
	boundaries := make([][]int64, n)
	runWorld(t, n, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 3})
		if err != nil {
			return err
		}
		boundaries[c.Rank()] = append([]int64(nil), s.starts...)
		return c.Barrier()
	})
	for r := 1; r < n; r++ {
		if len(boundaries[r]) != len(boundaries[0]) {
			t.Fatalf("rank %d has %d boundaries", r, len(boundaries[r]))
		}
		for i := range boundaries[0] {
			if boundaries[r][i] != boundaries[0][i] {
				t.Fatalf("rank %d boundary %d differs: %d vs %d",
					r, i, boundaries[r][i], boundaries[0][i])
			}
		}
	}
}

// TestIndexLengthsMatchEncodedSizes cross-checks the registry's per-sample
// lengths against the real encoded sizes (variable-length sample support).
func TestIndexLengthsMatchEncodedSizes(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 25})
	runWorld(t, 5, nil, func(c *comm.Comm) error {
		s, err := Open(c, ds, Options{Width: 5})
		if err != nil {
			return err
		}
		for id := int64(0); id < 25; id++ {
			g, err := ds.Sample(id)
			if err != nil {
				return err
			}
			if int(s.index[id].length) != g.EncodedSize() {
				return fmt.Errorf("index length %d != encoded size %d for sample %d",
					s.index[id].length, g.EncodedSize(), id)
			}
		}
		return nil
	})
}
