package core

import (
	"fmt"
	"testing"

	"ddstore/internal/cache"
	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/trace"
)

// TestOwnerOfBoundaries is the table-driven boundary sweep over the owner
// arithmetic: the first and last id of every chunk, the out-of-range edges,
// and both degenerate (width=1) and full (width=N) striping — including an
// uneven split where early members hold one extra sample.
func TestOwnerOfBoundaries(t *testing.T) {
	cases := []struct {
		name         string
		total, ranks int
		width        int
	}{
		{"width1", 12, 4, 1},
		{"widthN-even", 12, 4, 4},
		{"widthN-uneven", 10, 4, 4}, // chunks 3,3,2,2
		{"width2-of-4", 18, 4, 2},
		{"single-rank", 7, 1, 1},
		{"one-sample-chunks", 4, 4, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ds := datasets.HomoLumo(datasets.Config{NumGraphs: tc.total})
			runWorld(t, tc.ranks, nil, func(c *comm.Comm) error {
				s, err := Open(c, ds, Options{Width: tc.width})
				if err != nil {
					return err
				}
				// The store's own chunk boundaries are the ground truth:
				// starts[g] is the first id of member g's chunk and
				// starts[g+1]-1 the last; both must map to owner g.
				for g := 0; g < tc.width; g++ {
					lo, hi := s.starts[g], s.starts[g+1]
					if lo == hi {
						continue // empty chunk (more members than samples)
					}
					for _, id := range []int64{lo, hi - 1} {
						owner, err := s.OwnerOf(id)
						if err != nil {
							return fmt.Errorf("OwnerOf(%d): %v", id, err)
						}
						if owner != g {
							return fmt.Errorf("OwnerOf(%d) = %d, want %d (chunk [%d,%d))",
								id, owner, g, lo, hi)
						}
					}
					// One past the last id of the chunk belongs to the next
					// member, or is out of range for the last chunk.
					if g < tc.width-1 {
						owner, err := s.OwnerOf(hi)
						if err != nil {
							return fmt.Errorf("OwnerOf(%d): %v", hi, err)
						}
						if owner != g+1 {
							return fmt.Errorf("OwnerOf(%d) = %d, want %d", hi, owner, g+1)
						}
					}
				}
				for _, id := range []int64{-1, int64(tc.total), int64(tc.total) + 100} {
					if _, err := s.OwnerOf(id); err == nil {
						return fmt.Errorf("OwnerOf(%d) accepted an out-of-range id", id)
					}
				}
				return nil
			})
		})
	}
}

// TestCacheRepeatEpochRMA is the cache acceptance proof on the RMA
// framework: a repeat epoch over the same remote ids is served entirely
// from cache — zero additional remote Gets, >= 90% hit rate.
func TestCacheRepeatEpochRMA(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		prof := trace.New()
		s, err := Open(c, ds, Options{CacheBytes: 1 << 20, Profiler: prof})
		if err != nil {
			return err
		}
		// Every rank loads the full dataset: 8 local ids, 24 remote.
		ids := make([]int64, 32)
		for i := range ids {
			ids[i] = int64(i)
		}
		if _, err := s.Load(ids); err != nil {
			return err
		}
		st := s.Stats()
		if st.RemoteGets != 24 {
			return fmt.Errorf("epoch 1: %d remote gets, want 24", st.RemoteGets)
		}
		cs := s.CacheStats()
		if cs.Misses != 24 || cs.Hits != 0 {
			return fmt.Errorf("epoch 1 cache stats: %+v", cs)
		}

		// Epoch 2: identical ids — every remote id is a cache hit.
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			if g.ID != ids[i] {
				return fmt.Errorf("epoch 2 slot %d: sample %d, want %d", i, g.ID, ids[i])
			}
		}
		if after := s.Stats(); after.RemoteGets != 24 {
			return fmt.Errorf("epoch 2 issued %d extra remote gets, want 0", after.RemoteGets-24)
		}
		// Epoch-2 hit rate: 24 hits out of 24 lookups = 100% >= 90%; the
		// counters also land in the profiler next to the region timings.
		cs = s.CacheStats()
		if cs.Hits != 24 {
			return fmt.Errorf("epoch 2: %d cache hits, want 24", cs.Hits)
		}
		if prof.Counter(cache.CounterHits) != 24 {
			return fmt.Errorf("profiler cache-hits = %d, want 24", prof.Counter(cache.CounterHits))
		}
		return c.Barrier()
	})
}

// TestCacheRepeatEpochTwoSided proves the same on the two-sided framework,
// plus the per-owner batching: one multi-get RPC per remote owner per
// batch, however many samples the batch carries — and a cached repeat
// epoch costs zero RPCs.
func TestCacheRepeatEpochTwoSided(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
		prof := trace.New()
		s, err := Open(c, ds, Options{
			Framework: FrameworkTwoSided, CacheBytes: 1 << 20, Profiler: prof,
		})
		if err != nil {
			return err
		}
		defer s.Close()
		ids := make([]int64, 32)
		for i := range ids {
			ids[i] = int64(i)
		}
		// Epoch 1: 24 remote samples spread over 3 remote owners -> 3 RPCs.
		if _, err := s.Load(ids); err != nil {
			return err
		}
		if got := prof.Counter(CounterTwoSidedRPCs); got != 3 {
			return fmt.Errorf("epoch 1: %d RPCs for a 3-remote-owner batch, want 3", got)
		}
		// Epoch 2: all cached -> zero additional RPCs, 24 hits.
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			if g.ID != ids[i] {
				return fmt.Errorf("epoch 2 slot %d: sample %d, want %d", i, g.ID, ids[i])
			}
		}
		if rpcs := prof.Counter(CounterTwoSidedRPCs); rpcs != 3 {
			return fmt.Errorf("epoch 2 issued %d extra RPCs, want 0", rpcs-3)
		}
		cs := s.CacheStats()
		if cs.Hits != 24 || cs.Misses != 24 {
			return fmt.Errorf("cache stats after 2 epochs: %+v", cs)
		}
		return c.Barrier()
	})
}

// TestTwoSidedBatchSingleRPCPerOwner pins the round-trip arithmetic the
// acceptance criteria name: B remote samples living on ONE owner cost one
// RPC (the two-sided plane has no in-flight size cap), not B.
func TestTwoSidedBatchSingleRPCPerOwner(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 32})
	runWorld(t, 2, cluster.Laptop(), func(c *comm.Comm) error {
		prof := trace.New()
		s, err := Open(c, ds, Options{Framework: FrameworkTwoSided, Profiler: prof})
		if err != nil {
			return err
		}
		defer s.Close()
		// All 16 ids of the OTHER rank's chunk: B=16 remote samples, 1 owner.
		other := 1 - s.Group().Rank()
		lo, hi := s.starts[other], s.starts[other+1]
		ids := make([]int64, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		got, err := s.Load(ids)
		if err != nil {
			return err
		}
		for i, g := range got {
			if g.ID != ids[i] {
				return fmt.Errorf("slot %d: sample %d, want %d", i, g.ID, ids[i])
			}
		}
		if rpcs := prof.Counter(CounterTwoSidedRPCs); rpcs != 1 {
			return fmt.Errorf("%d RPCs for %d samples from one owner, want 1", rpcs, len(ids))
		}
		if st := s.Stats(); st.RemoteGets != int64(len(ids)) {
			return fmt.Errorf("remote gets = %d, want %d", st.RemoteGets, len(ids))
		}
		return c.Barrier()
	})
}

// TestCacheEvictionPoliciesLoad sanity-checks that every eviction policy
// yields correct loads under a budget too small for the working set.
func TestCacheEvictionPoliciesLoad(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 24})
	for _, policy := range []string{"lru", "fifo", "clock"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			runWorld(t, 2, cluster.Laptop(), func(c *comm.Comm) error {
				pol, err := cache.ParsePolicy(policy)
				if err != nil {
					return err
				}
				s, err := Open(c, ds, Options{CacheBytes: 2048, CachePolicy: pol})
				if err != nil {
					return err
				}
				ids := make([]int64, 24)
				for i := range ids {
					ids[i] = int64(i)
				}
				for epoch := 0; epoch < 3; epoch++ {
					got, err := s.Load(ids)
					if err != nil {
						return err
					}
					for i, g := range got {
						if g.ID != ids[i] {
							return fmt.Errorf("epoch %d slot %d: sample %d, want %d",
								epoch, i, g.ID, ids[i])
						}
					}
				}
				cs := s.CacheStats()
				if cs.Bytes > 2048 {
					return fmt.Errorf("cache exceeded budget: %d bytes", cs.Bytes)
				}
				return nil
			})
		})
	}
}
