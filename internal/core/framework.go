package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/comm"
	"ddstore/internal/graph"
)

// Framework selects the communication design used for remote fetches — the
// paper's 'f' in DS = (c, w, f). The paper evaluated one-sided MPI RMA
// against two-sided/message-broker designs and chose RMA because it
// minimizes the target process's involvement; FrameworkTwoSided implements
// the rejected alternative so the trade-off can be measured (see the
// abl-comm experiment).
type Framework int

const (
	// FrameworkRMA fetches with passive-target one-sided Gets (default).
	FrameworkRMA Framework = iota
	// FrameworkTwoSided fetches with request/response messages served by a
	// responder goroutine on the owner — the owner's CPU participates in
	// every fetch, stealing time from its own training loop.
	FrameworkTwoSided
)

// Message tags used by the two-sided framework. They sit far above any
// application tag.
const (
	tagFetchReq = 1 << 20
	tagRespBase = 1 << 21
)

// CounterTwoSidedRPCs counts owner-directed request/response exchanges on
// the two-sided framework. With multi-get batching, a batch touching k
// owners costs k RPCs, however many samples it carries — the counter the
// batching tests assert on.
const CounterTwoSidedRPCs = "twosided-rpcs"

// Two-sided multi-get wire format. A request is
// [requester u32][count u32][ids u64 × count]; the response is count
// entries of [len u32][bytes], in request order, with missingMarker as the
// length of any sample the owner does not hold.
const missingMarker = ^uint32(0)

func encodeFetchReq(requester int, ids []int64) []byte {
	req := make([]byte, 8+8*len(ids))
	binary.LittleEndian.PutUint32(req[0:], uint32(requester))
	binary.LittleEndian.PutUint32(req[4:], uint32(len(ids)))
	for i, id := range ids {
		binary.LittleEndian.PutUint64(req[8+8*i:], uint64(id))
	}
	return req
}

// decodeFetchReq validates and unpacks a fetch request; ok is false for
// malformed frames (which the responder drops, like any hostile message).
func decodeFetchReq(data []byte) (requester int, ids []int64, ok bool) {
	if len(data) < 16 {
		return 0, nil, false
	}
	requester = int(int32(binary.LittleEndian.Uint32(data[0:])))
	count := int(binary.LittleEndian.Uint32(data[4:]))
	if count < 1 || len(data) != 8+8*count {
		return 0, nil, false
	}
	ids = make([]int64, count)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return requester, ids, true
}

// startResponder launches the two-sided service loop: it answers multi-get
// fetch requests for this rank's chunk until Close. Service time is
// charged to this rank's clock — the CPU-involvement cost one-sided RMA
// avoids.
func (s *Store) startResponder() {
	s.respDone = make(chan struct{})
	go func() {
		defer close(s.respDone)
		for {
			data, from, err := s.group.Recv(comm.AnySource, tagFetchReq)
			if err != nil {
				return // world broken
			}
			if len(data) == 1 && data[0] == 0xFF {
				return // poison pill from Close
			}
			requester, ids, ok := decodeFetchReq(data)
			if !ok {
				continue // malformed; drop
			}
			if from >= 0 {
				requester = from
			}
			var payload []byte
			var served int64
			var lenBuf [4]byte
			for _, id := range ids {
				one, lookupErr := s.LocalSampleBytes(id)
				if lookupErr != nil {
					binary.LittleEndian.PutUint32(lenBuf[:], missingMarker)
					payload = append(payload, lenBuf[:]...)
					continue
				}
				binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(one)))
				payload = append(payload, lenBuf[:]...)
				payload = append(payload, one...)
				served += int64(len(one))
			}
			if m := s.world.Machine(); m != nil {
				// The owner's CPU copies the samples out of its chunk.
				s.world.Clock().Advance(m.LocalRead(served))
			}
			if err := s.group.Send(requester, tagRespBase+requester, payload); err != nil {
				return
			}
		}
	}()
}

// Close shuts down the store's background machinery (the two-sided
// responder, when active). Safe to call once per rank; a store without a
// responder needs no Close but tolerates one.
func (s *Store) Close() error {
	if s.respDone == nil {
		return nil
	}
	// Poison the responder via our own mailbox.
	if err := s.group.Send(s.group.Rank(), tagFetchReq, []byte{0xFF}); err != nil {
		return err
	}
	<-s.respDone
	s.respDone = nil
	return nil
}

// fetchTwoSidedBatch retrieves a batch of remote samples from one owner in
// a single request/response exchange: the owner's responder must receive,
// look up, and send — so a busy owner delays the requester (queueing the
// paper's design discussion predicts), but only once per owner per batch.
func (s *Store) fetchTwoSidedBatch(owner int, ids []int64) ([][]byte, error) {
	me := s.group.Rank()
	if err := s.group.Send(owner, tagFetchReq, encodeFetchReq(me, ids)); err != nil {
		return nil, err
	}
	if s.prof != nil {
		s.prof.Inc(CounterTwoSidedRPCs, 1)
	}
	data, _, err := s.group.Recv(owner, tagRespBase+me)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ids))
	rest := data
	for i, id := range ids {
		if len(rest) < 4 {
			return nil, fmt.Errorf("core: truncated response from owner %d (%d of %d samples)", owner, i, len(ids))
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if n == missingMarker {
			return nil, fmt.Errorf("core: owner %d has no sample %d", owner, id)
		}
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("core: owner %d response entry claims %d bytes, %d remain", owner, n, len(rest))
		}
		out[i] = rest[:n:n]
		rest = rest[n:]
	}
	return out, nil
}

// loadTwoSided is the Load path for FrameworkTwoSided: remote misses are
// grouped per owner and fetched with one multi-get RPC per owner per
// batch, mirroring the per-owner lock amortization of the RMA path.
// Owners are fetched concurrently under the same fan-out bound as the RMA
// path; within one Load the workers exchange with distinct owners, and the
// mailbox's source-filtered Recv keeps their responses apart. (Two
// *separate* goroutines calling Load on the same two-sided store could
// still steal each other's responses — that single-consumer constraint
// predates the fan-out and is documented on the framework.)
func (s *Store) loadTwoSided(ids []int64, timed bool, resolved map[int64][]byte, box *flightBox, followers map[int64]*cache.Flight) ([]*graphResult, error) {
	out := make([]*graphResult, len(ids))
	me := s.group.Rank()
	byOwner := make(map[int][]int)
	for pos, id := range ids {
		owner, err := s.OwnerOf(id)
		if err != nil {
			return nil, err
		}
		before := s.world.Clock().Now()
		if owner == me {
			e := s.index[id]
			raw := s.buf[e.offset : e.offset+int64(e.length)]
			if m := s.world.Machine(); m != nil {
				s.world.Clock().Advance(m.LocalRead(int64(e.length)))
			}
			s.stats.localReads.Add(1)
			s.stats.bytesLocal.Add(int64(e.length))
			res := &graphResult{raw: raw}
			if timed {
				res.latency = s.world.Clock().Now() - before
			}
			out[pos] = res
			continue
		}
		if raw, ok := resolved[id]; ok {
			// Cache hit: a memory read, no owner involvement.
			if m := s.world.Machine(); m != nil {
				s.world.Clock().Advance(m.LocalRead(int64(len(raw))))
			}
			res := &graphResult{raw: raw}
			if timed {
				res.latency = s.world.Clock().Now() - before
			}
			out[pos] = res
			continue
		}
		if _, ok := followers[id]; ok {
			continue // another loader is fetching it; filled after Wait
		}
		byOwner[owner] = append(byOwner[owner], pos)
	}

	owners := make([]int, 0, len(byOwner))
	for owner := range byOwner {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	err := s.forEachOwner(owners, func(owner int) error {
		positions := byOwner[owner]
		// One multi-get per owner, over the unique ids of this batch.
		uniq := make([]int64, 0, len(positions))
		slot := make(map[int64]int, len(positions))
		for _, pos := range positions {
			if _, ok := slot[ids[pos]]; !ok {
				slot[ids[pos]] = len(uniq)
				uniq = append(uniq, ids[pos])
			}
		}
		before := s.world.Clock().Now()
		raws, err := s.fetchTwoSidedBatch(owner, uniq)
		if err != nil {
			return err
		}
		elapsed := s.world.Clock().Now() - before
		for i, id := range uniq {
			box.deliver(id, raws[i])
			s.stats.remoteGets.Add(1)
			s.stats.bytesRemote.Add(int64(len(raws[i])))
		}
		for _, pos := range positions {
			res := &graphResult{raw: raws[slot[ids[pos]]]}
			if timed {
				// The exchange cost is shared by the samples it carried.
				res.latency = elapsed / time.Duration(len(positions))
			}
			out[pos] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// graphResult carries one fetched sample's bytes and timing before decode.
type graphResult struct {
	raw     []byte
	latency time.Duration
}

// decodeResults runs the two-sided fetch path and decodes the results into
// the Load return shape. Follower positions (nil results) are left for
// fillFollowers.
func (s *Store) decodeResults(ids []int64, timed bool, resolved map[int64][]byte, box *flightBox, followers map[int64]*cache.Flight) ([]*graph.Graph, []time.Duration, error) {
	results, err := s.loadTwoSided(ids, timed, resolved, box, followers)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*graph.Graph, len(ids))
	var lat []time.Duration
	if timed {
		lat = make([]time.Duration, len(ids))
	}
	for pos, res := range results {
		if res == nil {
			continue // coalesced follower; filled after Wait
		}
		g, err := graph.Decode(res.raw)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode sample %d: %w", ids[pos], err)
		}
		out[pos] = g
		if timed {
			lat[pos] = res.latency
		}
	}
	return out, lat, nil
}
