package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"ddstore/internal/comm"
	"ddstore/internal/graph"
)

// Framework selects the communication design used for remote fetches — the
// paper's 'f' in DS = (c, w, f). The paper evaluated one-sided MPI RMA
// against two-sided/message-broker designs and chose RMA because it
// minimizes the target process's involvement; FrameworkTwoSided implements
// the rejected alternative so the trade-off can be measured (see the
// abl-comm experiment).
type Framework int

const (
	// FrameworkRMA fetches with passive-target one-sided Gets (default).
	FrameworkRMA Framework = iota
	// FrameworkTwoSided fetches with request/response messages served by a
	// responder goroutine on the owner — the owner's CPU participates in
	// every fetch, stealing time from its own training loop.
	FrameworkTwoSided
)

// Message tags used by the two-sided framework. They sit far above any
// application tag.
const (
	tagFetchReq = 1 << 20
	tagRespBase = 1 << 21
)

// startResponder launches the two-sided service loop: it answers fetch
// requests for this rank's chunk until Close. Service time is charged to
// this rank's clock — the CPU-involvement cost one-sided RMA avoids.
func (s *Store) startResponder() {
	s.respDone = make(chan struct{})
	go func() {
		defer close(s.respDone)
		for {
			data, from, err := s.group.Recv(comm.AnySource, tagFetchReq)
			if err != nil {
				return // world broken
			}
			if len(data) == 1 && data[0] == 0xFF {
				return // poison pill from Close
			}
			if len(data) != 12 {
				continue // malformed; drop
			}
			requester := int(int32(binary.LittleEndian.Uint32(data[0:])))
			id := int64(binary.LittleEndian.Uint64(data[4:]))
			if from >= 0 {
				requester = from
			}
			payload, lookupErr := s.LocalSampleBytes(id)
			if lookupErr != nil {
				payload = nil // empty response signals an error to the requester
			}
			if m := s.world.Machine(); m != nil {
				// The owner's CPU copies the sample out of its chunk.
				s.world.Clock().Advance(m.LocalRead(int64(len(payload))))
			}
			if err := s.group.Send(requester, tagRespBase+requester, payload); err != nil {
				return
			}
		}
	}()
}

// Close shuts down the store's background machinery (the two-sided
// responder, when active). Safe to call once per rank; a store without a
// responder needs no Close but tolerates one.
func (s *Store) Close() error {
	if s.respDone == nil {
		return nil
	}
	// Poison the responder via our own mailbox.
	if err := s.group.Send(s.group.Rank(), tagFetchReq, []byte{0xFF}); err != nil {
		return err
	}
	<-s.respDone
	s.respDone = nil
	return nil
}

// fetchTwoSided retrieves one remote sample with a request/response
// exchange: the owner's responder must receive, look up, and send — so a
// busy owner delays the requester (queueing the paper's design discussion
// predicts).
func (s *Store) fetchTwoSided(owner int, id int64) ([]byte, error) {
	req := make([]byte, 12)
	binary.LittleEndian.PutUint32(req[0:], uint32(s.group.Rank()))
	binary.LittleEndian.PutUint64(req[4:], uint64(id))
	if err := s.group.Send(owner, tagFetchReq, req); err != nil {
		return nil, err
	}
	data, _, err := s.group.Recv(owner, tagRespBase+s.group.Rank())
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: owner %d has no sample %d", owner, id)
	}
	return data, nil
}

// loadTwoSided is the Load path for FrameworkTwoSided.
func (s *Store) loadTwoSided(ids []int64, timed bool) ([]*graphResult, error) {
	out := make([]*graphResult, len(ids))
	me := s.group.Rank()
	for pos, id := range ids {
		owner, err := s.OwnerOf(id)
		if err != nil {
			return nil, err
		}
		before := s.world.Clock().Now()
		var raw []byte
		if owner == me {
			e := s.index[id]
			raw = s.buf[e.offset : e.offset+int64(e.length)]
			if m := s.world.Machine(); m != nil {
				s.world.Clock().Advance(m.LocalRead(int64(e.length)))
			}
			s.stats.LocalReads++
			s.stats.BytesLocal += int64(e.length)
		} else {
			if raw, err = s.fetchTwoSided(owner, id); err != nil {
				return nil, err
			}
			s.stats.RemoteGets++
			s.stats.BytesRemote += int64(len(raw))
		}
		res := &graphResult{raw: raw}
		if timed {
			res.latency = s.world.Clock().Now() - before
		}
		out[pos] = res
	}
	return out, nil
}

// graphResult carries one fetched sample's bytes and timing before decode.
type graphResult struct {
	raw     []byte
	latency time.Duration
}

// decodeResults runs the two-sided fetch path and decodes the results into
// the Load return shape.
func (s *Store) decodeResults(ids []int64, timed bool) ([]*graph.Graph, []time.Duration, error) {
	results, err := s.loadTwoSided(ids, timed)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*graph.Graph, len(ids))
	var lat []time.Duration
	if timed {
		lat = make([]time.Duration, len(ids))
	}
	for pos, res := range results {
		g, err := graph.Decode(res.raw)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decode sample %d: %w", ids[pos], err)
		}
		out[pos] = g
		if timed {
			lat[pos] = res.latency
		}
	}
	return out, lat, nil
}
