package core

import (
	"encoding/binary"
	"fmt"

	"ddstore/internal/comm"
	"ddstore/internal/wire"
)

// Framework selects the communication design used for remote fetches — the
// paper's 'f' in DS = (c, w, f). The paper evaluated one-sided MPI RMA
// against two-sided/message-broker designs and chose RMA because it
// minimizes the target process's involvement; FrameworkTwoSided implements
// the rejected alternative so the trade-off can be measured (see the
// abl-comm experiment).
type Framework int

const (
	// FrameworkRMA fetches with passive-target one-sided Gets (default).
	FrameworkRMA Framework = iota
	// FrameworkTwoSided fetches with request/response messages served by a
	// responder goroutine on the owner — the owner's CPU participates in
	// every fetch, stealing time from its own training loop.
	FrameworkTwoSided
)

// Message tags used by the two-sided framework. They sit far above any
// application tag.
const (
	tagFetchReq = 1 << 20
	tagRespBase = 1 << 21
)

// CounterTwoSidedRPCs counts owner-directed request/response exchanges on
// the two-sided framework. With multi-get batching, a batch touching k
// owners costs k RPCs, however many samples it carries — the counter the
// batching tests assert on.
const CounterTwoSidedRPCs = "twosided-rpcs"

// Two-sided multi-get wire format. A request is
// [requester u32][count u32][ids u64 × count]; the response is count
// entries of [len u32][bytes], in request order, with missingMarker as the
// length of any sample the owner does not hold.
const missingMarker = ^uint32(0)

func encodeFetchReq(requester int, ids []int64) []byte {
	req := make([]byte, 8, 8+wire.IDsSize(len(ids)))
	binary.LittleEndian.PutUint32(req[0:], uint32(requester))
	binary.LittleEndian.PutUint32(req[4:], uint32(len(ids)))
	return wire.AppendIDs(req, ids)
}

// decodeFetchReq validates and unpacks a fetch request; ok is false for
// malformed frames (which the responder drops, like any hostile message).
func decodeFetchReq(data []byte) (requester int, ids []int64, ok bool) {
	if len(data) < 16 {
		return 0, nil, false
	}
	requester = int(int32(binary.LittleEndian.Uint32(data[0:])))
	count := int(binary.LittleEndian.Uint32(data[4:]))
	if count < 1 || len(data) != 8+8*count {
		return 0, nil, false
	}
	ids = make([]int64, count)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return requester, ids, true
}

// startResponder launches the two-sided service loop: it answers multi-get
// fetch requests for this rank's chunk until Close. Service time is
// charged to this rank's clock — the CPU-involvement cost one-sided RMA
// avoids.
func (s *Store) startResponder() {
	s.respDone = make(chan struct{})
	go func() {
		defer close(s.respDone)
		for {
			data, from, err := s.group.Recv(comm.AnySource, tagFetchReq)
			if err != nil {
				return // world broken
			}
			if len(data) == 1 && data[0] == 0xFF {
				return // poison pill from Close
			}
			requester, ids, ok := decodeFetchReq(data)
			if !ok {
				continue // malformed; drop
			}
			if from >= 0 {
				requester = from
			}
			var payload []byte
			var served int64
			var lenBuf [4]byte
			for _, id := range ids {
				one, lookupErr := s.LocalSampleBytes(id)
				if lookupErr != nil {
					binary.LittleEndian.PutUint32(lenBuf[:], missingMarker)
					payload = append(payload, lenBuf[:]...)
					continue
				}
				binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(one)))
				payload = append(payload, lenBuf[:]...)
				payload = append(payload, one...)
				served += int64(len(one))
			}
			if m := s.world.Machine(); m != nil {
				// The owner's CPU copies the samples out of its chunk.
				s.world.Clock().Advance(m.LocalRead(served))
			}
			if err := s.group.Send(requester, tagRespBase+requester, payload); err != nil {
				return
			}
		}
	}()
}

// Close shuts down the store's background machinery (the two-sided
// responder, when active). Safe to call once per rank; a store without a
// responder needs no Close but tolerates one.
func (s *Store) Close() error {
	if s.respDone == nil {
		return nil
	}
	// Poison the responder via our own mailbox.
	if err := s.group.Send(s.group.Rank(), tagFetchReq, []byte{0xFF}); err != nil {
		return err
	}
	<-s.respDone
	s.respDone = nil
	return nil
}

// fetchTwoSidedBatch retrieves a batch of remote samples from one owner in
// a single request/response exchange: the owner's responder must receive,
// look up, and send — so a busy owner delays the requester (queueing the
// paper's design discussion predicts), but only once per owner per batch.
func (s *Store) fetchTwoSidedBatch(owner int, ids []int64) ([][]byte, error) {
	me := s.group.Rank()
	if err := s.group.Send(owner, tagFetchReq, encodeFetchReq(me, ids)); err != nil {
		return nil, err
	}
	if s.prof != nil {
		s.prof.Inc(CounterTwoSidedRPCs, 1)
	}
	data, _, err := s.group.Recv(owner, tagRespBase+me)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ids))
	rest := data
	for i, id := range ids {
		if len(rest) < 4 {
			return nil, fmt.Errorf("core: truncated response from owner %d (%d of %d samples)", owner, i, len(ids))
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if n == missingMarker {
			return nil, fmt.Errorf("core: owner %d has no sample %d", owner, id)
		}
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("core: owner %d response entry claims %d bytes, %d remain", owner, n, len(rest))
		}
		out[i] = rest[:n:n]
		rest = rest[n:]
	}
	return out, nil
}
