// Package core implements DDStore, the paper's contribution: an in-memory
// distributed data store for globally-shuffled sample loading during
// distributed data-parallel GNN training.
//
// A store is defined by DS = (c, w, f) (paper §3.1):
//
//   - c — chunking: the dataset's T samples are striped into contiguous
//     chunks distributed over the ranks, so all post-preload reads are
//     memory reads.
//   - w — width: ranks are partitioned into r = N/w replica groups of w
//     ranks; each group holds a complete replica of the dataset striped
//     over its members. Smaller widths mean more replicas, more memory, and
//     shorter (often intra-node) fetch distances.
//   - f — communication: samples are fetched from other ranks of the
//     caller's group with one-sided RMA (MPI_Win_lock(MPI_LOCK_SHARED) +
//     MPI_Get + MPI_Win_unlock), so the owner's CPU never participates.
//
// The four architecture components of paper §3.2 map to: the preloader
// (Open reading a SampleSource), the data registry (the replica-group-wide
// sample index built by Allgather), the data loader (Load / LoadTimed), and
// the one-sided communication layer (internal/comm's RMA windows).
package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/comm"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/shardmap"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

// SampleSource is anything the preloader can read a dataset from: the PFF
// and CFF stores (real or simulated) and the in-memory dataset generators
// all satisfy it.
type SampleSource interface {
	Name() string
	Len() int
	OutputDim() int
	NodeFeatDim() int
	EdgeFeatDim() int
	ReadSample(id int64) (*graph.Graph, error)
}

// Options configures a Store.
type Options struct {
	// Width is the replica-group size w. 0 means the communicator size
	// (a single replica striped over all ranks, the paper's default).
	// Width must divide the communicator size.
	Width int
	// Profiler, if set, receives Preload and MPI-RMA region timings.
	Profiler *trace.Profiler
	// Framework selects the remote-fetch design: one-sided RMA (default)
	// or the two-sided request/response alternative (see framework.go).
	Framework Framework
	// LockPerSample disables the per-owner lock amortization: every remote
	// Get opens and closes its own access epoch. Exists for the abl-lock
	// ablation; measurably slower, never better.
	LockPerSample bool
	// NonBlocking issues overlapped non-blocking Gets (MPI_Rget-style)
	// within each owner epoch instead of sequential blocking Gets.
	NonBlocking bool
	// Net is the retry/deadline policy of the TCP data plane, used when
	// this store's chunk is served to other processes (ServeTCP) or when
	// remote chunks are fetched (DialGroup). The zero value means the
	// transport defaults; the in-process RMA path ignores it.
	Net transport.RetryPolicy
	// CacheBytes, if positive, adds a byte-budgeted cache over remotely
	// fetched sample bytes: repeat loads of a cached id cost a memory read
	// instead of a fetch, and concurrent misses for the same id (e.g. the
	// prefetch worker racing the training loop) coalesce into one fetch.
	// Local-chunk reads bypass the cache — they are already memory reads.
	// The same budget is threaded into DialGroup for the TCP plane.
	CacheBytes int64
	// CachePolicy selects the cache's eviction policy (default LRU; FIFO
	// and Clock exist for the eviction ablation).
	CachePolicy cache.Policy
	// FetchParallelism bounds how many owners one Load fetches from
	// concurrently: a batch touching k owners pays ~⌈k/FetchParallelism⌉
	// round-trip times instead of k. 0 means min(#owners, GOMAXPROCS);
	// 1 restores the serial per-owner loop exactly. Ignored (always
	// serial) under a machine model, where fetch costs are charged to a
	// deterministic virtual clock. The same budget is threaded into
	// DialGroup for the TCP plane.
	FetchParallelism int
	// Metrics, if set, receives the engine's fetch-latency histogram and
	// live cache event counters (alongside the Profiler, when both are
	// set). Threaded into DialGroup for the TCP plane.
	Metrics *obs.Registry
	// Spans, if set, receives per-owner fetch spans for the Chrome trace.
	// Threaded into DialGroup for the TCP plane.
	Spans *obs.SpanRing
}

// entry locates one sample inside its replica group.
type entry struct {
	offset int64
	length int32
}

// Store is one rank's handle on a DDStore instance. Create it collectively
// with Open; afterwards every rank can Load arbitrary sample ids.
type Store struct {
	world *comm.Comm
	group *comm.Comm
	win   *comm.Win

	name      string
	total     int // T: dataset size in samples
	width     int // w
	replicas  int // r = N/w
	outputDim int
	nodeDim   int
	edgeDim   int

	buf    []byte  // this rank's chunk: concatenated encoded samples
	index  []entry // per sample id, within this rank's group
	starts []int64 // chunk boundary: group rank g owns [starts[g], starts[g+1])
	// maps is the versioned ownership store seeded from the chunk
	// boundaries: generation 1 has one shard per group member whose owner
	// index IS the member's group rank, so OwnerOf resolves through the
	// live generation while storePlane's rank-equality Local check keeps
	// working unchanged.
	maps  *shardmap.Store
	myLo  int64
	myHi  int64
	prof  *trace.Profiler
	opts  Options
	cache *cache.Cache // remote-sample cache; nil when CacheBytes <= 0
	// engine is the shared batch-load pipeline (internal/fetch); this store
	// plugs in as its RMA/two-sided plane via storePlane.
	engine *fetch.Engine

	// respDone signals two-sided responder shutdown (nil for RMA stores).
	respDone chan struct{}

	// Stats accumulated by Load (atomic: fetch workers and concurrent
	// Load callers bump them without a lock).
	stats statsCounters
	// epochs refcounts shared-lock epochs so concurrent Loads (and the
	// fan-out workers) can overlap access to the same owner.
	epochs epochRefs
}

// Stats counts the loader's traffic and summarizes its recent per-sample
// load latencies.
type Stats struct {
	LocalReads   int64
	RemoteGets   int64
	BytesLocal   int64
	BytesRemote  int64
	LockAcquires int64
	// LoadP50/P95/P99 are per-sample load latency percentiles over the
	// engine's sliding window of recent loads (zero before any Load).
	LoadP50 time.Duration
	LoadP95 time.Duration
	LoadP99 time.Duration
}

// chunkStarts computes the balanced striping of total samples over w group
// members: member g owns [starts[g], starts[g+1]).
func chunkStarts(total, w int) []int64 {
	starts := make([]int64, w+1)
	per := total / w
	rem := total % w
	var lo int64
	for g := 0; g < w; g++ {
		starts[g] = lo
		lo += int64(per)
		if g < rem {
			lo++
		}
	}
	starts[w] = int64(total)
	return starts
}

// ownershipMap converts the chunk-boundary arithmetic into generation 1 of
// the versioned shard map: one shard per non-empty chunk, owned by the
// group rank holding it, so member index == group rank by construction.
func ownershipMap(starts []int64) (*shardmap.Map, error) {
	w := len(starts) - 1
	m := &shardmap.Map{Gen: 1, Members: make([]shardmap.Member, w)}
	for g := 0; g < w; g++ {
		m.Members[g] = shardmap.Member{ID: fmt.Sprintf("rank-%d", g)}
		if starts[g+1] > starts[g] {
			m.Shards = append(m.Shards, shardmap.Shard{Lo: starts[g], Hi: starts[g+1], Owners: []int{g}})
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: build ownership map: %w", err)
	}
	return m, nil
}

// Open collectively creates the store: every rank of c must call Open with
// the same source and options. Each rank preloads only its own chunk from
// the source, registers it in an RMA window scoped to its replica group,
// and builds the group-wide registry.
func Open(c *comm.Comm, src SampleSource, opts Options) (*Store, error) {
	n := c.Size()
	width := opts.Width
	if width == 0 {
		width = n
	}
	if width < 1 || width > n {
		return nil, fmt.Errorf("core: width %d out of range [1,%d]", width, n)
	}
	if n%width != 0 {
		return nil, fmt.Errorf("core: width %d does not divide %d ranks", width, n)
	}
	total := src.Len()
	if total == 0 {
		return nil, fmt.Errorf("core: source %q is empty", src.Name())
	}

	s := &Store{
		world:     c,
		opts:      opts,
		name:      src.Name(),
		total:     total,
		width:     width,
		replicas:  n / width,
		outputDim: src.OutputDim(),
		nodeDim:   src.NodeFeatDim(),
		edgeDim:   src.EdgeFeatDim(),
		prof:      opts.Profiler,
	}
	if opts.CacheBytes > 0 {
		copts := cache.Options{MaxBytes: opts.CacheBytes, Policy: opts.CachePolicy}
		var sinks []obs.IncSink
		if s.prof != nil {
			sinks = append(sinks, s.prof)
		}
		if opts.Metrics != nil {
			sinks = append(sinks, obs.EventSink(opts.Metrics))
		}
		if len(sinks) == 1 {
			copts.Counters = sinks[0]
		} else if len(sinks) > 1 {
			copts.Counters = obs.TeeCounters(sinks...)
		}
		s.cache = cache.New(copts)
	}

	// Replica groups: w consecutive ranks per group, matching node-packed
	// placement so small widths become intra-node groups.
	group, err := c.Split(c.Rank()/width, c.Rank())
	if err != nil {
		return nil, err
	}
	s.group = group
	s.starts = chunkStarts(total, width)
	s.myLo = s.starts[group.Rank()]
	s.myHi = s.starts[group.Rank()+1]

	// The same boundaries, published as generation 1 of the versioned
	// ownership map. All owner resolution below goes through this store,
	// so the MPI plane and the elastic TCP plane share one source of
	// truth for "who owns sample id".
	gen1, err := ownershipMap(s.starts)
	if err != nil {
		return nil, err
	}
	s.maps, err = shardmap.NewStore(gen1, 0)
	if err != nil {
		return nil, err
	}

	// Preload: read this rank's chunk from the source and pack it.
	preloadStart := clockNow(c)
	lengths := make([]int32, 0, s.myHi-s.myLo)
	for id := s.myLo; id < s.myHi; id++ {
		g, err := src.ReadSample(id)
		if err != nil {
			return nil, fmt.Errorf("core: preload sample %d: %w", id, err)
		}
		if g.ID != id {
			return nil, fmt.Errorf("core: source returned sample %d for id %d", g.ID, id)
		}
		before := len(s.buf)
		s.buf = g.AppendTo(s.buf)
		lengths = append(lengths, int32(len(s.buf)-before))
	}
	if s.prof != nil {
		s.prof.Add(trace.RegionPreload, clockNow(c)-preloadStart)
	}

	// Registry: gather every member's sample lengths; offsets follow from
	// prefix sums. Owners are implied by the deterministic chunk boundaries.
	// Every member derives an identical index, so group rank 0 builds it
	// once and the group shares the immutable result — in a real MPI
	// deployment each process would hold its own few-MB copy (or an MPI-3
	// shared-memory window per node); here sharing keeps a 1536-rank
	// simulation from replicating it 1536 times.
	manifest := make([]byte, 4*len(lengths))
	for i, l := range lengths {
		binary.LittleEndian.PutUint32(manifest[4*i:], uint32(l))
	}
	all, err := group.Allgatherv(manifest)
	if err != nil {
		return nil, err
	}
	var built []entry
	var buildErr error
	if group.Rank() == 0 {
		built, buildErr = buildIndex(all, s.starts, total)
	}
	shared, err := group.ShareFromRoot(indexShare{index: built, err: buildErr}, 0)
	if err != nil {
		return nil, err
	}
	is := shared.(indexShare)
	if is.err != nil {
		return nil, is.err
	}
	s.index = is.index

	// Communication layer: expose the chunk via an RMA window on the group.
	win, err := group.CreateWindow(s.buf)
	if err != nil {
		return nil, err
	}
	s.win = win
	if opts.Framework == FrameworkTwoSided {
		s.startResponder()
	}

	// The batch-load pipeline itself — dedup, cache claims, per-owner
	// fan-out, follower waits, latency capture — lives in the shared engine;
	// storePlane contributes only the RMA/two-sided wire. Fan-out stays
	// serial under a machine model: the virtual clock charges modeled costs
	// through a non-thread-safe RNG, and concurrent charging would break
	// the deterministic timings the simulation exists for.
	s.engine = fetch.New(fetch.Config{
		Plane:       storePlane{s: s},
		Cache:       s.cache,
		Parallelism: opts.FetchParallelism,
		Serial:      c.Machine() != nil,
		Now:         func() time.Duration { return c.Clock().Now() },
		OnLocalBytes: func(n int) {
			if m := c.Machine(); m != nil {
				c.Clock().Advance(m.LocalRead(int64(n)))
			}
		},
		ErrPrefix: "core",
		Metrics:   opts.Metrics,
		Spans:     opts.Spans,
	})
	return s, nil
}

func clockNow(c *comm.Comm) time.Duration {
	return c.Clock().Now()
}

// indexShare carries the built registry (or the build error) from group
// rank 0 to the rest of the group.
type indexShare struct {
	index []entry
	err   error
}

// buildIndex converts the gathered per-member length manifests into the
// group-wide registry.
func buildIndex(all [][]byte, starts []int64, total int) ([]entry, error) {
	index := make([]entry, total)
	for g := 0; g < len(starts)-1; g++ {
		lo, hi := starts[g], starts[g+1]
		if int64(len(all[g])) != 4*(hi-lo) {
			return nil, fmt.Errorf("core: member %d manifest has %d bytes for %d samples",
				g, len(all[g]), hi-lo)
		}
		var offset int64
		for id := lo; id < hi; id++ {
			length := int32(binary.LittleEndian.Uint32(all[g][4*(id-lo):]))
			index[id] = entry{offset: offset, length: length}
			offset += int64(length)
		}
	}
	return index, nil
}

// Name returns the dataset name.
func (s *Store) Name() string { return s.name }

// Len returns the dataset size in samples.
func (s *Store) Len() int { return s.total }

// Width returns the replica-group size w.
func (s *Store) Width() int { return s.width }

// Replicas returns r = N/w, the number of dataset replicas held in memory.
func (s *Store) Replicas() int { return s.replicas }

// OutputDim returns the per-graph target width.
func (s *Store) OutputDim() int { return s.outputDim }

// NodeFeatDim returns the per-node feature width.
func (s *Store) NodeFeatDim() int { return s.nodeDim }

// EdgeFeatDim returns the per-edge feature width.
func (s *Store) EdgeFeatDim() int { return s.edgeDim }

// Group returns this rank's replica-group communicator.
func (s *Store) Group() *comm.Comm { return s.group }

// LocalRange returns the sample-id range [lo, hi) held in this rank's
// memory.
func (s *Store) LocalRange() (lo, hi int64) { return s.myLo, s.myHi }

// MemoryBytes returns the size of this rank's chunk buffer.
func (s *Store) MemoryBytes() int64 { return int64(len(s.buf)) }

// Stats returns a snapshot of the loader traffic counters, including the
// engine's per-sample load latency percentiles.
func (s *Store) Stats() Stats {
	st := s.stats.snapshot()
	ls := s.engine.LatencyStats()
	st.LoadP50, st.LoadP95, st.LoadP99 = ls.P50, ls.P95, ls.P99
	return st
}

// LatencyStats summarizes the engine's recent per-sample load latencies
// (virtual time under a machine model, wall time otherwise).
func (s *Store) LatencyStats() fetch.LatencySummary { return s.engine.LatencyStats() }

// Cache returns the store's remote-sample cache, or nil when the store
// was opened without one (Options.CacheBytes <= 0).
func (s *Store) Cache() *cache.Cache { return s.cache }

// CacheStats returns the remote-sample cache's counters; the zero Stats
// when the store has no cache.
func (s *Store) CacheStats() cache.Stats {
	if s.cache == nil {
		return cache.Stats{}
	}
	return s.cache.Stats()
}

// OwnerOf returns the group rank owning sample id, resolved against the
// live generation of the ownership map (generation 1 reproduces the chunk
// boundaries exactly; member index == group rank by construction, so the
// result stays a group rank even after the map advances).
func (s *Store) OwnerOf(id int64) (int, error) {
	if id < 0 || id >= int64(s.total) {
		return 0, fmt.Errorf("core: sample %d out of range [0,%d)", id, s.total)
	}
	return s.maps.Current().OwnerOf(id)
}

// ShardMap returns the store's versioned ownership map: generation 1 is
// the chunk-boundary striping Open computed, and the elastic control
// plane can advance it from there.
func (s *Store) ShardMap() *shardmap.Store { return s.maps }

// Load fetches the given sample ids (a shuffled batch) and returns the
// decoded graphs in the same order. Local ids are served from this rank's
// memory; remote ids are fetched from their owners with one-sided Gets,
// grouping ids by owner so each owner's window lock is acquired once. The
// whole pipeline — dedup, cache claims, per-owner fan-out, coalesced-fetch
// waits — runs in the shared engine (internal/fetch).
func (s *Store) Load(ids []int64) ([]*graph.Graph, error) {
	out, _, err := s.load(ids, false)
	return out, err
}

// LoadTimed is Load plus the per-sample virtual-time cost, for the latency
// CDF experiments. The owner-lock cost lands on the first sample fetched
// from that owner, mirroring how a real per-batch lock amortizes.
func (s *Store) LoadTimed(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	return s.load(ids, true)
}

func (s *Store) load(ids []int64, timed bool) ([]*graph.Graph, []time.Duration, error) {
	start := clockNow(s.world)
	out, lat, err := s.engine.Load(ids)
	if err != nil {
		return nil, nil, err
	}
	if s.prof != nil && s.opts.Framework == FrameworkRMA {
		s.prof.Add(trace.RegionRMA, clockNow(s.world)-start)
	}
	if !timed {
		lat = nil
	}
	return out, lat, nil
}

// LoadLazy is LoadTimed without tensor materialization: each sample comes
// back as a header-validated graph.Lazy view over its wire buffer, and the
// float/int tensors are built only if the caller asks for the Graph. A
// consumer that just re-encodes (a prefetch stash, a proxy) never pays the
// decode. The caller owns the returned views and must either materialize
// (Graph releases the buffer reference) or Release each one.
func (s *Store) LoadLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error) {
	start := clockNow(s.world)
	out, lat, err := s.engine.LoadLazy(ids)
	if err != nil {
		return nil, nil, err
	}
	if s.prof != nil && s.opts.Framework == FrameworkRMA {
		s.prof.Add(trace.RegionRMA, clockNow(s.world)-start)
	}
	return out, lat, nil
}

// Fence synchronizes all ranks of the replica group between access epochs.
func (s *Store) Fence() error { return s.win.Fence() }

// Barrier synchronizes all ranks of the creating communicator.
func (s *Store) Barrier() error { return s.world.Barrier() }

// LocalSampleBytes returns the encoded bytes of a locally-held sample
// without copying. It is the hook the TCP transport uses to serve this
// rank's chunk to remote processes; callers must not modify the slice.
func (s *Store) LocalSampleBytes(id int64) ([]byte, error) {
	if id < s.myLo || id >= s.myHi {
		return nil, fmt.Errorf("core: sample %d not in local range [%d,%d)", id, s.myLo, s.myHi)
	}
	e := s.index[id]
	return s.buf[e.offset : e.offset+int64(e.length)], nil
}

// NetPolicy returns the store's effective TCP retry policy.
func (s *Store) NetPolicy() transport.RetryPolicy { return s.opts.Net }

// ServeTCP exposes this rank's chunk over the TCP data plane, with the
// server-side limits derived from the store's retry policy. One server per
// rank (or per node) makes the store's chunks reachable across process
// boundaries.
func (s *Store) ServeTCP(addr string) (*transport.Server, error) {
	return transport.ServeWith(addr, s, s.opts.Net.ServerOptions())
}

// DialGroup connects to remote chunk servers — one address list per
// replica group — using the store's retry policy, and records the data
// plane's retry/failover/timeout counters into the store's profiler.
func (s *Store) DialGroup(replicas [][]string) (*transport.Group, error) {
	opts := transport.GroupOptions{
		Client:           transport.ClientOptions{Policy: s.opts.Net},
		CacheBytes:       s.opts.CacheBytes,
		CachePolicy:      s.opts.CachePolicy,
		FetchParallelism: s.opts.FetchParallelism,
		Metrics:          s.opts.Metrics,
		Spans:            s.opts.Spans,
	}
	var sinks []obs.IncSink
	if s.prof != nil {
		sinks = append(sinks, s.prof)
	}
	if s.opts.Metrics != nil {
		sinks = append(sinks, obs.EventSink(s.opts.Metrics))
	}
	if len(sinks) == 1 {
		opts.Client.Counters = sinks[0]
	} else if len(sinks) > 1 {
		opts.Client.Counters = obs.TeeCounters(sinks...)
	}
	return transport.NewGroupReplicas(replicas, opts)
}
