package core

import (
	"fmt"
	"testing"

	"ddstore/internal/cff"
	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/pff"
)

// TestSourceEquivalence verifies the preloader-plugin claim: a store built
// from the generator, from real PFF files, and from real CFF containers
// serves byte-identical samples.
func TestSourceEquivalence(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 30})
	pffDir, cffDir := t.TempDir(), t.TempDir()
	if err := pff.Write(pffDir, ds, 0, 30); err != nil {
		t.Fatal(err)
	}
	if err := cff.Write(cffDir, ds, 3); err != nil {
		t.Fatal(err)
	}
	pffStore, err := pff.Open(pffDir)
	if err != nil {
		t.Fatal(err)
	}
	cffStore, err := cff.Open(cffDir)
	if err != nil {
		t.Fatal(err)
	}
	defer cffStore.Close()

	sources := map[string]SampleSource{
		"generator": ds,
		"pff":       pffStore,
		"cff":       cffStore,
	}
	ids := []int64{0, 29, 7, 15, 22, 3}
	encoded := map[string][][]byte{}
	for name, src := range sources {
		name, src := name, src
		runWorld(t, 4, cluster.Laptop(), func(c *comm.Comm) error {
			s, err := Open(c, src, Options{Width: 2})
			if err != nil {
				return err
			}
			got, err := s.Load(ids)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				var enc [][]byte
				for _, g := range got {
					enc = append(enc, g.Encode())
				}
				encoded[name] = enc
			}
			return c.Barrier()
		})
	}
	for name, enc := range encoded {
		for i := range ids {
			a, b := encoded["generator"][i], enc[i]
			if len(a) != len(b) {
				t.Fatalf("%s: sample %d size differs", name, ids[i])
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: sample %d byte %d differs", name, ids[i], j)
				}
			}
		}
	}
}

// TestPreloadRejectsMisbehavingSource guards against sources that return
// the wrong sample for an id.
func TestPreloadRejectsMisbehavingSource(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	bad := &misIDSource{Dataset: ds}
	runWorld(t, 2, nil, func(c *comm.Comm) error {
		if _, err := Open(c, bad, Options{}); err == nil {
			return fmt.Errorf("misbehaving source accepted")
		}
		return nil
	})
}

// misIDSource returns samples whose embedded ID disagrees with the
// requested id.
type misIDSource struct{ *datasets.Dataset }

func (m *misIDSource) ReadSample(id int64) (*graph.Graph, error) {
	g, err := m.Dataset.ReadSample(id)
	if err != nil {
		return nil, err
	}
	bad := *g
	bad.ID = id + 1
	return &bad, nil
}
