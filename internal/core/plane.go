package core

import (
	"fmt"
	"time"

	"ddstore/internal/bufarena"
	"ddstore/internal/comm"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
)

// storePlane adapts the Store to the shared fetch engine: owner arithmetic
// over the chunk boundaries, local memory reads, one-sided RMA Gets (plus
// the LockPerSample and NonBlocking ablation variants), and the two-sided
// request/response alternative. The engine owns everything else — dedup,
// cache claims, fan-out, follower waits, latency capture.
type storePlane struct {
	s *Store
}

func (p storePlane) OwnerOf(id int64) (int, error) { return p.s.OwnerOf(id) }

func (p storePlane) Local(owner int) bool { return owner == p.s.group.Rank() }

// BeginEpoch opens one shared-lock access epoch per remote owner and
// reports its cost, which the engine charges to the owner's first sample —
// how a per-batch lock amortizes. Local reads need no epoch; LockPerSample
// opens per-sample epochs inside FetchOwner; the two-sided framework has
// no window locks at all.
func (p storePlane) BeginEpoch(owner int) (time.Duration, error) {
	s := p.s
	if owner == s.group.Rank() || s.opts.LockPerSample || s.opts.Framework == FrameworkTwoSided {
		return 0, nil
	}
	start := clockNow(s.world)
	if err := s.lockSharedRef(owner); err != nil {
		return 0, err
	}
	s.stats.lockAcquires.Add(1)
	return clockNow(s.world) - start, nil
}

func (p storePlane) EndEpoch(owner int) error {
	s := p.s
	if owner == s.group.Rank() || s.opts.LockPerSample || s.opts.Framework == FrameworkTwoSided {
		return nil
	}
	return s.unlockSharedRef(owner)
}

func (p storePlane) FetchOwner(owner int, ids []int64, deliver fetch.Deliver) error {
	s := p.s
	if owner == s.group.Rank() {
		return s.fetchLocal(ids, deliver)
	}
	if s.opts.Framework == FrameworkTwoSided {
		return s.fetchTwoSided(owner, ids, deliver)
	}
	if s.opts.LockPerSample {
		return s.fetchLockPerSample(owner, ids, deliver)
	}
	if s.opts.NonBlocking {
		return s.fetchNonBlocking(owner, ids, deliver)
	}
	return s.fetchSequential(owner, ids, deliver)
}

// fetchLocal serves this rank's own chunk: a memory read per sample, no
// communication and no cache involvement. The lazy decode borrows the
// window memory directly (nil reference — the window outlives every load),
// so a local sample costs one header validation and zero copies.
func (s *Store) fetchLocal(ids []int64, deliver fetch.Deliver) error {
	for _, id := range ids {
		before := clockNow(s.world)
		e := s.index[id]
		local := s.buf[e.offset : e.offset+int64(e.length)]
		if m := s.world.Machine(); m != nil {
			s.world.Clock().Advance(m.LocalRead(int64(e.length)))
		}
		lz, err := graph.DecodeLazy(local, nil)
		if err != nil {
			return fmt.Errorf("core: decode local sample %d: %w", id, err)
		}
		s.stats.localReads.Add(1)
		s.stats.bytesLocal.Add(int64(e.length))
		deliver(id, local, lz, clockNow(s.world)-before)
	}
	return nil
}

// fetchSequential is the paper's default wire: within the engine-managed
// shared-lock epoch, one blocking Get per sample into a pooled buffer
// whose single reference moves into the delivered Lazy.
func (s *Store) fetchSequential(owner int, ids []int64, deliver fetch.Deliver) error {
	for _, id := range ids {
		before := clockNow(s.world)
		e := s.index[id]
		buf := bufarena.Get(int(e.length))
		dst := buf.Bytes()
		if err := s.win.Get(dst, owner, int(e.offset)); err != nil {
			buf.Release()
			return fmt.Errorf("core: RMA get sample %d from %d: %w", id, owner, err)
		}
		lz, err := graph.DecodeLazy(dst, buf)
		if err != nil {
			buf.Release()
			return fmt.Errorf("core: decode remote sample %d: %w", id, err)
		}
		s.stats.remoteGets.Add(1)
		s.stats.bytesRemote.Add(int64(e.length))
		deliver(id, dst, lz, clockNow(s.world)-before)
	}
	return nil
}

// fetchLockPerSample is the abl-lock ablation: a fresh access epoch per
// sample, so the lock round-trip is paid for every Get.
func (s *Store) fetchLockPerSample(owner int, ids []int64, deliver fetch.Deliver) error {
	for _, id := range ids {
		before := clockNow(s.world)
		e := s.index[id]
		if err := s.lockSharedRef(owner); err != nil {
			return err
		}
		s.stats.lockAcquires.Add(1)
		buf := bufarena.Get(int(e.length))
		dst := buf.Bytes()
		if err := s.win.Get(dst, owner, int(e.offset)); err != nil {
			s.unlockSharedRef(owner)
			buf.Release()
			return fmt.Errorf("core: RMA get sample %d from %d: %w", id, owner, err)
		}
		if err := s.unlockSharedRef(owner); err != nil {
			buf.Release()
			return err
		}
		lz, err := graph.DecodeLazy(dst, buf)
		if err != nil {
			buf.Release()
			return fmt.Errorf("core: decode remote sample %d: %w", id, err)
		}
		s.stats.remoteGets.Add(1)
		s.stats.bytesRemote.Add(int64(e.length))
		deliver(id, dst, lz, clockNow(s.world)-before)
	}
	return nil
}

// fetchNonBlocking is the overlapped-Gets ablation (MPI_Rget-style): issue
// everything within the epoch, wait once, and share the overlapped wire
// time evenly across the samples. On an issue error the already-posted
// buffers are deliberately NOT released: their Gets may still be in
// flight, and a recycled buffer under a live RMA write is a real
// use-after-free. Unreleased buffers degrade to GC-owned memory.
func (s *Store) fetchNonBlocking(owner int, ids []int64, deliver fetch.Deliver) error {
	before := clockNow(s.world)
	bufs := make([]*bufarena.Buf, len(ids))
	reqs := make([]*comm.Request, len(ids))
	for i, id := range ids {
		e := s.index[id]
		bufs[i] = bufarena.Get(int(e.length))
		req, err := s.win.GetNB(bufs[i].Bytes(), owner, int(e.offset))
		if err != nil {
			return fmt.Errorf("core: RMA rget sample %d from %d: %w", id, owner, err)
		}
		reqs[i] = req
		s.stats.remoteGets.Add(1)
		s.stats.bytesRemote.Add(int64(e.length))
	}
	comm.WaitAll(reqs)
	elapsed := clockNow(s.world) - before
	per := elapsed / time.Duration(len(ids))
	for i, id := range ids {
		lz, err := graph.DecodeLazy(bufs[i].Bytes(), bufs[i])
		if err != nil {
			bufs[i].Release()
			return fmt.Errorf("core: decode remote sample %d: %w", id, err)
		}
		deliver(id, bufs[i].Bytes(), lz, per)
	}
	return nil
}

// fetchTwoSided retrieves the owner's samples in one multi-get RPC. The
// exchange cost is shared by the samples it carried, and bytes are
// header-validated before delivery so only validated bytes ever reach the
// cache. The RPC reply slices are ordinary GC-owned memory (nil
// reference).
func (s *Store) fetchTwoSided(owner int, ids []int64, deliver fetch.Deliver) error {
	before := clockNow(s.world)
	raws, err := s.fetchTwoSidedBatch(owner, ids)
	if err != nil {
		return err
	}
	per := (clockNow(s.world) - before) / time.Duration(len(ids))
	for i, id := range ids {
		lz, derr := graph.DecodeLazy(raws[i], nil)
		if derr != nil {
			return fmt.Errorf("core: decode sample %d: %w", id, derr)
		}
		s.stats.remoteGets.Add(1)
		s.stats.bytesRemote.Add(int64(len(raws[i])))
		deliver(id, raws[i], lz, per)
	}
	return nil
}
