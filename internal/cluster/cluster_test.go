package cluster

import (
	"testing"
	"time"

	"ddstore/internal/vtime"
)

func machines() []*Machine {
	return []*Machine{Summit(), Perlmutter(), Laptop()}
}

func TestValidate(t *testing.T) {
	for _, m := range machines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	m := Summit()
	m.GPUsPerNode = 0
	if m.Validate() == nil {
		t.Error("zero GPUs per node not rejected")
	}
	m = Summit()
	m.FSBandwidth = -1
	if m.Validate() == nil {
		t.Error("negative FS bandwidth not rejected")
	}
	m = Summit()
	m.NodeMemory = 0
	if m.Validate() == nil {
		t.Error("zero node memory not rejected")
	}
}

func TestNodeMapping(t *testing.T) {
	m := Summit() // 6 GPUs per node
	if m.NodeOf(0) != 0 || m.NodeOf(5) != 0 || m.NodeOf(6) != 1 || m.NodeOf(17) != 2 {
		t.Fatal("NodeOf wrong for Summit")
	}
	if !m.SameNode(0, 5) || m.SameNode(5, 6) {
		t.Fatal("SameNode wrong")
	}
	if m.Nodes(1) != 1 || m.Nodes(6) != 1 || m.Nodes(7) != 2 || m.Nodes(384) != 64 {
		t.Fatal("Nodes wrong")
	}
	p := Perlmutter() // 4 GPUs per node
	if p.Nodes(64) != 16 || p.Nodes(1024) != 256 {
		t.Fatal("Nodes wrong for Perlmutter")
	}
}

func TestNetTransferLocalityOrdering(t *testing.T) {
	for _, m := range machines() {
		intra := m.NetTransfer(1<<20, true)
		inter := m.NetTransfer(1<<20, false)
		if intra >= inter {
			t.Errorf("%s: intra-node transfer (%v) not faster than inter-node (%v)", m.Name, intra, inter)
		}
	}
}

func TestNetTransferScalesWithSize(t *testing.T) {
	m := Perlmutter()
	small := m.NetTransfer(1<<10, false)
	big := m.NetTransfer(1<<30, false)
	if big <= small {
		t.Fatal("transfer time not increasing with size")
	}
}

func TestRMAGetCalibration(t *testing.T) {
	// The paper's Table 2: DDStore median per-graph latency on Perlmutter is
	// 0.24–0.44 ms with the default width (inter-node gets dominate). Our
	// modeled inter-node RMA Get of a ~6 KB sample must land in that regime.
	m := Perlmutter()
	got := m.RMAGet(6<<10, false)
	if got < 150*time.Microsecond || got > 600*time.Microsecond {
		t.Fatalf("inter-node RMAGet(6KB) = %v, want 0.15–0.6 ms", got)
	}
	// Width=2 regime (Table 3): intra-node fetches have ~0.05 ms medians.
	gotIntra := m.RMAGet(6<<10, true)
	if gotIntra < 10*time.Microsecond || gotIntra > 120*time.Microsecond {
		t.Fatalf("intra-node RMAGet(6KB) = %v, want 0.01–0.12 ms", gotIntra)
	}
	if gotIntra >= got {
		t.Fatal("intra-node get not faster than inter-node")
	}
}

func TestFSReadCalibration(t *testing.T) {
	// PFF on Perlmutter: median ~2.4–2.8 ms per graph (open + read) at 64
	// ranks. Check the median of our model lands near that.
	m := Perlmutter()
	rng := vtime.NewRNG(1)
	const n = 2001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = m.FSRead(8<<10, 64, true, rng)
	}
	med := median(samples)
	if med < 1500*time.Microsecond || med > 5*time.Millisecond {
		t.Fatalf("PFF-style FSRead median = %v, want 1.5–5 ms", med)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestFSContentionMonotonic(t *testing.T) {
	m := Summit()
	prev := 0.0
	for _, readers := range []int{1, 2, 8, 64, 1024} {
		c := m.FSContention(readers)
		if c < 1 {
			t.Fatalf("contention(%d) = %v < 1", readers, c)
		}
		if c < prev {
			t.Fatalf("contention not monotonic at %d readers", readers)
		}
		prev = c
	}
	if m.FSContention(1) != 1 {
		t.Fatal("single reader should have no contention")
	}
	if m.SharedFileContention(1) != 1 {
		t.Fatal("single shared-file reader should have no contention")
	}
	if m.SharedFileContention(64) <= 1 {
		t.Fatal("shared-file contention missing")
	}
}

func TestCacheHitFasterThanDisk(t *testing.T) {
	m := Perlmutter()
	rng := vtime.NewRNG(2)
	var cache, disk time.Duration
	for i := 0; i < 500; i++ {
		cache += m.CacheHit(8<<10, rng)
		disk += m.FSRead(8<<10, 64, false, rng)
	}
	if cache >= disk {
		t.Fatalf("page cache (%v) not faster than disk (%v)", cache, disk)
	}
}

func TestGPUCompute(t *testing.T) {
	m := Perlmutter()
	// GPUTflops teraflops take exactly one second.
	if got := m.GPUCompute(m.GPUTflops * 1e12); got != time.Second {
		t.Fatalf("GPUCompute = %v, want 1s", got)
	}
	if got := m.GPUCompute(0); got != 0 {
		t.Fatalf("GPUCompute(0) = %v", got)
	}
	// Summit's V100s are slower than Perlmutter's A100s.
	if Summit().GPUCompute(1e12) <= Perlmutter().GPUCompute(1e12) {
		t.Fatal("V100 should be slower than A100")
	}
}

func TestAllreduce(t *testing.T) {
	m := Summit()
	if got := m.Allreduce(1<<20, 1); got != 0 {
		t.Fatalf("allreduce with 1 rank = %v", got)
	}
	t2 := m.Allreduce(10<<20, 2)
	t64 := m.Allreduce(10<<20, 64)
	if t2 <= 0 || t64 <= 0 {
		t.Fatal("non-positive allreduce time")
	}
	// Latency term grows with n; bandwidth term saturates.
	if t64 <= t2 {
		t.Fatal("allreduce time should grow with rank count")
	}
	// Sanity: 10 MB over ~12.5 GB/s ring should be low single-digit ms plus
	// latency, well under a second.
	if t64 > 100*time.Millisecond {
		t.Fatalf("allreduce(10MB, 64) = %v, implausibly slow", t64)
	}
}

func TestCollectiveLatency(t *testing.T) {
	m := Perlmutter()
	if m.CollectiveLatency(1) != 0 {
		t.Fatal("1-rank collective should be free")
	}
	if m.CollectiveLatency(1024) <= m.CollectiveLatency(4) {
		t.Fatal("collective latency should grow with n")
	}
}

func TestCPUBatchAndOptimizer(t *testing.T) {
	m := Summit()
	if m.CPUBatch(0, 0) != 0 {
		t.Fatal("empty batch should be free")
	}
	if m.CPUBatch(128, 1<<20) <= m.CPUBatch(1, 1<<10) {
		t.Fatal("batch cost should grow")
	}
	if m.OptimizerStep(0) != 0 {
		t.Fatal("optimizer with 0 params should be free")
	}
	if m.OptimizerStep(3_000_000) <= 0 {
		t.Fatal("optimizer cost missing")
	}
}

func TestLocalReadFastest(t *testing.T) {
	m := Perlmutter()
	rng := vtime.NewRNG(3)
	local := m.LocalRead(6 << 10)
	rmaIntra := m.RMAGet(6<<10, true)
	rmaInter := m.RMAGet(6<<10, false)
	disk := m.FSRead(6<<10, 64, true, rng)
	if !(local < rmaIntra && rmaIntra < rmaInter && rmaInter < disk) {
		t.Fatalf("latency hierarchy violated: local=%v intra=%v inter=%v disk=%v",
			local, rmaIntra, rmaInter, disk)
	}
}

func TestJitterFactorDistribution(t *testing.T) {
	m := Perlmutter()
	rng := vtime.NewRNG(17)
	var below, above int
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := m.JitterFactor(rng)
		if f <= 0 {
			t.Fatalf("non-positive jitter %v", f)
		}
		if f < 1 {
			below++
		} else {
			above++
		}
		sum += f
	}
	// Log-normal with median 1: halves split evenly, mean slightly above 1.
	if below < n*45/100 || below > n*55/100 {
		t.Fatalf("jitter median off: %d/%d below 1", below, n)
	}
	if mean := sum / n; mean < 1.0 || mean > 1.3 {
		t.Fatalf("jitter mean %v, want slightly above 1", mean)
	}
	// A machine with no jitter configured returns exactly 1.
	m.NetJitterSigma = 0
	if m.JitterFactor(rng) != 1 {
		t.Fatal("zero-sigma jitter not 1")
	}
}

func TestAllreduceLatencyLogarithmic(t *testing.T) {
	// The hierarchical model's latency share must grow like log2(n), not n:
	// quadrupling ranks on a tiny payload should far less than quadruple the
	// cost.
	m := Summit()
	small := m.Allreduce(8, 96)
	big := m.Allreduce(8, 1536)
	if big >= 4*small {
		t.Fatalf("allreduce latency scaling too steep: %v -> %v", small, big)
	}
}
