// Package cluster models the two supercomputers the paper evaluates on —
// Summit (ORNL) and Perlmutter (NERSC) — as sets of performance parameters
// plus pure cost functions. The simulated runtime (internal/comm,
// internal/pfs, internal/ddp) executes the real DDStore code and charges the
// modeled cost of every I/O, network, and compute operation to per-rank
// virtual clocks.
//
// Parameter calibration: the distributions are chosen so that the per-graph
// load latencies land in the regimes reported by the paper (Table 2): a
// parallel-filesystem metadata+read operation has a median of a few
// milliseconds with a long tail, an inter-node RMA Get of a small sample
// costs a few hundred microseconds, and an intra-node or local fetch costs
// tens of microseconds. Absolute values are documented per machine below and
// recorded in EXPERIMENTS.md.
package cluster

import (
	"fmt"
	"math"
	"time"

	"ddstore/internal/vtime"
)

// Machine describes one supercomputer's node architecture and calibrated
// performance parameters. All bandwidths are bytes/second.
type Machine struct {
	Name        string
	GPUsPerNode int
	CPUsPerNode int
	MaxNodes    int
	NodeMemory  int64 // bytes of host DRAM per node

	// GPUTflops is the *effective* fp32 throughput per GPU on graph
	// message-passing workloads, used to convert a flop estimate into
	// compute time. Sparse gather/scatter kernels run far below peak
	// (5–10%), which is why these values are well under the cards'
	// datasheet numbers.
	GPUTflops float64

	// Network parameters. "Intra" is within a node (NVLink / shared memory),
	// "Inter" is across nodes (EDR InfiniBand on Summit, Slingshot on
	// Perlmutter).
	IntraNodeLatency   time.Duration
	IntraNodeBandwidth float64
	InterNodeLatency   time.Duration
	InterNodeBandwidth float64

	// RMAOverhead is the fixed software cost of a one-sided operation
	// (window lock bookkeeping, completion check) beyond the raw transfer.
	RMAOverhead time.Duration

	// NetJitterSigma is the log-normal sigma of multiplicative noise on
	// network operations (congestion, adaptive routing); median factor is 1.
	// It produces the latency tails visible in the paper's CDFs and the
	// straggler-induced GPU-Comm inflation.
	NetJitterSigma float64

	// Parallel filesystem parameters (GPFS "Alpine" on Summit, Lustre on
	// Perlmutter). FSMetadata is the cost of an open/stat on the shared
	// filesystem; FSSeek the cost of positioning inside an already-open
	// file; FSBandwidth the per-process streaming bandwidth with no
	// contention.
	FSMetadata  vtime.LogNormal
	FSSeek      vtime.LogNormal
	FSBandwidth float64

	// FSContentionAlpha controls how shared-filesystem latency degrades as
	// more processes hammer it concurrently: effective latency is scaled by
	// 1 + alpha*log2(readers). A log law matches the observed gentle
	// degradation of large parallel filesystems up to the point of
	// saturation.
	FSContentionAlpha float64

	// SharedFileAlpha is the additional congestion multiplier for many
	// readers inside the *same* container file (CFF): lock conflicts on
	// shared stripes grow roughly linearly with the readers per file,
	// saturating at SharedFileMaxMult. Effective multiplier
	// min(1 + alpha*(readersPerFile-1), SharedFileMaxMult).
	SharedFileAlpha   float64
	SharedFileMaxMult float64

	// PageCacheBytes is the per-node OS page cache available for caching
	// file blocks; PageCacheHit is the cost of serving a sample-sized read
	// from the cache.
	PageCacheBytes int64
	PageCacheHit   vtime.LogNormal

	// LocalReadLatency/LocalReadBandwidth model a memcpy from the rank's own
	// in-memory chunk (DDStore local hit).
	LocalReadLatency   time.Duration
	LocalReadBandwidth float64

	// CPUBatchPerSample is the CPU cost of collating one decoded sample into
	// a batch tensor (the paper's "CPU-Batching" phase).
	CPUBatchPerSample time.Duration

	// OptimizerPerParamNs is the cost per parameter of the optimizer step
	// (AdamW update), in nanoseconds. A float because the per-parameter cost
	// is a fraction of a nanosecond.
	OptimizerPerParamNs float64
}

// Summit returns the model of the Summit supercomputer: 2 POWER9 CPUs and
// 6 V100 (16 GB) GPUs per node, 512 GB DRAM, fat-tree EDR InfiniBand, GPFS.
func Summit() *Machine {
	return &Machine{
		Name:        "Summit",
		GPUsPerNode: 6,
		CPUsPerNode: 2,
		MaxNodes:    4608,
		NodeMemory:  512 << 30,
		GPUTflops:   1.0, // V100 effective on PNA message passing

		IntraNodeLatency:   6 * time.Microsecond,
		IntraNodeBandwidth: 40e9, // NVLink2-class
		InterNodeLatency:   110 * time.Microsecond,
		InterNodeBandwidth: 12.5e9, // dual-rail EDR
		RMAOverhead:        60 * time.Microsecond,
		NetJitterSigma:     0.5,

		FSMetadata:        vtime.NewLogNormalMedianP99(1400*time.Microsecond, 3200*time.Microsecond),
		FSSeek:            vtime.NewLogNormalMedianP99(800*time.Microsecond, 2200*time.Microsecond),
		FSBandwidth:       1.6e9,
		FSContentionAlpha: 0.11,
		SharedFileAlpha:   0.7,
		SharedFileMaxMult: 12,

		PageCacheBytes: 256 << 30,
		PageCacheHit:   vtime.NewLogNormalMedianP99(120*time.Microsecond, 600*time.Microsecond),

		LocalReadLatency:   2 * time.Microsecond,
		LocalReadBandwidth: 20e9,

		CPUBatchPerSample:   55 * time.Microsecond,
		OptimizerPerParamNs: 0.35,
	}
}

// Perlmutter returns the model of Perlmutter's GPU partition: 1 EPYC 7763
// and 4 A100 (40 GB) GPUs per node, 256 GB DRAM, Slingshot-10, Lustre.
func Perlmutter() *Machine {
	return &Machine{
		Name:        "Perlmutter",
		GPUsPerNode: 4,
		CPUsPerNode: 1,
		MaxNodes:    1536,
		NodeMemory:  256 << 30,
		GPUTflops:   2.6, // A100 effective on PNA message passing

		IntraNodeLatency:   4 * time.Microsecond,
		IntraNodeBandwidth: 80e9, // NVLink3
		InterNodeLatency:   90 * time.Microsecond,
		InterNodeBandwidth: 22e9, // Slingshot
		RMAOverhead:        45 * time.Microsecond,
		NetJitterSigma:     0.5,

		FSMetadata:        vtime.NewLogNormalMedianP99(900*time.Microsecond, 2100*time.Microsecond),
		FSSeek:            vtime.NewLogNormalMedianP99(500*time.Microsecond, 1700*time.Microsecond),
		FSBandwidth:       2.2e9,
		FSContentionAlpha: 0.13,
		SharedFileAlpha:   0.8,
		SharedFileMaxMult: 12,

		PageCacheBytes: 128 << 30,
		PageCacheHit:   vtime.NewLogNormalMedianP99(95*time.Microsecond, 550*time.Microsecond),

		LocalReadLatency:   1 * time.Microsecond,
		LocalReadBandwidth: 25e9,

		CPUBatchPerSample:   45 * time.Microsecond,
		OptimizerPerParamNs: 0.25,
	}
}

// Laptop returns a tiny machine model used by tests and the quickstart
// example: two "GPUs" per node, fast uniform interconnect, slow disk. The
// point is not realism but exercising every code path cheaply.
func Laptop() *Machine {
	return &Machine{
		Name:        "Laptop",
		GPUsPerNode: 2,
		CPUsPerNode: 1,
		MaxNodes:    8,
		NodeMemory:  16 << 30,
		GPUTflops:   1.0,

		IntraNodeLatency:   2 * time.Microsecond,
		IntraNodeBandwidth: 10e9,
		InterNodeLatency:   30 * time.Microsecond,
		InterNodeBandwidth: 5e9,
		RMAOverhead:        10 * time.Microsecond,
		NetJitterSigma:     0.3,

		FSMetadata:        vtime.NewLogNormalMedianP99(400*time.Microsecond, 1200*time.Microsecond),
		FSSeek:            vtime.NewLogNormalMedianP99(150*time.Microsecond, 500*time.Microsecond),
		FSBandwidth:       0.8e9,
		FSContentionAlpha: 0.2,
		SharedFileAlpha:   0.5,
		SharedFileMaxMult: 8,

		PageCacheBytes: 4 << 30,
		PageCacheHit:   vtime.NewLogNormalMedianP99(40*time.Microsecond, 200*time.Microsecond),

		LocalReadLatency:   1 * time.Microsecond,
		LocalReadBandwidth: 15e9,

		CPUBatchPerSample:   20 * time.Microsecond,
		OptimizerPerParamNs: 0.5,
	}
}

// Validate checks the machine parameters for internal consistency.
func (m *Machine) Validate() error {
	switch {
	case m.GPUsPerNode <= 0:
		return fmt.Errorf("cluster: %s has %d GPUs per node", m.Name, m.GPUsPerNode)
	case m.GPUTflops <= 0:
		return fmt.Errorf("cluster: %s has non-positive GPU throughput", m.Name)
	case m.IntraNodeBandwidth <= 0 || m.InterNodeBandwidth <= 0 || m.FSBandwidth <= 0,
		m.LocalReadBandwidth <= 0:
		return fmt.Errorf("cluster: %s has a non-positive bandwidth", m.Name)
	case m.NodeMemory <= 0:
		return fmt.Errorf("cluster: %s has non-positive node memory", m.Name)
	}
	return nil
}

// NodeOf maps a rank to its node index, packing GPUsPerNode consecutive
// ranks per node — the standard jsrun/srun placement the paper uses.
func (m *Machine) NodeOf(rank int) int { return rank / m.GPUsPerNode }

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }

// Nodes returns the number of nodes needed for n ranks.
func (m *Machine) Nodes(n int) int {
	return (n + m.GPUsPerNode - 1) / m.GPUsPerNode
}

// transfer returns latency + bytes/bandwidth.
func transfer(lat time.Duration, bytes int64, bw float64) time.Duration {
	return lat + time.Duration(float64(bytes)/bw*float64(time.Second))
}

// NetTransfer returns the modeled time to move bytes between two ranks using
// point-to-point communication.
func (m *Machine) NetTransfer(bytes int64, sameNode bool) time.Duration {
	if sameNode {
		return transfer(m.IntraNodeLatency, bytes, m.IntraNodeBandwidth)
	}
	return transfer(m.InterNodeLatency, bytes, m.InterNodeBandwidth)
}

// RMALock returns the modeled time to acquire a passive-target window lock
// on a remote rank: one network round-trip plus half the fixed one-sided
// software overhead.
func (m *Machine) RMALock(sameNode bool) time.Duration {
	lat := m.InterNodeLatency
	if sameNode {
		lat = m.IntraNodeLatency
	}
	return m.RMAOverhead/2 + 2*lat
}

// RMATransfer returns the modeled time for one MPI_Get/MPI_Put data movement
// within an already-open access epoch: an issue+completion round-trip plus
// the payload stream plus the remaining software overhead.
func (m *Machine) RMATransfer(bytes int64, sameNode bool) time.Duration {
	lat := m.InterNodeLatency
	bw := m.InterNodeBandwidth
	if sameNode {
		lat = m.IntraNodeLatency
		bw = m.IntraNodeBandwidth
	}
	return m.RMAOverhead/2 + 2*lat + time.Duration(float64(bytes)/bw*float64(time.Second))
}

// RMAGet returns the modeled time for a complete single-shot one-sided Get:
// lock acquisition plus the transfer. Batched access amortizes the lock by
// calling RMALock once and RMATransfer per item, which is what DDStore does.
func (m *Machine) RMAGet(bytes int64, sameNode bool) time.Duration {
	return m.RMALock(sameNode) + m.RMATransfer(bytes, sameNode)
}

// LocalRead returns the modeled time to copy bytes out of the rank's own
// in-memory chunk.
func (m *Machine) LocalRead(bytes int64) time.Duration {
	return transfer(m.LocalReadLatency, bytes, m.LocalReadBandwidth)
}

// FSContention returns the latency multiplier for `readers` processes
// concurrently using the shared filesystem.
func (m *Machine) FSContention(readers int) float64 {
	if readers <= 1 {
		return 1
	}
	return 1 + m.FSContentionAlpha*math.Log2(float64(readers))
}

// SharedFileContention returns the extra multiplier for `readers` processes
// inside the same container file: linear growth saturating at
// SharedFileMaxMult (lock convoys stop getting worse once the file servers
// are fully congested).
func (m *Machine) SharedFileContention(readers int) float64 {
	if readers <= 1 {
		return 1
	}
	mult := 1 + m.SharedFileAlpha*float64(readers-1)
	if m.SharedFileMaxMult > 0 && mult > m.SharedFileMaxMult {
		mult = m.SharedFileMaxMult
	}
	return mult
}

// FSRead returns the modeled time for one random read of bytes from the
// shared filesystem, given the number of processes concurrently reading and
// whether a fresh metadata operation (file open) is required. Tail noise
// comes from the calibrated log-normal distributions.
func (m *Machine) FSRead(bytes int64, readers int, openFile bool, rng *vtime.RNG) time.Duration {
	mult := m.FSContention(readers)
	var d time.Duration
	if openFile {
		d += time.Duration(float64(m.FSMetadata.Sample(rng)) * mult)
	}
	d += time.Duration(float64(m.FSSeek.Sample(rng)) * mult)
	d += time.Duration(float64(bytes) / m.FSBandwidth * float64(time.Second) * mult)
	return d
}

// JitterFactor samples the multiplicative network-noise factor: log-normal
// with median 1 and shape NetJitterSigma.
func (m *Machine) JitterFactor(rng *vtime.RNG) float64 {
	if m.NetJitterSigma == 0 {
		return 1
	}
	return math.Exp(m.NetJitterSigma * rng.NormFloat64())
}

// CacheHit returns the modeled time to serve bytes from the OS page cache.
func (m *Machine) CacheHit(bytes int64, rng *vtime.RNG) time.Duration {
	return m.PageCacheHit.Sample(rng) + time.Duration(float64(bytes)/m.LocalReadBandwidth*float64(time.Second))
}

// GPUCompute converts a flop estimate into modeled GPU time.
func (m *Machine) GPUCompute(flops float64) time.Duration {
	return time.Duration(flops / (m.GPUTflops * 1e12) * float64(time.Second))
}

// Allreduce returns the modeled time for a hierarchical (tree/ring hybrid,
// NCCL-style) allreduce of bytes across n ranks: the bandwidth term is the
// ring bound 2(n-1)/n · bytes/BW, while the latency term grows
// logarithmically (2·ceil(log2 n) hops) — a flat ring's 2(n-1) latency
// steps would be hopelessly pessimistic at 1536 GPUs and contradict the
// near-linear scaling both the paper and production NCCL observe.
func (m *Machine) Allreduce(bytes int64, n int) time.Duration {
	if n <= 1 {
		return 0
	}
	lat, bw := m.InterNodeLatency, m.InterNodeBandwidth
	if n <= m.GPUsPerNode {
		lat, bw = m.IntraNodeLatency, m.IntraNodeBandwidth
	}
	hops := 2 * math.Ceil(math.Log2(float64(n)))
	steps := time.Duration(hops) * lat
	vol := 2 * float64(n-1) / float64(n) * float64(bytes)
	return steps + time.Duration(vol/bw*float64(time.Second))
}

// CollectiveLatency returns the modeled synchronization cost of a barrier or
// small-message collective across n ranks (logarithmic tree).
func (m *Machine) CollectiveLatency(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(n)))
	lat := m.InterNodeLatency
	if n <= m.GPUsPerNode {
		lat = m.IntraNodeLatency
	}
	return time.Duration(hops) * lat
}

// CPUBatch returns the modeled cost of collating n samples totalling bytes
// into a batch.
func (m *Machine) CPUBatch(n int, bytes int64) time.Duration {
	return time.Duration(n)*m.CPUBatchPerSample +
		time.Duration(float64(bytes)/m.LocalReadBandwidth*float64(time.Second))
}

// OptimizerStep returns the modeled cost of updating params parameters.
func (m *Machine) OptimizerStep(params int) time.Duration {
	return time.Duration(float64(params) * m.OptimizerPerParamNs)
}
