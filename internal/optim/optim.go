// Package optim implements the training-side optimization pieces HydraGNN
// uses: the AdamW optimizer (decoupled weight decay, Loshchilov & Hutter)
// with PyTorch's default hyperparameters, and the ReduceLROnPlateau learning
// rate scheduler driven by validation loss — the abrupt loss bump the
// paper's Fig. 13 shows at epoch 26 is this scheduler halving the rate.
package optim

import (
	"fmt"
	"math"

	"ddstore/internal/gnn"
)

// AdamW optimizes a fixed set of parameters.
type AdamW struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*gnn.Param
	m      [][]float32
	v      [][]float32
	step   int
}

// NewAdamW creates the optimizer with PyTorch defaults (β=0.9/0.999,
// eps=1e-8, weight decay 0.01) for the given parameters.
func NewAdamW(params []*gnn.Param, lr float64) *AdamW {
	o := &AdamW{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: 0.01,
		params:      params,
	}
	o.m = make([][]float32, len(params))
	o.v = make([][]float32, len(params))
	for i, p := range params {
		o.m[i] = make([]float32, len(p.Value.Data))
		o.v[i] = make([]float32, len(p.Value.Data))
	}
	return o
}

// NumParams returns the total number of scalar parameters.
func (o *AdamW) NumParams() int {
	n := 0
	for _, p := range o.params {
		n += len(p.Value.Data)
	}
	return n
}

// Step applies one update from the accumulated gradients.
func (o *AdamW) Step() {
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for i, p := range o.params {
		m, v := o.m[i], o.v[i]
		for j, g64 := range p.Grad.Data {
			g := float64(g64)
			mj := o.Beta1*float64(m[j]) + (1-o.Beta1)*g
			vj := o.Beta2*float64(v[j]) + (1-o.Beta2)*g*g
			m[j] = float32(mj)
			v[j] = float32(vj)
			mhat := mj / bc1
			vhat := vj / bc2
			w := float64(p.Value.Data[j])
			w -= o.LR * (mhat/(math.Sqrt(vhat)+o.Eps) + o.WeightDecay*w)
			p.Value.Data[j] = float32(w)
		}
	}
}

// ZeroGrad clears all parameter gradients.
func (o *AdamW) ZeroGrad() {
	for _, p := range o.params {
		p.ZeroGrad()
	}
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm,
// returning the pre-clip norm.
func (o *AdamW) ClipGradNorm(maxNorm float64) float64 {
	var ss float64
	for _, p := range o.params {
		for _, g := range p.Grad.Data {
			ss += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(ss)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range o.params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= scale
			}
		}
	}
	return norm
}

// ReduceLROnPlateau halves (by Factor) the optimizer's learning rate when
// the monitored metric has not improved for Patience epochs, like PyTorch's
// scheduler of the same name.
type ReduceLROnPlateau struct {
	Opt      *AdamW
	Factor   float64 // multiplicative decay, e.g. 0.5
	Patience int     // epochs without improvement before decaying
	MinLR    float64
	// Threshold is the minimum relative improvement that resets patience.
	Threshold float64

	best    float64
	bad     int
	started bool
	// Decays counts how many times the rate was reduced.
	Decays int
}

// NewReduceLROnPlateau wraps opt with PyTorch-like defaults (factor 0.5,
// patience 10, threshold 1e-4).
func NewReduceLROnPlateau(opt *AdamW, factor float64, patience int) *ReduceLROnPlateau {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("optim: plateau factor %v must be in (0,1)", factor))
	}
	if patience < 0 {
		panic("optim: negative patience")
	}
	return &ReduceLROnPlateau{
		Opt:       opt,
		Factor:    factor,
		Patience:  patience,
		MinLR:     1e-6,
		Threshold: 1e-4,
	}
}

// Step reports the epoch's validation metric (lower is better) and decays
// the learning rate if it has plateaued. It returns true when a decay
// happened this call.
func (s *ReduceLROnPlateau) Step(metric float64) bool {
	if !s.started || metric < s.best*(1-s.Threshold) {
		s.best = metric
		s.started = true
		s.bad = 0
		return false
	}
	s.bad++
	if s.bad <= s.Patience {
		return false
	}
	s.bad = 0
	newLR := s.Opt.LR * s.Factor
	if newLR < s.MinLR {
		newLR = s.MinLR
	}
	if newLR < s.Opt.LR {
		s.Opt.LR = newLR
		s.Decays++
		return true
	}
	return false
}
