package optim

import (
	"math"
	"testing"

	"ddstore/internal/gnn"
	"ddstore/internal/tensor"
)

func newParam(vals ...float32) *gnn.Param {
	return &gnn.Param{
		Name:  "p",
		Value: tensor.FromData(1, len(vals), append([]float32(nil), vals...)),
		Grad:  tensor.New(1, len(vals)),
	}
}

func TestAdamWFirstStepMatchesClosedForm(t *testing.T) {
	// With a single gradient g, the bias-corrected first step is
	// lr * (g/|g| + wd*w) (up to eps).
	p := newParam(1.0)
	o := NewAdamW([]*gnn.Param{p}, 0.1)
	p.Grad.Data[0] = 0.5
	o.Step()
	want := 1.0 - 0.1*(1.0+0.01*1.0) // sign(g)=1 step plus decoupled decay
	if got := float64(p.Value.Data[0]); math.Abs(got-want) > 1e-4 {
		t.Fatalf("after first step: %v, want ~%v", got, want)
	}
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 — AdamW with small weight decay should get
	// close to 3.
	p := newParam(0)
	o := NewAdamW([]*gnn.Param{p}, 0.05)
	o.WeightDecay = 0
	for i := 0; i < 2000; i++ {
		w := float64(p.Value.Data[0])
		p.Grad.Data[0] = float32(2 * (w - 3))
		o.Step()
		o.ZeroGrad()
	}
	if got := float64(p.Value.Data[0]); math.Abs(got-3) > 0.05 {
		t.Fatalf("converged to %v, want ~3", got)
	}
}

func TestAdamWWeightDecayPullsToZero(t *testing.T) {
	p := newParam(5)
	o := NewAdamW([]*gnn.Param{p}, 0.01)
	o.WeightDecay = 0.5
	for i := 0; i < 500; i++ {
		// zero gradient: only decay acts
		o.Step()
	}
	if got := math.Abs(float64(p.Value.Data[0])); got > 0.5 {
		t.Fatalf("weight decay left |w| = %v", got)
	}
}

func TestNumParams(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1, 2, 3), newParam(4)}, 0.1)
	if o.NumParams() != 4 {
		t.Fatalf("NumParams = %d", o.NumParams())
	}
}

func TestZeroGrad(t *testing.T) {
	p := newParam(1)
	o := NewAdamW([]*gnn.Param{p}, 0.1)
	p.Grad.Data[0] = 7
	o.ZeroGrad()
	if p.Grad.Data[0] != 0 {
		t.Fatal("grad not cleared")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam(0, 0)
	o := NewAdamW([]*gnn.Param{p}, 0.1)
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := o.ClipGradNorm(1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	got := math.Hypot(float64(p.Grad.Data[0]), float64(p.Grad.Data[1]))
	if math.Abs(got-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v", got)
	}
	// Below the limit: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.1, 0
	o.ClipGradNorm(1)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestPlateauDecaysAfterPatience(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1)}, 1e-3)
	s := NewReduceLROnPlateau(o, 0.5, 2)
	if s.Step(1.0) {
		t.Fatal("first metric decayed")
	}
	// No improvement for patience+1 epochs triggers one decay.
	if s.Step(1.0) || s.Step(1.0) {
		t.Fatal("decayed within patience window")
	}
	if !s.Step(1.0) {
		t.Fatal("no decay after patience exceeded")
	}
	if o.LR != 5e-4 {
		t.Fatalf("LR = %v, want 5e-4", o.LR)
	}
	if s.Decays != 1 {
		t.Fatalf("Decays = %d", s.Decays)
	}
}

func TestPlateauImprovementResets(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1)}, 1e-3)
	s := NewReduceLROnPlateau(o, 0.5, 1)
	s.Step(1.0)
	s.Step(1.0)       // bad=1
	s.Step(0.5)       // improvement resets
	s.Step(0.5)       // bad=1
	if s.Step(0.45) { // big improvement resets again
		t.Fatal("decay on improvement")
	}
	if o.LR != 1e-3 {
		t.Fatalf("LR changed to %v", o.LR)
	}
}

func TestPlateauRespectsMinLR(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1)}, 2e-6)
	s := NewReduceLROnPlateau(o, 0.5, 0)
	s.MinLR = 1e-6
	s.Step(1.0)
	s.Step(1.0) // decay to 1e-6 (clamped)
	if o.LR != 1e-6 {
		t.Fatalf("LR = %v", o.LR)
	}
	if s.Step(1.0) {
		t.Fatal("decayed below MinLR")
	}
}

func TestPlateauValidation(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1)}, 1e-3)
	for _, factor := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("factor %v accepted", factor)
				}
			}()
			NewReduceLROnPlateau(o, factor, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative patience accepted")
			}
		}()
		NewReduceLROnPlateau(o, 0.5, -1)
	}()
}

func TestPlateauThresholdIgnoresTinyImprovements(t *testing.T) {
	o := NewAdamW([]*gnn.Param{newParam(1)}, 1e-3)
	s := NewReduceLROnPlateau(o, 0.5, 1)
	s.Step(1.0)
	s.Step(0.99999) // below threshold: counts as no improvement
	if !s.Step(0.99998) {
		t.Fatal("tiny improvements should not reset patience")
	}
}
