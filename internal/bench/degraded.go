package bench

import (
	"fmt"
	"net"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/graph"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

func init() {
	register("degraded", "TCP data plane throughput under injected faults (degraded modes)", runDegraded)
}

// degradedScenario pairs a fault scenario with a label and whether one
// server is killed before the measured pass.
type degradedScenario struct {
	name       string
	sc         faultnet.Scenario
	killServer bool
}

// runDegraded measures the resilient TCP data plane under fault injection:
// the same Get workload is replayed against 2 replica groups x 2 servers
// while faultnet injects connection resets, read stalls, and payload
// corruption, and (in the last scenario) one server is killed outright.
// The paper assumes a reliable MPI fabric; this experiment quantifies what
// the TCP plane pays to survive an unreliable one — throughput degrades,
// correctness never does.
func runDegraded(o Options) (*Report, error) {
	samples := 400
	gets := 4000
	if o.Quick {
		samples = 40
		gets = 400
	}
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: samples})

	scenarios := []degradedScenario{
		{name: "healthy"},
		{name: "resets 5%", sc: faultnet.Scenario{ResetProb: 0.05}},
		{name: "stalls 1%", sc: faultnet.Scenario{StallProb: 0.01, StallFor: 50 * time.Millisecond}},
		{name: "corrupt 1%", sc: faultnet.Scenario{CorruptProb: 0.01}},
		{name: "mixed + dead server", killServer: true,
			sc: faultnet.Scenario{ResetProb: 0.05, StallProb: 0.01, StallFor: 50 * time.Millisecond, CorruptProb: 0.01}},
	}

	rep := &Report{ID: "degraded", Title: "TCP data plane throughput under injected faults",
		Columns: []string{"scenario", "samples/s", "vs healthy", "retries", "reconnects", "timeouts", "crc-rej", "failovers", "giveups"}}

	var healthy float64
	for i, sc := range scenarios {
		rate, counters, err := degradedPass(ds, samples, gets, int64(i+1), sc)
		if err != nil {
			return nil, fmt.Errorf("degraded %q: %w", sc.name, err)
		}
		if i == 0 {
			healthy = rate
		}
		rep.AddRow(sc.name, fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2fx", rate/healthy),
			counters[transport.CounterRetries], counters[transport.CounterReconnects],
			counters[transport.CounterTimeouts], counters[transport.CounterChecksumErrors],
			counters[transport.CounterFailovers], counters[transport.CounterGiveUps])
	}
	rep.AddNote("every pass verifies payload integrity end to end; faults cost throughput, never correctness")
	rep.AddNote("the paper's MPI fabric is assumed reliable — this table is the TCP plane's resilience budget")
	return rep, nil
}

// degradedPass serves the dataset over 2 replica groups x 2 TCP servers
// behind a fault injector, then times `gets` verified sample fetches.
func degradedPass(ds *datasets.Dataset, samples, gets int, seed int64, dsc degradedScenario) (float64, map[string]int64, error) {
	sc := dsc.sc
	sc.Seed = seed
	in := faultnet.New(sc)

	half := int64(samples / 2)
	bounds := [][2]int64{{0, half}, {half, int64(samples)}}
	var servers [][]*transport.Server
	var addrs [][]string
	closeAll := func() {
		for _, rs := range servers {
			for _, s := range rs {
				s.Close()
			}
		}
	}
	for r := 0; r < 2; r++ {
		var rs []*transport.Server
		var ra []string
		for _, bd := range bounds {
			gs := make([]*graph.Graph, 0, bd[1]-bd[0])
			for id := bd[0]; id < bd[1]; id++ {
				g, err := ds.Sample(id)
				if err != nil {
					closeAll()
					return 0, nil, err
				}
				gs = append(gs, g)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				closeAll()
				return 0, nil, err
			}
			srv := transport.ServeListener(in.Listener(ln), transport.NewMemChunk(bd[0], gs),
				transport.ServerOptions{WriteTimeout: time.Second})
			rs = append(rs, srv)
			ra = append(ra, srv.Addr())
		}
		servers = append(servers, rs)
		addrs = append(addrs, ra)
	}
	defer closeAll()

	prof := trace.New()
	grp, err := transport.NewGroupReplicas(addrs, transport.GroupOptions{
		Client: transport.ClientOptions{
			Policy: transport.RetryPolicy{
				MaxAttempts: 8,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				ReadTimeout: 30 * time.Millisecond,
				Seed:        seed,
			},
			Counters: prof,
		},
		FailoverCooldown: 200 * time.Millisecond,
	})
	if err != nil {
		return 0, nil, err
	}
	defer grp.Close()

	if dsc.killServer {
		servers[0][0].Close()
	}

	start := time.Now()
	for i := 0; i < gets; i++ {
		id := int64(i) % int64(samples)
		g, err := grp.Get(id)
		if err != nil {
			return 0, nil, fmt.Errorf("get %d: %w", id, err)
		}
		if g.ID != id {
			return 0, nil, fmt.Errorf("get %d returned sample %d", id, g.ID)
		}
	}
	rate := float64(gets) / time.Since(start).Seconds()
	return rate, prof.Counters(), nil
}
