package bench

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/datasets"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
	"ddstore/internal/trace"
	"ddstore/internal/transport"
)

func init() {
	register("cached", "Hot-sample cache: hit rate and round trips vs cache size (TCP plane)", runCachedExp)
}

// cachedConfig is one point of the cache sweep: a budget as a fraction of
// the dataset's encoded bytes, and an eviction policy.
type cachedConfig struct {
	frac   float64
	policy string
}

// runCachedExp measures the hot-sample cache on the TCP data plane: one
// client replays shuffled full-dataset epochs through a Group backed by two
// chunk servers, sweeping the cache budget (as a fraction of the dataset's
// encoded bytes) and the eviction policy. Per epoch it reports throughput,
// cache hit rate, and the number of wire round trips — the quantity the
// cache plus multi-get batching exists to shrink: a fully cached repeat
// epoch costs zero round trips.
func runCachedExp(o Options) (*Report, error) {
	samples := 512
	epochs := 3
	loadBatch := 32
	if o.Quick {
		samples = 96
	}
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: samples})

	// Two servers, each owning half the dataset, one replica group.
	half := int64(samples / 2)
	bounds := [][2]int64{{0, half}, {half, int64(samples)}}
	var servers []*transport.Server
	var addrs []string
	var totalBytes int64
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	defer closeAll()
	for _, bd := range bounds {
		gs := make([]*graph.Graph, 0, bd[1]-bd[0])
		for id := bd[0]; id < bd[1]; id++ {
			g, err := ds.Sample(id)
			if err != nil {
				return nil, err
			}
			gs = append(gs, g)
		}
		chunk := transport.NewMemChunk(bd[0], gs)
		for _, enc := range chunk.Encoded {
			totalBytes += int64(len(enc))
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := transport.ServeListener(ln, chunk, transport.ServerOptions{WriteTimeout: time.Second})
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}

	configs := []cachedConfig{
		{0, ""}, {0.25, "lru"}, {0.5, "lru"}, {1, "lru"},
		{0.5, "fifo"}, {0.5, "clock"},
	}

	rep := &Report{ID: "cached", Title: "Hot-sample cache sweep on the TCP data plane",
		Columns: []string{"cache", "policy", "epoch", "samples/s", "hit rate", "round trips", "p50(µs)", "p95(µs)", "p99(µs)"}}

	for i, cfg := range configs {
		lat, err := cachedPass(rep, o, cfg, addrs, totalBytes, samples, epochs, loadBatch)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The cacheless first configuration is the honest wire latency;
			// cached configurations dilute the window with memory reads.
			rep.Latency = latencyDigest(lat)
		}
	}
	rep.AddNote("dataset: %d samples, %s encoded; each epoch loads every sample once in a fresh shuffled order, %d ids per Load", samples, humanBytes(totalBytes), loadBatch)
	rep.AddNote("shape to preserve: at 100%% budget every epoch after the first is >=90%% hits and zero round trips; at 0 the round-trip count is flat across epochs")
	rep.AddNote("p50/p95/p99 are per-sample fetch latencies over the plane's recent-sample window (cumulative through the sweep row's epoch)")
	return rep, nil
}

// cachedPass runs every epoch of one sweep configuration and appends the
// per-epoch rows.
func cachedPass(rep *Report, o Options, cfg cachedConfig, addrs []string, totalBytes int64, samples, epochs, loadBatch int) (fetch.LatencySummary, error) {
	gopts := transport.GroupOptions{
		Client: transport.ClientOptions{
			Policy: transport.RetryPolicy{
				MaxAttempts: 4,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				ReadTimeout: time.Second,
				Seed:        int64(o.seed()),
			},
		},
	}
	prof := trace.New()
	gopts.Client.Counters = prof
	label := "off"
	if cfg.frac > 0 {
		pol, err := cache.ParsePolicy(cfg.policy)
		if err != nil {
			return fetch.LatencySummary{}, err
		}
		gopts.CacheBytes = int64(cfg.frac * float64(totalBytes))
		gopts.CachePolicy = pol
		// One shard keeps the byte budget exact (the default sharded split
		// can evict from a hot shard while others sit under budget), so the
		// "% of dataset" labels mean what they say. The sweep client is
		// single-threaded; shard contention is not in play.
		gopts.CacheShards = 1
		label = fmt.Sprintf("%.0f%%", cfg.frac*100)
	}
	grp, err := transport.NewGroupReplicas([][]string{addrs}, gopts)
	if err != nil {
		return fetch.LatencySummary{}, err
	}
	defer grp.Close()

	ids := make([]int64, samples)
	for i := range ids {
		ids[i] = int64(i)
	}
	rng := rand.New(rand.NewSource(int64(o.seed())))
	// Dialing costs one Meta round trip per server; measure epochs from here.
	trips := prof.Counter(transport.CounterRoundTrips)
	var hits, misses int64
	for epoch := 1; epoch <= epochs; epoch++ {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		start := time.Now()
		for off := 0; off < len(ids); off += loadBatch {
			end := off + loadBatch
			if end > len(ids) {
				end = len(ids)
			}
			got, err := grp.Load(ids[off:end])
			if err != nil {
				return fetch.LatencySummary{}, fmt.Errorf("cache %s/%s epoch %d: %w", label, cfg.policy, epoch, err)
			}
			for k, g := range got {
				if g.ID != ids[off+k] {
					return fetch.LatencySummary{}, fmt.Errorf("cache %s/%s: slot %d got sample %d, want %d",
						label, cfg.policy, off+k, g.ID, ids[off+k])
				}
			}
		}
		rate := float64(samples) / time.Since(start).Seconds()

		cs := grp.CacheStats()
		hitRate := "-"
		if lookups := (cs.Hits - hits) + (cs.Misses - misses); lookups > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(cs.Hits-hits)/float64(lookups))
		}
		hits, misses = cs.Hits, cs.Misses
		policy := cfg.policy
		if cfg.frac == 0 {
			policy = "-"
		}
		lat := grp.LatencyStats()
		us := func(d time.Duration) string {
			return fmt.Sprintf("%.0f", float64(d)/float64(time.Microsecond))
		}
		rep.AddRow(label, policy, epoch, fmt.Sprintf("%.0f", rate), hitRate,
			prof.Counter(transport.CounterRoundTrips)-trips,
			us(lat.P50), us(lat.P95), us(lat.P99))
		trips = prof.Counter(transport.CounterRoundTrips)
	}
	return grp.LatencyStats(), nil
}
