package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func quickOpts() Options { return Options{Quick: true, Seed: 11} }

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r, err := e.Run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id || len(r.Rows) == 0 || len(r.Columns) == 0 {
		t.Fatalf("%s: malformed report %+v", id, r)
	}
	return r
}

func cell(t *testing.T, r *Report, row int, col string) string {
	t.Helper()
	for i, c := range r.Columns {
		if c == col {
			return r.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, r.Columns)
	return ""
}

func cellFloat(t *testing.T, r *Report, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, r, row, col), "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q not numeric: %v", row, col, cell(t, r, row, col), err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-comm", "abl-lock", "abl-nb", "cached", "degraded",
		"fig10", "fig11", "fig12", "fig13", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "table1", "table2", "table3"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Fatalf("experiment[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Fatalf("%s has no title", e.ID)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a nonexistent experiment")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Columns: []string{"a", "bb"}}
	r.AddRow("hello", 1.23456)
	r.AddNote("n=%d", 5)
	s := r.String()
	if !strings.Contains(s, "hello") || !strings.Contains(s, "1.23") || !strings.Contains(s, "note: n=5") {
		t.Fatalf("render:\n%s", s)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "hello,") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTable1Shapes(t *testing.T) {
	r := runExp(t, "table1")
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// CFF < PFF per dataset; smooth largest PFF.
	for i := range r.Rows {
		pff := parseBytes(t, cell(t, r, i, "PFF"))
		cff := parseBytes(t, cell(t, r, i, "CFF"))
		if cff >= pff {
			t.Fatalf("row %d: CFF (%v) not smaller than PFF (%v)", i, cff, pff)
		}
	}
	// Compare exact-byte CFF sizes (PFF's 4 KiB block rounding can make
	// small per-sample differences invisible).
	smooth := parseBytes(t, cell(t, r, 3, "CFF"))
	discrete := parseBytes(t, cell(t, r, 2, "CFF"))
	if smooth <= discrete {
		t.Fatal("smooth dataset not the largest")
	}
}

func parseBytes(t *testing.T, s string) float64 {
	t.Helper()
	fields := strings.Fields(s)
	if len(fields) != 2 {
		t.Fatalf("bad byte string %q", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	switch fields[1] {
	case "TB":
		v *= 1 << 40
	case "GB":
		v *= 1 << 30
	case "MB":
		v *= 1 << 20
	case "B":
	default:
		t.Fatalf("bad unit in %q", s)
	}
	return v
}

func TestFig4DDStoreWins(t *testing.T) {
	r := runExp(t, "fig4")
	// 2 machines × (4 datasets + geomean).
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for i := range r.Rows {
		dd := cellFloat(t, r, i, "DDStore")
		if dd <= 1 {
			t.Fatalf("row %d (%s/%s): DDStore speedup %v <= 1",
				i, cell(t, r, i, "Machine"), cell(t, r, i, "Dataset"), dd)
		}
	}
}

func TestFig5LoadingReduction(t *testing.T) {
	r := runExp(t, "fig5")
	if len(r.Rows) != 12 { // 4 datasets × 3 methods
		t.Fatalf("%d rows", len(r.Rows))
	}
	// For each dataset, DDStore's CPU-Loading must be far below PFF's.
	for d := 0; d < 4; d++ {
		pffLoad := cellFloat(t, r, d*3+0, "CPU-Loading")
		ddsLoad := cellFloat(t, r, d*3+2, "CPU-Loading")
		if ddsLoad >= pffLoad/2 {
			t.Fatalf("dataset %s: DDStore loading %v not well below PFF %v",
				cell(t, r, d*3, "Dataset"), ddsLoad, pffLoad)
		}
	}
}

func TestFig6AndTable2Regimes(t *testing.T) {
	r := runExp(t, "table2")
	if len(r.Rows) != 12 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for d := 0; d < 4; d++ {
		pff50 := cellFloat(t, r, d*3+0, "50th")
		dds50 := cellFloat(t, r, d*3+2, "50th")
		dds99 := cellFloat(t, r, d*3+2, "99th")
		if dds50 >= pff50 {
			t.Fatalf("dataset %s: DDStore median %v >= PFF %v",
				cell(t, r, d*3, "Dataset"), dds50, pff50)
		}
		if dds99 > 5 { // paper: <= ~2.2 ms; generous bound
			t.Fatalf("DDStore 99th percentile %v ms too high", dds99)
		}
	}
	// fig6 must render the same runs as CDF fractions.
	r6 := runExp(t, "fig6")
	if len(r6.Rows) != 12 {
		t.Fatalf("fig6: %d rows", len(r6.Rows))
	}
	// CDF monotone along the row.
	for i := range r6.Rows {
		prev := 0.0
		for _, col := range []string{"P10 (ms)", "P50 (ms)", "P99 (ms)"} {
			v := cellFloat(t, r6, i, col)
			if v < prev {
				t.Fatalf("fig6 row %d: CDF not monotone", i)
			}
			prev = v
		}
	}
}

func TestFig7LoadingDominatedByRMA(t *testing.T) {
	r := runExp(t, "fig7")
	var loading, rma float64
	for i := range r.Rows {
		switch r.Rows[i][0] {
		case "CPU-Loading":
			loading = cellFloat(t, r, i, "Total (s, all ranks)")
		case "MPI-RMA (within loading)":
			rma = cellFloat(t, r, i, "Total (s, all ranks)")
		}
	}
	if loading <= 0 || rma <= 0 {
		t.Fatalf("missing regions: loading=%v rma=%v", loading, rma)
	}
	if rma > loading*1.01 {
		t.Fatalf("RMA time %v exceeds loading %v", rma, loading)
	}
	if rma < loading*0.5 {
		t.Fatalf("RMA (%v) should dominate DDStore loading (%v)", rma, loading)
	}
}

func TestFig8ScalingShape(t *testing.T) {
	r := runExp(t, "fig8")
	// DDStore throughput must grow with GPUs and keep decent efficiency.
	type key struct{ machine, dataset, method string }
	last := map[key]float64{}
	for i := range r.Rows {
		k := key{cell(t, r, i, "Machine"), cell(t, r, i, "Dataset"), cell(t, r, i, "Method")}
		tp := cellFloat(t, r, i, "Samples/s")
		if prev, ok := last[k]; ok && k.method == "DDStore" && tp <= prev {
			t.Fatalf("%v: DDStore throughput fell from %v to %v with more GPUs", k, prev, tp)
		}
		last[k] = tp
		mn := cellFloat(t, r, i, "Min")
		mx := cellFloat(t, r, i, "Max")
		if mn > tp || mx < tp {
			t.Fatalf("row %d: min/mean/max inconsistent: %v/%v/%v", i, mn, tp, mx)
		}
		if k.method == "DDStore" {
			// Quick scale uses tiny batches, so fixed per-step latencies
			// weigh heavily; the full-scale run (batch 128) is near-linear.
			if eff := cellFloat(t, r, i, "ParallelEff"); eff < 0.35 {
				t.Fatalf("%v: DDStore efficiency %v too low", k, eff)
			}
		}
	}
}

func TestFig9RowsPerScale(t *testing.T) {
	r := runExp(t, "fig9")
	if len(r.Rows) != 3 { // quick profile has 3 Summit scales
		t.Fatalf("%d rows", len(r.Rows))
	}
	for i := range r.Rows {
		if cellFloat(t, r, i, "CPU-Loading") <= 0 {
			t.Fatalf("row %d: no loading time", i)
		}
	}
}

func TestFig10FixedGlobalBatch(t *testing.T) {
	r := runExp(t, "fig10")
	for i := range r.Rows {
		gpus := cellFloat(t, r, i, "GPUs")
		local := cellFloat(t, r, i, "LocalBatch")
		machine := cell(t, r, i, "Machine")
		want := 192.0
		if machine == "Perlmutter" {
			want = 128
		}
		if gpus*local != want {
			t.Fatalf("row %d: %v GPUs × %v local != global %v", i, gpus, local, want)
		}
	}
}

func TestFig11WidthWithinBand(t *testing.T) {
	r := runExp(t, "fig11")
	// Per machine, the spread across widths should be modest (paper: <10%;
	// allow 35% at quick scale).
	byMachine := map[string][]float64{}
	for i := range r.Rows {
		byMachine[cell(t, r, i, "Machine")] = append(byMachine[cell(t, r, i, "Machine")],
			cellFloat(t, r, i, "Samples/s"))
	}
	for m, tps := range byMachine {
		lo, hi := tps[0], tps[0]
		for _, v := range tps {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if (hi-lo)/hi > 0.35 {
			t.Fatalf("%s: width sweep varies %.0f%%, want modest", m, 100*(hi-lo)/hi)
		}
	}
}

func TestFig12AndTable3WidthLatency(t *testing.T) {
	r := runExp(t, "table3")
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for i := range r.Rows {
		wide := cellFloat(t, r, i, "width=8 (ms)")
		narrow := cellFloat(t, r, i, "width=2 (ms)")
		if narrow >= wide {
			t.Fatalf("row %d: width=2 median %v not below default %v", i, narrow, wide)
		}
	}
	r12 := runExp(t, "fig12")
	if len(r12.Rows) != 8 {
		t.Fatalf("fig12: %d rows", len(r12.Rows))
	}
}

func TestFig13Converges(t *testing.T) {
	r := runExp(t, "fig13")
	first := cellFloat(t, r, 0, "TrainLoss")
	last := cellFloat(t, r, len(r.Rows)-1, "TrainLoss")
	if !(last < first) {
		t.Fatalf("training did not improve: %v -> %v", first, last)
	}
	for i := range r.Rows {
		if cellFloat(t, r, i, "ValLoss") <= 0 || cellFloat(t, r, i, "TestLoss") <= 0 {
			t.Fatalf("row %d: missing eval loss", i)
		}
	}
}

func TestRunCacheHits(t *testing.T) {
	p := profileFor(quickOpts())
	spec := runSpec{
		machine: clusterLaptop(), ranks: 2, method: MethodDDStore,
		ds: p.dataset(dsHomoLumo, nil), localBatch: 4, epochs: 1, maxSteps: 1, seed: 1,
	}
	a, err := runCached(quickOpts(), spec)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	b, err := runCached(quickOpts(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical spec")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("cached run too slow — cache not working")
	}
}

func TestAblationsShape(t *testing.T) {
	for _, id := range []string{"abl-comm", "abl-lock", "abl-nb"} {
		r := runExp(t, id)
		if len(r.Rows) != 2 {
			t.Fatalf("%s: %d rows", id, len(r.Rows))
		}
		base := cellFloat(t, r, 0, "Samples/s")
		alt := cellFloat(t, r, 1, "Samples/s")
		if base <= 0 || alt <= 0 {
			t.Fatalf("%s: non-positive throughput", id)
		}
		// Row 1 is always the better design in these ablations.
		if alt < base {
			t.Fatalf("%s: expected row 2 (%v) >= row 1 (%v)", id, alt, base)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2 << 20:       "2.00 MB",
		3 << 30:       "3.00 GB",
		(3 << 40) / 2: "1.50 TB",
		1<<20 + 1<<19: "1.50 MB",
	}
	for in, want := range cases {
		if got := humanBytes(in); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestProfileScalesAreSane(t *testing.T) {
	for _, quick := range []bool{true, false} {
		p := profileFor(Options{Quick: quick})
		if p.perlRanks%4 != 0 || p.summitRanks%6 != 0 {
			t.Fatalf("quick=%v: rank counts not node-aligned: %d/%d", quick, p.summitRanks, p.perlRanks)
		}
		// Every width must divide its rank count (core.Open requires it).
		for _, w := range p.widthsSummit {
			if p.widthRanksSummit%w != 0 {
				t.Fatalf("quick=%v: summit width %d does not divide %d", quick, w, p.widthRanksSummit)
			}
		}
		for _, w := range p.widthsPerl {
			if p.widthRanksPerl%w != 0 {
				t.Fatalf("quick=%v: perl width %d does not divide %d", quick, w, p.widthRanksPerl)
			}
		}
		// Each scaling point must be able to fill one global batch from the
		// 80% train split.
		for _, ranks := range p.summitScales {
			if p.molN*8/10 < ranks*p.localBatch {
				t.Fatalf("quick=%v: %d ranks x %d batch cannot be fed by %d samples",
					quick, ranks, p.localBatch, p.molN)
			}
		}
		// The fixed global batches must be divisible by every scale.
		for _, ranks := range p.summitScales {
			if p.globalSummit%ranks != 0 && p.globalSummit/ranks >= 1 {
				t.Fatalf("quick=%v: global batch %d not divisible by %d ranks", quick, p.globalSummit, ranks)
			}
		}
		// The dataset/page-cache relationship that drives the Ising effect:
		// the Perlmutter Ising bytes must fit a per-rank cache slice; the
		// molecular datasets must overflow it.
		perRank := p.pageCachePerl / 4
		ising := p.dataset(dsIsing, nil)
		sizes, err := sizesFor(ising)
		if err != nil {
			t.Fatal(err)
		}
		var isingBytes int64
		for _, s := range sizes {
			isingBytes += s
		}
		if isingBytes > perRank {
			t.Fatalf("quick=%v: Ising (%d B) does not fit the cache slice (%d B) — the Table 2 effect would vanish",
				quick, isingBytes, perRank)
		}
	}
}

func TestDegradedSurvivesFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("degraded-mode soak skipped in -short mode")
	}
	r := runExp(t, "degraded")
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(r.Rows))
	}
	if cell(t, r, 0, "scenario") != "healthy" {
		t.Fatalf("first row %q, want healthy baseline", cell(t, r, 0, "scenario"))
	}
	// Every scenario completed the full workload (or runExp would have
	// failed); the fault scenarios must actually have engaged the
	// resilience machinery.
	var engaged float64
	for row := 1; row < 5; row++ {
		engaged += cellFloat(t, r, row, "retries")
	}
	if engaged == 0 {
		t.Fatal("fault scenarios never triggered a retry")
	}
	if cellFloat(t, r, 4, "failovers") == 0 {
		t.Fatal("dead-server scenario never failed over")
	}
}

func TestCachedExperimentShape(t *testing.T) {
	r := runExp(t, "cached")
	if len(r.Rows) != 18 { // 6 configs x 3 epochs
		t.Fatalf("want 18 rows, got %d", len(r.Rows))
	}
	for row := range r.Rows {
		label := cell(t, r, row, "cache")
		epoch := cellFloat(t, r, row, "epoch")
		trips := cellFloat(t, r, row, "round trips")
		switch {
		case label == "off":
			// No cache: every epoch refetches everything over the wire.
			if hr := cell(t, r, row, "hit rate"); hr != "-" {
				t.Fatalf("row %d: cacheless hit rate %q", row, hr)
			}
			if trips == 0 {
				t.Fatalf("row %d: cacheless epoch cost zero round trips", row)
			}
		case label == "100%" && epoch >= 2:
			// Whole dataset cached: a repeat epoch never touches the wire.
			if trips != 0 {
				t.Fatalf("row %d: fully cached repeat epoch cost %v round trips", row, trips)
			}
			if hr := cell(t, r, row, "hit rate"); hr != "100%" {
				t.Fatalf("row %d: fully cached repeat epoch hit rate %q, want 100%%", row, hr)
			}
		}
	}
}
