package bench

import (
	"fmt"
	"sync"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/hydra"
	"ddstore/internal/stats"
	"ddstore/internal/trace"
)

// profile holds the experiment scale parameters. Full mode reproduces the
// paper's configurations (rank counts equal to the paper's GPU counts, the
// paper's batch sizes and width sweeps); Quick mode shrinks everything so
// the whole suite runs in seconds for tests.
type profile struct {
	summitRanks int // 64 Summit nodes × 6 GPUs for fig4/5/6/7 = 384
	perlRanks   int // 16 Perlmutter nodes × 4 GPUs = 64

	// Dataset sizes preserve the paper's 1.2M:10.5M Ising:molecule ratio at
	// 1/100 scale. Summit's 384-rank runs need a larger Ising set to fill a
	// global batch.
	isingPerlN   int
	isingSummitN int
	molN         int
	bins         int // smooth-spectrum grid

	// pageCacheSummit/Perl scale the modeled per-node OS page cache to the
	// scaled dataset sizes, preserving the paper's which-dataset-fits
	// relationship: Ising (small, containerized) is served from cache after
	// the first epoch; the molecular datasets are not.
	pageCacheSummit int64
	pageCachePerl   int64

	summitScales []int // GPU counts, fig8–10
	perlScales   []int

	widthRanksSummit int
	widthsSummit     []int
	widthRanksPerl   int
	widthsPerl       []int
	// widthMolN / widthIsingN size the width experiments' datasets: small
	// widths hold replicas = ranks/width full copies in memory, so these
	// runs use the smallest dataset that still feeds one global batch —
	// faithful to the memory/width trade-off without needing a 64-node
	// machine's aggregate RAM in one process.
	widthMolN   int
	widthIsingN int

	localBatch int
	epochs     int
	maxSteps   int

	globalSummit int // fixed global batch, fig10
	globalPerl   int

	// convergence (fig13)
	convSamples int
	convBins    int
	convRanks   int
	convBatch   int
	convEpochs  int
	convHidden  int
	convConv    int
	convFC      int
}

func profileFor(o Options) profile {
	if o.Quick {
		return profile{
			summitRanks: 12, perlRanks: 8,
			isingPerlN: 1200, isingSummitN: 2000, molN: 2400, bins: 192,
			pageCacheSummit: 96 << 20, pageCachePerl: 64 << 20,
			summitScales:     []int{6, 12, 24},
			perlScales:       []int{4, 8, 16},
			widthRanksSummit: 12, widthsSummit: []int{3, 6, 12},
			widthRanksPerl: 8, widthsPerl: []int{2, 4, 8},
			widthMolN: 2400, widthIsingN: 1200,
			localBatch: 16, epochs: 2, maxSteps: 2,
			globalSummit: 192, globalPerl: 128,
			convSamples: 240, convBins: 16, convRanks: 2, convBatch: 8,
			convEpochs: 6, convHidden: 8, convConv: 1, convFC: 1,
		}
	}
	return profile{
		summitRanks: 384, perlRanks: 64,
		isingPerlN: 12000, isingSummitN: 64000, molN: 250000, bins: 375,
		pageCacheSummit: 1 << 30, pageCachePerl: 600 << 20,
		summitScales:     []int{48, 96, 192, 384, 768, 1536},
		perlScales:       []int{32, 64, 128, 256, 512, 1024},
		widthRanksSummit: 384, widthsSummit: []int{12, 24, 48, 96, 192, 384},
		widthRanksPerl: 256, widthsPerl: []int{8, 16, 32, 64, 128, 256},
		widthMolN: 62000, widthIsingN: 12000,
		localBatch: 128, epochs: 3, maxSteps: 2,
		globalSummit: 6144, globalPerl: 4096,
		convSamples: 600, convBins: 32, convRanks: 4, convBatch: 8,
		convEpochs: 40, convHidden: 16, convConv: 2, convFC: 2,
	}
}

// dataset returns one of the four evaluation datasets at the profile's
// scale. machine selects the Ising variant: Summit's 384-rank global batch
// needs more samples than the 1/100-scale count used everywhere else.
func (p profile) dataset(kind dsKind, machine *cluster.Machine) *datasets.Dataset {
	switch kind {
	case dsIsing:
		if machine != nil && machine.Name == "Summit" {
			return datasetFor(dsIsing, p.isingSummitN, 0)
		}
		return datasetFor(dsIsing, p.isingPerlN, 0)
	case dsHomoLumo:
		return datasetFor(dsHomoLumo, p.molN, 0)
	case dsDiscrete:
		return datasetFor(dsDiscrete, p.molN, 0)
	case dsSmooth:
		return datasetFor(dsSmooth, p.molN, p.bins)
	}
	panic("unknown dataset kind")
}

// machine returns the named machine model with the page cache scaled to the
// profile's dataset sizes.
func (p profile) machine(name string) *cluster.Machine {
	var m *cluster.Machine
	var cache int64
	switch name {
	case "Summit":
		m, cache = cluster.Summit(), p.pageCacheSummit
	case "Perlmutter":
		m, cache = cluster.Perlmutter(), p.pageCachePerl
	default:
		panic("unknown machine " + name)
	}
	if cache > 0 {
		m.PageCacheBytes = cache
	}
	return m
}

func init() {
	register("table1", "Dataset description (graphs/nodes/edges/bytes, PFF vs CFF)", runTable1)
	register("fig4", "Normalized end-to-end training speedup (Summit 384 GPUs, Perlmutter 64 GPUs)", runFig4)
	register("fig5", "End-to-end training time breakdown, 64 GPUs on Perlmutter", runFig5)
	register("fig6", "Graph loading latency CDF, 64 GPUs on Perlmutter", runFig6)
	register("table2", "50/95/99th percentile graph loading latency", runTable2)
	register("fig7", "Score-P-style profile: data loading and MPI RMA shares", runFig7)
	register("fig8", "Scaling with fixed local batch size 128", runFig8)
	register("fig9", "Per-function durations with DDStore vs scale", runFig9)
	register("fig10", "Scaling with fixed global batch size", runFig10)
	register("fig11", "End-to-end performance vs width parameter", runFig11)
	register("fig12", "Latency CDF: width=default vs width=2, 16 Perlmutter nodes", runFig12)
	register("table3", "50th percentile latency: width=default vs width=2", runTable3)
	register("fig13", "Convergence of training/validation/test loss", runFig13)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2f TB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// runTable1 reproduces Table 1: the dataset inventory with per-format
// storage sizes. PFF pays per-file block rounding (each sample file
// occupies whole 4 KiB filesystem blocks); CFF packs samples back to back
// plus a 20-byte index entry per sample.
func runTable1(o Options) (*Report, error) {
	p := profileFor(o)
	r := &Report{
		ID:      "table1",
		Title:   "Dataset description",
		Columns: []string{"Dataset", "#Graphs", "#Nodes", "#Edges", "#Feature", "PFF", "CFF"},
	}
	const fsBlock = 4096
	for _, kind := range allKinds {
		ds := p.dataset(kind, nil)
		st, err := datasets.ComputeStats(ds, 2000)
		if err != nil {
			return nil, err
		}
		sizes, err := sizesFor(ds)
		if err != nil {
			return nil, err
		}
		var pffBytes, cffBytes int64
		for _, s := range sizes {
			pffBytes += (s + fsBlock - 1) / fsBlock * fsBlock
			cffBytes += s + 20
		}
		cffBytes += int64(cffParts) * 24
		r.AddRow(kind.String(), st.NumGraphs, st.TotalNodes, st.TotalEdges,
			ds.OutputDim(), humanBytes(pffBytes), humanBytes(cffBytes))
	}
	r.AddNote("datasets are synthetic equivalents scaled to ~1/100 of the paper's counts; the paper's Table 1: Ising 1.2M graphs 24/19 GB, AISD HOMO-LUMO 10.5M 90/60 GB, AISD-Ex discrete 83/64 GB, smooth 1.6/1.5 TB")
	r.AddNote("shape to preserve: CFF < PFF for every dataset; smooth >> all others")
	return r, nil
}

// fig4Machines returns the two paper configurations: Summit with 384 GPUs
// and Perlmutter with 64 GPUs.
func fig4Machines(p profile) []struct {
	machine *cluster.Machine
	ranks   int
} {
	return []struct {
		machine *cluster.Machine
		ranks   int
	}{
		{p.machine("Summit"), p.summitRanks},
		{p.machine("Perlmutter"), p.perlRanks},
	}
}

// runFig4 reproduces Fig. 4: end-to-end training throughput of CFF and
// DDStore normalized to PFF, per dataset, plus the geometric mean.
func runFig4(o Options) (*Report, error) {
	p := profileFor(o)
	r := &Report{
		ID:      "fig4",
		Title:   "Normalized end-to-end training speedup vs PFF",
		Columns: []string{"Machine", "GPUs", "Dataset", "PFF", "CFF", "DDStore"},
	}
	for _, mc := range fig4Machines(p) {
		var cffSpeed, ddsSpeed []float64
		for _, kind := range allKinds {
			ds := p.dataset(kind, mc.machine)
			tp := map[Method]float64{}
			for _, m := range AllMethods {
				out, err := runCached(o, runSpec{
					machine: mc.machine, ranks: mc.ranks, method: m, ds: ds,
					localBatch: p.localBatch, epochs: p.epochs, maxSteps: p.maxSteps,
					seed: o.seed(), keepLat: true,
				})
				if err != nil {
					return nil, err
				}
				tp[m] = out.MeanThroughput
			}
			cs := tp[MethodCFF] / tp[MethodPFF]
			dd := tp[MethodDDStore] / tp[MethodPFF]
			cffSpeed = append(cffSpeed, cs)
			ddsSpeed = append(ddsSpeed, dd)
			r.AddRow(mc.machine.Name, mc.ranks, kind.String(), 1.0, cs, dd)
		}
		r.AddRow(mc.machine.Name, mc.ranks, "Geomean", 1.0,
			stats.Geomean(cffSpeed), stats.Geomean(ddsSpeed))
	}
	r.AddNote("paper: DDStore vs PFF averages 2.93x on Summit (up to 4.23x) and 4.69x on Perlmutter (up to 6.15x); DDStore vs CFF 5.09x / 6.13x")
	r.AddNote("shape to preserve: DDStore > 1 everywhere and largest; CFF at or below PFF for the molecular datasets")
	return r, nil
}

// fig5Runs executes (or reuses) the 4-dataset × 3-method suite on the
// Perlmutter 64-GPU configuration with latency retention — shared by
// fig5, fig6 and table2.
func fig5Runs(o Options) (profile, map[dsKind]map[Method]*runOut, error) {
	p := profileFor(o)
	outs := map[dsKind]map[Method]*runOut{}
	perl := p.machine("Perlmutter")
	for _, kind := range allKinds {
		outs[kind] = map[Method]*runOut{}
		for _, m := range AllMethods {
			out, err := runCached(o, runSpec{
				machine: perl, ranks: p.perlRanks, method: m,
				ds: p.dataset(kind, perl), localBatch: p.localBatch, epochs: p.epochs,
				maxSteps: p.maxSteps, seed: o.seed(), keepLat: true,
			})
			if err != nil {
				return p, nil, err
			}
			outs[kind][m] = out
		}
	}
	return p, outs, nil
}

// runFig5 reproduces Fig. 5: per-phase time breakdown (seconds per rank per
// epoch) for each dataset and method on 64 Perlmutter GPUs.
func runFig5(o Options) (*Report, error) {
	p, outs, err := fig5Runs(o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "fig5",
		Title: "End-to-end time breakdown on Perlmutter (s per rank per epoch)",
		Columns: []string{"Dataset", "Method", "CPU-Loading", "CPU-Batching",
			"GPU-Forward", "GPU-Backward", "GPU-Comm", "Optimizer"},
	}
	for _, kind := range allKinds {
		for _, m := range AllMethods {
			out := outs[kind][m]
			per := func(region string) float64 {
				return out.Prof.Get(region).Total.Seconds() / float64(p.perlRanks) / float64(p.epochs)
			}
			r.AddRow(kind.String(), string(m),
				per(trace.RegionLoading), per(trace.RegionBatching),
				per(trace.RegionForward), per(trace.RegionBackward),
				per(trace.RegionComm), per(trace.RegionOptimizer))
		}
	}
	// Paper claim: DDStore cuts CPU-Loading by ~90.7% vs PFF and ~84.3% vs CFF.
	var reducPFF, reducCFF []float64
	for _, kind := range allKinds {
		dd := outs[kind][MethodDDStore].Prof.Get(trace.RegionLoading).Total.Seconds()
		pf := outs[kind][MethodPFF].Prof.Get(trace.RegionLoading).Total.Seconds()
		cf := outs[kind][MethodCFF].Prof.Get(trace.RegionLoading).Total.Seconds()
		if pf > 0 {
			reducPFF = append(reducPFF, 100*(1-dd/pf))
		}
		if cf > 0 {
			reducCFF = append(reducCFF, 100*(1-dd/cf))
		}
	}
	r.AddNote("measured mean CPU-Loading reduction by DDStore: %.1f%% vs PFF, %.1f%% vs CFF (paper: 90.68%% and 84.31%%)",
		stats.Mean(reducPFF), stats.Mean(reducCFF))
	return r, nil
}

// runFig6 reproduces Fig. 6: the per-graph loading latency CDF per dataset
// and method; we print the latency at fixed CDF fractions.
func runFig6(o Options) (*Report, error) {
	_, outs, err := fig5Runs(o)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}
	cols := []string{"Dataset", "Method"}
	for _, f := range fractions {
		cols = append(cols, fmt.Sprintf("P%02.0f (ms)", f*100))
	}
	r := &Report{ID: "fig6", Title: "Graph loading latency CDF on 64 Perlmutter GPUs", Columns: cols}
	for _, kind := range allKinds {
		for _, m := range AllMethods {
			lat := outs[kind][m].Latencies
			if len(lat) == 0 {
				return nil, fmt.Errorf("bench: no latencies for %s/%s", kind, m)
			}
			cdf := stats.NewCDF(lat)
			row := []any{kind.String(), string(m)}
			for _, f := range fractions {
				row = append(row, ms(cdf.Quantile(f)))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("shape to preserve: DDStore's curve is leftmost (sub-ms) for every dataset; CFF's Ising median is cache-fast but its molecular-dataset curves sit right of PFF")
	return r, nil
}

// runTable2 reproduces Table 2: 50/95/99th percentile of the Fig. 6
// latencies.
func runTable2(o Options) (*Report, error) {
	_, outs, err := fig5Runs(o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "table2",
		Title:   "Graph loading latency percentiles (ms)",
		Columns: []string{"Dataset", "Method", "50th", "95th", "99th"},
	}
	for _, kind := range allKinds {
		for _, m := range AllMethods {
			p50, p95, p99 := latencyPercentiles(outs[kind][m].Latencies)
			r.AddRow(kind.String(), string(m), p50, p95, p99)
		}
	}
	r.AddNote("paper (Perlmutter, 64 GPUs): PFF medians 2.25–2.78 ms; CFF 0.19 ms (Ising, cached) to 9.69 ms; DDStore 0.24–0.44 ms with 99th <= 2.17 ms")
	return r, nil
}

// runFig7 reproduces Fig. 7: the Score-P profile share of data loading and
// MPI RMA time for DDStore training on Summit.
func runFig7(o Options) (*Report, error) {
	p := profileFor(o)
	out, err := runCached(o, runSpec{
		machine: p.machine("Summit"), ranks: p.summitRanks, method: MethodDDStore,
		ds: p.dataset(dsDiscrete, nil), localBatch: p.localBatch, epochs: p.epochs,
		maxSteps: p.maxSteps, seed: o.seed(), keepLat: true,
	})
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig7",
		Title:   "Profile of HydraGNN+DDStore on Summit (AISD-Ex discrete)",
		Columns: []string{"Region", "Total (s, all ranks)", "Share"},
	}
	total := out.Prof.Total()
	for _, region := range []string{
		trace.RegionLoading, trace.RegionBatching, trace.RegionForward,
		trace.RegionBackward, trace.RegionComm, trace.RegionOptimizer,
	} {
		reg := out.Prof.Get(region)
		r.AddRow(region, reg.Total.Seconds(), fmt.Sprintf("%.1f%%", 100*float64(reg.Total)/float64(total)))
	}
	rma := out.Prof.Get(trace.RegionRMA)
	r.AddRow(trace.RegionRMA+" (within loading)", rma.Total.Seconds(),
		fmt.Sprintf("%.1f%%", 100*float64(rma.Total)/float64(total)))
	r.AddNote("paper: data loading ~67%% of the training duration, MPI RMA ~35%% of overall time")
	r.AddNote("shape to preserve: loading is the dominant CPU region and consists almost entirely of one-sided RMA time")
	r.Telemetry = out.Telemetry
	return r, nil
}

// scalingRow is one point of a scaling study.
func machineScales(p profile, m *cluster.Machine) []int {
	if m.Name == "Summit" {
		return p.summitScales
	}
	return p.perlScales
}

// runFig8 reproduces Fig. 8: throughput vs GPU count at fixed local batch
// size, for PFF/CFF/DDStore on both machines and the two AISD-Ex datasets.
// The min/max columns expose run variability (the paper's grey band).
func runFig8(o Options) (*Report, error) {
	p := profileFor(o)
	r := &Report{
		ID:    "fig8",
		Title: "Scaling with fixed local batch size",
		Columns: []string{"Machine", "Dataset", "GPUs", "Method",
			"Samples/s", "Min", "Max", "ParallelEff"},
	}
	for _, machine := range []*cluster.Machine{p.machine("Summit"), p.machine("Perlmutter")} {
		for _, kind := range []dsKind{dsDiscrete, dsSmooth} {
			ds := p.dataset(kind, nil)
			for _, m := range AllMethods {
				var pts []stats.ScalingPoint
				var rows [][]any
				for _, ranks := range machineScales(p, machine) {
					out, err := runCached(o, runSpec{
						machine: machine, ranks: ranks, method: m, ds: ds,
						localBatch: p.localBatch, epochs: p.epochs, maxSteps: 1,
						seed: o.seed(),
					})
					if err != nil {
						return nil, err
					}
					epochMean := stats.Mean(out.EpochThroughputs)
					pts = append(pts, stats.ScalingPoint{Workers: ranks, Throughput: epochMean})
					rows = append(rows, []any{
						machine.Name, kind.String(), ranks, string(m),
						epochMean,
						stats.Min(out.EpochThroughputs), stats.Max(out.EpochThroughputs),
					})
				}
				effs := stats.ParallelEfficiency(pts)
				for i, row := range rows {
					r.AddRow(append(row, effs[i])...)
				}
			}
		}
	}
	r.AddNote("paper: DDStore scales near-linearly to 1536 GPUs (Summit) / 1024 GPUs (Perlmutter) with low variability; PFF and CFF flatten and fluctuate")
	return r, nil
}

// runFig9 reproduces Fig. 9: per-function durations of DDStore training at
// each scale (same settings as fig8, Summit, AISD-Ex discrete).
func runFig9(o Options) (*Report, error) {
	p := profileFor(o)
	ds := p.dataset(dsDiscrete, nil)
	r := &Report{
		ID:    "fig9",
		Title: "DDStore per-function durations vs scale (Summit, s per rank per epoch)",
		Columns: []string{"GPUs", "CPU-Loading", "CPU-Batching", "GPU-Forward",
			"GPU-Backward", "GPU-Comm", "Optimizer"},
	}
	summit := p.machine("Summit")
	for _, ranks := range machineScales(p, summit) {
		out, err := runCached(o, runSpec{
			machine: summit, ranks: ranks, method: MethodDDStore, ds: ds,
			localBatch: p.localBatch, epochs: p.epochs, maxSteps: 1, seed: o.seed(),
		})
		if err != nil {
			return nil, err
		}
		per := func(region string) float64 {
			return out.Prof.Get(region).Total.Seconds() / float64(ranks) / float64(p.epochs)
		}
		r.AddRow(ranks, per(trace.RegionLoading), per(trace.RegionBatching),
			per(trace.RegionForward), per(trace.RegionBackward),
			per(trace.RegionComm), per(trace.RegionOptimizer))
	}
	r.AddNote("shape to preserve: per-rank function durations stay roughly flat as GPUs double (near-linear weak scaling); GPU-Comm grows slowly with scale")
	return r, nil
}

// runFig10 reproduces Fig. 10: scaling under a fixed *global* batch size
// (6144 on Summit, 4096 on Perlmutter) — local batches shrink as GPUs grow.
func runFig10(o Options) (*Report, error) {
	p := profileFor(o)
	r := &Report{
		ID:      "fig10",
		Title:   "Scaling with fixed global batch size (AISD-Ex discrete)",
		Columns: []string{"Machine", "GPUs", "LocalBatch", "Method", "Samples/s"},
	}
	ds := p.dataset(dsDiscrete, nil)
	for _, mc := range []struct {
		machine *cluster.Machine
		global  int
	}{
		{p.machine("Summit"), p.globalSummit},
		{p.machine("Perlmutter"), p.globalPerl},
	} {
		for _, ranks := range machineScales(p, mc.machine) {
			local := mc.global / ranks
			if local < 1 {
				continue
			}
			for _, m := range AllMethods {
				out, err := runCached(o, runSpec{
					machine: mc.machine, ranks: ranks, method: m, ds: ds,
					localBatch: local, epochs: p.epochs, maxSteps: 2, seed: o.seed(),
				})
				if err != nil {
					return nil, err
				}
				r.AddRow(mc.machine.Name, ranks, local, string(m), out.MeanThroughput)
			}
		}
	}
	r.AddNote("paper: with a fixed global batch, small local batches underutilize GPUs at scale and the DDStore-vs-PFF/CFF gap narrows on Perlmutter")
	return r, nil
}

// runFig11 reproduces Fig. 11: end-to-end performance with varying width on
// 64 nodes of each machine.
func runFig11(o Options) (*Report, error) {
	p := profileFor(o)
	r := &Report{
		ID:      "fig11",
		Title:   "End-to-end performance vs DDStore width (AISD-Ex discrete)",
		Columns: []string{"Machine", "GPUs", "Width", "Replicas", "Samples/s", "vs widest"},
	}
	for _, mc := range []struct {
		machine *cluster.Machine
		ranks   int
		widths  []int
	}{
		{p.machine("Summit"), p.widthRanksSummit, p.widthsSummit},
		{p.machine("Perlmutter"), p.widthRanksPerl, p.widthsPerl},
	} {
		results := make(map[int]float64, len(mc.widths))
		for _, w := range mc.widths {
			out, err := runCached(o, runSpec{
				machine: mc.machine, ranks: mc.ranks, method: MethodDDStore,
				ds: datasetFor(dsDiscrete, p.widthMolN, 0), width: w,
				localBatch: p.localBatch, epochs: p.epochs, maxSteps: p.maxSteps,
				seed: o.seed(),
			})
			if err != nil {
				return nil, err
			}
			results[w] = out.MeanThroughput
		}
		widest := results[mc.widths[len(mc.widths)-1]]
		for _, w := range mc.widths {
			r.AddRow(mc.machine.Name, mc.ranks, w, mc.ranks/w, results[w],
				fmt.Sprintf("%.2fx", results[w]/widest))
		}
	}
	r.AddNote("paper: the width changes end-to-end performance by less than ~10%% — loading is overlapped with compute, so faster fetches mostly shrink an already-hidden phase")
	return r, nil
}

// fig12Runs executes the width=default vs width=2 latency comparison on 16
// Perlmutter nodes (64 ranks), shared by fig12 and table3.
func fig12Runs(o Options) (profile, map[dsKind]map[int][]time.Duration, error) {
	p := profileFor(o)
	ranks := p.perlRanks
	widths := []int{ranks, 2}
	perl := p.machine("Perlmutter")
	widthDataset := func(kind dsKind) *datasets.Dataset {
		if kind == dsIsing {
			return datasetFor(dsIsing, p.widthIsingN, 0)
		}
		// Width=2 holds ranks/2 replicas in memory; use the smallest
		// molecular set that feeds one global batch.
		n := p.widthMolN
		if n > 16000 {
			n = 16000
		}
		if n < p.perlRanks*p.localBatch*10/8+1 {
			n = p.perlRanks*p.localBatch*10/8 + 1
		}
		return datasetFor(kind, n, p.bins)
	}
	out := map[dsKind]map[int][]time.Duration{}
	for _, kind := range allKinds {
		out[kind] = map[int][]time.Duration{}
		for _, w := range widths {
			res, err := runCached(o, runSpec{
				machine: perl, ranks: ranks, method: MethodDDStore,
				ds: widthDataset(kind), width: w, localBatch: p.localBatch,
				epochs: p.epochs, maxSteps: p.maxSteps, seed: o.seed(), keepLat: true,
			})
			if err != nil {
				return p, nil, err
			}
			out[kind][w] = res.Latencies
		}
	}
	return p, out, nil
}

// runFig12 reproduces Fig. 12: the loading latency CDF with the default
// width versus width=2.
func runFig12(o Options) (*Report, error) {
	p, outs, err := fig12Runs(o)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}
	cols := []string{"Dataset", "Width"}
	for _, f := range fractions {
		cols = append(cols, fmt.Sprintf("P%02.0f (ms)", f*100))
	}
	r := &Report{ID: "fig12", Title: "Latency CDF: width=default vs width=2 (Perlmutter)", Columns: cols}
	for _, kind := range allKinds {
		for _, w := range []int{p.perlRanks, 2} {
			cdf := stats.NewCDF(outs[kind][w])
			row := []any{kind.String(), w}
			for _, f := range fractions {
				row = append(row, ms(cdf.Quantile(f)))
			}
			r.AddRow(row...)
		}
	}
	r.AddNote("shape to preserve: the width=2 curve sits far left of the default — most fetches become intra-node or local")
	return r, nil
}

// runTable3 reproduces Table 3: the 50th-percentile latency reduction from
// width=default to width=2.
func runTable3(o Options) (*Report, error) {
	p, outs, err := fig12Runs(o)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "table3",
		Title:   "Median loading latency: width=default vs width=2",
		Columns: []string{"Dataset", fmt.Sprintf("width=%d (ms)", p.perlRanks), "width=2 (ms)", "Reduction"},
	}
	for _, kind := range allKinds {
		wideCDF := stats.NewCDF(outs[kind][p.perlRanks])
		narrowCDF := stats.NewCDF(outs[kind][2])
		wide := ms(wideCDF.Quantile(0.5))
		narrow := ms(narrowCDF.Quantile(0.5))
		r.AddRow(kind.String(), wide, narrow, fmt.Sprintf("%.2f%%", 100*(1-narrow/wide)))
	}
	r.AddNote("paper: width=2 cuts the median latency by 79.17–87.18%% (0.24–0.44 ms -> 0.05–0.06 ms)")
	return r, nil
}

// runFig13 reproduces Fig. 13: real HydraGNN training to convergence on the
// smooth-spectrum dataset with the ReduceLROnPlateau scheduler; the paper's
// loss bump at epoch 26 is the scheduler halving the rate.
func runFig13(o Options) (*Report, error) {
	p := profileFor(o)
	ds := datasetFor(dsSmooth, p.convSamples, p.convBins)
	world, err := comm.NewWorld(p.convRanks, o.seed(), comm.WithMachine(p.machine("Summit")))
	if err != nil {
		return nil, err
	}
	cfg := hydra.Config{
		NodeFeatDim: ds.NodeFeatDim(),
		EdgeFeatDim: ds.EdgeFeatDim(),
		HiddenDim:   p.convHidden,
		ConvLayers:  p.convConv,
		FCLayers:    p.convFC,
		OutputDim:   ds.OutputDim(),
		Seed:        o.seed(),
	}
	var res *ddp.Result
	var mu sync.Mutex
	err = world.Run(func(c *comm.Comm) error {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return err
		}
		r, err := ddp.Run(c, ddp.Config{
			Loader:     &ddp.PlaneLoader{Plane: st},
			LocalBatch: p.convBatch,
			Epochs:     p.convEpochs,
			Seed:       o.seed(),
			Model:      hydra.New(cfg),
			LR:         1e-3,
			Plateau:    true,
			Eval:       true,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		if c.Rank() == 0 {
			res = r
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:      "fig13",
		Title:   "Convergence of train/validation/test MSE (smooth UV-vis spectra)",
		Columns: []string{"Epoch", "TrainLoss", "ValLoss", "TestLoss", "LRDecay"},
	}
	for _, e := range res.Epochs {
		mark := ""
		if e.LRDecayed {
			mark = "x0.5"
		}
		r.AddRow(e.Epoch, e.TrainLoss, e.ValLoss, e.TestLoss, mark)
	}
	first := res.Epochs[0]
	last := res.Epochs[len(res.Epochs)-1]
	r.AddNote("train loss: %.4g -> %.4g over %d epochs (scaled-down model: hidden %d, %d conv, %d FC, %d-bin spectra)",
		first.TrainLoss, last.TrainLoss, len(res.Epochs), p.convHidden, p.convConv, p.convFC, p.convBins)
	r.AddNote("paper: 100 epochs on 128 Summit nodes converge to MSE 0.015–0.016 after ~90 epochs, with a visible bump when ReduceLROnPlateau halves the rate at epoch 26")
	return r, nil
}
