// Package bench is the experiment harness: one function per table and
// figure of the paper's evaluation section, each returning a Report with
// the same rows/series the paper shows. The cmd/ddstore-bench tool runs
// them by id; bench_test.go wraps each in a testing.B benchmark.
package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"ddstore/internal/fetch"
	"ddstore/internal/obs"
)

// Report is the textual result of one experiment.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes carry the paper's expected shape next to what we measured.
	Notes []string `json:"notes,omitempty"`
	// Latency is the per-sample fetch-latency digest of the run, for
	// experiments whose data plane exposes one (see fetch.LatencySummary).
	Latency *LatencyDigest `json:"latency,omitempty"`
	// Telemetry is the cluster-wide time-share and loading-skew aggregation
	// for experiments that expose one (fig7's Score-P-style profile).
	Telemetry *obs.ClusterTelemetry `json:"telemetry,omitempty"`
}

// LatencyDigest is a JSON-friendly rendering of fetch.LatencySummary:
// percentiles in microseconds over the plane's recent-sample window.
type LatencyDigest struct {
	Count int64   `json:"count"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

func latencyDigest(s fetch.LatencySummary) *LatencyDigest {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return &LatencyDigest{Count: s.Count, P50us: us(s.P50), P95us: us(s.P95), P99us: us(s.P99)}
}

// AddRow appends a row, formatting each cell with %v.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// AddNote appends a formatted note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// JSON renders the report as an indented JSON object, including the
// latency digest when the experiment recorded one.
func (r *Report) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// CSV renders the report as comma-separated values (quotes are not needed
// for the cell content we generate).
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Options configures experiment scale.
type Options struct {
	// Quick shrinks every experiment to seconds for tests; the full-size
	// runs reproduce the paper's configurations.
	Quick bool
	// Seed makes runs reproducible.
	Seed uint64
	// CacheBytes, if positive, gives every DDStore rank in the simulated
	// runs a byte-budgeted remote-sample cache of this size (see
	// core.Options.CacheBytes). Zero keeps the paper-faithful cacheless
	// configuration.
	CacheBytes int64
	// CachePolicy selects the cache eviction policy when CacheBytes is
	// set: "lru" (default), "fifo", or "clock".
	CachePolicy string
	// Metrics, when non-nil, receives every run's engine metrics (latency
	// histogram, cache and resilience event counters) — the -metrics-json
	// sink of cmd/ddstore-bench. Does not perturb run results.
	Metrics *obs.Registry
	// Trace, when non-nil, collects per-batch spans from every rank of
	// every (non-memoized) run for Chrome trace export (-trace-out).
	Trace *obs.TraceSink
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 20231112 // the SC-W '23 conference start date
	}
	return o.Seed
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry []Experiment

func register(id, title string, run func(Options) (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments returns all registered experiments in id order.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
