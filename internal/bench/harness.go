package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/cff"
	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/hydra"
	"ddstore/internal/obs"
	"ddstore/internal/pff"
	"ddstore/internal/pfs"
	"ddstore/internal/stats"
	"ddstore/internal/trace"
)

// Method selects the data management backend under test.
type Method string

// The three data management methodologies the paper compares (§4.3).
const (
	MethodPFF     Method = "PFF"
	MethodCFF     Method = "CFF"
	MethodDDStore Method = "DDStore"
)

// AllMethods lists the comparison order used in the paper's figures.
var AllMethods = []Method{MethodPFF, MethodCFF, MethodDDStore}

// cffParts is the container subfile count used by the CFF baseline; a few
// large containers is the ADIOS-style layout the paper describes.
const cffParts = 6

// dsKind identifies the four evaluation datasets.
type dsKind int

const (
	dsIsing dsKind = iota
	dsHomoLumo
	dsDiscrete
	dsSmooth
)

func (k dsKind) String() string {
	switch k {
	case dsIsing:
		return "Ising"
	case dsHomoLumo:
		return "AISD HOMO-LUMO"
	case dsDiscrete:
		return "AISD-Ex (Discrete)"
	case dsSmooth:
		return "AISD-Ex (Smooth)"
	default:
		return fmt.Sprintf("dsKind(%d)", int(k))
	}
}

// allKinds is the dataset order of the paper's figures.
var allKinds = []dsKind{dsIsing, dsHomoLumo, dsDiscrete, dsSmooth}

// datasetCache memoizes generated datasets and their per-sample sizes so
// repeated experiments do not regenerate hundreds of thousands of samples.
var datasetCache = struct {
	sync.Mutex
	ds    map[string]*datasets.Dataset
	sizes map[string][]int64
}{ds: map[string]*datasets.Dataset{}, sizes: map[string][]int64{}}

func datasetFor(kind dsKind, numGraphs, bins int) *datasets.Dataset {
	key := fmt.Sprintf("%d/%d/%d", kind, numGraphs, bins)
	datasetCache.Lock()
	defer datasetCache.Unlock()
	if ds, ok := datasetCache.ds[key]; ok {
		return ds
	}
	cfg := datasets.Config{NumGraphs: numGraphs, SpectrumBins: bins}
	var ds *datasets.Dataset
	switch kind {
	case dsIsing:
		ds = datasets.Ising(cfg)
	case dsHomoLumo:
		ds = datasets.HomoLumo(cfg)
	case dsDiscrete:
		ds = datasets.AISDExDiscrete(cfg)
	case dsSmooth:
		ds = datasets.AISDExSmooth(cfg)
	}
	// Materialize eagerly: the at-scale runs would otherwise regenerate
	// hundreds of thousands of samples per configuration, and on a
	// single-core box the resulting allocation storm costs more (GC
	// fighting the simulation for the CPU, RSS ballooning with garbage)
	// than the ~1 GB of stable resident graphs per large dataset. The
	// ddstore-bench driver drops the cache between experiment groups.
	ds.EnableCache()
	datasetCache.ds[key] = ds
	return ds
}

// ResetCaches drops the dataset, size, and run memoization caches and
// returns freed memory to the OS. The ddstore-bench driver calls it between
// experiments so the full suite's peak memory stays bounded.
func ResetCaches() {
	datasetCache.Lock()
	datasetCache.ds = map[string]*datasets.Dataset{}
	datasetCache.sizes = map[string][]int64{}
	datasetCache.Unlock()
	runCache.Lock()
	runCache.m = map[string]*runOut{}
	runCache.Unlock()
	runtime.GC()
	debug.FreeOSMemory()
}

func sizesFor(ds *datasets.Dataset) ([]int64, error) {
	key := fmt.Sprintf("%s/%d/%d", ds.Name(), ds.Len(), ds.OutputDim())
	datasetCache.Lock()
	if s, ok := datasetCache.sizes[key]; ok {
		datasetCache.Unlock()
		return s, nil
	}
	datasetCache.Unlock()
	s, err := pff.SampleSizes(ds)
	if err != nil {
		return nil, err
	}
	datasetCache.Lock()
	datasetCache.sizes[key] = s
	datasetCache.Unlock()
	return s, nil
}

// runSpec describes one simulated training run.
type runSpec struct {
	machine    *cluster.Machine
	ranks      int
	method     Method
	ds         *datasets.Dataset
	localBatch int
	epochs     int
	maxSteps   int
	width      int // DDStore only; 0 = default (single replica)
	seed       uint64
	keepLat    bool

	// DDStore design-ablation toggles (see core.Options).
	framework     core.Framework
	lockPerSample bool
	nonBlocking   bool

	// Remote-sample cache (filled in from Options by runCached unless the
	// experiment sets them explicitly).
	cacheBytes  int64
	cachePolicy cache.Policy

	// Observability sinks (filled in from Options by runCached). They do
	// not affect the simulated outcome, so they are excluded from the run
	// memoization key — a memoized hit simply records nothing new.
	metrics   *obs.Registry
	traceSink *obs.TraceSink
}

// runOut is the aggregated outcome of one run.
type runOut struct {
	// MeanThroughput is global samples per virtual second over the run.
	MeanThroughput float64
	// EpochThroughputs, one per epoch, expose run variability.
	EpochThroughputs []float64
	// EpochDuration is the mean virtual epoch time.
	EpochDuration time.Duration
	// Prof merges every rank's region profile.
	Prof *trace.Profiler
	// Latencies concatenates per-sample load latencies from all ranks (only
	// if keepLat).
	Latencies []time.Duration
	// Telemetry is the rank-0 cluster aggregation: per-rank time shares and
	// the per-epoch loading-skew table, gathered over the comm collectives.
	Telemetry *obs.ClusterTelemetry
}

// runOne executes one simulated DDP training run and aggregates the
// outcome.
func runOne(spec runSpec) (*runOut, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	world, err := comm.NewWorld(spec.ranks, spec.seed, comm.WithMachine(spec.machine))
	if err != nil {
		return nil, err
	}

	var fs *pfs.PFS
	var sizes []int64
	var layout *cff.SimLayout
	switch spec.method {
	case MethodPFF:
		fs = pfs.New(spec.machine, spec.ranks)
		if sizes, err = sizesFor(spec.ds); err != nil {
			return nil, err
		}
		pff.RegisterSimSizes(fs, spec.ds, sizes)
	case MethodCFF:
		fs = pfs.New(spec.machine, spec.ranks)
		if sizes, err = sizesFor(spec.ds); err != nil {
			return nil, err
		}
		if layout, err = cff.RegisterSimSizes(fs, spec.ds, sizes, cffParts); err != nil {
			return nil, err
		}
	case MethodDDStore:
		// no filesystem: the preloader reads straight from the generator
		// source (the paper's preload also happens once and is excluded
		// from the steady-state comparison).
	default:
		return nil, fmt.Errorf("bench: unknown method %q", spec.method)
	}

	simModel := hydra.PaperConfig(spec.ds.NodeFeatDim(), spec.ds.EdgeFeatDim(), spec.ds.OutputDim())
	out := &runOut{Prof: trace.New()}
	var res *ddp.Result
	var mu sync.Mutex
	err = world.Run(func(c *comm.Comm) error {
		var loader ddp.Loader
		switch spec.method {
		case MethodPFF:
			loader = &ddp.SourceLoader{Source: pff.NewSim(fs, spec.ds, sizes, c.Clock(), c.RNG())}
		case MethodCFF:
			loader = &ddp.SourceLoader{Source: cff.NewSim(fs, spec.ds, layout, c.Clock(), c.RNG())}
		}
		prof := trace.NewSampling()
		var spans *obs.SpanRing
		if spec.traceSink != nil {
			spans = spec.traceSink.NewRing(fmt.Sprintf("%s %s x%d", spec.method, spec.machine.Name, spec.ranks), c.Rank())
		}
		if spec.method == MethodDDStore {
			st, err := core.Open(c, spec.ds, core.Options{
				Width:         spec.width,
				Profiler:      prof,
				Framework:     spec.framework,
				LockPerSample: spec.lockPerSample,
				NonBlocking:   spec.nonBlocking,
				CacheBytes:    spec.cacheBytes,
				CachePolicy:   spec.cachePolicy,
				Metrics:       spec.metrics,
				Spans:         spans,
			})
			if err != nil {
				return err
			}
			defer st.Close()
			loader = &ddp.PlaneLoader{Plane: st}
		}
		r, err := ddp.Run(c, ddp.Config{
			Loader:           loader,
			LocalBatch:       spec.localBatch,
			Epochs:           spec.epochs,
			MaxStepsPerEpoch: spec.maxSteps,
			Seed:             spec.seed,
			SimModel:         simModel,
			Profiler:         prof,
			KeepLatencies:    spec.keepLat,
			Spans:            spans,
			Telemetry:        obs.NewTelemetry(c, prof),
		})
		if err != nil {
			return err
		}
		mu.Lock()
		out.Prof.Merge(prof)
		if spec.keepLat {
			out.Latencies = append(out.Latencies, r.Latencies...)
		}
		if c.Rank() == 0 {
			res = r
			out.Telemetry = r.Telemetry
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.MeanThroughput = res.MeanThroughput
	var durSum time.Duration
	for _, e := range res.Epochs {
		out.EpochThroughputs = append(out.EpochThroughputs, e.Throughput)
		durSum += e.Duration
	}
	if len(res.Epochs) > 0 {
		out.EpochDuration = durSum / time.Duration(len(res.Epochs))
	}
	return out, nil
}

func validateSpec(spec runSpec) error {
	if spec.ranks <= 0 {
		return fmt.Errorf("bench: %d ranks", spec.ranks)
	}
	trainSamples := spec.ds.Len() * 8 / 10
	if need := spec.ranks * spec.localBatch; trainSamples < need {
		return fmt.Errorf("bench: dataset %q train split (%d) smaller than one global batch (%d ranks × %d)",
			spec.ds.Name(), trainSamples, spec.ranks, spec.localBatch)
	}
	return nil
}

// runCache memoizes run outcomes within one process so composite
// experiments (fig5/fig6/table2 share the same runs) execute each
// configuration once.
var runCache = struct {
	sync.Mutex
	m map[string]*runOut
}{m: map[string]*runOut{}}

// runCached memoizes runOne, applying the suite-wide cache configuration
// from Options to any spec that does not set its own.
func runCached(o Options, spec runSpec) (*runOut, error) {
	if spec.cacheBytes == 0 && o.CacheBytes > 0 {
		pol, err := cache.ParsePolicy(o.CachePolicy)
		if err != nil {
			return nil, err
		}
		spec.cacheBytes = o.CacheBytes
		spec.cachePolicy = pol
	}
	spec.metrics = o.Metrics
	spec.traceSink = o.Trace
	key := fmt.Sprintf("%s/%d/%s/%s-%d-%d/%d/%d/%d/%d/%d/%v/%d-%v-%v/%d-%v",
		spec.machine.Name, spec.ranks, spec.method, spec.ds.Name(), spec.ds.Len(), spec.ds.OutputDim(),
		spec.localBatch, spec.epochs, spec.maxSteps, spec.width, spec.seed, spec.keepLat,
		spec.framework, spec.lockPerSample, spec.nonBlocking, spec.cacheBytes, spec.cachePolicy)
	runCache.Lock()
	if out, ok := runCache.m[key]; ok {
		runCache.Unlock()
		return out, nil
	}
	runCache.Unlock()
	out, err := runOne(spec)
	if err != nil {
		return nil, err
	}
	runCache.Lock()
	runCache.m[key] = out
	runCache.Unlock()
	return out, nil
}

// latencyPercentiles returns the 50/95/99th percentiles in milliseconds.
func latencyPercentiles(lat []time.Duration) (p50, p95, p99 float64) {
	c := stats.NewCDF(lat)
	return c.Quantile(0.50).Seconds() * 1e3,
		c.Quantile(0.95).Seconds() * 1e3,
		c.Quantile(0.99).Seconds() * 1e3
}

func ms(d time.Duration) float64 { return d.Seconds() * 1e3 }

// clusterLaptop is a test seam for the tiny machine.
func clusterLaptop() *cluster.Machine { return cluster.Laptop() }
