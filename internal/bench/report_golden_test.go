package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ddstore/internal/fetch"
	"ddstore/internal/obs"
)

// fixedReport populates every Report field with environment-independent
// values so its JSON encoding is reproducible.
func fixedReport() *Report {
	r := &Report{
		ID:      "fig4",
		Title:   "golden fixture",
		Columns: []string{"dataset", "throughput", "p99-ms"},
	}
	r.AddRow("Ising", 102000.0, 0.89)
	r.AddRow("AISD HOMO-LUMO", 98000.0, 1.21)
	r.AddNote("expected shape: DDStore >> CFF > PFF")
	r.Latency = latencyDigest(fetch.LatencySummary{
		Count: 4096,
		P50:   276 * time.Microsecond,
		P95:   512 * time.Microsecond,
		P99:   890 * time.Microsecond,
	})
	r.Telemetry = &obs.ClusterTelemetry{}
	return r
}

// TestReportJSONGolden pins the bench Report JSON schema — the other half
// of the BENCH_*.json artifact surface (ddstore-bench -json). Field
// renames break cross-PR diffs; a deliberate schema change must
// regenerate the golden:
//
//	UPDATE_GOLDEN=1 go test ./internal/bench -run TestReportJSONGolden
func TestReportJSONGolden(t *testing.T) {
	got, err := fixedReport().JSON()
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(got), '\n')
	path := filepath.Join("testdata", "report_v1.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to generate)", err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("report JSON drifted from %s — regenerate with UPDATE_GOLDEN=1 if intentional\ngot:\n%s\nwant:\n%s", path, out, want)
	}
}
