package bench

import (
	"ddstore/internal/core"
	"ddstore/internal/stats"
)

// The ablation experiments probe the design choices the paper discusses in
// §3.1 but does not quantify: the communication framework 'f' (one-sided
// RMA versus a two-sided request/response design), per-batch lock
// amortization, and overlapped non-blocking Gets. They go beyond the
// paper's figures; EXPERIMENTS.md records their outcomes alongside the
// reproductions.
func init() {
	register("abl-comm", "Ablation: one-sided RMA vs two-sided request/response", runAblComm)
	register("abl-lock", "Ablation: per-owner lock amortization vs per-sample locks", runAblLock)
	register("abl-nb", "Ablation: blocking vs overlapped non-blocking Gets", runAblNB)
}

// ablSpec returns the shared configuration for the ablations: the
// Perlmutter 64-GPU discrete-dataset workload of the latency experiments.
func ablSpec(o Options) (profile, runSpec) {
	p := profileFor(o)
	perl := p.machine("Perlmutter")
	return p, runSpec{
		machine: perl, ranks: p.perlRanks, method: MethodDDStore,
		ds: p.dataset(dsDiscrete, perl), localBatch: p.localBatch,
		epochs: p.epochs, maxSteps: p.maxSteps, seed: o.seed(), keepLat: true,
	}
}

func ablRow(r *Report, name string, out *runOut, baseline float64) {
	p50, p95, p99 := latencyPercentiles(out.Latencies)
	r.AddRow(name, out.MeanThroughput, out.MeanThroughput/baseline, p50, p95, p99)
}

var ablColumns = []string{"Design", "Samples/s", "vs baseline", "P50 (ms)", "P95 (ms)", "P99 (ms)"}

// runAblComm compares the chosen one-sided design against the rejected
// two-sided one under identical training load.
func runAblComm(o Options) (*Report, error) {
	_, spec := ablSpec(o)
	r := &Report{ID: "abl-comm", Title: "Communication framework ablation (Perlmutter, AISD-Ex discrete)", Columns: ablColumns}

	twoSided := spec
	twoSided.framework = core.FrameworkTwoSided
	ts, err := runCached(o, twoSided)
	if err != nil {
		return nil, err
	}
	rma, err := runCached(o, spec)
	if err != nil {
		return nil, err
	}
	ablRow(r, "two-sided req/resp", ts, ts.MeanThroughput)
	ablRow(r, "one-sided RMA", rma, ts.MeanThroughput)
	r.AddNote("the paper chose MPI RMA because it minimizes the target's involvement (§3.1); the two-sided design makes every fetch wait for the owner's CPU")
	if rma.MeanThroughput > 0 && ts.MeanThroughput > 0 {
		r.AddNote("measured: one-sided is %.2fx the two-sided end-to-end throughput", rma.MeanThroughput/ts.MeanThroughput)
	}
	return r, nil
}

// runAblLock measures the value of amortizing the window lock over a
// batch's per-owner samples.
func runAblLock(o Options) (*Report, error) {
	_, spec := ablSpec(o)
	r := &Report{ID: "abl-lock", Title: "Lock amortization ablation (Perlmutter, AISD-Ex discrete)", Columns: ablColumns}

	perSample := spec
	perSample.lockPerSample = true
	ps, err := runCached(o, perSample)
	if err != nil {
		return nil, err
	}
	amortized, err := runCached(o, spec)
	if err != nil {
		return nil, err
	}
	ablRow(r, "lock per sample", ps, ps.MeanThroughput)
	ablRow(r, "lock per owner (default)", amortized, ps.MeanThroughput)
	r.AddNote("DDStore opens one MPI_Win_lock(SHARED) epoch per owner per batch; paying the lock round-trip per sample inflates every fetch by ~%v", spec.machine.RMALock(false))
	return r, nil
}

// runAblNB measures overlapped non-blocking Gets (MPI_Rget) against the
// default blocking Gets.
func runAblNB(o Options) (*Report, error) {
	_, spec := ablSpec(o)
	r := &Report{ID: "abl-nb", Title: "Non-blocking Get ablation (Perlmutter, AISD-Ex discrete)", Columns: ablColumns}

	blocking, err := runCached(o, spec)
	if err != nil {
		return nil, err
	}
	nb := spec
	nb.nonBlocking = true
	nbOut, err := runCached(o, nb)
	if err != nil {
		return nil, err
	}
	ablRow(r, "blocking Gets (default)", blocking, blocking.MeanThroughput)
	ablRow(r, "overlapped non-blocking Gets", nbOut, blocking.MeanThroughput)
	r.AddNote("overlapping the wire time of a batch's Gets is a natural extension of the paper's design (future-work flavor); gains are bounded because loading is already overlapped with GPU compute")
	sp := stats.Speedup([]float64{nbOut.MeanThroughput}, blocking.MeanThroughput)
	r.AddNote("measured: non-blocking achieves %.2fx the blocking throughput", sp[0])
	return r, nil
}
