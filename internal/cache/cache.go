// Package cache implements the data plane's hot-sample cache: a
// byte-budgeted, sharded cache over fetched remote sample bytes with
// singleflight-style request coalescing, so that (a) a repeat visit to a
// sample costs a memory read instead of a network round trip, and (b)
// concurrent misses for the same id trigger exactly one upstream fetch.
//
// DDStore's workload (paper §3) is globally-shuffled training: every epoch
// issues huge numbers of tiny remote reads, and the same bytes are re-read
// epoch after epoch. The cache converts that re-read traffic into local
// memory reads; the coalescing flight table keeps prefetching workers and
// the training loop from duplicating in-flight fetches.
//
// Eviction is pluggable: LRU is the default; FIFO and Clock (second
// chance) exist for the eviction ablation. Hit/miss/coalesce/evict event
// counts flow into any Counters sink — *trace.Profiler satisfies it, so a
// run's cache behaviour lands next to its region timings.
//
// Values are treated as immutable: callers must not modify a returned
// slice (the same contract transport.ChunkSource has for served bytes).
package cache

import (
	"fmt"
	"sync"
)

// Policy selects the eviction policy of a Cache.
type Policy int

const (
	// LRU evicts the least-recently-used entry (default). Best when the
	// hot set shifts over time, as with shuffled epoch sampling.
	LRU Policy = iota
	// FIFO evicts in insertion order regardless of use. Cheapest bookkeeping;
	// the ablation baseline.
	FIFO
	// Clock is the second-chance approximation of LRU: a used entry gets
	// one extra lap of the queue before it can be evicted.
	Clock
)

// String returns the flag-friendly policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Clock:
		return "clock"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a flag value into a Policy. The empty string means
// the default (LRU).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "clock":
		return Clock, nil
	default:
		return 0, fmt.Errorf("cache: unknown policy %q (want lru, fifo, or clock)", s)
	}
}

// Ref is a reference held on the buffer backing a cached value. It is
// declared structurally (rather than importing the arena) so the cache
// stays dependency-free; *bufarena.Buf satisfies it. A nil Ref means the
// value is ordinary garbage-collected bytes with no lifecycle to manage.
//
// Ownership rules: PutRef and DeliverRef take ownership of one reference
// and the cache releases it when the entry is evicted, replaced, or Reset.
// ClaimRef hits and WaitRef hand the caller its own reference (retained
// under the shard lock), which the caller must Release when done with the
// bytes. The legacy Put/Get/Claim/Deliver/Wait API is the ref-free
// degenerate case and must not be used to read entries inserted with a
// non-nil Ref — it returns bytes without taking a reference, so the buffer
// may be recycled under the reader.
type Ref interface {
	Retain()
	Release()
}

// Counters receives cache event counts. *trace.Profiler implements it, so
// one profiler carries region timings, network resilience counters, and
// cache behaviour for the same run.
type Counters interface {
	Inc(name string, delta int64)
}

// Counter names recorded by the cache.
const (
	CounterHits      = "cache-hits"      // lookups served from cached bytes
	CounterMisses    = "cache-misses"    // lookups that became fetch leaders
	CounterCoalesced = "cache-coalesced" // lookups that joined an in-flight fetch
	CounterEvictions = "cache-evictions" // entries evicted to hold the byte budget
)

type nopCounters struct{}

func (nopCounters) Inc(string, int64) {}

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget over cached values (metadata
	// overhead is not charged). Zero or negative means nothing is retained,
	// but request coalescing still works.
	MaxBytes int64
	// Shards is the number of independently locked shards (default 8).
	Shards int
	// Policy is the eviction policy (default LRU).
	Policy Policy
	// Counters, if set, receives hit/miss/coalesce/evict event counts.
	Counters Counters
}

// Stats is a point-in-time aggregate over all shards.
type Stats struct {
	Hits      int64
	Misses    int64
	Coalesced int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookups.
// Coalesced lookups count as neither: they were misses someone else paid for.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a sharded, byte-budgeted sample cache with request coalescing.
// All methods are safe for concurrent use.
type Cache struct {
	shards   []*shard
	policy   Policy
	counters Counters
}

// New returns a cache with the given options.
func New(opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = 8
	}
	cnt := opts.Counters
	if cnt == nil {
		cnt = nopCounters{}
	}
	c := &Cache{policy: opts.Policy, counters: cnt}
	budget := opts.MaxBytes
	if budget < 0 {
		budget = 0
	}
	per := budget / int64(n)
	rem := budget % int64(n)
	for i := 0; i < n; i++ {
		max := per
		if int64(i) < rem {
			max++
		}
		c.shards = append(c.shards, &shard{
			max:      max,
			policy:   opts.Policy,
			entries:  map[int64]*entry{},
			flights:  map[int64]*flight{},
			counters: cnt,
		})
	}
	return c
}

// Policy returns the cache's eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

func (c *Cache) shardFor(id int64) *shard {
	// Fibonacci hashing spreads sequential ids (the common access pattern
	// after an owner-grouped batch) evenly over the shards.
	h := uint64(id) * 0x9E3779B97F4A7C15
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached bytes for id, if present, updating the policy's
// recency state. It records a hit or a miss. Get takes no buffer
// reference; it is only valid for entries inserted ref-free (Put/Deliver).
func (c *Cache) Get(id int64) ([]byte, bool) {
	s := c.shardFor(id)
	s.mu.Lock()
	e, ok := s.get(id)
	var val []byte
	if ok {
		val = e.val
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	if ok {
		c.counters.Inc(CounterHits, 1)
	} else {
		c.counters.Inc(CounterMisses, 1)
	}
	return val, ok
}

// Put inserts (or refreshes) id, evicting entries as needed to hold the
// byte budget. A value larger than the shard budget is not cached at all.
func (c *Cache) Put(id int64, val []byte) {
	c.PutRef(id, val, nil)
}

// PutRef is Put for pooled values: the cache takes ownership of one
// reference on the buffer backing val and releases it when the entry is
// evicted, replaced, or Reset — including immediately, if the value is
// over budget and never cached at all.
func (c *Cache) PutRef(id int64, val []byte, ref Ref) {
	s := c.shardFor(id)
	s.mu.Lock()
	s.put(id, val, ref)
	s.mu.Unlock()
}

// Flight is a claim on a cache miss. Exactly one claimant per id is the
// leader (Leader() == true) and must complete the flight with Deliver or
// Fail; every other concurrent claimant is a follower and receives the
// leader's result from Wait.
type Flight struct {
	s      *shard
	cnt    Counters
	id     int64
	leader bool
	fl     *flight
}

// flight is the shared state of one in-flight fetch. followers counts the
// claimants coalesced onto the flight; it is read and written only under
// the shard lock, which is also what makes DeliverRef's snapshot exact —
// a claimant either incremented followers before the flight left the
// shard's table (and gets a retained reference) or finds the freshly
// cached entry and retains through ClaimRef.
type flight struct {
	done      chan struct{}
	followers int
	val       []byte
	ref       Ref
	err       error
}

// Claim looks up id. On a hit it returns (bytes, nil). On a miss it
// returns (nil, *Flight): the caller checks Leader() to learn whether it
// must perform the fetch (and then Deliver/Fail) or wait for someone
// else's (Wait). This is the batch-friendly form of GetOrFetch — a loader
// can claim a whole batch, fetch all its leader misses in one round trip,
// deliver them, and only then wait on the followers.
//
// Claim drops the hit-path buffer reference ClaimRef would hand out (the
// backing buffer stays pinned rather than recycled), so it is safe — just
// wasteful — on ref-backed entries; pooled callers use ClaimRef.
func (c *Cache) Claim(id int64) ([]byte, *Flight) {
	val, _, f := c.ClaimRef(id)
	return val, f
}

// ClaimRef is Claim with buffer-reference handoff. On a hit the caller
// receives its own reference on the entry's backing buffer (retained
// under the shard lock, nil for ref-free entries) and must Release it when
// done with the bytes. On a miss the flight's result carries references
// the same way: the leader transfers ownership with DeliverRef, and each
// follower receives its own reference from WaitRef.
func (c *Cache) ClaimRef(id int64) ([]byte, Ref, *Flight) {
	s := c.shardFor(id)
	s.mu.Lock()
	if e, ok := s.get(id); ok {
		s.hits++
		val, ref := e.val, e.ref
		if ref != nil {
			ref.Retain()
		}
		s.mu.Unlock()
		c.counters.Inc(CounterHits, 1)
		return val, ref, nil
	}
	if fl, ok := s.flights[id]; ok {
		fl.followers++
		s.coalesced++
		s.mu.Unlock()
		c.counters.Inc(CounterCoalesced, 1)
		return nil, nil, &Flight{s: s, cnt: c.counters, id: id, fl: fl}
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[id] = fl
	s.misses++
	s.mu.Unlock()
	c.counters.Inc(CounterMisses, 1)
	return nil, nil, &Flight{s: s, cnt: c.counters, id: id, leader: true, fl: fl}
}

// Leader reports whether this claimant must perform the fetch.
func (f *Flight) Leader() bool { return f.leader }

// Deliver completes a leader's flight: the value is cached and every
// follower waiting on the same id is woken with it.
func (f *Flight) Deliver(val []byte) { f.DeliverRef(val, nil) }

// DeliverRef completes a leader's flight with a pooled value. The cache
// takes ownership of the caller's reference for the cached entry, and —
// under the same shard lock that removes the flight from the coalescing
// table — retains one additional reference per follower, so every WaitRef
// returns bytes with an independent lifetime.
func (f *Flight) DeliverRef(val []byte, ref Ref) {
	f.fl.val = val
	f.s.mu.Lock()
	if ref != nil {
		for i := 0; i < f.fl.followers; i++ {
			ref.Retain()
		}
	}
	f.fl.ref = ref
	f.s.put(f.id, val, ref)
	if f.s.flights[f.id] == f.fl {
		delete(f.s.flights, f.id)
	}
	f.s.mu.Unlock()
	close(f.fl.done)
}

// Fail completes a leader's flight with an error: nothing is cached, and
// every follower is woken with the error (the next claimant will lead a
// fresh flight).
func (f *Flight) Fail(err error) {
	f.fl.err = err
	f.s.mu.Lock()
	if f.s.flights[f.id] == f.fl {
		delete(f.s.flights, f.id)
	}
	f.s.mu.Unlock()
	close(f.fl.done)
}

// Wait blocks until the flight's leader calls Deliver or Fail and returns
// the result. A follower of a DeliverRef flight that uses Wait leaks its
// reference (the buffer stays pinned, never recycled); pooled callers use
// WaitRef.
func (f *Flight) Wait() ([]byte, error) {
	<-f.fl.done
	return f.fl.val, f.fl.err
}

// WaitRef is Wait with buffer-reference handoff: each follower receives
// one reference of its own (retained by the leader's DeliverRef) and must
// Release it when done with the bytes. The reference is nil for ref-free
// deliveries and on error.
func (f *Flight) WaitRef() ([]byte, Ref, error) {
	<-f.fl.done
	return f.fl.val, f.fl.ref, f.fl.err
}

// GetOrFetch returns the cached bytes for id, fetching (and caching) them
// with fetch on a miss. Concurrent calls for the same id are coalesced
// into a single fetch; a fetch error is propagated to every coalesced
// caller and nothing is cached.
func (c *Cache) GetOrFetch(id int64, fetch func() ([]byte, error)) ([]byte, error) {
	val, f := c.Claim(id)
	if f == nil {
		return val, nil
	}
	if !f.Leader() {
		return f.Wait()
	}
	val, err := fetch()
	if err != nil {
		f.Fail(err)
		return nil, err
	}
	f.Deliver(val)
	return val, nil
}

// Stats aggregates event counts and occupancy over all shards.
func (c *Cache) Stats() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Coalesced += s.coalesced
		st.Evictions += s.evictions
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Reset drops every cached entry, returning the cache to its cold state
// while keeping the configured budget, policy, and cumulative event
// counters. In-flight coalesced fetches are untouched: their deliveries
// land in the fresh state. Load harnesses use it to run warm-vs-cold
// phases against one server without restarting it.
func (c *Cache) Reset() {
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			if e.ref != nil {
				e.ref.Release()
			}
		}
		s.entries = map[int64]*entry{}
		s.head, s.tail = nil, nil
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return c.Stats().Entries }

// Bytes returns the total cached value bytes.
func (c *Cache) Bytes() int64 { return c.Stats().Bytes }

// shard is one independently locked slice of the cache. The linked list
// orders entries head (newest / most recently used) to tail (eviction
// candidate).
type shard struct {
	mu         sync.Mutex
	max        int64
	policy     Policy
	entries    map[int64]*entry
	head, tail *entry
	bytes      int64
	flights    map[int64]*flight
	counters   Counters

	hits, misses, coalesced, evictions int64
}

type entry struct {
	id         int64
	val        []byte
	ref        Ref    // cache-owned reference on val's backing buffer, or nil
	prev, next *entry // prev is toward the head
	used       bool   // Clock's second-chance bit
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// get looks up id and applies the policy's use bookkeeping. Caller holds mu.
func (s *shard) get(id int64) (*entry, bool) {
	e, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	switch s.policy {
	case LRU:
		s.moveToFront(e)
	case Clock:
		e.used = true
	}
	return e, true
}

// put inserts or refreshes id and evicts down to the budget, taking
// ownership of one reference on val's backing buffer (released when the
// entry leaves the cache, or immediately if the value is never cached).
// Caller holds mu.
func (s *shard) put(id int64, val []byte, ref Ref) {
	if int64(len(val)) > s.max {
		// The value can never fit; caching it would just flush the shard.
		if ref != nil {
			ref.Release()
		}
		return
	}
	if e, ok := s.entries[id]; ok {
		s.bytes += int64(len(val)) - int64(len(e.val))
		if e.ref != nil {
			e.ref.Release()
		}
		e.val = val
		e.ref = ref
		switch s.policy {
		case LRU:
			s.moveToFront(e)
		case Clock:
			e.used = true
		}
	} else {
		e := &entry{id: id, val: val, ref: ref}
		s.entries[id] = e
		s.pushFront(e)
		s.bytes += int64(len(val))
	}
	s.evict()
}

// evict removes entries until the shard is within budget, releasing each
// victim's buffer reference. Caller holds mu.
func (s *shard) evict() {
	for s.bytes > s.max && s.tail != nil {
		victim := s.tail
		if s.policy == Clock {
			// Second chance: a used victim is marked unused and sent around
			// again. Each pass clears one bit, so this terminates.
			for victim.used {
				victim.used = false
				s.moveToFront(victim)
				victim = s.tail
			}
		}
		s.unlink(victim)
		delete(s.entries, victim.id)
		s.bytes -= int64(len(victim.val))
		if victim.ref != nil {
			victim.ref.Release()
		}
		s.evictions++
		s.counters.Inc(CounterEvictions, 1)
	}
}
