package cache

import (
	"sync"
	"sync/atomic"
	"testing"

	"ddstore/internal/bufarena"
)

// ctr is a counting Ref for lifecycle assertions.
type ctr struct {
	retains  atomic.Int32
	releases atomic.Int32
}

func (c *ctr) Retain()  { c.retains.Add(1) }
func (c *ctr) Release() { c.releases.Add(1) }
func (c *ctr) live() int32 {
	// PutRef transfers one pre-existing reference in, so live count is
	// 1 + retains - releases.
	return 1 + c.retains.Load() - c.releases.Load()
}

func TestPutRefReleasedOnEvict(t *testing.T) {
	c := New(Options{MaxBytes: 200, Shards: 1})
	victim := &ctr{}
	c.PutRef(1, val(1, 150), victim)
	if victim.live() != 1 {
		t.Fatalf("live = %d after PutRef, want 1", victim.live())
	}
	// Inserting a second entry must evict the first and release its ref.
	c.PutRef(2, val(2, 150), nil)
	if victim.live() != 0 {
		t.Fatalf("live = %d after eviction, want 0", victim.live())
	}
}

func TestPutRefReleasedOnReplace(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 1})
	old := &ctr{}
	c.PutRef(1, val(1, 100), old)
	c.PutRef(1, val(1, 100), nil) // same id: replaces, must release old
	if old.live() != 0 {
		t.Fatalf("live = %d after replace, want 0", old.live())
	}
}

func TestPutRefReleasedOnReset(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	refs := make([]*ctr, 10)
	for i := range refs {
		refs[i] = &ctr{}
		c.PutRef(int64(i), val(int64(i), 64), refs[i])
	}
	c.Reset()
	for i, r := range refs {
		if r.live() != 0 {
			t.Fatalf("ref %d live = %d after Reset, want 0", i, r.live())
		}
	}
}

func TestPutRefReleasedOnOversizeReject(t *testing.T) {
	c := New(Options{MaxBytes: 100, Shards: 1})
	r := &ctr{}
	c.PutRef(1, val(1, 5000), r) // larger than the budget: rejected
	if r.live() != 0 {
		t.Fatalf("live = %d after oversize reject, want 0", r.live())
	}
}

func TestClaimRefHitRetains(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 1})
	r := &ctr{}
	c.PutRef(1, val(1, 64), r)
	v, ref, fl := c.ClaimRef(1)
	if fl != nil || v == nil || ref == nil {
		t.Fatalf("ClaimRef hit = (%v, %v, %v)", v, ref, fl)
	}
	if r.live() != 2 {
		t.Fatalf("live = %d after hit, want 2 (entry + claimer)", r.live())
	}
	ref.Release()
	if r.live() != 1 {
		t.Fatalf("live = %d after claimer release, want 1", r.live())
	}
}

// TestCacheNeverReadsAfterRelease is the mutate-after-release canary on a
// real arena buffer: once the cache releases its reference (eviction), the
// buffer is poisoned — and the cache must no longer serve those bytes.
func TestCacheNeverReadsAfterRelease(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1})
	buf := bufarena.Get(200)
	for i := range buf.Bytes() {
		buf.Bytes()[i] = 0xAA
	}
	c.PutRef(1, buf.Bytes(), buf)
	got, ok := c.Get(1)
	if !ok || got[0] != 0xAA {
		t.Fatal("entry not served before eviction")
	}
	// Evict id 1; the cache's reference was the last one, so the buffer is
	// poisoned at this instant. A cache that kept serving the old slice
	// would now hand out poison — assert it does not serve it at all.
	c.PutRef(2, val(2, 200), nil)
	if _, ok := c.Get(1); ok {
		t.Fatal("cache served an entry after releasing its buffer")
	}
	for i, b := range buf.Bytes() {
		if b != bufarena.Poison {
			t.Fatalf("byte %d = %#x, want poison: cache did not hold the last reference", i, b)
		}
	}
}

func TestDeliverRefHandsFollowersReferences(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 1})
	_, _, owner := c.ClaimRef(5)
	if owner == nil {
		t.Fatal("first claim did not open a flight")
	}
	const followers = 4
	var wg sync.WaitGroup
	r := &ctr{}
	start := make(chan struct{})
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v0, ref0, fl := c.ClaimRef(5)
			if fl == nil {
				// Late claim resolved as a plain hit; release the hit ref.
				if v0 == nil || ref0 == nil {
					t.Error("late hit without value/ref")
					return
				}
				ref0.Release()
				return
			}
			v, ref, err := fl.WaitRef()
			if err != nil || v == nil || ref == nil {
				t.Errorf("WaitRef = (%v, %v, %v)", v, ref, err)
				return
			}
			ref.Release()
		}()
	}
	close(start)
	// Give the followers a moment to coalesce, then deliver.
	owner.DeliverRef(val(5, 64), r)
	wg.Wait()
	// Whatever mix of followers vs late hits occurred, every handed-out
	// reference was released above, so only the cache entry's remains.
	if r.live() != 1 {
		t.Fatalf("live = %d after all consumers released, want 1 (cache entry)", r.live())
	}
}
