package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// val returns a distinguishable payload of the given size for id.
func val(id int64, size int) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(id) + byte(i)
	}
	return b
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"", LRU, false},
		{"lru", LRU, false},
		{"fifo", FIFO, false},
		{"clock", Clock, false},
		{"LRU", 0, true},
		{"random", 0, true},
	}
	for _, tc := range cases {
		got, err := ParsePolicy(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePolicy(%q): want error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, p := range []Policy{LRU, FIFO, Clock} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
}

func TestGetPutAndStats(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	if _, ok := c.Get(7); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, val(7, 100))
	got, ok := c.Get(7)
	if !ok || len(got) != 100 || got[0] != val(7, 100)[0] {
		t.Fatalf("Get(7) = %v, %v after Put", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry, 100 bytes", st)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

// TestByteBudgetBound proves occupancy never exceeds the budget under a
// stream of inserts, for every policy.
func TestByteBudgetBound(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, Clock} {
		t.Run(pol.String(), func(t *testing.T) {
			const budget = 4096
			c := New(Options{MaxBytes: budget, Shards: 4, Policy: pol})
			for id := int64(0); id < 500; id++ {
				c.Put(id, val(id, 64))
				if b := c.Bytes(); b > budget {
					t.Fatalf("after Put(%d): %d bytes cached, budget %d", id, b, budget)
				}
			}
			if c.Stats().Evictions == 0 {
				t.Fatal("expected evictions under a 500x64B stream into a 4KiB budget")
			}
		})
	}
}

// TestOversizeEntrySkipped proves a value that cannot fit a shard budget is
// not cached and does not flush existing entries.
func TestOversizeEntrySkipped(t *testing.T) {
	c := New(Options{MaxBytes: 1000, Shards: 1})
	c.Put(1, val(1, 100))
	c.Put(2, val(2, 5000)) // larger than the whole budget
	if _, ok := c.Get(2); ok {
		t.Fatal("oversize entry was cached")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("oversize Put flushed an existing entry")
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("oversize Put caused evictions")
	}
}

// TestZeroBudget proves a zero-byte cache retains nothing but still
// coalesces concurrent fetches.
func TestZeroBudget(t *testing.T) {
	c := New(Options{MaxBytes: 0, Shards: 2})
	c.Put(1, val(1, 10))
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-budget cache retained an entry")
	}
	var fetches atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, err := c.GetOrFetch(42, func() ([]byte, error) {
				fetches.Add(1)
				return val(42, 10), nil
			})
			if err != nil || len(got) != 10 {
				t.Errorf("GetOrFetch: %v, %v", got, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	// All 8 run concurrently against one flight: at most a couple of
	// fetches (goroutines that claim after the flight completed re-fetch,
	// since nothing is retained), but coalescing must have collapsed most.
	if n := fetches.Load(); n > 8 || n < 1 {
		t.Fatalf("fetches = %d", n)
	}
}

// TestEvictionOrderLRU: touching an entry saves it; the coldest goes first.
func TestEvictionOrderLRU(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1, Policy: LRU})
	c.Put(1, val(1, 100))
	c.Put(2, val(2, 100))
	c.Put(3, val(3, 100))
	c.Get(1)              // 1 is now most recent; 2 is coldest
	c.Put(4, val(4, 100)) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	for _, id := range []int64{1, 3, 4} {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("LRU evicted %d, which was more recent than 2", id)
		}
	}
}

// TestEvictionOrderFIFO: use does not save an entry; insertion order rules.
func TestEvictionOrderFIFO(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1, Policy: FIFO})
	c.Put(1, val(1, 100))
	c.Put(2, val(2, 100))
	c.Put(3, val(3, 100))
	c.Get(1)              // does not matter under FIFO
	c.Put(4, val(4, 100)) // evicts 1, the oldest insert
	if _, ok := c.Get(1); ok {
		t.Fatal("FIFO kept the oldest insert despite a Get")
	}
	for _, id := range []int64{2, 3, 4} {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("FIFO evicted %d out of order", id)
		}
	}
}

// TestEvictionOrderClock: a referenced entry gets a second chance; an
// unreferenced one is evicted.
func TestEvictionOrderClock(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1, Policy: Clock})
	c.Put(1, val(1, 100))
	c.Put(2, val(2, 100))
	c.Put(3, val(3, 100))
	c.Get(1)              // sets 1's reference bit
	c.Put(4, val(4, 100)) // clock hand passes 1 (referenced), evicts 2
	if _, ok := c.Get(1); !ok {
		t.Fatal("clock evicted a referenced entry without a second chance")
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("clock kept the unreferenced eviction candidate")
	}
}

// TestCoalescing proves N concurrent misses for one id result in exactly
// one fetch, with the other N-1 counted as coalesced.
func TestCoalescing(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	const workers = 16
	var fetches atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := c.GetOrFetch(99, func() ([]byte, error) {
				fetches.Add(1)
				<-gate // hold the flight open until all workers have claimed
				return val(99, 50), nil
			})
			if err != nil || len(got) != 50 {
				t.Errorf("GetOrFetch: %v, %v", got, err)
			}
		}()
	}
	// Wait until every worker is either the leader (inside fetch) or a
	// follower (blocked in Wait): misses + coalesced == workers.
	for {
		st := c.Stats()
		if st.Misses+st.Coalesced == workers {
			break
		}
	}
	close(gate)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != workers-1 {
		t.Fatalf("stats = %+v; want 1 miss, %d coalesced", st, workers-1)
	}
	if _, ok := c.Get(99); !ok {
		t.Fatal("delivered value was not cached")
	}
}

// TestFlightFailure proves a fetch error reaches every coalesced waiter,
// nothing is cached, and the id can be fetched again afterwards.
func TestFlightFailure(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 1})
	boom := errors.New("boom")
	const workers = 8
	gate := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetOrFetch(5, func() ([]byte, error) {
				<-gate
				return nil, boom
			})
			errs <- err
		}()
	}
	for {
		st := c.Stats()
		if st.Misses+st.Coalesced == workers {
			break
		}
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter got %v, want boom", err)
		}
	}
	if _, ok := c.Get(5); ok {
		t.Fatal("failed fetch left a cached value")
	}
	// A later claim leads a fresh flight and can succeed.
	got, err := c.GetOrFetch(5, func() ([]byte, error) { return val(5, 10), nil })
	if err != nil || len(got) != 10 {
		t.Fatalf("retry after failure: %v, %v", got, err)
	}
}

// TestClaimBatchStyle exercises the leader/follower API the way the batch
// loaders use it: claim every id in the batch, fetch all leader misses,
// deliver them, and only then wait on the followers. A duplicated id in
// one batch must yield one leader and one follower — never a self-deadlock.
func TestClaimBatchStyle(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 4})
	c.Put(1, val(1, 10))
	ids := []int64{1, 2, 2, 3} // 1 is a hit; the duplicate 2 coalesces
	out := make([][]byte, len(ids))
	leaders := map[int]*Flight{}
	followers := map[int]*Flight{}
	for i, id := range ids {
		v, f := c.Claim(id)
		switch {
		case f == nil:
			out[i] = v
		case f.Leader():
			leaders[i] = f
		default:
			followers[i] = f
		}
	}
	if len(leaders) != 2 || len(followers) != 1 {
		t.Fatalf("leaders = %d, followers = %d; want 2 and 1", len(leaders), len(followers))
	}
	for i, f := range leaders {
		out[i] = val(ids[i], 20)
		f.Deliver(out[i])
	}
	for i, f := range followers {
		v, err := f.Wait()
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		out[i] = v
	}
	for i := range ids {
		if len(out[i]) == 0 {
			t.Fatalf("slot %d unfilled", i)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Coalesced != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 2 misses, 1 coalesced", st)
	}
}

// TestConcurrentMixedUse hammers the cache from many goroutines to flush
// out races (run with -race).
func TestConcurrentMixedUse(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 14, Shards: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := int64((w*17 + i) % 64)
				got, err := c.GetOrFetch(id, func() ([]byte, error) {
					if id%13 == 12 {
						return nil, fmt.Errorf("synthetic failure for %d", id)
					}
					return val(id, 32+int(id)), nil
				})
				if err == nil && len(got) != 32+int(id) {
					t.Errorf("id %d: got %d bytes", id, len(got))
				}
			}
		}(w)
	}
	wg.Wait()
	if b := c.Bytes(); b > 1<<14 {
		t.Fatalf("budget exceeded: %d", b)
	}
}

// recordingCounters captures Inc calls for counter-plumbing assertions.
type recordingCounters struct {
	mu sync.Mutex
	m  map[string]int64
}

func (r *recordingCounters) Inc(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[string]int64{}
	}
	r.m[name] += delta
}

func TestCountersSink(t *testing.T) {
	rc := &recordingCounters{}
	c := New(Options{MaxBytes: 150, Shards: 1, Counters: rc})
	c.Put(1, val(1, 100))
	c.Get(1)              // hit
	c.Get(2)              // miss
	c.Put(2, val(2, 100)) // evicts 1
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.m[CounterHits] != 1 || rc.m[CounterMisses] != 1 || rc.m[CounterEvictions] != 1 {
		t.Fatalf("counters = %v", rc.m)
	}
}
