// Package ddp implements the five-step distributed-data-parallel training
// loop of the paper's Fig. 1 — data loading, forward, backward, gradient
// aggregation, optimization — on top of the comm runtime, with the global
// shuffling DDStore exists to make cheap: every epoch the whole dataset is
// re-permuted across all ranks, not just within per-rank shards.
package ddp

import (
	"fmt"
)

// Split holds the train/validation/test partition of a dataset (the paper
// uses 80% / 10% / 10%). The partition is lazy: a seeded pseudorandom
// permutation of the ids is windowed into the three parts, so a Split costs
// O(1) memory regardless of dataset size.
type Split struct {
	Train IDs
	Val   IDs
	Test  IDs
}

// NewSplit partitions [0, total) deterministically: a seeded shuffle, then
// 80/10/10. Every rank computes the same split from the same seed.
func NewSplit(total int, seed uint64) Split {
	perm := NewPermutation(int64(total), seed^0xA5A5A5A5)
	nTrain := total * 8 / 10
	nVal := total / 10
	nTest := total - nTrain - nVal
	base := rangeIDs(total)
	return Split{
		Train: permView{base: base, perm: perm, off: 0, n: nTrain},
		Val:   permView{base: base, perm: perm, off: int64(nTrain), n: nVal},
		Test:  permView{base: base, perm: perm, off: int64(nTrain + nVal), n: nTest},
	}
}

// GlobalShuffleSampler deals out globally shuffled batches: each epoch the
// training ids are re-permuted with a seed shared by all ranks, and step s
// hands rank r the window
//
//	perm[(s*N + r)*B : (s*N + r + 1)*B]
//
// so the union over ranks of one step is a contiguous window of the global
// permutation — exactly the access pattern that makes PFF/CFF loading
// random and DDStore loading a batch of remote Gets. The permutation is a
// Feistel network (see Permutation), so no rank materializes it.
type GlobalShuffleSampler struct {
	ids        IDs
	seed       uint64
	worldSize  int
	rank       int
	localBatch int

	epoch int
	perm  Permutation
}

// NewGlobalShuffleSampler creates a sampler for one rank.
func NewGlobalShuffleSampler(ids IDs, seed uint64, worldSize, rank, localBatch int) (*GlobalShuffleSampler, error) {
	if localBatch <= 0 {
		return nil, fmt.Errorf("ddp: local batch %d must be positive", localBatch)
	}
	if rank < 0 || rank >= worldSize {
		return nil, fmt.Errorf("ddp: rank %d out of range [0,%d)", rank, worldSize)
	}
	if ids.Len() < worldSize*localBatch {
		return nil, fmt.Errorf("ddp: %d training samples cannot fill one global batch of %d×%d",
			ids.Len(), worldSize, localBatch)
	}
	return &GlobalShuffleSampler{
		ids:        ids,
		seed:       seed,
		worldSize:  worldSize,
		rank:       rank,
		localBatch: localBatch,
		epoch:      -1,
	}, nil
}

// StepsPerEpoch returns how many full global batches one epoch yields.
func (s *GlobalShuffleSampler) StepsPerEpoch() int {
	return s.ids.Len() / (s.worldSize * s.localBatch)
}

// SetEpoch re-shuffles for the given epoch. All ranks derive the identical
// permutation from (seed, epoch).
func (s *GlobalShuffleSampler) SetEpoch(epoch int) {
	if s.epoch == epoch {
		return
	}
	s.epoch = epoch
	s.perm = NewPermutation(int64(s.ids.Len()), s.seed+uint64(epoch)*0x9E3779B97F4A7C15)
}

// Batch returns this rank's sample ids for the given step of the current
// epoch.
func (s *GlobalShuffleSampler) Batch(step int) ([]int64, error) {
	if s.epoch < 0 {
		return nil, fmt.Errorf("ddp: SetEpoch not called")
	}
	if step < 0 || step >= s.StepsPerEpoch() {
		return nil, fmt.Errorf("ddp: step %d out of range [0,%d)", step, s.StepsPerEpoch())
	}
	start := int64(step*s.worldSize+s.rank) * int64(s.localBatch)
	out := make([]int64, s.localBatch)
	for j := range out {
		out[j] = s.ids.At(int(s.perm.Apply(start + int64(j))))
	}
	return out, nil
}

// ShardFor returns the contiguous shard of ids assigned to rank for
// evaluation (validation/test): a plain balanced split, no shuffling.
func ShardFor(ids IDs, worldSize, rank int) IDs {
	per := ids.Len() / worldSize
	rem := ids.Len() % worldSize
	lo := rank*per + min(rank, rem)
	hi := lo + per
	if rank < rem {
		hi++
	}
	return subView{base: ids, off: lo, nn: hi - lo}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LocalShuffleSampler implements the conventional "data sharding with local
// shuffling" scheme the paper's §2.2 contrasts DDStore against: the
// training ids are split once into per-rank shards, and each epoch only
// shuffles *within* the rank's own shard. No cross-rank data movement is
// ever needed — but samples never mix across ranks, the model-generality
// problem that motivates global shuffling, and changing the rank count
// forces a full re-shard.
type LocalShuffleSampler struct {
	shard      IDs
	seed       uint64
	localBatch int

	epoch int
	perm  Permutation
}

// NewLocalShuffleSampler creates the sampler for one rank: its shard is the
// balanced contiguous slice of ids.
func NewLocalShuffleSampler(ids IDs, seed uint64, worldSize, rank, localBatch int) (*LocalShuffleSampler, error) {
	if localBatch <= 0 {
		return nil, fmt.Errorf("ddp: local batch %d must be positive", localBatch)
	}
	if rank < 0 || rank >= worldSize {
		return nil, fmt.Errorf("ddp: rank %d out of range [0,%d)", rank, worldSize)
	}
	shard := ShardFor(ids, worldSize, rank)
	if shard.Len() < localBatch {
		return nil, fmt.Errorf("ddp: shard of %d samples cannot fill a batch of %d", shard.Len(), localBatch)
	}
	return &LocalShuffleSampler{
		shard:      shard,
		seed:       seed,
		localBatch: localBatch,
		epoch:      -1,
	}, nil
}

// StepsPerEpoch returns how many local batches one epoch yields.
func (s *LocalShuffleSampler) StepsPerEpoch() int { return s.shard.Len() / s.localBatch }

// SetEpoch re-shuffles the local shard for the given epoch.
func (s *LocalShuffleSampler) SetEpoch(epoch int) {
	if s.epoch == epoch {
		return
	}
	s.epoch = epoch
	s.perm = NewPermutation(int64(s.shard.Len()), s.seed+uint64(epoch)*0x9E3779B97F4A7C15+0x1234)
}

// Batch returns this rank's sample ids for the given step.
func (s *LocalShuffleSampler) Batch(step int) ([]int64, error) {
	if s.epoch < 0 {
		return nil, fmt.Errorf("ddp: SetEpoch not called")
	}
	if step < 0 || step >= s.StepsPerEpoch() {
		return nil, fmt.Errorf("ddp: step %d out of range [0,%d)", step, s.StepsPerEpoch())
	}
	out := make([]int64, s.localBatch)
	base := int64(step * s.localBatch)
	for j := range out {
		out[j] = s.shard.At(int(s.perm.Apply(base + int64(j))))
	}
	return out, nil
}
