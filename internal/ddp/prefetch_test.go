package ddp

import (
	"sync/atomic"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
)

// slowLoader wraps a SourceLoader with an artificial delay and a call
// counter.
type slowLoader struct {
	inner Loader
	delay time.Duration
	calls atomic.Int64
}

func (s *slowLoader) Len() int { return s.inner.Len() }

func (s *slowLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	s.calls.Add(1)
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.inner.LoadBatch(ids)
}

func newSlowLoader(t *testing.T, n int, delay time.Duration) *slowLoader {
	t.Helper()
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: n})
	return &slowLoader{inner: &SourceLoader{Source: ds}, delay: delay}
}

func TestPrefetchDeliversEnqueuedBatches(t *testing.T) {
	inner := newSlowLoader(t, 100, 0)
	p := NewPrefetchLoader(inner, 2)
	defer p.Close()
	if p.Len() != 100 {
		t.Fatalf("Len = %d", p.Len())
	}
	batches := [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for _, b := range batches {
		p.Enqueue(b)
	}
	for _, want := range batches {
		graphs, _, err := p.LoadBatch(want)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range graphs {
			if g.ID != want[i] {
				t.Fatalf("got id %d want %d", g.ID, want[i])
			}
		}
	}
	// All three served by the worker, no synchronous fallbacks.
	if got := inner.calls.Load(); got != 3 {
		t.Fatalf("inner called %d times, want 3", got)
	}
}

func TestPrefetchSynchronousWhenNothingEnqueued(t *testing.T) {
	inner := newSlowLoader(t, 50, 0)
	p := NewPrefetchLoader(inner, 1)
	defer p.Close()
	graphs, _, err := p.LoadBatch([]int64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 2 || graphs[0].ID != 5 {
		t.Fatal("synchronous fallback wrong")
	}
}

func TestPrefetchOutOfOrderFallsBack(t *testing.T) {
	inner := newSlowLoader(t, 50, 0)
	p := NewPrefetchLoader(inner, 1)
	defer p.Close()
	p.Enqueue([]int64{1, 2})
	graphs, _, err := p.LoadBatch([]int64{9, 10}) // mismatched request
	if err != nil {
		t.Fatal(err)
	}
	if graphs[0].ID != 9 || graphs[1].ID != 10 {
		t.Fatal("fallback returned wrong batch")
	}
}

func TestPrefetchOverlapsLoading(t *testing.T) {
	const delay = 20 * time.Millisecond
	inner := newSlowLoader(t, 50, delay)
	p := NewPrefetchLoader(inner, 2)
	defer p.Close()
	p.Enqueue([]int64{1})
	p.Enqueue([]int64{2})
	time.Sleep(3 * delay) // let the worker finish both
	start := time.Now()
	if _, _, err := p.LoadBatch([]int64{1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.LoadBatch([]int64{2}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > delay {
		t.Fatalf("prefetched batches took %v, want ~0 (already loaded)", elapsed)
	}
}

// TestPrefetchMismatchDrainsOutstanding hammers the out-of-order path: a
// stream of Enqueue/LoadBatch pairs whose ids never match must drain the
// outstanding counter (each mismatched result is stashed for a request
// that never comes, and the capped stash evicts the old ones), leave no
// results queued, and never wedge a Close behind a stuck worker.
func TestPrefetchMismatchDrainsOutstanding(t *testing.T) {
	inner := newSlowLoader(t, 100, 0)
	p := NewPrefetchLoader(inner, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 20; i++ {
			p.Enqueue([]int64{i})
			// Always request different ids than were enqueued.
			graphs, _, err := p.LoadBatch([]int64{50 + i})
			if err != nil {
				t.Errorf("mismatched load %d: %v", i, err)
				return
			}
			if len(graphs) != 1 || graphs[0].ID != 50+i {
				t.Errorf("mismatched load %d returned wrong batch", i)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("mismatched enqueue/load stream deadlocked")
	}
	if t.Failed() {
		return
	}
	if n := p.outstanding.Load(); n != 0 {
		t.Fatalf("outstanding = %d after draining every mismatch, want 0", n)
	}

	// Refill the queue to capacity and abandon it: Close must still return
	// promptly, and the loader must stay safe to use for synchronous loads.
	p.Enqueue([]int64{1})
	p.Enqueue([]int64{2})
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked behind abandoned prefetched batches")
	}
}

// TestPrefetchOutOfOrderNoCascade is the regression test for the
// out-of-order cascade: requesting enqueued batches in a different order
// than they were enqueued must serve every one from the prefetch worker
// (mismatched arrivals are stashed and served when their request comes),
// not degrade all later batches to synchronous loads.
func TestPrefetchOutOfOrderNoCascade(t *testing.T) {
	inner := newSlowLoader(t, 100, 0)
	p := NewPrefetchLoader(inner, 4)
	defer p.Close()
	batches := [][]int64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	for _, b := range batches {
		p.Enqueue(b)
	}
	// Request in scrambled order: 3,4 first forces 1,2 into the stash; the
	// remaining requests hit either the stash or the worker directly.
	for _, want := range [][]int64{{3, 4}, {1, 2}, {7, 8}, {5, 6}} {
		graphs, _, err := p.LoadBatch(want)
		if err != nil {
			t.Fatal(err)
		}
		if len(graphs) != len(want) {
			t.Fatalf("got %d graphs want %d", len(graphs), len(want))
		}
		for i, g := range graphs {
			if g.ID != want[i] {
				t.Fatalf("got id %d want %d", g.ID, want[i])
			}
		}
	}
	// Every batch came from the worker's four loads — the old code would
	// have discarded the mismatches and paid synchronous fallbacks.
	if got := inner.calls.Load(); got != 4 {
		t.Fatalf("inner called %d times, want 4 (no synchronous fallbacks)", got)
	}
	if n := p.outstanding.Load(); n != 0 {
		t.Fatalf("outstanding = %d, want 0", n)
	}
	if len(p.pending) != 0 {
		t.Fatalf("pending stash has %d entries, want 0", len(p.pending))
	}
}

func TestPrefetchCloseIdempotent(t *testing.T) {
	p := NewPrefetchLoader(newSlowLoader(t, 10, 0), 1)
	p.Close()
	p.Close()
	p.Enqueue([]int64{1}) // must not block or panic after Close
}
