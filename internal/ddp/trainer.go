package ddp

import (
	"fmt"
	"time"

	"ddstore/internal/comm"
	"ddstore/internal/graph"
	"ddstore/internal/hydra"
	"ddstore/internal/obs"
	"ddstore/internal/optim"
	"ddstore/internal/trace"
)

// Config configures one rank's participation in a DDP training run. All
// ranks must pass identical values (except Loader, which is per-rank
// state).
type Config struct {
	// Loader produces batches for this rank.
	Loader Loader
	// LocalBatch is the per-GPU batch size (the paper uses 128).
	LocalBatch int
	// Epochs to train.
	Epochs int
	// MaxStepsPerEpoch truncates long epochs (0 = no limit) so at-scale
	// simulations stay cheap; throughput metrics use executed steps only.
	MaxStepsPerEpoch int
	// Seed drives the split and the per-epoch global shuffles.
	Seed uint64
	// LocalShuffle switches from DDStore's global shuffling to the
	// conventional sharding-with-local-shuffling baseline of §2.2: each
	// rank only ever samples its own contiguous shard. Data loading becomes
	// all-local, but samples never mix across ranks.
	LocalShuffle bool

	// Model, when set, is trained for real: forward/backward/optimizer math
	// runs and gradients are allreduced (the convergence experiment).
	Model *hydra.Model
	// LR is the initial learning rate for the real model (paper: 1e-3).
	LR float64
	// Plateau, when true, attaches a ReduceLROnPlateau(0.5, patience 10)
	// scheduler driven by validation loss.
	Plateau bool
	// Eval, when true, computes validation/test losses each epoch (real
	// model only).
	Eval bool

	// SimModel describes the model for simulated compute: only its flop and
	// parameter-count estimates are used, no weights are allocated. Ignored
	// when Model is set.
	SimModel hydra.Config

	// Profiler receives per-region timings (virtual time). Optional.
	Profiler *trace.Profiler
	// KeepLatencies retains every per-sample load latency in the result
	// (for the CDF experiments).
	KeepLatencies bool
	// Spans, when set, receives one span per training-loop stage per step
	// (load, batch, forward, backward, comm, optimizer) on this rank's
	// timeline, for the Chrome trace export. Per-rank state.
	Spans *obs.SpanRing
	// Telemetry, when set, gathers this rank's profiler snapshot to rank 0
	// after every epoch over a cost-free collective. Either every rank of
	// the run sets it or none — the gather is collective. Requires
	// Profiler. Per-rank state.
	Telemetry *obs.Telemetry
}

// EpochStats summarizes one epoch on this rank.
type EpochStats struct {
	Epoch      int
	TrainLoss  float64 // globally averaged (real model only)
	ValLoss    float64
	TestLoss   float64
	Steps      int
	Samples    int           // global samples consumed this epoch
	Duration   time.Duration // virtual wall time of the epoch (synchronized)
	Throughput float64       // global samples per virtual second
	LRDecayed  bool          // scheduler fired at the end of this epoch
}

// Result is one rank's view of the run. Epoch-level numbers are identical
// on every rank (they are produced by collectives).
type Result struct {
	Epochs    []EpochStats
	Latencies []time.Duration // per-sample load latencies, if requested
	// TotalDuration is the synchronized virtual time of the whole run.
	TotalDuration time.Duration
	// MeanThroughput is the global samples/sec over all epochs.
	MeanThroughput float64
	// Telemetry is the cluster-wide time-share and skew report, assembled
	// from the per-epoch gathers. Rank 0 only (nil elsewhere, and nil when
	// Config.Telemetry was not set).
	Telemetry *obs.ClusterTelemetry
}

// Run executes the training loop on this rank. Call it from every rank of
// the communicator (inside World.Run).
func Run(c *comm.Comm, cfg Config) (*Result, error) {
	if cfg.Loader == nil {
		return nil, fmt.Errorf("ddp: no loader")
	}
	if cfg.LocalBatch <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("ddp: batch %d and epochs %d must be positive", cfg.LocalBatch, cfg.Epochs)
	}
	split := NewSplit(cfg.Loader.Len(), cfg.Seed)
	var sampler interface {
		StepsPerEpoch() int
		SetEpoch(int)
		Batch(int) ([]int64, error)
	}
	var err error
	if cfg.LocalShuffle {
		sampler, err = NewLocalShuffleSampler(split.Train, cfg.Seed, c.Size(), c.Rank(), cfg.LocalBatch)
	} else {
		sampler, err = NewGlobalShuffleSampler(split.Train, cfg.Seed, c.Size(), c.Rank(), cfg.LocalBatch)
	}
	if err != nil {
		return nil, err
	}

	var opt *optim.AdamW
	var sched *optim.ReduceLROnPlateau
	gradBytes := int64(hydra.ParamCount(cfg.SimModel)) * 4
	params := 0
	if cfg.Model != nil {
		lr := cfg.LR
		if lr == 0 {
			lr = 1e-3
		}
		opt = optim.NewAdamW(cfg.Model.Params(), lr)
		if cfg.Plateau {
			sched = optim.NewReduceLROnPlateau(opt, 0.5, 10)
		}
		gradBytes = cfg.Model.GradBytes()
		params = cfg.Model.NumParams()
	} else {
		params = hydra.ParamCount(cfg.SimModel)
	}

	res := &Result{}
	prof := cfg.Profiler
	machine := c.Machine()
	clock := c.Clock()

	// gpuDone tracks this rank's GPU-stream completion time of the previous
	// step (virtual). The rank clock itself is the CPU/loader timeline.
	var gpuDone time.Duration
	var gradBuf []float32
	runStart := clock.Now()

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		sampler.SetEpoch(epoch)
		steps := sampler.StepsPerEpoch()
		if cfg.MaxStepsPerEpoch > 0 && steps > cfg.MaxStepsPerEpoch {
			steps = cfg.MaxStepsPerEpoch
		}
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		epochStart := clock.Now()
		if gpuDone < epochStart {
			gpuDone = epochStart
		}
		var lossSum float64

		for step := 0; step < steps; step++ {
			if cfg.Spans != nil {
				cfg.Spans.SetContext(epoch, step)
			}
			ids, err := sampler.Batch(step)
			if err != nil {
				return nil, err
			}

			// --- CPU: load + batch (charges the rank clock). ---
			loadStart := clock.Now()
			graphs, lats, err := cfg.Loader.LoadBatch(ids)
			if err != nil {
				return nil, fmt.Errorf("ddp: rank %d step %d: %w", c.Rank(), step, err)
			}
			loadDone := clock.Now()
			if cfg.KeepLatencies && lats != nil {
				res.Latencies = append(res.Latencies, lats...)
			}
			batch, err := graph.NewBatch(graphs)
			if err != nil {
				return nil, err
			}
			if machine != nil {
				clock.Advance(machine.CPUBatch(len(graphs), batch.Bytes()))
			}
			cpuDone := clock.Now()
			if prof != nil {
				prof.Add(trace.RegionLoading, loadDone-loadStart)
				prof.Add(trace.RegionBatching, cpuDone-loadDone)
			}
			if cfg.Spans != nil {
				cfg.Spans.Record(obs.Span{Name: "load-batch", Cat: "train", Owner: -1,
					Samples: len(ids), Start: loadStart, Dur: loadDone - loadStart})
				cfg.Spans.Record(obs.Span{Name: "cpu-batch", Cat: "train", Owner: -1,
					Samples: len(ids), Bytes: batch.Bytes(), Start: loadDone, Dur: cpuDone - loadDone})
			}

			// --- GPU: forward + backward. ---
			var loss float64
			if cfg.Model != nil {
				opt.ZeroGrad()
				loss = cfg.Model.TrainStep(batch)
				lossSum += loss
			}
			var gpuCost time.Duration
			if machine != nil {
				flops := hydra.FlopsEstimate(cfg.SimModel, batch.NumNodes, batch.NumEdges(), batch.NumGraphs)
				if cfg.Model != nil {
					flops = cfg.Model.FlopsPerBatch(batch.NumNodes, batch.NumEdges(), batch.NumGraphs)
				}
				gpuCost = machine.GPUCompute(flops)
			}
			gpuStart := cpuDone
			if gpuDone > gpuStart {
				gpuStart = gpuDone
			}
			backwardDone := gpuStart + gpuCost
			if prof != nil {
				prof.Add(trace.RegionForward, gpuCost/3)
				prof.Add(trace.RegionBackward, gpuCost-gpuCost/3)
			}

			// --- Gradient aggregation (allreduce). The maximum across
			// ranks models the synchronization stall: a straggler's slow
			// load delays everyone, which the paper identifies as the main
			// source of GPU-Comm time for PFF/CFF. ---
			if cfg.Model != nil {
				gradBuf = cfg.Model.FlattenGrads(gradBuf)
				if err := c.AllreduceFloat32(gradBuf, comm.OpSum); err != nil {
					return nil, err
				}
				cfg.Model.UnflattenGrads(gradBuf, 1/float32(c.Size()))
			}
			globalDone := backwardDone
			if c.Size() > 1 {
				maxv, err := c.Allreduce([]float64{backwardDone.Seconds()}, comm.OpMax)
				if err != nil {
					return nil, err
				}
				globalDone = time.Duration(maxv[0] * float64(time.Second))
			}
			var arCost, optCost time.Duration
			if machine != nil {
				arCost = machine.Allreduce(gradBytes, c.Size())
				optCost = machine.OptimizerStep(params)
			}
			commDone := globalDone + arCost
			if prof != nil {
				prof.Add(trace.RegionComm, commDone-backwardDone)
				prof.Add(trace.RegionOptimizer, optCost)
			}
			if cfg.Model != nil {
				opt.Step()
			}
			gpuDone = commDone + optCost
			if cfg.Spans != nil {
				fwdDone := gpuStart + gpuCost/3
				cfg.Spans.Record(obs.Span{Name: "gpu-forward", Cat: "gpu", Owner: -1,
					Samples: len(ids), Start: gpuStart, Dur: fwdDone - gpuStart})
				cfg.Spans.Record(obs.Span{Name: "gpu-backward", Cat: "gpu", Owner: -1,
					Samples: len(ids), Start: fwdDone, Dur: backwardDone - fwdDone})
				cfg.Spans.Record(obs.Span{Name: "gpu-comm", Cat: "gpu", Owner: -1,
					Bytes: gradBytes, Start: backwardDone, Dur: commDone - backwardDone})
				cfg.Spans.Record(obs.Span{Name: "optimizer", Cat: "gpu", Owner: -1,
					Start: commDone, Dur: optCost})
			}

			// The CPU may prefetch the next batch as soon as the GPU starts
			// consuming this one (queue depth 1): wait until then, not until
			// the whole step completes.
			clock.AdvanceTo(gpuStart)
		}

		// Epoch boundary: everyone drains to the last step's completion.
		clock.AdvanceTo(gpuDone)
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		epochEnd := clock.Now()

		st := EpochStats{
			Epoch:   epoch,
			Steps:   steps,
			Samples: steps * cfg.LocalBatch * c.Size(),
		}
		st.Duration = epochEnd - epochStart
		if st.Duration > 0 {
			st.Throughput = float64(st.Samples) / st.Duration.Seconds()
		}
		if cfg.Model != nil && steps > 0 {
			// Average the local mean losses across ranks.
			sum, err := c.Allreduce([]float64{lossSum / float64(steps)}, comm.OpSum)
			if err != nil {
				return nil, err
			}
			st.TrainLoss = sum[0] / float64(c.Size())
			if cfg.Eval {
				if st.ValLoss, err = evalShard(c, cfg, split.Val); err != nil {
					return nil, err
				}
				if st.TestLoss, err = evalShard(c, cfg, split.Test); err != nil {
					return nil, err
				}
				if sched != nil {
					st.LRDecayed = sched.Step(st.ValLoss)
				}
			}
		}
		res.Epochs = append(res.Epochs, st)

		// Telemetry rides right behind the epoch barrier: the clocks are
		// already aligned, so the cost-free gather perturbs nothing.
		if cfg.Telemetry != nil {
			if err := cfg.Telemetry.GatherEpoch(epoch); err != nil {
				return nil, err
			}
		}
	}
	res.TotalDuration = clock.Now() - runStart
	res.Telemetry = cfg.Telemetry.Report()
	var totalSamples int
	for _, e := range res.Epochs {
		totalSamples += e.Samples
	}
	if res.TotalDuration > 0 {
		res.MeanThroughput = float64(totalSamples) / res.TotalDuration.Seconds()
	}
	return res, nil
}

// evalShard computes the global average loss over the given ids: each rank
// evaluates its shard in eval-batch chunks, then losses are averaged by
// sample count.
func evalShard(c *comm.Comm, cfg Config, ids IDs) (float64, error) {
	shard := ShardFor(ids, c.Size(), c.Rank())
	var lossSum float64
	var count int
	batchIDs := make([]int64, 0, cfg.LocalBatch)
	for lo := 0; lo < shard.Len(); lo += cfg.LocalBatch {
		hi := lo + cfg.LocalBatch
		if hi > shard.Len() {
			hi = shard.Len()
		}
		batchIDs = batchIDs[:0]
		for i := lo; i < hi; i++ {
			batchIDs = append(batchIDs, shard.At(i))
		}
		graphs, _, err := cfg.Loader.LoadBatch(batchIDs)
		if err != nil {
			return 0, err
		}
		batch, err := graph.NewBatch(graphs)
		if err != nil {
			return 0, err
		}
		lossSum += cfg.Model.EvalLoss(batch) * float64(hi-lo)
		count += hi - lo
	}
	out, err := c.Allreduce([]float64{lossSum, float64(count)}, comm.OpSum)
	if err != nil {
		return 0, err
	}
	if out[1] == 0 {
		return 0, nil
	}
	return out[0] / out[1], nil
}
