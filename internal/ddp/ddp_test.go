package ddp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/hydra"
	"ddstore/internal/obs"
	"ddstore/internal/pff"
	"ddstore/internal/pfs"
	"ddstore/internal/trace"
)

func TestNewSplitProportions(t *testing.T) {
	s := NewSplit(1000, 1)
	if s.Train.Len() != 800 || s.Val.Len() != 100 || s.Test.Len() != 100 {
		t.Fatalf("split sizes %d/%d/%d", s.Train.Len(), s.Val.Len(), s.Test.Len())
	}
	seen := map[int64]bool{}
	for _, part := range []IDs{s.Train, s.Val, s.Test} {
		for _, id := range Collect(part) {
			if id < 0 || id >= 1000 || seen[id] {
				t.Fatalf("id %d invalid or in two partitions", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("split covers %d ids", len(seen))
	}
}

func TestNewSplitDeterministic(t *testing.T) {
	a, b := NewSplit(100, 7), NewSplit(100, 7)
	at, bt := Collect(a.Train), Collect(b.Train)
	for i := range at {
		if at[i] != bt[i] {
			t.Fatal("same-seed splits differ")
		}
	}
	ct := Collect(NewSplit(100, 8).Train)
	same := true
	for i := range at {
		if at[i] != ct[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical split")
	}
}

func TestSamplerValidation(t *testing.T) {
	ids := make([]int64, 100)
	if _, err := NewGlobalShuffleSampler(SliceIDs(ids), 1, 4, 0, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewGlobalShuffleSampler(SliceIDs(ids), 1, 4, 4, 8); err == nil {
		t.Fatal("bad rank accepted")
	}
	if _, err := NewGlobalShuffleSampler(SliceIDs(ids), 1, 4, 0, 100); err == nil {
		t.Fatal("dataset smaller than one global batch accepted")
	}
}

func TestSamplerBatchRequiresEpoch(t *testing.T) {
	ids := make([]int64, 64)
	s, err := NewGlobalShuffleSampler(SliceIDs(ids), 1, 2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Batch(0); err == nil {
		t.Fatal("Batch before SetEpoch accepted")
	}
}

func TestSamplerGlobalBatchesDisjointAndCovering(t *testing.T) {
	// Across all ranks and steps of one epoch, batches partition a prefix
	// of the global permutation.
	total := 97
	ids := make([]int64, total)
	for i := range ids {
		ids[i] = int64(i * 3) // arbitrary distinct ids
	}
	const world, localBatch = 4, 4
	samplers := make([]*GlobalShuffleSampler, world)
	for r := range samplers {
		s, err := NewGlobalShuffleSampler(SliceIDs(ids), 5, world, r, localBatch)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(2)
		samplers[r] = s
	}
	steps := samplers[0].StepsPerEpoch()
	if steps != total/(world*localBatch) {
		t.Fatalf("StepsPerEpoch = %d", steps)
	}
	seen := map[int64]bool{}
	for step := 0; step < steps; step++ {
		for r := range samplers {
			batch, err := samplers[r].Batch(step)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != localBatch {
				t.Fatalf("batch size %d", len(batch))
			}
			for _, id := range batch {
				if seen[id] {
					t.Fatalf("id %d appeared twice in one epoch", id)
				}
				seen[id] = true
			}
		}
	}
	if len(seen) != steps*world*localBatch {
		t.Fatalf("epoch covered %d ids", len(seen))
	}
}

func TestSamplerReshufflesAcrossEpochs(t *testing.T) {
	ids := make([]int64, 256)
	for i := range ids {
		ids[i] = int64(i)
	}
	s, err := NewGlobalShuffleSampler(SliceIDs(ids), 9, 1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEpoch(0)
	b0, _ := s.Batch(0)
	first := append([]int64(nil), b0...)
	s.SetEpoch(1)
	b1, _ := s.Batch(0)
	same := true
	for i := range first {
		if first[i] != b1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epoch 1 batch identical to epoch 0 (no global reshuffle)")
	}
}

func TestSamplerPermutationProperty(t *testing.T) {
	f := func(seed uint64, rawEpoch uint8) bool {
		ids := make([]int64, 60)
		for i := range ids {
			ids[i] = int64(i + 1000)
		}
		s, err := NewGlobalShuffleSampler(SliceIDs(ids), seed, 3, 1, 5)
		if err != nil {
			return false
		}
		s.SetEpoch(int(rawEpoch))
		// The rank's batches must draw from the original id set without
		// duplicates within the epoch window.
		seen := map[int64]bool{}
		for step := 0; step < s.StepsPerEpoch(); step++ {
			b, err := s.Batch(step)
			if err != nil {
				return false
			}
			for _, id := range b {
				if id < 1000 || id >= 1060 || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShardForCoversAll(t *testing.T) {
	ids := make([]int64, 23)
	for i := range ids {
		ids[i] = int64(i)
	}
	seen := map[int64]bool{}
	for r := 0; r < 5; r++ {
		for _, id := range Collect(ShardFor(SliceIDs(ids), 5, r)) {
			if seen[id] {
				t.Fatalf("id %d in two shards", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 23 {
		t.Fatalf("shards cover %d ids", len(seen))
	}
}

// runTraining runs a DDP training over a fresh world and returns rank 0's
// result plus the merged profiler.
func runTraining(t *testing.T, n int, machine *cluster.Machine, mk func(c *comm.Comm) (Config, error)) (*Result, *trace.Profiler) {
	t.Helper()
	var opts []comm.Option
	if machine != nil {
		opts = append(opts, comm.WithMachine(machine))
	}
	w, err := comm.NewWorld(n, 77, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	merged := trace.New()
	var mu sync.Mutex
	err = w.Run(func(c *comm.Comm) error {
		cfg, err := mk(c)
		if err != nil {
			return err
		}
		prof := trace.New()
		cfg.Profiler = prof
		r, err := Run(c, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		merged.Merge(prof)
		if c.Rank() == 0 {
			res = r
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, merged
}

func TestSimTrainingDDStoreVsPFF(t *testing.T) {
	// The headline comparison at small scale: DDStore's end-to-end
	// throughput must beat PFF's on the same workload.
	machine := cluster.Perlmutter()
	const n = 8
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 4000})
	simCfg := hydra.PaperConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim())

	base := Config{
		LocalBatch:       16,
		Epochs:           2,
		MaxStepsPerEpoch: 6,
		Seed:             3,
		SimModel:         simCfg,
	}

	ddstoreRes, prof := runTraining(t, n, machine, func(c *comm.Comm) (Config, error) {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return Config{}, err
		}
		cfg := base
		cfg.Loader = &PlaneLoader{Plane: st}
		return cfg, nil
	})
	if prof.Get(trace.RegionLoading).Count == 0 || prof.Get(trace.RegionComm).Count == 0 {
		t.Fatal("profiler regions missing")
	}

	fs := pfs.New(machine, n)
	sizes, err := pff.RegisterSim(fs, ds)
	if err != nil {
		t.Fatal(err)
	}
	pffRes, _ := runTraining(t, n, machine, func(c *comm.Comm) (Config, error) {
		cfg := base
		cfg.Loader = &SourceLoader{Source: pff.NewSim(fs, ds, sizes, c.Clock(), c.RNG())}
		return cfg, nil
	})

	if ddstoreRes.MeanThroughput <= pffRes.MeanThroughput {
		t.Fatalf("DDStore throughput %.1f <= PFF %.1f samples/s",
			ddstoreRes.MeanThroughput, pffRes.MeanThroughput)
	}
	// The paper reports ≥2.9× on average; at this small scale require >1.5×.
	if ddstoreRes.MeanThroughput < 1.5*pffRes.MeanThroughput {
		t.Fatalf("DDStore speedup only %.2fx over PFF",
			ddstoreRes.MeanThroughput/pffRes.MeanThroughput)
	}
}

func TestSimTrainingKeepsLatencies(t *testing.T) {
	machine := cluster.Perlmutter()
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 1000})
	res, _ := runTraining(t, 4, machine, func(c *comm.Comm) (Config, error) {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return Config{}, err
		}
		return Config{
			Loader:           &PlaneLoader{Plane: st},
			LocalBatch:       8,
			Epochs:           1,
			MaxStepsPerEpoch: 4,
			Seed:             3,
			SimModel:         hydra.PaperConfig(3, 0, 1),
			KeepLatencies:    true,
		}, nil
	})
	if len(res.Latencies) != 4*8 {
		t.Fatalf("kept %d latencies, want 32", len(res.Latencies))
	}
	for _, l := range res.Latencies {
		if l <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestRealTrainingConvergesUnderDDP(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 400})
	small := hydra.Config{
		NodeFeatDim: ds.NodeFeatDim(),
		EdgeFeatDim: ds.EdgeFeatDim(),
		HiddenDim:   16,
		ConvLayers:  2,
		FCLayers:    1,
		OutputDim:   ds.OutputDim(),
		Seed:        5,
	}
	res, _ := runTraining(t, 4, nil, func(c *comm.Comm) (Config, error) {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return Config{}, err
		}
		return Config{
			Loader:     &PlaneLoader{Plane: st},
			LocalBatch: 8,
			Epochs:     6,
			Seed:       3,
			Model:      hydra.New(small),
			LR:         1e-3,
			Eval:       true,
		}, nil
	})
	first := res.Epochs[0].TrainLoss
	last := res.Epochs[len(res.Epochs)-1].TrainLoss
	if !(last < first) {
		t.Fatalf("DDP training loss did not improve: %v -> %v", first, last)
	}
	for _, e := range res.Epochs {
		if e.ValLoss <= 0 || e.TestLoss <= 0 {
			t.Fatalf("epoch %d missing eval losses: %+v", e.Epoch, e)
		}
	}
}

func TestTrainLossIdenticalAcrossRanks(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	small := hydra.Config{
		NodeFeatDim: ds.NodeFeatDim(), HiddenDim: 8, ConvLayers: 1, FCLayers: 1,
		OutputDim: ds.OutputDim(), Seed: 5,
	}
	w, err := comm.NewWorld(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	losses := make([]float64, 3)
	err = w.Run(func(c *comm.Comm) error {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return err
		}
		res, err := Run(c, Config{
			Loader:     &PlaneLoader{Plane: st},
			LocalBatch: 4,
			Epochs:     2,
			Seed:       3,
			Model:      hydra.New(small),
		})
		if err != nil {
			return err
		}
		losses[c.Rank()] = res.Epochs[1].TrainLoss
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[0] != losses[1] || losses[1] != losses[2] {
		t.Fatalf("per-rank train losses diverge: %v", losses)
	}
}

func TestRunValidation(t *testing.T) {
	w, err := comm.NewWorld(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		if _, err := Run(c, Config{}); err == nil {
			return fmt.Errorf("empty config accepted")
		}
		ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return err
		}
		if _, err := Run(c, Config{Loader: &PlaneLoader{Plane: st}, LocalBatch: 0, Epochs: 1}); err == nil {
			return fmt.Errorf("zero batch accepted")
		}
		if _, err := Run(c, Config{Loader: &PlaneLoader{Plane: st}, LocalBatch: 4, Epochs: 0}); err == nil {
			return fmt.Errorf("zero epochs accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestThroughputPositiveAndDeterministic(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 600})
	runOnce := func() float64 {
		res, _ := runTraining(t, 4, cluster.Summit(), func(c *comm.Comm) (Config, error) {
			st, err := core.Open(c, ds, core.Options{})
			if err != nil {
				return Config{}, err
			}
			return Config{
				Loader:           &PlaneLoader{Plane: st},
				LocalBatch:       8,
				Epochs:           2,
				MaxStepsPerEpoch: 3,
				Seed:             3,
				SimModel:         hydra.PaperConfig(3, 0, 1),
			}, nil
		})
		return res.MeanThroughput
	}
	a, b := runOnce(), runOnce()
	if a <= 0 {
		t.Fatalf("throughput %v", a)
	}
	if a != b {
		t.Fatalf("simulated training not deterministic: %v vs %v", a, b)
	}
}

func TestEpochDurationPositive(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 300})
	res, _ := runTraining(t, 2, cluster.Laptop(), func(c *comm.Comm) (Config, error) {
		st, err := core.Open(c, ds, core.Options{})
		if err != nil {
			return Config{}, err
		}
		return Config{
			Loader:     &PlaneLoader{Plane: st},
			LocalBatch: 4,
			Epochs:     2,
			Seed:       1,
			SimModel:   hydra.PaperConfig(3, 0, 1),
		}, nil
	})
	for _, e := range res.Epochs {
		if e.Duration <= 0 || e.Throughput <= 0 {
			t.Fatalf("epoch %d: %+v", e.Epoch, e)
		}
		if e.Samples != e.Steps*4*2 {
			t.Fatalf("epoch %d samples %d", e.Epoch, e.Samples)
		}
	}
	var want time.Duration
	for _, e := range res.Epochs {
		want += e.Duration
	}
	if res.TotalDuration < want {
		t.Fatalf("total %v < sum of epochs %v", res.TotalDuration, want)
	}
}

func TestLocalShuffleSamplerStaysInShard(t *testing.T) {
	ids := make([]int64, 100)
	for i := range ids {
		ids[i] = int64(i)
	}
	const world, batch = 4, 5
	for rank := 0; rank < world; rank++ {
		s, err := NewLocalShuffleSampler(SliceIDs(ids), 3, world, rank, batch)
		if err != nil {
			t.Fatal(err)
		}
		shard := map[int64]bool{}
		for _, id := range Collect(ShardFor(SliceIDs(ids), world, rank)) {
			shard[id] = true
		}
		s.SetEpoch(0)
		seen := map[int64]bool{}
		for step := 0; step < s.StepsPerEpoch(); step++ {
			b, err := s.Batch(step)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range b {
				if !shard[id] {
					t.Fatalf("rank %d batch contains foreign id %d", rank, id)
				}
				if seen[id] {
					t.Fatalf("rank %d repeated id %d within an epoch", rank, id)
				}
				seen[id] = true
			}
		}
	}
}

func TestLocalShuffleSamplerReshuffles(t *testing.T) {
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i)
	}
	s, err := NewLocalShuffleSampler(SliceIDs(ids), 3, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEpoch(0)
	b0, _ := s.Batch(0)
	e0 := append([]int64(nil), b0...)
	s.SetEpoch(1)
	b1, _ := s.Batch(0)
	same := true
	for i := range e0 {
		if e0[i] != b1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("local shuffle did not reshuffle across epochs")
	}
}

func TestLocalShuffleSamplerValidation(t *testing.T) {
	ids := make([]int64, 10)
	if _, err := NewLocalShuffleSampler(SliceIDs(ids), 1, 4, 0, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewLocalShuffleSampler(SliceIDs(ids), 1, 4, 7, 1); err == nil {
		t.Fatal("bad rank accepted")
	}
	if _, err := NewLocalShuffleSampler(SliceIDs(ids), 1, 4, 0, 100); err == nil {
		t.Fatal("oversized batch accepted")
	}
	s, err := NewLocalShuffleSampler(SliceIDs(ids), 1, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Batch(0); err == nil {
		t.Fatal("Batch before SetEpoch accepted")
	}
}

func TestLocalShuffleTrainingStaysLocal(t *testing.T) {
	// With LocalShuffle, a DDStore-backed run must issue zero remote gets:
	// every rank's shard... is not aligned with the store chunks in
	// general, so instead verify via a recording loader that each rank only
	// ever requests ids from its own contiguous shard of the split.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 200})
	w, err := comm.NewWorld(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		split := NewSplit(200, 3)
		shard := map[int64]bool{}
		sh := ShardFor(split.Train, 4, c.Rank())
		for i := 0; i < sh.Len(); i++ {
			shard[sh.At(i)] = true
		}
		rec := &recordingLoader{inner: &SourceLoader{Source: ds}}
		_, err := Run(c, Config{
			Loader:       rec,
			LocalBatch:   8,
			Epochs:       2,
			Seed:         3,
			LocalShuffle: true,
			SimModel:     hydra.PaperConfig(3, 0, 1),
		})
		if err != nil {
			return err
		}
		for _, id := range rec.requested {
			if !shard[id] {
				return fmt.Errorf("rank %d requested foreign id %d under local shuffle", c.Rank(), id)
			}
		}
		if len(rec.requested) == 0 {
			return fmt.Errorf("no requests recorded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

type recordingLoader struct {
	inner     Loader
	requested []int64
}

func (r *recordingLoader) Len() int { return r.inner.Len() }

func (r *recordingLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	r.requested = append(r.requested, ids...)
	return r.inner.LoadBatch(ids)
}

// TestTelemetryAggregationAcrossRanks drives the full cluster-telemetry
// path over real comm collectives: every rank gathers its profiler to rank
// 0 each epoch, rank 0 folds the Fig. 7-style time-share table and the
// per-epoch loading-skew series, and — because the gather is cost-free —
// the run's virtual timings are bit-identical to a run without telemetry.
func TestTelemetryAggregationAcrossRanks(t *testing.T) {
	machine := cluster.Perlmutter()
	const n = 4
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 800})
	base := Config{
		LocalBatch:       8,
		Epochs:           2,
		MaxStepsPerEpoch: 4,
		Seed:             3,
		SimModel:         hydra.PaperConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim()),
	}

	run := func(withObs bool) (*Result, []*obs.SpanRing) {
		w, err := comm.NewWorld(n, 77, comm.WithMachine(machine))
		if err != nil {
			t.Fatal(err)
		}
		rings := make([]*obs.SpanRing, n)
		var res *Result
		var mu sync.Mutex
		err = w.Run(func(c *comm.Comm) error {
			st, err := core.Open(c, ds, core.Options{})
			if err != nil {
				return err
			}
			cfg := base
			cfg.Loader = &PlaneLoader{Plane: st}
			prof := trace.New()
			cfg.Profiler = prof
			if withObs {
				cfg.Telemetry = obs.NewTelemetry(c, prof)
				cfg.Spans = obs.NewSpanRing(1024, c.Rank())
				rings[c.Rank()] = cfg.Spans
			}
			r, err := Run(c, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			if c.Rank() == 0 {
				res = r
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rings
	}

	withTel, rings := run(true)
	plain, _ := run(false)

	if withTel.TotalDuration != plain.TotalDuration {
		t.Fatalf("telemetry perturbed virtual time: %v with vs %v without",
			withTel.TotalDuration, plain.TotalDuration)
	}

	ct := withTel.Telemetry
	if ct == nil {
		t.Fatal("rank 0 result carries no cluster telemetry")
	}
	if ct.Ranks != n || len(ct.Epochs) != base.Epochs || len(ct.PerRank) != n {
		t.Fatalf("telemetry shape: ranks=%d epochs=%d perRank=%d", ct.Ranks, len(ct.Epochs), len(ct.PerRank))
	}
	var hasLoading bool
	for _, row := range ct.TimeShare {
		if row.Region == trace.RegionLoading && row.Total > 0 {
			hasLoading = true
		}
	}
	if !hasLoading {
		t.Fatalf("time-share table missing %s: %+v", trace.RegionLoading, ct.TimeShare)
	}
	for _, e := range ct.Epochs {
		if e.Mean <= 0 || e.Max < e.Mean || e.Min > e.Mean {
			t.Fatalf("inconsistent epoch skew: %+v", e)
		}
	}
	out := ct.String()
	for _, want := range []string{"cluster time-share (4 ranks)", trace.RegionLoading, "skew"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// Every rank's span ring saw training-loop spans with epoch/step tags,
	// and the rings render as one valid Chrome trace.
	for rank, ring := range rings {
		if ring.Len() == 0 {
			t.Fatalf("rank %d recorded no spans", rank)
		}
		var sawLoad bool
		for _, s := range ring.Spans() {
			if s.Name == "load-batch" && s.Rank == rank {
				sawLoad = true
			}
		}
		if !sawLoad {
			t.Fatalf("rank %d has no load-batch span", rank)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rings...); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
}
