package ddp

import (
	"testing"
	"testing/quick"
)

func TestPermutationIsBijection(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int64(rawN)%3000 + 1
		p := NewPermutation(n, seed)
		seen := make([]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.Apply(i)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := NewPermutation(1000, 5)
	b := NewPermutation(1000, 5)
	for i := int64(0); i < 1000; i++ {
		if a.Apply(i) != b.Apply(i) {
			t.Fatalf("same-seed permutations differ at %d", i)
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	a := NewPermutation(1000, 5)
	c := NewPermutation(1000, 6)
	same := 0
	for i := int64(0); i < 1000; i++ {
		if a.Apply(i) == c.Apply(i) {
			same++
		}
	}
	if same > 30 { // expect ~1 collision by chance
		t.Fatalf("different seeds agree on %d/1000 positions", same)
	}
}

func TestPermutationActuallyShuffles(t *testing.T) {
	// A sanity check against the identity map: most elements must move.
	p := NewPermutation(10000, 9)
	fixed := 0
	for i := int64(0); i < 10000; i++ {
		if p.Apply(i) == i {
			fixed++
		}
	}
	if fixed > 50 {
		t.Fatalf("%d/10000 fixed points — not shuffling", fixed)
	}
}

func TestPermutationUniformity(t *testing.T) {
	// Where does position 0 land across seeds? Should spread over the
	// domain, roughly uniformly by quartile.
	const n = 1000
	buckets := make([]int, 4)
	for seed := uint64(0); seed < 2000; seed++ {
		v := NewPermutation(n, seed).Apply(0)
		buckets[v*4/n]++
	}
	for q, c := range buckets {
		if c < 350 || c > 650 {
			t.Fatalf("quartile %d got %d/2000 seeds — badly skewed", q, c)
		}
	}
}

func TestPermutationEdgeCases(t *testing.T) {
	one := NewPermutation(1, 3)
	if one.Apply(0) != 0 {
		t.Fatal("n=1 not identity")
	}
	if one.Len() != 1 {
		t.Fatal("Len wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Apply did not panic")
		}
	}()
	one.Apply(1)
}

func TestNewPermutationPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	NewPermutation(0, 1)
}

func TestViewsCompose(t *testing.T) {
	base := SliceIDs{10, 20, 30, 40, 50, 60}
	sub := subView{base: base, off: 2, nn: 3}
	if sub.Len() != 3 || sub.At(0) != 30 || sub.At(2) != 50 {
		t.Fatalf("subView wrong: %v", Collect(sub))
	}
	perm := NewPermutation(6, 4)
	pv := permView{base: base, perm: perm, off: 0, n: 6}
	seen := map[int64]bool{}
	for _, v := range Collect(pv) {
		seen[v] = true
	}
	for _, want := range base {
		if !seen[want] {
			t.Fatalf("permView lost element %d", want)
		}
	}
}

func TestRangeIDs(t *testing.T) {
	r := rangeIDs(5)
	if r.Len() != 5 || r.At(3) != 3 {
		t.Fatal("rangeIDs wrong")
	}
}
